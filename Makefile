PYTHON ?= python
PYTHONPATH := src
export PYTHONPATH

FUZZ_MINUTES ?= 5
FAULT_SEEDS ?= 0:64

.PHONY: test test-fast faults fuzz bench

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q -m "not faults"

faults:
	$(PYTHON) -m repro.faults --seeds $(FAULT_SEEDS)

fuzz:
	$(PYTHON) -m repro.faults --minutes $(FUZZ_MINUTES)

bench:
	$(PYTHON) -m repro.bench
