PYTHON ?= python
PYTHONPATH := src
export PYTHONPATH

FUZZ_MINUTES ?= 5
FAULT_SEEDS ?= 0:64

.PHONY: test test-fast test-degrade test-superblock test-uring test-uring-async test-cluster test-chaos faults fuzz bench perf trace

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q -m "not faults"

# Graceful-degradation tier: hostile mmap_min_addr, injected setup/rewrite
# faults, %gs-stack exhaustion and EINTR-during-interposition coverage.
test-degrade:
	$(PYTHON) -m pytest -x -q -m degrade

# Superblock tier: Hypothesis lockstep equivalence (tiering on vs off must
# be bit-identical in registers, memory, traces and simulated cycles) plus
# the invalidation and cycle-identity matrices.
test-superblock:
	$(PYTHON) -m pytest -x -q -m superblock

# Syscall-aggregation tier: ring drain semantics, signal-interrupted drains,
# and the batched-vs-unbatched identity matrix across tools and cores.
test-uring:
	$(PYTHON) -m pytest -x -q -m uring

# Asynchronous ring-drain tier: kernel-side parked entries, out-of-order
# completion posting, ring_wait, the sync/async/direct equivalence
# properties, and the event-loop webserver + session-coupled cluster legs.
test-uring-async:
	$(PYTHON) -m pytest -x -q -m uring_async

# Fleet-scale serving tier: balancer policies, multi-process shard fan-out,
# cross-process determinism and the shards=1 byte-identity contract.
test-cluster:
	$(PYTHON) -m pytest -x -q -m cluster

# Fleet fault-tolerance tier: shard chaos injection (crash/hang/degraded/
# hostile), health-checked failover balancing, circuit breakers, deadline/
# retry machinery and the chaos-off byte-identity contract.
test-chaos:
	$(PYTHON) -m pytest -x -q -m chaos

faults:
	$(PYTHON) -m repro.faults --seeds $(FAULT_SEEDS)

fuzz:
	$(PYTHON) -m repro.faults --minutes $(FUZZ_MINUTES)

bench:
	$(PYTHON) -m repro.bench

# Observability smoke: run a small workload matrix (microbench, ls, webserver
# x lazypoline, zpoline) under the machine-wide tracer and sanity-check the
# event streams.
trace:
	$(PYTHON) -m repro.obs smoke

# Perf baselines: snapshot the previous BENCH_*.json files, remeasure, then
# fail on a >15% regression on any workload (guest MIPS for the interpreter
# trajectory, simulated cycles-per-syscall for the uring trajectory,
# aggregate cluster rps for the fleet trajectory) or on any same-run floor
# embedded in the result files.
perf:
	@if [ -f BENCH_interp.json ]; then cp BENCH_interp.json BENCH_interp.prev.json; fi
	@if [ -f BENCH_uring.json ]; then cp BENCH_uring.json BENCH_uring.prev.json; fi
	@if [ -f BENCH_cluster.json ]; then cp BENCH_cluster.json BENCH_cluster.prev.json; fi
	$(PYTHON) -m pytest benchmarks/test_perf_interpreter.py benchmarks/test_perf_uring.py benchmarks/test_perf_cluster.py -m perf -q
	$(PYTHON) benchmarks/check_regression.py
	$(PYTHON) benchmarks/check_regression.py BENCH_uring.prev.json BENCH_uring.json
	$(PYTHON) benchmarks/check_regression.py BENCH_cluster.prev.json BENCH_cluster.json
