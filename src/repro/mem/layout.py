"""Canonical address-space layout constants.

The layout mirrors a simplified x86-64 Linux process.  Virtual address 0 is
normally unmapped; zpoline-style tools map it explicitly (the paper assumes
``mmap_min_addr`` permits this, and so do we).
"""

#: Where program text is loaded by default.
CODE_BASE = 0x40_0000

#: Where program data/bss segments are loaded by default.
DATA_BASE = 0x60_0000

#: Default initial stack: grows down from STACK_TOP.
STACK_TOP = 0x7FFF_F000
STACK_SIZE = 16 * 4096

#: mmap allocations without a fixed address are placed from here upward.
MMAP_BASE = 0x1000_0000

#: The zpoline trampoline page(s) at virtual address zero.
TRAMPOLINE_BASE = 0x0

#: Size of the nop sled: one byte per possible syscall number.
MAX_SYSCALL_NO = 512
