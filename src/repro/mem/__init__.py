"""Virtual memory: pages, permissions, address spaces."""

from repro.mem.pages import PAGE_SIZE, Perm, Page, page_align_down, page_align_up
from repro.mem.address_space import AddressSpace, Region
from repro.mem import layout

__all__ = [
    "PAGE_SIZE",
    "Perm",
    "Page",
    "AddressSpace",
    "Region",
    "layout",
    "page_align_down",
    "page_align_up",
]
