"""The per-process virtual address space.

An :class:`AddressSpace` is a sparse mapping from page numbers to
:class:`~repro.mem.pages.Page` objects with R/W/X permissions.  All guest
accesses go through :meth:`read`, :meth:`write` and :meth:`fetch`, which
raise :class:`~repro.errors.PageFault` on unmapped pages or permission
violations — the kernel turns those into SIGSEGV.

Kernel-side accessors (``read_bytes``/``write_bytes`` with ``check=None``)
bypass permissions, like the kernel touching user memory does.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.cpu.superblock import BlockCache
from repro.errors import MapError, PageFault
from repro.mem.pages import (
    PAGE_SIZE,
    PAGE_SHIFT,
    PERM_X,
    Page,
    Perm,
    page_align_down,
    page_align_up,
)

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


@dataclass(frozen=True)
class Region:
    """A maximal run of contiguous pages with identical permissions."""

    start: int
    end: int  # exclusive
    perm: Perm

    @property
    def size(self) -> int:
        return self.end - self.start

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.start:#x}-{self.end:#x} {self.perm.describe()}"


_ACCESS_BIT = {"read": Perm.R, "write": Perm.W, "exec": Perm.X}


class AddressSpace:
    """Sparse paged virtual memory for one process.

    Memory protection keys (Intel MPK): each page carries a ``pkey``; user
    accesses are additionally checked against ``active_pkru``, the PKRU
    value of the currently running task (two bits per key: bit ``2k``
    disables access, bit ``2k+1`` disables writes).  The scheduler loads
    ``active_pkru`` on every task switch, mirroring the per-thread PKRU
    register.  Kernel-side accesses (``check=None``) bypass PKU, like the
    kernel does.
    """

    #: Monotonic address-space id allocator.  Per-core translation caches
    #: are keyed by ``asid`` rather than ``id(self)`` so a recycled Python
    #: object id can never alias a dead space's cached decodes.
    _next_asid = 0

    def __init__(self):
        self._pages: dict[int, Page] = {}
        self.active_pkru = 0
        self.allocated_pkeys: set[int] = set()
        self.asid = AddressSpace._next_asid
        AddressSpace._next_asid += 1
        #: SMP cross-core shootdown hook, bound by the scheduler the first
        #: time this space runs on a multi-core machine: called as
        #: ``hook(self, pn)`` whenever an executable page is invalidated,
        #: so other cores drop their privately cached decodes of it.
        #: ``None`` on single-core machines — zero extra work there.
        self.smp_shootdown = None
        #: Translation cache: insn address -> (insn, handler, cost, page,
        #: gen, page2, gen2).  Populated and validated by the CPU (see
        #: ``repro.cpu.core``); this class only invalidates.
        self.insn_cache: dict = {}
        #: Per-page generation counters backing the translation cache.
        #: Bumped on any write/protect/unmap touching an executable page.
        #: Kept here (not on Page) so a counter survives unmap -> remap of
        #: the same page number — a fresh Page restarting at generation 0
        #: could otherwise revalidate entries decoded from the old mapping.
        self.exec_gen: dict[int, int] = {}
        #: Tier-2 superblock cache (see :mod:`repro.cpu.superblock`).  On
        #: SMP machines the scheduler swaps this for the running core's
        #: private per-asid cache at slice start, exactly like
        #: ``insn_cache``.  A forked space starts fresh, so child blocks
        #: never alias the parent's pages (fork isolation for free).
        self.block_cache = BlockCache()
        #: Monotone counter bumped alongside *any* exec-page generation.
        #: Compiled blocks snapshot it on entry and re-check after each
        #: store, so a block whose own store hits executable memory
        #: side-exits instead of running possibly-stale downstream bytes.
        self.code_epoch = 0
        #: Observability hook armed by the scheduler: called as
        #: ``hook(self, pn, heads)`` when a generation bump flushes
        #: compiled blocks, so block_invalidate events can be emitted
        #: without this module knowing about tracers.
        self.block_flush_hook = None

    def _bump_exec_gen(self, pn: int) -> None:
        """Invalidate cached decodes for page ``pn``.

        Soundness: a cache entry exists only for pages that were executable
        at fetch time, so bumping on mutations of *currently executable*
        pages (plus any X-permission removal, which goes through
        :meth:`protect` or :meth:`unmap`) covers every way an entry can go
        stale.
        """
        gens = self.exec_gen
        gens[pn] = gens.get(pn, 0) + 1
        self.code_epoch += 1
        bc = self.block_cache
        if bc.blocks:
            # Eagerly drop every compiled block spanning the bumped page;
            # the per-page index makes this a set lookup, not a scan.  A
            # head indexed under its *other* page may linger as a stale
            # index entry — the ``pop(h, None)`` below tolerates that.
            heads = bc.index.pop(pn, None)
            if heads:
                blocks = bc.blocks
                dropped = []
                for h in heads:
                    b = blocks.pop(h, None)
                    if b is not None and b.fn is not None:
                        dropped.append(h)  # sentinels drop silently
                hook2 = self.block_flush_hook
                if dropped and hook2 is not None:
                    hook2(self, pn, dropped)
        hook = self.smp_shootdown
        if hook is not None:
            hook(self, pn)

    # ------------------------------------------------------------- mapping
    def map(self, addr: int, length: int, perm: Perm, *, fixed: bool = True) -> int:
        """Map ``length`` bytes at page-aligned ``addr`` with ``perm``.

        Overlapping an existing mapping is an error (use :meth:`protect` to
        change permissions).  Returns the mapped address.
        """
        if addr % PAGE_SIZE:
            raise MapError(f"unaligned map address {addr:#x}")
        if length <= 0:
            raise MapError(f"bad map length {length}")
        first = addr >> PAGE_SHIFT
        count = page_align_up(length) >> PAGE_SHIFT
        for pn in range(first, first + count):
            if pn in self._pages:
                raise MapError(f"mapping overlap at {pn << PAGE_SHIFT:#x}")
        for pn in range(first, first + count):
            self._pages[pn] = Page(perm=perm)
        return addr

    def map_anywhere(self, length: int, perm: Perm, hint: int = 0x1000_0000) -> int:
        """Map ``length`` bytes at the first free region at/above ``hint``."""
        count = page_align_up(max(length, 1)) >> PAGE_SHIFT
        pn = page_align_down(hint) >> PAGE_SHIFT
        while True:
            if all(pn + i not in self._pages for i in range(count)):
                addr = pn << PAGE_SHIFT
                return self.map(addr, length, perm)
            pn += 1

    def unmap(self, addr: int, length: int) -> None:
        if addr % PAGE_SIZE:
            raise MapError(f"unaligned unmap address {addr:#x}")
        first = addr >> PAGE_SHIFT
        count = page_align_up(length) >> PAGE_SHIFT
        for pn in range(first, first + count):
            page = self._pages.pop(pn, None)
            if page is not None and page.perm & PERM_X:
                self._bump_exec_gen(pn)

    def protect(self, addr: int, length: int, perm: Perm) -> None:
        """Change permissions (mprotect).  All pages must be mapped."""
        if addr % PAGE_SIZE:
            raise MapError(f"unaligned protect address {addr:#x}")
        first = addr >> PAGE_SHIFT
        count = page_align_up(length) >> PAGE_SHIFT
        pages = []
        for pn in range(first, first + count):
            page = self._pages.get(pn)
            if page is None:
                raise MapError(f"protect of unmapped page {pn << PAGE_SHIFT:#x}")
            pages.append(page)
        for pn, page in zip(range(first, first + count), pages):
            if page.perm & PERM_X:
                self._bump_exec_gen(pn)
            page.perm = perm

    def is_mapped(self, addr: int, length: int = 1) -> bool:
        first = addr >> PAGE_SHIFT
        last = (addr + length - 1) >> PAGE_SHIFT
        return all(pn in self._pages for pn in range(first, last + 1))

    def perm_at(self, addr: int) -> Perm:
        page = self._pages.get(addr >> PAGE_SHIFT)
        return page.perm if page is not None else Perm.NONE

    def regions(self) -> list[Region]:
        """Merged list of mapped regions, sorted by address."""
        result: list[Region] = []
        for pn in sorted(self._pages):
            page = self._pages[pn]
            start = pn << PAGE_SHIFT
            if result and result[-1].end == start and result[-1].perm == page.perm:
                prev = result.pop()
                result.append(Region(prev.start, start + PAGE_SIZE, prev.perm))
            else:
                result.append(Region(start, start + PAGE_SIZE, page.perm))
        return result

    def executable_regions(self) -> list[Region]:
        return [r for r in self.regions() if r.perm & Perm.X]

    # -------------------------------------------------------------- access
    def _access(self, addr: int, length: int, access: str | None) -> None:
        if length <= 0:
            return
        bit = _ACCESS_BIT[access] if access else None
        first = addr >> PAGE_SHIFT
        last = (addr + length - 1) >> PAGE_SHIFT
        for pn in range(first, last + 1):
            page = self._pages.get(pn)
            if page is None:
                raise PageFault(max(addr, pn << PAGE_SHIFT), access or "read")
            if bit is not None:
                if not page.perm & bit:
                    raise PageFault(max(addr, pn << PAGE_SHIFT), access)
                if page.pkey and access in ("read", "write"):
                    shift = 2 * page.pkey
                    access_disable = self.active_pkru >> shift & 1
                    write_disable = self.active_pkru >> (shift + 1) & 1
                    if access_disable or (write_disable and access == "write"):
                        raise PageFault(
                            max(addr, pn << PAGE_SHIFT),
                            access,
                            message=(
                                f"pkey {page.pkey} forbids {access} at "
                                f"{max(addr, pn << PAGE_SHIFT):#x} "
                                f"(pkru={self.active_pkru:#x})"
                            ),
                        )

    def read(self, addr: int, length: int, *, check: str | None = "read") -> bytes:
        """Read ``length`` bytes, enforcing ``check`` permission."""
        self._access(addr, length, check)
        out = bytearray()
        remaining = length
        pos = addr
        while remaining:
            pn = pos >> PAGE_SHIFT
            off = pos & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - off)
            out += self._pages[pn].data[off : off + chunk]
            pos += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes, *, check: str | None = "write") -> None:
        """Write ``data``, enforcing ``check`` permission."""
        self._access(addr, len(data), check)
        pos = addr
        idx = 0
        while idx < len(data):
            pn = pos >> PAGE_SHIFT
            off = pos & (PAGE_SIZE - 1)
            chunk = min(len(data) - idx, PAGE_SIZE - off)
            page = self._pages[pn]
            page.data[off : off + chunk] = data[idx : idx + chunk]
            # Any store into a currently executable page (kernel-side
            # check=None writes included — ptrace POKEDATA patches code this
            # way) invalidates its cached decodes.
            if page.perm & PERM_X:
                self._bump_exec_gen(pn)
            pos += chunk
            idx += chunk

    def fetch(self, addr: int, length: int) -> bytes:
        """Instruction fetch: like read but requires execute permission.

        Truncates at the first unmapped/non-executable page boundary so the
        decoder can still decode a short instruction that ends exactly at a
        region boundary; an empty result means the very first byte faulted.
        """
        out = bytearray()
        pos = addr
        remaining = length
        while remaining:
            pn = pos >> PAGE_SHIFT
            page = self._pages.get(pn)
            if page is None or not page.perm & Perm.X:
                if not out:
                    raise PageFault(pos, "exec")
                break
            off = pos & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - off)
            out += page.data[off : off + chunk]
            pos += chunk
            remaining -= chunk
        return bytes(out)

    # ------------------------------------------------------ typed accessors
    def read_u8(self, addr: int, *, check: str | None = "read") -> int:
        return self.read(addr, 1, check=check)[0]

    def write_u8(self, addr: int, value: int, *, check: str | None = "write") -> None:
        self.write(addr, bytes((value & 0xFF,)), check=check)

    def read_u16(self, addr: int, *, check: str | None = "read") -> int:
        return _U16.unpack(self.read(addr, 2, check=check))[0]

    def read_u32(self, addr: int, *, check: str | None = "read") -> int:
        return _U32.unpack(self.read(addr, 4, check=check))[0]

    def write_u32(self, addr: int, value: int, *, check: str | None = "write") -> None:
        self.write(addr, _U32.pack(value & 0xFFFFFFFF), check=check)

    def read_u64(self, addr: int, *, check: str | None = "read") -> int:
        return _U64.unpack(self.read(addr, 8, check=check))[0]

    def write_u64(self, addr: int, value: int, *, check: str | None = "write") -> None:
        self.write(addr, _U64.pack(value & (1 << 64) - 1), check=check)

    def read_cstr(self, addr: int, maxlen: int = 4096, *, check: str | None = "read") -> bytes:
        """Read a NUL-terminated byte string (at most ``maxlen`` bytes)."""
        out = bytearray()
        pos = addr
        while len(out) < maxlen:
            byte = self.read_u8(pos, check=check)
            if byte == 0:
                break
            out.append(byte)
            pos += 1
        return bytes(out)

    def write_cstr(self, addr: int, data: bytes, *, check: str | None = "write") -> None:
        self.write(addr, data + b"\x00", check=check)

    # ------------------------------------------------------ protection keys
    def pkey_alloc(self) -> int:
        """Allocate the lowest free protection key (1..15); -1 if none."""
        for key in range(1, 16):
            if key not in self.allocated_pkeys:
                self.allocated_pkeys.add(key)
                return key
        return -1

    def pkey_free(self, key: int) -> bool:
        if key in self.allocated_pkeys:
            self.allocated_pkeys.discard(key)
            return True
        return False

    def assign_pkey(self, addr: int, length: int, key: int) -> None:
        """Tag the pages covering [addr, addr+length) with ``key``
        (pkey_mprotect without the permission change)."""
        if addr % PAGE_SIZE:
            raise MapError(f"unaligned pkey assignment at {addr:#x}")
        first = addr >> PAGE_SHIFT
        count = page_align_up(length) >> PAGE_SHIFT
        for pn in range(first, first + count):
            page = self._pages.get(pn)
            if page is None:
                raise MapError(f"pkey on unmapped page {pn << PAGE_SHIFT:#x}")
            page.pkey = key

    # ----------------------------------------------------------------- fork
    def fork_copy(self) -> "AddressSpace":
        """Deep copy for fork()."""
        clone = AddressSpace()
        clone._pages = {pn: page.copy() for pn, page in self._pages.items()}
        clone.allocated_pkeys = set(self.allocated_pkeys)
        return clone
