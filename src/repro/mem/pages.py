"""Pages and permissions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

PAGE_SIZE = 4096
PAGE_SHIFT = 12


class Perm(enum.IntFlag):
    """Page permission bits, mmap-style."""

    NONE = 0
    R = 1
    W = 2
    X = 4
    RW = R | W
    RX = R | X
    RWX = R | W | X

    def describe(self) -> str:
        return "".join(
            ch if self & bit else "-"
            for ch, bit in (("r", Perm.R), ("w", Perm.W), ("x", Perm.X))
        )


#: Raw execute bit as a plain int — hot paths (translation-cache generation
#: bumps on every guest store) test ``page.perm & PERM_X`` without paying
#: IntFlag construction overhead.
PERM_X = int(Perm.X)


def page_align_down(addr: int) -> int:
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr: int) -> int:
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


@dataclass
class Page:
    """One 4 KiB page of guest memory.

    ``pkey`` is the memory protection key (MPK) the page is tagged with;
    key 0 is the default, unrestricted key.
    """

    data: bytearray = field(default_factory=lambda: bytearray(PAGE_SIZE))
    perm: Perm = Perm.NONE
    pkey: int = 0

    def copy(self) -> "Page":
        return Page(bytearray(self.data), self.perm, self.pkey)
