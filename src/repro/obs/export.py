"""Exporters for the recorded event stream.

Three formats:

* :func:`export_jsonl` — one JSON object per line, the machine-readable
  ground truth (differential testing, ad-hoc jq analysis),
* :func:`export_chrome` — the chrome-tracing / Perfetto ``traceEvents``
  format (open in ``ui.perfetto.dev``): syscalls as complete ("X") spans,
  scheduler slices as "B"/"E" pairs, everything else as instants,
* :func:`render_strace` — a human ``strace``-style text log.

Timestamps: events carry the simulated cycle clock; chrome output converts
to microseconds through the bound machine's cost model (falling back to
1 cycle = 1 µs for an unbound tracer, which only rescales the axis).
"""

from __future__ import annotations

import json

from repro.kernel.signals import signal_name
from repro.obs import events as K
from repro.obs.format import format_args, format_ret


# ---------------------------------------------------------------- JSON lines
def export_jsonl(tracer) -> str:
    """One JSON object per event, in emission order."""
    lines = []
    for e in tracer.events:
        obj = {
            "seq": e.seq, "ts": e.ts, "kind": e.kind, "tid": e.tid,
            "core": e.core,
        }
        obj.update(e.data)
        lines.append(json.dumps(obj))
    return "\n".join(lines) + ("\n" if lines else "")


# ------------------------------------------------------------- chrome tracing
def _us_per_cycle(tracer) -> float:
    machine = tracer.machine
    if machine is not None:
        return 1e6 / machine.costs.frequency_hz
    return 1.0


def export_chrome(tracer) -> dict:
    """The ``{"traceEvents": [...]}`` document chrome://tracing loads."""
    scale = _us_per_cycle(tracer)
    out = [
        {"ph": "M", "pid": 1, "name": "process_name",
         "args": {"name": "repro machine"}},
    ]
    named: set[int] = set()
    machine = tracer.machine
    for e in tracer.events:
        tid = e.tid
        if tid >= 0 and tid not in named:
            named.add(tid)
            comm = ""
            if machine is not None:
                task = machine.kernel.tasks.get(tid)
                comm = task.comm if task is not None else ""
            out.append({"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
                        "args": {"name": f"{comm or 'task'} [{tid}]"}})
        if e.kind == K.SYSCALL:
            cycles = e.data["cycles"]
            out.append({
                "ph": "X", "pid": 1, "tid": tid, "cat": "syscall",
                "name": e.data["name"],
                "ts": (e.ts - cycles) * scale,
                "dur": max(cycles * scale, 0.001),
                "args": {k: v for k, v in e.data.items() if k != "name"},
            })
        elif e.kind == K.SLICE_START:
            out.append({"ph": "B", "pid": 1, "tid": tid, "cat": "sched",
                        "name": "slice", "ts": e.ts * scale})
        elif e.kind == K.SLICE_END:
            out.append({"ph": "E", "pid": 1, "tid": tid, "cat": "sched",
                        "ts": e.ts * scale, "args": dict(e.data)})
        else:
            out.append({
                "ph": "i", "pid": 1, "tid": max(tid, 0), "cat": e.kind,
                "name": e.kind, "ts": e.ts * scale, "s": "t",
                "args": dict(e.data),
            })
    return {"traceEvents": out, "displayTimeUnit": "ns"}


# ------------------------------------------------------------- strace render
#: Kinds shown by default (scheduler noise off).
_STRACE_KINDS = frozenset({
    K.SYSCALL, K.SIGSYS_TRAP, K.REWRITE, K.SIGNAL,
    K.SIGRETURN_TRAMP, K.CACHE_INVALIDATE, K.RING_ENTER, K.RING_ENTRY,
})


def render_strace(tracer, *, show_scheduler: bool = False,
                  kinds: frozenset | None = None) -> str:
    """Human-readable ``strace``-style rendering of the event stream."""
    wanted = kinds if kinds is not None else _STRACE_KINDS
    if show_scheduler:
        wanted = wanted | {K.SLICE_START, K.SLICE_END, K.CTX_SWITCH}
    lines = []
    for e in tracer.events:
        if e.kind not in wanted:
            continue
        head = f"[{e.tid}]"
        d = e.data
        if e.kind == K.SYSCALL:
            lines.append(
                f"{head} {d['name']}({format_args(d['args'], 4)})"
                f" = {format_ret(d['ret'])}  <{d['cycles']} cyc>"
            )
        elif e.kind == K.SIGSYS_TRAP:
            lines.append(
                f"{head} --- SIGSYS slow path: site {d['site']:#x}"
                f" ({d['mechanism']}) ---"
            )
        elif e.kind == K.REWRITE:
            lines.append(
                f"{head} --- rewrote site {d['site']:#x} -> call rax"
                f" ({d['mechanism']}, {d['origin']}) ---"
            )
        elif e.kind == K.SIGNAL:
            lines.append(
                f"{head} --- {signal_name(d['sig'])} -> {d['action']} ---"
            )
        elif e.kind == K.RING_ENTRY:
            lines.append(
                f"{head}   ring[{d['index']}] {d['name']}"
                f" = {format_ret(d['ret'])}  <{d['cycles']} cyc>"
            )
        elif e.kind == K.RING_ENTER:
            lines.append(
                f"{head} ring_enter drained {d['completed']}/{d['submitted']}"
                f" entries  <{d['cycles']} cyc>"
            )
        elif e.kind == K.SIGRETURN_TRAMP:
            lines.append(f"{head} --- sigreturn trampoline transit ---")
        elif e.kind == K.CACHE_INVALIDATE:
            lines.append(
                f"{head} ~~~ translation cache invalidated at {d['addr']:#x} ~~~"
            )
        elif e.kind == K.CTX_SWITCH:
            lines.append(f"{head} <<< context switch from {d['prev']} >>>")
        elif e.kind == K.SLICE_START:
            lines.append(f"{head} >>> slice @{e.ts}")
        elif e.kind == K.SLICE_END:
            lines.append(f"{head} <<< slice end ({d['executed']} insns)")
    return "\n".join(lines)
