"""Typed events of the machine-wide tracing layer.

Every instrumented layer emits events of a small fixed vocabulary:

========================  =====================================================
kind                      emitted by
========================  =====================================================
``syscall``               kernel dispatch path — one event per *completed*
                          syscall dispatch, with return value and cycle cost
``interposition``         a user interposer (``TraceInterposer``) — the
                          tool-level view of an intercepted syscall
``sigsys_trap``           lazypoline / SUD / seccomp-user slow path — a SIGSYS
                          arrived at the tool's handler
``rewrite``               lazypoline / zpoline — one syscall site patched to
                          ``call rax`` (``origin``: trap, static, or manual)
``sled_enter``            lazypoline fast path / zpoline trampoline — the
                          generic syscall handler was entered through VA 0
``sigreturn_tramp``       lazypoline — a signal return detoured through the
                          sigreturn trampoline (Fig. 3 ④)
``slice_start``/``end``   scheduler — one time slice of a task
``ctx_switch``            scheduler — a different task was put on the CPU
``signal``                signal delivery — a handler frame was pushed or the
                          task was killed
``cache_invalidate``      CPU core — a cached translation was discarded
                          because its page generation changed (self-modifying
                          code, e.g. lazypoline's in-place rewrite)
``block_compile``         tier-2 interpreter — a hot straight-line run was
                          compiled into a superblock (``n`` instructions)
``block_invalidate``      tier-2 interpreter — a compiled superblock was
                          discarded (``reason``: smc, shootdown, or stale)
``ring_enter``            kernel uring drain — one ``ring_enter`` crossing
                          finished draining (``submitted``/``completed``)
``ring_entry``            kernel uring drain — one SQE completed, with its
                          result and per-entry cycle cost
``ring_park``             kernel uring async drain — a blocking (or
                          dependency-linked) SQE was parked on a kernel-side
                          waiter instead of stalling the drain
``ring_complete``         kernel uring async drain — a parked SQE's wakeup
                          fired and its CQE posted (``waited`` cycles after
                          parking)
``degrade``               degradation controller — the tool moved to a less
                          capable mode (FULL_HYBRID → SUD_ONLY → PASSTHROUGH)
``rewrite_blacklist``     degradation controller — a syscall site exhausted
                          its rewrite attempts and is pinned to the slow path
``fallback``              degradation controller — a recoverable fault was
                          absorbed (rewrite retry, sigreturn-stack spill,
                          setup-mmap fallback) without changing mode
``shard_down``            cluster health model — a shard transitioned to
                          ``down`` (crash, hang, or repeated timeouts)
``failover``              cluster balancer — failed requests were re-planned
                          from a dead/suspect shard onto a live one
``retry``                 cluster retry machinery — a backoff round re-issued
                          timed-out/failed requests
``breaker``               cluster circuit breaker — a per-shard breaker
                          transitioned (closed → open → half_open → closed)
========================  =====================================================

``ts`` is the simulated clock (cycles) at *emission* time.  On a 1-core
machine the kernel clock never decreases, so events are monotone in
``(seq, ts)``.  On an SMP machine ``ts`` is the emitting *core's* local
clock and ``core`` identifies it: events are monotone per core, not
globally.  ``syscall`` events are emitted at completion and carry
``cycles`` — the dispatch duration — so the start time is ``ts - cycles``.
"""

from __future__ import annotations

from dataclasses import dataclass

SYSCALL = "syscall"
INTERPOSITION = "interposition"
SIGSYS_TRAP = "sigsys_trap"
REWRITE = "rewrite"
SLED_ENTER = "sled_enter"
SIGRETURN_TRAMP = "sigreturn_tramp"
SLICE_START = "slice_start"
SLICE_END = "slice_end"
CTX_SWITCH = "ctx_switch"
SIGNAL = "signal"
CACHE_INVALIDATE = "cache_invalidate"
BLOCK_COMPILE = "block_compile"
BLOCK_INVALIDATE = "block_invalidate"
RING_ENTER = "ring_enter"
RING_ENTRY = "ring_entry"
RING_PARK = "ring_park"
RING_COMPLETE = "ring_complete"
DEGRADE = "degrade"
REWRITE_BLACKLIST = "rewrite_blacklist"
FALLBACK = "fallback"
SHARD_DOWN = "shard_down"
FAILOVER = "failover"
RETRY = "retry"
BREAKER = "breaker"

ALL_KINDS = (
    SYSCALL,
    INTERPOSITION,
    SIGSYS_TRAP,
    REWRITE,
    SLED_ENTER,
    SIGRETURN_TRAMP,
    SLICE_START,
    SLICE_END,
    CTX_SWITCH,
    SIGNAL,
    CACHE_INVALIDATE,
    BLOCK_COMPILE,
    BLOCK_INVALIDATE,
    RING_ENTER,
    RING_ENTRY,
    RING_PARK,
    RING_COMPLETE,
    DEGRADE,
    REWRITE_BLACKLIST,
    FALLBACK,
    SHARD_DOWN,
    FAILOVER,
    RETRY,
    BREAKER,
)


@dataclass(frozen=True, slots=True)
class Event:
    """One structured trace event."""

    seq: int  #: global emission order (dense, starts at 0)
    ts: int  #: simulated clock (cycles) at emission
    kind: str  #: one of :data:`ALL_KINDS`
    tid: int  #: task the event is attributed to (-1 when machine-global)
    data: dict  #: kind-specific payload (JSON-serialisable)
    core: int = 0  #: core the event was emitted from (always 0 on 1-core)
