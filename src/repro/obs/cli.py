"""``python -m repro.obs``: run a workload under a tool with tracing on.

Subcommands::

    run    --workload {microbench,webserver,ls,tcc} --tool TOOL
           --format {summary,jsonl,chrome,strace} [-o FILE]
           [--iterations N] [--requests N] [--show-scheduler]
    smoke  (3 workloads x 2 tools, one line each — the ``make trace`` target)
    tools  (list attachable tool names)

``run`` builds the chosen workload on a fresh machine, attaches the chosen
tool with the passthrough interposer and a machine-wide tracer, runs to
completion, and emits the trace in the requested format.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.interpose import attach, available_tools
from repro.kernel.machine import Machine
from repro.obs.export import export_chrome, export_jsonl, render_strace
from repro.obs.metrics import convergence_curve, path_ratio
from repro.obs.tracer import Tracer

WORKLOADS = ("microbench", "webserver", "ls", "tcc")

#: Workload/tool pairs exercised by ``smoke``.
SMOKE_WORKLOADS = ("microbench", "ls", "webserver")
SMOKE_TOOLS = ("lazypoline", "zpoline")


# ------------------------------------------------------------------ workloads
def _run_microbench(machine: Machine, tool: str, args) -> None:
    from repro.workloads.microbench import build_syscall_loop

    process = machine.load(build_syscall_loop(args.iterations))
    _attach(machine, process, tool)
    machine.run_process(process)


def _run_ls(machine: Machine, tool: str, args) -> None:
    from repro.workloads.coreutils import build_coreutil, setup_fs

    setup_fs(machine)
    process = machine.load(build_coreutil("ls"))
    _attach(machine, process, tool)
    machine.run_process(process)


def _run_tcc(machine: Machine, tool: str, args) -> None:
    from repro.workloads import tcc

    tcc.setup_fs(machine)
    process = machine.load(tcc.build_tcc_image())
    _attach(machine, process, tool)
    machine.run_process(process)


def _run_webserver(machine: Machine, tool: str, args) -> None:
    from repro.workloads.webserver import NGINX, ServerWorkload
    from repro.workloads.wrk import WrkClient

    workload = ServerWorkload(machine, NGINX, file_size=4096)
    _attach(machine, workload.process, tool)
    workload.run_until_listening()
    client = WrkClient(machine.kernel, 8080, connections=4, response_size=4096)
    client.start()
    machine.run(
        until=lambda: client.stats.completed >= args.requests,
        max_instructions=200_000_000,
    )
    client.stop()


def _attach(machine: Machine, process, tool: str) -> None:
    # No explicit interposer: tools that take one get the passthrough,
    # seccomp_bpf (which rejects interposers by design, Table I) gets none.
    attach(machine, process, tool)


_RUNNERS = {
    "microbench": _run_microbench,
    "webserver": _run_webserver,
    "ls": _run_ls,
    "tcc": _run_tcc,
}


# ------------------------------------------------------------------- rendering
def _summary(tracer: Tracer, machine: Machine) -> str:
    lines = [
        f"events: {sum(tracer.counts.values())}"
        + (f" ({tracer.dropped} dropped)" if tracer.dropped else ""),
        "by kind: "
        + ", ".join(f"{k}={n}" for k, n in sorted(tracer.counts.items())),
        f"simulated cycles: {machine.clock:.0f}",
    ]
    slow, fast, fraction = path_ratio(tracer)
    if slow or fast:
        lines.append(
            f"paths: {slow} slow (SIGSYS), {fast} fast ({fraction:.1%} slow)"
        )
        curve = convergence_curve(tracer.events, bucket=32)
        if curve:
            shown = ", ".join(f"@{n}:{f:.2f}" for n, f in curve[:8])
            lines.append(f"convergence (slow fraction per 32 entries): {shown}")
    if tracer.rewritten_sites:
        lines.append(
            f"rewritten sites: {len(tracer.rewritten_sites)} "
            f"({', '.join(hex(s) for s in sorted(tracer.rewritten_sites))})"
        )
    if tracer.cache_invalidations:
        lines.append(f"translation-cache invalidations: {tracer.cache_invalidations}")
    table = tracer.syscall_table()
    if table:
        lines.append("")
        lines.append(f"{'calls':>7s} {'errors':>7s} {'cycles':>12s} "
                     f"{'cyc/call':>10s} syscall")
        for agg in table:
            lines.append(
                f"{agg.calls:7d} {agg.errors:7d} {agg.cycles:12.0f} "
                f"{agg.cycles_per_call:10.1f} {agg.name}"
            )
    return "\n".join(lines)


def _render(fmt: str, tracer: Tracer, machine: Machine, args) -> str:
    if fmt == "summary":
        return _summary(tracer, machine)
    if fmt == "jsonl":
        return export_jsonl(tracer)
    if fmt == "chrome":
        return json.dumps(export_chrome(tracer), indent=1)
    if fmt == "strace":
        return render_strace(
            tracer, show_scheduler=getattr(args, "show_scheduler", False)
        )
    raise ValueError(f"unknown format {fmt!r}")


# ------------------------------------------------------------------- commands
def cmd_run(args) -> int:
    if args.tool not in available_tools():
        print(
            f"error: unknown tool {args.tool!r}; "
            f"available: {', '.join(available_tools())}",
            file=sys.stderr,
        )
        return 2
    tracer = Tracer(max_events=args.max_events)
    machine = Machine(tracer=tracer)
    _RUNNERS[args.workload](machine, args.tool, args)
    text = _render(args.format, tracer, machine, args)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.output} ({sum(tracer.counts.values())} events)")
    else:
        print(text)
    return 0


def cmd_smoke(args) -> int:
    failures = 0
    for workload in SMOKE_WORKLOADS:
        for tool in SMOKE_TOOLS:
            tracer = Tracer()
            machine = Machine(tracer=tracer)
            ns = argparse.Namespace(iterations=50, requests=10)
            try:
                _RUNNERS[workload](machine, tool, ns)
            except Exception as exc:  # pragma: no cover - smoke diagnostics
                failures += 1
                print(f"FAIL  {workload:<10s} {tool:<10s} {exc}")
                continue
            slow, fast, _ = path_ratio(tracer)
            print(
                f"ok    {workload:<10s} {tool:<10s} "
                f"{sum(tracer.counts.values()):6d} events, "
                f"{tracer.counts.get('syscall', 0):5d} syscalls, "
                f"{slow} slow / {fast} fast"
            )
    return 1 if failures else 0


def cmd_tools(args) -> int:
    for name in available_tools():
        print(name)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="machine-wide tracing for interposition workloads",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one workload under one tool, traced")
    run.add_argument("--workload", choices=WORKLOADS, default="microbench")
    run.add_argument("--tool", default="lazypoline")
    run.add_argument(
        "--format", choices=("summary", "jsonl", "chrome", "strace"),
        default="summary",
    )
    run.add_argument("-o", "--output", default=None, help="write to file")
    run.add_argument("--iterations", type=int, default=200,
                     help="microbench loop iterations")
    run.add_argument("--requests", type=int, default=25,
                     help="webserver requests to serve")
    run.add_argument("--max-events", type=int, default=None,
                     help="cap recorded events (counters keep counting)")
    run.add_argument("--show-scheduler", action="store_true",
                     help="include scheduler events in strace output")
    run.set_defaults(func=cmd_run)

    smoke = sub.add_parser("smoke", help="quick sweep: 3 workloads x 2 tools")
    smoke.set_defaults(func=cmd_smoke)

    tools = sub.add_parser("tools", help="list attachable tools")
    tools.set_defaults(func=cmd_tools)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
