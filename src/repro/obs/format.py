"""Shared syscall-rendering helpers.

One formatting vocabulary serves every consumer: ``SyscallContext.__repr__``,
the strace-style exporter, and the live tracers in ``examples/`` — the
duplication that used to live in each of them collapses to these functions.
"""

from __future__ import annotations

from repro.kernel.errno import errno_name, is_error

#: Which argument positions hold user-space path strings (for live decoding).
PATH_ARGS = {
    "open": (0,), "stat": (0,), "access": (0,), "unlink": (0,),
    "mkdir": (0,), "rmdir": (0,), "chmod": (0,), "chdir": (0,),
    "rename": (0, 1), "execve": (0,), "openat": (1,),
}


def format_args(args, limit: int = 6) -> str:
    """Hex-render the first ``limit`` syscall arguments."""
    return ", ".join(f"{a:#x}" for a in args[:limit])


def format_call(name: str, args, limit: int = 6) -> str:
    return f"{name}({format_args(args, limit)})"


def format_ret(ret) -> str:
    """Render a syscall return value, errno-decoded on error."""
    if isinstance(ret, int) and is_error(ret):
        return f"-1 {errno_name(-ret)}"
    return str(ret)


def render_live_args(ctx, max_args: int = 4) -> str:
    """Decode arguments with *live* tracee memory access.

    Path-typed arguments (per :data:`PATH_ARGS`) are dereferenced to
    strings; everything else renders as hex.  Only usable from inside an
    interposer, while the memory still exists.
    """
    rendered = []
    for i, arg in enumerate(ctx.args[:max_args]):
        if i in PATH_ARGS.get(ctx.name, ()):
            try:
                rendered.append(repr(ctx.read_cstr(arg).decode()))
            except Exception:
                rendered.append(f"{arg:#x}")
        else:
            rendered.append(f"{arg:#x}")
    return ", ".join(rendered)
