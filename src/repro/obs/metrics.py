"""Aggregate metrics computed on (or alongside) the event stream.

The :class:`~repro.obs.tracer.Tracer` maintains :class:`SyscallAggregate`
rows and :class:`CycleHistogram` buckets incrementally, so summary views
cost O(1) per event; curve-shaped views (:func:`convergence_curve`,
:func:`path_ratio`) walk the recorded events on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import events as K


class CycleHistogram:
    """Log2-bucketed latency/cycle histogram (bucket i covers [2^(i-1), 2^i))."""

    __slots__ = ("counts", "n", "total", "min", "max")

    def __init__(self):
        self.counts: dict[int, int] = {}
        self.n = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def add(self, cycles: int) -> None:
        bucket = int(cycles).bit_length() if cycles > 0 else 0
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.n += 1
        self.total += cycles
        if self.min is None or cycles < self.min:
            self.min = cycles
        if self.max is None or cycles > self.max:
            self.max = cycles

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def buckets(self) -> list[tuple[int, int, int]]:
        """Sorted ``(lo, hi, count)`` rows for the populated buckets."""
        rows = []
        for bucket in sorted(self.counts):
            lo = 0 if bucket == 0 else 1 << (bucket - 1)
            hi = 1 << bucket
            rows.append((lo, hi, self.counts[bucket]))
        return rows

    def format(self, width: int = 40) -> str:
        rows = self.buckets()
        peak = max((c for _, _, c in rows), default=1)
        lines = []
        for lo, hi, count in rows:
            bar = "#" * max(1, round(width * count / peak))
            lines.append(f"{lo:>8d}..{hi:<8d} {count:>7d} {bar}")
        return "\n".join(lines)


@dataclass
class SyscallAggregate:
    """Per-syscall accounting, ``strace -c`` shaped, plus a histogram."""

    sysno: int
    name: str
    calls: int = 0
    errors: int = 0
    cycles: int = 0
    histogram: CycleHistogram = field(default_factory=CycleHistogram)

    @property
    def cycles_per_call(self) -> float:
        return self.cycles / self.calls if self.calls else 0.0


def convergence_curve(
    events, bucket: int = 64
) -> list[tuple[int, float]]:
    """The rewrite-convergence story: slow-path fraction vs syscall count.

    Walks interposition entries (``sled_enter``) in order and, per bucket of
    ``bucket`` consecutive entries, computes the fraction that reached the
    generic handler through the SIGSYS slow path (a ``sigsys_trap`` by the
    same task with no intervening ``sled_enter``).  Under lazypoline the
    fraction starts near 1.0 and collapses towards 0.0 as hot sites get
    rewritten — the paper's "every site traps exactly once" claim as a curve.

    Returns ``(cumulative_sled_entries, slow_fraction)`` points.
    """
    points: list[tuple[int, float]] = []
    pending: set[int] = set()
    total = in_bucket = slow = 0
    for event in events:
        if event.kind == K.SIGSYS_TRAP:
            pending.add(event.tid)
        elif event.kind == K.SLED_ENTER:
            total += 1
            in_bucket += 1
            if event.tid in pending:
                pending.discard(event.tid)
                slow += 1
            if in_bucket == bucket:
                points.append((total, slow / bucket))
                in_bucket = slow = 0
    if in_bucket:
        points.append((total, slow / in_bucket))
    return points


def path_ratio(tracer) -> tuple[int, int, float]:
    """``(slow, fast, slow_fraction)`` over the whole run."""
    slow = tracer.slowpath_total
    entries = tracer.counts.get(K.SLED_ENTER, 0)
    fast = max(entries - slow, 0)
    return slow, fast, (slow / entries if entries else 0.0)
