"""The machine-wide tracer.

A :class:`Tracer` is attached with ``Machine(tracer=...)`` or
``machine.attach_tracer(tracer)``; every instrumented layer (kernel
dispatch, scheduler, signal delivery, CPU translation cache, the
lazypoline/zpoline stack) then emits typed events into it.  Every emit site
is guarded by an ``if tracer is not None`` check on an attribute that
defaults to ``None``, so a machine without a tracer pays one attribute load
per *slice/syscall/rare event* — never per instruction — and simulated
cycle accounting is identical with tracing on or off (observability is free
in simulated time; only host wall-clock pays).

The tracer maintains cheap aggregate counters alongside the event list, so
summary views (per-syscall tables, slow/fast ratios, per-site
rewrite-coverage counters) never need an event walk.
"""

from __future__ import annotations

from repro.kernel.errno import ETIMEDOUT, is_error
from repro.kernel.syscalls.table import syscall_name
from repro.obs import events as K
from repro.obs.events import Event
from repro.obs.metrics import SyscallAggregate


class Tracer:
    """Receives typed events from every instrumented layer of a Machine."""

    def __init__(self, *, max_events: int | None = None):
        #: recorded events, in emission order (monotone ``ts``)
        self.events: list[Event] = []
        #: events per kind (counted even when ``max_events`` drops the event)
        self.counts: dict[str, int] = {}
        #: per-syscall aggregates: sysno -> SyscallAggregate
        self.syscalls: dict[int, SyscallAggregate] = {}
        #: tool-level interposition counts by syscall name
        self.interposition_counts: dict[str, int] = {}
        #: per-site rewrite-coverage counters: slow-path traps per site ...
        self.site_traps: dict[int, int] = {}
        #: ... and the sites actually rewritten: site -> origin
        self.rewritten_sites: dict[int, str] = {}
        self.slowpath_total = 0
        self.cache_invalidations = 0
        self.block_compiles = 0
        self.block_invalidations = 0
        #: ring_enter crossings and total SQEs drained through them
        self.ring_enters = 0
        self.ring_entries = 0
        #: async drain: SQEs parked on kernel-side waiters, and parked
        #: SQEs whose CQE later posted (``ring_entries`` includes these,
        #: so it always counts every completed SQE either way)
        self.ring_parks = 0
        self.ring_completes = 0
        #: parked SQEs whose bounded park expired (CQE = -ETIMEDOUT)
        self.ring_timeouts = 0
        #: fleet fault-tolerance aggregates (cluster-level emit sites)
        self.shard_downs = 0
        self.failovers = 0
        self.retries = 0
        self.breaker_transitions = 0
        #: degradation-mode transitions: (ts, tid, mechanism, old, new, reason)
        self.degradations: list[tuple] = []
        #: sites pinned to the slow path after repeated rewrite failures
        self.blacklisted_sites: dict[int, str] = {}
        #: recoverable faults absorbed without a mode change, by stage name
        self.fallback_counts: dict[str, int] = {}
        self.max_events = max_events
        self.dropped = 0
        self.machine = None  # bound by Machine.attach_tracer
        self._seq = 0
        #: Core whose slice is currently executing; stamped onto every
        #: event.  Maintained by the SMP scheduler (stays 0 on 1-core).
        self.current_core = 0
        #: Events emitted per core (cheap aggregate, no event walk).
        self.core_counts: dict[int, int] = {}

    # ------------------------------------------------------------------ core
    def bind(self, machine) -> None:
        """Associate with a machine (cycle->time conversion, task names)."""
        self.machine = machine

    def _emit(self, ts: int, kind: str, tid: int, data: dict) -> None:
        seq = self._seq
        self._seq = seq + 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        core = self.current_core
        self.core_counts[core] = self.core_counts.get(core, 0) + 1
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(Event(seq, ts, kind, tid, data, core))

    # ------------------------------------------------------- kernel dispatch
    def syscall(
        self,
        ts: int,
        tid: int,
        sysno: int,
        args: tuple[int, ...],
        ret: int | None,
        cycles: int,
        *,
        injected: bool = False,
    ) -> None:
        """One completed syscall dispatch (``ts`` is the completion clock)."""
        name = syscall_name(sysno)
        agg = self.syscalls.get(sysno)
        if agg is None:
            agg = self.syscalls[sysno] = SyscallAggregate(sysno, name)
        agg.calls += 1
        agg.cycles += cycles
        agg.histogram.add(cycles)
        error = isinstance(ret, int) and is_error(ret)
        if error:
            agg.errors += 1
        data = {
            "name": name,
            "sysno": sysno,
            "args": list(args),
            "ret": ret,
            "cycles": cycles,
        }
        if error:
            data["errno"] = -ret
        if injected:
            data["injected"] = True
        self._emit(ts, K.SYSCALL, tid, data)

    # ------------------------------------------------------------ tool level
    def interposition(
        self, ts: int, tid: int, sysno: int, args: tuple[int, ...], mechanism: str
    ) -> None:
        """A user interposer saw a syscall (the tool-level view)."""
        name = syscall_name(sysno)
        self.interposition_counts[name] = self.interposition_counts.get(name, 0) + 1
        self._emit(
            ts,
            K.INTERPOSITION,
            tid,
            {"name": name, "sysno": sysno, "args": list(args),
             "mechanism": mechanism},
        )

    def sigsys_trap(self, ts: int, tid: int, site: int, mechanism: str) -> None:
        self.slowpath_total += 1
        self.site_traps[site] = self.site_traps.get(site, 0) + 1
        self._emit(ts, K.SIGSYS_TRAP, tid,
                   {"site": site, "mechanism": mechanism})

    def rewrite(self, ts: int, tid: int, site: int, mechanism: str,
                origin: str = "trap") -> None:
        self.rewritten_sites[site] = origin
        self._emit(ts, K.REWRITE, tid,
                   {"site": site, "mechanism": mechanism, "origin": origin})

    def sled_enter(self, ts: int, tid: int, sysno: int, mechanism: str) -> None:
        self._emit(ts, K.SLED_ENTER, tid,
                   {"sysno": sysno, "mechanism": mechanism})

    def sigreturn_tramp(self, ts: int, tid: int) -> None:
        self._emit(ts, K.SIGRETURN_TRAMP, tid, {})

    # -------------------------------------------------------------- scheduler
    def slice_start(self, ts: int, tid: int) -> None:
        self._emit(ts, K.SLICE_START, tid, {})

    def slice_end(self, ts: int, tid: int, executed: int) -> None:
        self._emit(ts, K.SLICE_END, tid, {"executed": executed})

    def ctx_switch(self, ts: int, prev_tid: int | None, tid: int) -> None:
        self._emit(ts, K.CTX_SWITCH, tid, {"prev": prev_tid})

    def signal(self, ts: int, tid: int, sig: int, action: str) -> None:
        self._emit(ts, K.SIGNAL, tid, {"sig": sig, "action": action})

    # --------------------------------------------------------------- CPU core
    def cache_invalidate(self, ts: int, tid: int, addr: int) -> None:
        self.cache_invalidations += 1
        self._emit(ts, K.CACHE_INVALIDATE, tid, {"addr": addr})

    def block_compile(self, ts: int, tid: int, head: int, n: int) -> None:
        """Tier 2 compiled the ``n``-instruction run starting at ``head``."""
        self.block_compiles += 1
        self._emit(ts, K.BLOCK_COMPILE, tid, {"head": head, "n": n})

    def block_invalidate(self, ts: int, tid: int, head: int, reason: str) -> None:
        """A compiled superblock was discarded (smc/shootdown/stale)."""
        self.block_invalidations += 1
        self._emit(ts, K.BLOCK_INVALIDATE, tid, {"head": head, "reason": reason})

    # ------------------------------------------------------------- ring drain
    def ring_enter(
        self, ts: int, tid: int, *, submitted: int, completed: int,
        cycles: int, parked: int = 0
    ) -> None:
        """One ``ring_enter`` crossing finished draining (``parked`` SQEs
        were captured on kernel-side waiters by an async drain)."""
        self.ring_enters += 1
        data = {"submitted": submitted, "completed": completed,
                "cycles": cycles}
        if parked:
            data["parked"] = parked
        self._emit(ts, K.RING_ENTER, tid, data)

    def ring_entry(
        self, ts: int, tid: int, *, index: int, sysno: int, name: str,
        ret: int, user_data: int, cycles: int
    ) -> None:
        """One SQE completed during a ring drain (per-entry attribution)."""
        self.ring_entries += 1
        data = {"index": index, "name": name, "sysno": sysno, "ret": ret,
                "user_data": user_data, "cycles": cycles}
        if is_error(ret):
            data["errno"] = -ret
        self._emit(ts, K.RING_ENTRY, tid, data)

    def ring_park(
        self, ts: int, tid: int, *, index: int, sysno: int, name: str,
        user_data: int, deps: list
    ) -> None:
        """An async drain parked one SQE on a kernel-side waiter."""
        self.ring_parks += 1
        data = {"index": index, "name": name, "sysno": sysno,
                "user_data": user_data}
        if deps:
            data["deps"] = list(deps)
        self._emit(ts, K.RING_PARK, tid, data)

    def ring_complete(
        self, ts: int, tid: int, *, index: int, sysno: int, name: str,
        ret: int, user_data: int, waited: int
    ) -> None:
        """A parked SQE's wakeup fired and its CQE posted.

        Counts toward ``ring_entries`` too, so that total covers every
        completed SQE whether it drained synchronously or parked first.
        """
        self.ring_completes += 1
        self.ring_entries += 1
        if ret == -ETIMEDOUT:
            self.ring_timeouts += 1
        data = {"index": index, "name": name, "sysno": sysno, "ret": ret,
                "user_data": user_data, "waited": waited}
        if is_error(ret):
            data["errno"] = -ret
        self._emit(ts, K.RING_COMPLETE, tid, data)

    # ----------------------------------------------------------- degradation
    def degrade(
        self, ts: int, tid: int, mechanism: str, old: str, new: str, reason: str
    ) -> None:
        """The degradation controller moved to a less capable mode."""
        self.degradations.append((ts, tid, mechanism, old, new, reason))
        self._emit(ts, K.DEGRADE, tid,
                   {"mechanism": mechanism, "old": old, "new": new,
                    "reason": reason})

    def rewrite_blacklist(
        self, ts: int, tid: int, site: int, mechanism: str, reason: str
    ) -> None:
        """A syscall site exhausted its rewrite budget; slow path forever."""
        self.blacklisted_sites[site] = reason
        self._emit(ts, K.REWRITE_BLACKLIST, tid,
                   {"site": site, "mechanism": mechanism, "reason": reason})

    def fallback(self, ts: int, tid: int, stage: str, detail: dict) -> None:
        """A recoverable fault was absorbed (no mode change)."""
        self.fallback_counts[stage] = self.fallback_counts.get(stage, 0) + 1
        self._emit(ts, K.FALLBACK, tid, dict(detail, stage=stage))

    # ----------------------------------------------------- fleet fault layer
    # Cluster-level emit sites (``tid`` is -1: these are fleet events, not
    # attributable to a guest task).  ``ts`` is the cluster's cumulative
    # measured-window clock at the round boundary where the event happened.
    def shard_down(self, ts: int, shard: int, reason: str, *,
                   round_: int = 0) -> None:
        """The health model marked a shard ``down``."""
        self.shard_downs += 1
        self._emit(ts, K.SHARD_DOWN, -1,
                   {"shard": shard, "reason": reason, "round": round_})

    def failover(self, ts: int, shard_from: int, shard_to: int,
                 requests: int, *, round_: int = 0) -> None:
        """Failed requests were re-planned onto a live shard."""
        self.failovers += 1
        self._emit(ts, K.FAILOVER, -1,
                   {"from": shard_from, "to": shard_to,
                    "requests": requests, "round": round_})

    def retry(self, ts: int, round_: int, requests: int,
              backoff_cycles: int) -> None:
        """A backoff round re-issued failed/timed-out requests."""
        self.retries += 1
        self._emit(ts, K.RETRY, -1,
                   {"round": round_, "requests": requests,
                    "backoff_cycles": backoff_cycles})

    def breaker(self, ts: int, shard: int, old: str, new: str, *,
                round_: int = 0) -> None:
        """A per-shard circuit breaker changed state."""
        self.breaker_transitions += 1
        self._emit(ts, K.BREAKER, -1,
                   {"shard": shard, "old": old, "new": new, "round": round_})

    # ------------------------------------------------------------- summaries
    def core_utilization(self) -> dict[int, float]:
        """Per-core busy fraction (busy cycles / machine frontier)."""
        if self.machine is None:
            return {}
        return {
            row["core"]: row["utilization"]
            for row in self.machine.core_stats()
        }

    def syscall_table(self) -> list[SyscallAggregate]:
        """Aggregates sorted by total cycles, descending."""
        return sorted(self.syscalls.values(), key=lambda a: -a.cycles)

    def health(self) -> dict:
        """One-look degradation summary for a run.

        ``mode`` is the final mode of the last tool that reported a
        transition (``"full_hybrid"`` if none ever degraded); the rest are
        cheap aggregates maintained at emit time, so this never walks the
        event list.
        """
        mode = self.degradations[-1][4] if self.degradations else "full_hybrid"
        return {
            "mode": mode,
            "degradations": [
                {"ts": ts, "tid": tid, "mechanism": mech,
                 "old": old, "new": new, "reason": reason}
                for ts, tid, mech, old, new, reason in self.degradations
            ],
            "blacklisted_sites": dict(self.blacklisted_sites),
            "fallbacks": dict(self.fallback_counts),
            "slowpath_total": self.slowpath_total,
            "rewritten_sites": len(self.rewritten_sites),
        }

    def coverage(self) -> dict[int, dict]:
        """Per-site rewrite coverage: traps taken and whether it went fast."""
        sites = set(self.site_traps) | set(self.rewritten_sites)
        return {
            site: {
                "traps": self.site_traps.get(site, 0),
                "rewritten": site in self.rewritten_sites,
                "origin": self.rewritten_sites.get(site),
            }
            for site in sorted(sites)
        }
