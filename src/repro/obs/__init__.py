"""Machine-wide observability: structured tracing, metrics, exporters.

Attach a :class:`Tracer` to a machine and every layer reports in::

    from repro.obs import Tracer

    tracer = Tracer()
    machine = Machine(tracer=tracer)
    ...
    print(render_strace(tracer))

With no tracer attached (the default) every emit site is a single
``is None`` attribute check on a non-per-instruction path, so tier-1
performance is unaffected — see ``tests/test_obs_overhead.py``.

``python -m repro.obs run --workload webserver --tool lazypoline
--format chrome`` runs any packaged workload under any registered tool
with tracing on; see :mod:`repro.obs.cli`.
"""

from repro.obs import events
from repro.obs.events import ALL_KINDS, Event
from repro.obs.export import export_chrome, export_jsonl, render_strace
from repro.obs.metrics import (
    CycleHistogram,
    SyscallAggregate,
    convergence_curve,
    path_ratio,
)
from repro.obs.tracer import Tracer

__all__ = [
    "ALL_KINDS",
    "CycleHistogram",
    "Event",
    "SyscallAggregate",
    "Tracer",
    "convergence_curve",
    "events",
    "export_chrome",
    "export_jsonl",
    "path_ratio",
    "render_strace",
]
