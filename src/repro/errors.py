"""Exception hierarchy for the repro simulator.

Every error raised by the substrate derives from :class:`ReproError` so that
callers can distinguish simulator faults from genuine Python bugs.  Faults
that have an architectural meaning (page faults, invalid opcodes) carry the
information a kernel needs to turn them into signals.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all simulator errors."""


class MemoryError_(ReproError):
    """Base class for memory subsystem errors."""


class PageFault(MemoryError_):
    """Raised on an access to unmapped memory or a permission violation.

    Attributes:
        address: the faulting virtual address.
        access: one of ``"read"``, ``"write"``, ``"exec"``.
    """

    def __init__(self, address: int, access: str, message: str | None = None):
        self.address = address
        self.access = access
        super().__init__(
            message or f"page fault: {access} at {address:#x}"
        )


class MapError(MemoryError_):
    """Raised when an mmap/mprotect request cannot be satisfied."""


class InvalidOpcode(ReproError):
    """Raised when the CPU decodes an undefined instruction (→ SIGILL)."""

    def __init__(self, address: int, byte: int | None = None):
        self.address = address
        self.byte = byte
        detail = f" (first byte {byte:#04x})" if byte is not None else ""
        super().__init__(f"invalid opcode at {address:#x}{detail}")


class BreakpointTrap(ReproError):
    """Raised when the CPU retires an ``int3`` (→ SIGTRAP)."""

    def __init__(self, address: int):
        self.address = address
        super().__init__(f"breakpoint at {address:#x}")


class AssemblerError(ReproError):
    """Raised for malformed assembly input (bad mnemonic, range, label)."""


class KernelError(ReproError):
    """Base class for kernel-level errors (bugs in kernel usage, not guest)."""


class NoSuchTask(KernelError):
    """Raised when an operation references a non-existent task id."""


class LoaderError(ReproError):
    """Raised when a program image cannot be loaded."""


class AttachError(ReproError):
    """Raised when an interposition tool cannot attach in the current
    environment (e.g. ``mmap_min_addr`` forbids the VA-0 trampoline, or
    setup-time allocations fail) and no degradation mode is permitted."""


class BpfError(ReproError):
    """Raised for malformed BPF programs (bad jump targets, etc.)."""


class GuestCrash(ReproError):
    """Raised by run helpers when the guest dies on an unhandled fault."""

    def __init__(self, message: str, signal: int | None = None):
        self.signal = signal
        super().__init__(message)
