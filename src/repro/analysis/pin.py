"""Register-preservation-expectation analysis (§IV-B of the paper).

The paper's Pin tool "tracks at run time whether a syscall is executed
between a consecutive write to and read from the same register", indicating
the application expects the register to survive the syscall.  This is the
same analysis as a CPU hook: per register we track

* WRITTEN — holds a live value,
* AT RISK — live value with one or more syscalls since the write;
  a read in this state is a preservation expectation (a *finding*).

Registers the syscall ABI legitimately clobbers (``rax``, ``rcx``, ``r11``)
are treated as written by the syscall itself, so reading them afterwards is
never a finding.  Like the paper's tool, this is a dynamic analysis: it
underestimates (only executed paths count).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.isa import Instruction, Mnemonic
from repro.arch.registers import RAX
from repro.cpu.hooks import reg_effects
from repro.kernel.syscalls.table import syscall_name

#: Register classes by id prefix.
_CLASS_NAMES = {"g": "gpr", "x": "sse", "y": "avx", "st": "x87"}


def _reg_name(regid: tuple) -> str:
    kind = regid[0]
    if kind == "g":
        from repro.arch.registers import GPR_NAMES

        return GPR_NAMES[regid[1]]
    if kind == "x":
        return f"xmm{regid[1]}"
    if kind == "y":
        return f"ymm{regid[1]}.high"
    return "x87"


@dataclass(frozen=True)
class PinFinding:
    """One observed preservation expectation."""

    regid: tuple
    sysno: int
    syscall_site: int  #: address of the intervening syscall instruction
    read_site: int  #: address of the read that completed the pattern
    tid: int

    @property
    def register(self) -> str:
        return _reg_name(self.regid)

    @property
    def component(self) -> str:
        return _CLASS_NAMES[self.regid[0]]

    @property
    def syscall(self) -> str:
        return syscall_name(self.sysno)

    @property
    def is_extended_state(self) -> bool:
        return self.regid[0] in ("x", "y", "st")

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.register} live across {self.syscall} "
            f"(syscall at {self.syscall_site:#x}, read at {self.read_site:#x})"
        )


class RegisterPreservationTool:
    """CPU hook implementing the Pin analysis.  Attach with
    ``machine.kernel.cpu.add_hook(tool)``."""

    def __init__(self, *, track_gprs: bool = True):
        self.track_gprs = track_gprs
        self.findings: list[PinFinding] = []
        # per-task register state: tid -> {regid: ("w",) | ("r", sysno, site)}
        self._state: dict[int, dict] = {}
        self._dedupe: set[tuple] = set()

    # ------------------------------------------------------------------ hook
    def on_insn(self, task, insn: Instruction, addr: int) -> None:
        state = self._state.setdefault(task.tid, {})

        if insn.mnemonic in (Mnemonic.SYSCALL, Mnemonic.SYSENTER):
            sysno = task.regs.read(RAX)
            for regid, entry in list(state.items()):
                if entry[0] == "w":
                    state[regid] = ("r", sysno, addr)
            # The kernel clobbers rax/rcx/r11: they are freshly "written".
            for clobber in (("g", 0), ("g", 1), ("g", 11)):
                state[clobber] = ("w",)
            return

        reads, writes = reg_effects(insn)
        for regid in reads:
            if not self.track_gprs and regid[0] == "g":
                continue
            entry = state.get(regid)
            if entry is not None and entry[0] == "r":
                self._record(regid, entry[1], entry[2], addr, task.tid)
                state[regid] = ("w",)  # still live; re-arm for later syscalls
        for regid in writes:
            state[regid] = ("w",)

    def _record(self, regid, sysno, syscall_site, read_site, tid) -> None:
        key = (regid, sysno, syscall_site, read_site)
        if key in self._dedupe:
            return
        self._dedupe.add(key)
        self.findings.append(
            PinFinding(regid, sysno, syscall_site, read_site, tid)
        )

    # ----------------------------------------------------------------- report
    @property
    def xstate_findings(self) -> list[PinFinding]:
        return [f for f in self.findings if f.is_extended_state]

    @property
    def gpr_findings(self) -> list[PinFinding]:
        return [f for f in self.findings if not f.is_extended_state]

    def expects_xstate_preservation(self) -> bool:
        """The Table III verdict for one program run."""
        return bool(self.xstate_findings)


def analyze_image(machine_factory, image, argv=(), *, max_instructions=5_000_000):
    """Run ``image`` under a fresh machine with the Pin tool attached.

    Returns ``(tool, process)`` after the program exits.
    """
    machine = machine_factory() if callable(machine_factory) else machine_factory
    tool = RegisterPreservationTool()
    machine.kernel.cpu.add_hook(tool)
    process = machine.load(image, argv)
    machine.run(until=lambda: not process.alive, max_instructions=max_instructions)
    machine.kernel.cpu.remove_hook(tool)
    return tool, process
