"""Dynamic analysis tools (the paper's Intel-Pin equivalent)."""

from repro.analysis.pin import (
    PinFinding,
    RegisterPreservationTool,
    analyze_image,
)

__all__ = ["PinFinding", "RegisterPreservationTool", "analyze_image"]
