"""A tiny self-contained PRNG (SplitMix64).

The harness promises byte-identical behaviour for a given seed across
Python versions and platforms, so it owns its generator instead of relying
on :mod:`random` internals.  Integer-only arithmetic; no float paths.
"""

from __future__ import annotations

_MASK = (1 << 64) - 1


class SplitMix64:
    """Deterministic 64-bit generator; good enough for schedule jitter."""

    def __init__(self, seed: int):
        self.state = seed & _MASK

    def next_u64(self) -> int:
        self.state = (self.state + 0x9E3779B97F4A7C15) & _MASK
        z = self.state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
        return z ^ (z >> 31)

    def below(self, n: int) -> int:
        """Uniform-ish integer in ``[0, n)`` (modulo bias is irrelevant here)."""
        if n <= 1:
            return 0
        return self.next_u64() % n

    def chance(self, numerator: int, denominator: int) -> bool:
        """True with probability ``numerator/denominator``."""
        if numerator <= 0:
            return False
        return self.next_u64() % denominator < numerator

    def shuffle(self, items: list) -> list:
        """Fisher–Yates in place; returns ``items`` for chaining."""
        for i in range(len(items) - 1, 0, -1):
            j = self.below(i + 1)
            items[i], items[j] = items[j], items[i]
        return items
