"""Seeded schedule exploration on top of the cooperative scheduler.

:class:`ExplorerPolicy` plugs into ``Scheduler.policy`` (see
:class:`repro.kernel.scheduler.SchedulePolicy`) and derives every decision
from one integer seed:

* each time slice gets a perturbed quantum in ``[min_quantum, quantum]``,
* the round-robin order is reshuffled every round,
* inside *marked windows* (e.g. the lazypoline fast-path stub) every
  instruction boundary forces a preemption, so other tasks interleave
  between every two instructions of the critical section,
* :class:`SignalTrigger` entries post a signal the moment a task's ``rip``
  reaches a chosen boundary — the signal is deliverable at that exact
  boundary, which is how the harness probes "a signal arrives *here*".

The policy records a :class:`ScheduleTrace` whose digest is byte-stable
for a given seed; CI asserts two runs of the same seed agree.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.arch.decode import decode_one
from repro.kernel.scheduler import SchedulePolicy
from repro.faults.rng import SplitMix64


@dataclass(frozen=True)
class Window:
    """A half-open guest address range ``[start, end)`` of interest."""

    name: str
    start: int
    end: int

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


def instruction_boundaries(code: bytes, base: int, start: int, end: int) -> list[int]:
    """Addresses of every instruction start in ``[start, end)``.

    ``code`` is the raw bytes mapped at ``base``; decoding walks the same
    linear path the CPU fetches, so the returned boundaries are exactly
    the rips at which a signal can architecturally arrive in the window.
    """
    boundaries = []
    addr = start
    while addr < end:
        insn = decode_one(code, addr - base, addr)
        boundaries.append(addr)
        addr += insn.length
    return boundaries


def lazypoline_windows(tool) -> dict[str, Window]:
    """The critical windows of an installed lazypoline instance.

    * ``stub`` — the fast-path prologue/epilogue around the generic hcall,
    * ``slowpath`` — the SUD SIGSYS handler body and its internal restorer
      (the rewrite of ``syscall`` → ``call rax`` happens in this window),
    * ``wrapper`` — the Fig. 3 signal-wrapping shim and the app restorer,
    * ``trampoline`` — the sigreturn trampoline that restores the selector.
    """
    blobs = tool.blobs
    return {
        "stub": Window("stub", blobs.fastpath_entry, blobs.sigsys_handler),
        "slowpath": Window("slowpath", blobs.sigsys_handler, blobs.wrapper_handler),
        "wrapper": Window("wrapper", blobs.wrapper_handler, blobs.sigreturn_trampoline),
        "trampoline": Window(
            "trampoline", blobs.sigreturn_trampoline, blobs.noop_ret
        ),
    }


def lazypoline_boundaries(tool, names=("stub", "slowpath", "trampoline")) -> list[int]:
    """All instruction boundaries of the selected lazypoline windows."""
    windows = lazypoline_windows(tool)
    out: list[int] = []
    for name in names:
        w = windows[name]
        out.extend(instruction_boundaries(tool.blobs.code, 0, w.start, w.end))
    return out


@dataclass
class SignalTrigger:
    """Post ``sig`` to the first task whose ``rip`` reaches ``addr``.

    ``arm_addr`` delays eligibility: the trigger stays dormant until some
    task's rip first reaches that address.  Needed when the probed window
    (e.g. the interposer stub) already executes before the guest has set up
    the handler that makes the signal survivable.
    """

    addr: int
    sig: int
    tid: int | None = None  #: restrict to one task, or None for any
    arm_addr: int | None = None
    pending: bool = True
    fired_at: tuple[int, int] | None = None  #: (tid, addr) once fired

    def __post_init__(self):
        self.armed = self.arm_addr is None

    @property
    def fired(self) -> bool:
        return self.fired_at is not None


@dataclass
class ScheduleTrace:
    """What the explorer actually did, compactly, for digest + replay."""

    seed: int
    slices: list[tuple[int, int]] = field(default_factory=list)  # (tid, n)
    events: list[tuple[str, int, int]] = field(default_factory=list)

    def record_event(self, kind: str, tid: int, value: int) -> None:
        self.events.append((kind, tid, value))

    def digest(self) -> str:
        h = hashlib.sha256()
        h.update(str(self.seed).encode())
        for tid, n in self.slices:
            h.update(b"s%d:%d;" % (tid, n))
        for kind, tid, value in self.events:
            h.update(b"e%s:%d:%d;" % (kind.encode(), tid, value))
        return h.hexdigest()


class ExplorerPolicy(SchedulePolicy):
    """Seed-driven schedule perturbation + windowed single-stepping."""

    def __init__(
        self,
        seed: int,
        *,
        quantum: int = 64,
        min_quantum: int = 1,
        windows: tuple[Window, ...] = (),
        triggers: tuple[SignalTrigger, ...] = (),
        perturb_order: bool = True,
        perturb_quantum: bool = True,
    ):
        self.seed = seed
        self.rng = SplitMix64(seed)
        self.quantum = quantum
        self.min_quantum = min_quantum
        self.windows = tuple(windows)
        self.triggers = list(triggers)
        self.perturb_order = perturb_order
        self.perturb_quantum = perturb_quantum
        self.trace = ScheduleTrace(seed)
        #: window boundaries at which a forced preemption was observed
        self.preempted_at: set[int] = set()

    # ------------------------------------------------------------ hook points
    def quantum_for(self, task, default: int) -> int:
        if not self.perturb_quantum:
            return self.quantum or default
        span = max(self.quantum - self.min_quantum + 1, 1)
        return self.min_quantum + self.rng.below(span)

    def schedule_order(self, tasks: list) -> list:
        if not self.perturb_order or len(tasks) < 2:
            return tasks
        return self.rng.shuffle(list(tasks))

    def on_boundary(self, kernel, task) -> bool:
        rip = task.regs.rip
        for trig in self.triggers:
            if not trig.armed:
                if rip == trig.arm_addr:
                    trig.armed = True
                continue
            if (
                trig.pending
                and rip == trig.addr
                and (trig.tid is None or trig.tid == task.tid)
            ):
                trig.pending = False
                trig.fired_at = (task.tid, rip)
                kernel.post_signal(task, trig.sig, {})
                self.trace.record_event("sig%d" % trig.sig, task.tid, rip)
        for window in self.windows:
            if window.contains(rip):
                self.preempted_at.add(rip)
                return True
        return False

    def record_slice(self, task, executed: int) -> None:
        if executed:
            self.trace.slices.append((task.tid, executed))

    # ------------------------------------------------------------ diagnostics
    @property
    def all_triggers_fired(self) -> bool:
        return all(t.fired for t in self.triggers)
