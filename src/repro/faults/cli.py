"""``python -m repro.faults`` — seed sweeps, replay, and minimisation.

Usage patterns (also documented in README.md):

* ``python -m repro.faults --scenario rewrite_window --seeds 0:64``
  sweep a seed range; exit status 1 if any seed fails.
* ``python -m repro.faults --scenario rewrite_window --seed 17``
  replay exactly one seed — the one-command reproduction for a CI failure.
* ``python -m repro.faults --scenario differential --seed 17 --minimize``
  shrink a failing seed: drop perturbation ingredients one at a time and
  scan downward for the smallest failing seed, then print the minimal
  reproduction command.
* ``python -m repro.faults --minutes 2``
  time-budgeted fuzz over all scenarios with incrementing seeds.

Every run of a given (scenario, seed, variant) is deterministic, so any
failure printed here reproduces forever.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.faults.scenarios import SCENARIOS, ScenarioResult


def _parse_seeds(spec: str) -> list[int]:
    try:
        if ":" in spec:
            lo, hi = spec.split(":", 1)
            return list(range(int(lo), int(hi)))
        return [int(s) for s in spec.split(",")]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid seed spec {spec!r}: expected 'lo:hi' or 'a,b,c'"
        ) from None


def run_one(scenario: str, seed: int, **variant) -> ScenarioResult:
    return SCENARIOS[scenario](seed, **variant)


def minimize(scenario: str, seed: int, *, scan_below: int = 64) -> dict:
    """Shrink a failing (scenario, seed) to its simplest reproduction.

    Two axes: which perturbation ingredients are required (schedule order
    shuffling / quantum jitter), and the smallest seed value that still
    fails under the minimal ingredient set.  Returns a dict with the
    minimal variant, the minimal seed, and the reproduction command.
    """
    fn = SCENARIOS[scenario]
    baseline = fn(seed)
    if baseline.ok:
        return {"scenario": scenario, "seed": seed, "already_passing": True}

    # Axis 1: drop ingredients while the failure persists.
    variant = {"perturb_order": True, "perturb_quantum": True}
    for ingredient in ("perturb_order", "perturb_quantum"):
        trial = dict(variant)
        trial[ingredient] = False
        if not fn(seed, **trial).ok:
            variant = trial

    # Axis 2: smallest seed (bounded scan) still failing under the
    # minimal variant.
    minimal_seed = seed
    for candidate in range(0, min(seed, scan_below)):
        if not fn(candidate, **variant).ok:
            minimal_seed = candidate
            break

    flags = "".join(
        f" --no-{name.replace('perturb_', '')}"
        for name, on in sorted(variant.items())
        if not on
    )
    command = (
        f"python -m repro.faults --scenario {scenario} "
        f"--seed {minimal_seed}{flags}"
    )
    final = fn(minimal_seed, **variant)
    return {
        "scenario": scenario,
        "seed": seed,
        "minimal_seed": minimal_seed,
        "variant": variant,
        "detail": final.detail or baseline.detail,
        "command": command,
    }


def sweep(
    scenarios: list[str],
    seeds: list[int],
    *,
    verbose: bool = False,
    **variant,
) -> list[ScenarioResult]:
    failures = []
    for name in scenarios:
        for seed in seeds:
            result = SCENARIOS[name](seed, **variant)
            if not result.ok:
                failures.append(result)
                print(f"FAIL {name} seed={seed}: {result.detail}")
                print(
                    f"  reproduce: python -m repro.faults "
                    f"--scenario {name} --seed {seed}"
                )
            elif verbose:
                print(f"ok   {name} seed={seed}")
    return failures


def fuzz_minutes(minutes: float, scenarios: list[str], start_seed: int = 0):
    """Run incrementing seeds across scenarios until the clock runs out."""
    deadline = time.monotonic() + minutes * 60
    seed = start_seed
    failures = []
    runs = 0
    while time.monotonic() < deadline:
        for name in scenarios:
            result = SCENARIOS[name](seed)
            runs += 1
            if not result.ok:
                failures.append(result)
                print(f"FAIL {name} seed={seed}: {result.detail}")
                print(
                    f"  reproduce: python -m repro.faults "
                    f"--scenario {name} --seed {seed}"
                )
            if time.monotonic() >= deadline:
                break
        seed += 1
    print(f"fuzz: {runs} runs, last seed {seed - 1}, "
          f"{len(failures)} failure(s)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="deterministic fault-injection & schedule-exploration "
                    "harness (seed sweeps, replay, minimisation)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario to run (repeatable; default: all)",
    )
    parser.add_argument("--seed", type=int, help="run exactly one seed")
    parser.add_argument(
        "--seeds", default="0:16", type=_parse_seeds,
        help="seed range 'lo:hi' or comma list (default 0:16)",
    )
    parser.add_argument(
        "--minutes", type=float,
        help="time-budgeted fuzz: incrementing seeds until the clock runs out",
    )
    parser.add_argument(
        "--minimize", action="store_true",
        help="with --seed: shrink the failing seed and print the minimal "
             "reproduction command",
    )
    parser.add_argument(
        "--no-order", action="store_true",
        help="disable schedule-order perturbation",
    )
    parser.add_argument(
        "--no-quantum", action="store_true",
        help="disable quantum perturbation",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    scenarios = args.scenario or sorted(SCENARIOS)
    variant = {
        "perturb_order": not args.no_order,
        "perturb_quantum": not args.no_quantum,
    }

    if args.minutes is not None:
        failures = fuzz_minutes(args.minutes, scenarios)
        return 1 if failures else 0

    if args.seed is not None:
        if args.minimize:
            reports = [minimize(name, args.seed) for name in scenarios]
            for report in reports:
                print(json.dumps(report, indent=2))
            return 1 if any("command" in r for r in reports) else 0
        rc = 0
        for name in scenarios:
            result = SCENARIOS[name](args.seed, **variant)
            if args.json:
                print(json.dumps({
                    "scenario": name,
                    "seed": args.seed,
                    "ok": result.ok,
                    "detail": result.detail,
                    "digests": result.digests,
                }))
            else:
                status = "ok" if result.ok else f"FAIL: {result.detail}"
                print(f"{name} seed={args.seed}: {status}")
            rc |= 0 if result.ok else 1
        return rc

    failures = sweep(scenarios, args.seeds, verbose=args.verbose, **variant)
    total = len(scenarios) * len(args.seeds)
    print(f"{total - len(failures)}/{total} scenario runs passed")
    return 1 if failures else 0
