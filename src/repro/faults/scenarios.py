"""Named fault/schedule scenarios: one seed in, one verdict out.

Each scenario is a pure function ``fn(seed, **variant) -> ScenarioResult``;
the same seed always produces the same verdict and the same digests (that
determinism is itself tested).  The CLI (``python -m repro.faults``) sweeps
seeds over these scenarios and minimises failures; the pytest suite replays
the recorded seed corpus through the same functions, so a CI failure and a
command-line reproduction are literally the same code path.

Variants (``perturb_order`` / ``perturb_quantum``) exist so the minimiser
can switch perturbation ingredients off one at a time and report the
smallest configuration that still fails.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.arch.encode import Assembler
from repro.faults.corpus import CORPUS
from repro.faults.explorer import (
    ExplorerPolicy,
    SignalTrigger,
    instruction_boundaries,
    lazypoline_windows,
)
from repro.faults.injector import FaultInjector, FaultRule
from repro.interpose.api import TraceInterposer
from repro.kernel import errno
from repro.kernel.signals import SIGUSR1, SIGUSR2
from repro.kernel.syscalls.table import NR
from repro.loader.image import image_from_assembler
from repro.mem import layout

from repro.faults.oracle import FULL_EXPRESSIVENESS, differences, run_guest

#: Windows whose every instruction boundary the rewrite_window scenario
#: probes.  ``wrapper`` is excluded here only because signals *inside the
#: wrapper* are exercised separately with a dedicated two-signal guest.
PROBE_WINDOWS = ("stub", "slowpath", "trampoline")


@dataclass
class ScenarioResult:
    scenario: str
    seed: int
    ok: bool
    detail: str = ""
    #: byte-stable digests of everything observable; equality across two
    #: runs of the same seed is the determinism acceptance criterion
    digests: dict = field(default_factory=dict)
    #: (tid, addr) or addr coverage information, scenario-specific
    covered: tuple = ()

    def digest(self) -> str:
        h = hashlib.sha256()
        for key in sorted(self.digests):
            h.update(key.encode())
            h.update(str(self.digests[key]).encode())
        h.update(repr((self.ok, self.detail, self.covered)).encode())
        return h.hexdigest()


# --------------------------------------------------------------------- guests
def build_two_signal_guest():
    """Register USR1+USR2 handlers, raise USR1 once, count both, exit.

    Exit code packs both counters (``usr2 << 4 | usr1``); the expected
    clean outcome is 0x11 — each handler ran exactly once — no matter
    where the explorer injects the second signal.
    """
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r14", "rax")
    for sig, act in ((SIGUSR1, "act1"), (SIGUSR2, "act2")):
        a.mov_imm("rdi", sig)
        a.mov_imm("rsi", act)
        a.mov_imm("rdx", 0)
        a.mov_imm("r10", 8)
        a.mov_imm("rax", NR["rt_sigaction"])
        a.syscall()
    a.label("armed")  # both handlers are live past this point
    a.mov_imm("rax", NR["getpid"])
    a.syscall()
    a.mov("r13", "rax")
    a.mov_imm("rax", NR["gettid"])
    a.syscall()
    a.mov("rsi", "rax")
    a.mov("rdi", "r13")
    a.mov_imm("rdx", SIGUSR1)
    a.mov_imm("rax", NR["tgkill"])
    a.syscall()
    # a few syscalls after the raise, so triggers aimed at the fast-path
    # stub still find boundaries to hit once the handler has unwound
    a.mov_imm("rbx", 4)
    a.label("tail")
    a.mov_imm("rax", NR["getpid"])
    a.syscall()
    a.dec("rbx")
    a.cmpi("rbx", 0)
    a.jnz("tail")
    a.load("rdi", "r14", 0)
    a.load("rcx", "r14", 8)
    a.shl("rcx", 4)
    a.add("rdi", "rcx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("h1")
    a.load("rdx", "r14", 0)
    a.inc("rdx")
    a.store("r14", 0, "rdx")
    a.ret()
    a.label("h2")
    a.load("rdx", "r14", 8)
    a.inc("rdx")
    a.store("r14", 8, "rdx")
    a.ret()
    a.align(8, fill=0)
    a.label("act1")
    a.dq("h1")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("act2")
    a.dq("h2")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    return image_from_assembler("two_signal_guest", a, entry="_start")


def build_nested_signal_guest(nest: int = 5):
    """An SA_NODEFER handler re-raises its own signal ``nest`` times.

    Each re-raise is delivered *inside* the still-running handler (the
    signal is not auto-masked), so the wrapped-signal nesting depth grows
    by one per level — the guest that exercises lazypoline's per-task
    sigreturn-selector stack to any chosen depth.  Exit code is the total
    handler activation count: ``nest + 1`` when nothing kills the guest.
    """
    from repro.kernel.signals import SA_NODEFER

    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r14", "rax")
    a.mov_imm("rdx", nest)  # [r14+0] = remaining re-raises
    a.store("r14", 0, "rdx")
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act1")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    a.mov_imm("rax", NR["getpid"])
    a.syscall()
    a.store("r14", 16, "rax")
    a.mov_imm("rax", NR["gettid"])
    a.syscall()
    a.store("r14", 24, "rax")
    a.load("rdi", "r14", 16)
    a.load("rsi", "r14", 24)
    a.mov_imm("rdx", SIGUSR1)
    a.mov_imm("rax", NR["tgkill"])
    a.syscall()
    a.load("rdi", "r14", 8)  # activation count -> exit code
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("h1")
    a.load("rdx", "r14", 8)
    a.inc("rdx")
    a.store("r14", 8, "rdx")
    a.load("rdx", "r14", 0)
    a.cmpi("rdx", 0)
    a.jz("h1_done")
    a.dec("rdx")
    a.store("r14", 0, "rdx")
    a.load("rdi", "r14", 16)
    a.load("rsi", "r14", 24)
    a.mov_imm("rdx", SIGUSR1)
    a.mov_imm("rax", NR["tgkill"])
    a.syscall()
    # the re-raised signal is delivered here, nested inside this frame
    a.label("h1_done")
    a.ret()
    a.align(8, fill=0)
    a.label("act1")
    a.dq("h1")
    a.dq(SA_NODEFER)
    a.dq(0)
    a.dq(0)
    return image_from_assembler("nested_signal_guest", a, entry="_start")


def build_eintr_retry_guest():
    """write() in a retry-on-EINTR loop: the POSIX-correct consumer.

    Injected transient errnos must be invisible in the final state — the
    guest retries until the write succeeds, then exits 0.
    """
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    a.mov_imm("rbx", 4)  # four successful writes
    a.label("next")
    a.label("retry")
    a.mov_imm("rdi", 1)
    a.mov_imm("rsi", "msg")
    a.mov_imm("rdx", 2)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    a.addi("rax", errno.EINTR)  # rax == -EINTR  ->  zero
    a.jz("retry")
    a.subi("rax", errno.EINTR)
    a.addi("rax", errno.EAGAIN)
    a.jz("retry")
    a.dec("rbx")
    a.cmpi("rbx", 0)
    a.jnz("next")
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("msg")
    a.db(b"w\n")
    return image_from_assembler("eintr_retry", a, entry="_start")


def build_uring_signal_guest():
    """A syscall-aggregation ring whose drain a signal must interrupt.

    Ring of [getpid, read(forever-empty pipe), getpid] + a SIGUSR1
    handler.  The read can only complete with -EINTR (nothing ever writes
    the pipe), so the drain is guaranteed to be split: partial CQ, handler
    runs, the guest's re-enter loop finishes the remainder — never a lost
    wakeup.  Exit code packs the invariants: bit0 = handler ran at least
    once, bit1 = the read entry completed with -EINTR, bit2/bit3 = the
    surrounding getpid entries completed with the pid.  Expected: 15.
    """
    from repro.libc.uring import GuestRing

    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    # scratch page: handler counter @0, pipe fds @8
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r14", "rax")
    # rt_sigaction(SIGUSR1, act, 0, 8)
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    # pipe(r14 + 8); the read end stays empty forever
    a.lea("rdi", "r14", 8)
    a.mov_imm("rax", NR["pipe"])
    a.syscall()
    a.load("r13", "r14", 8)
    a.shl("r13", 32)  # fds are two packed u32s; keep the read end
    a.shr("r13", 32)
    ring = GuestRing(a, entries=4, base="r9")
    ring.emit_mmap()
    ring.push("getpid")
    a.lea("rdx", "r14", 256)
    ring.push_read("r13", "rdx", 8)
    ring.push("getpid")
    ring.submit()  # re-enters until all 3 complete (partial CQ + resume)
    # pack the exit code
    a.mov_imm("rdi", 0)
    a.load("rdx", "r14", 0)
    a.cmpi("rdx", 1)
    a.jl("no_handler")
    a.ori("rdi", 1)
    a.label("no_handler")
    ring.load_result("rdx", 1)
    a.mov_imm("rcx", (1 << 64) - errno.EINTR)
    a.cmp("rdx", "rcx")
    a.jnz("no_eintr")
    a.ori("rdi", 2)
    a.label("no_eintr")
    ring.load_result("rdx", 0)
    a.cmpi("rdx", 1)
    a.jl("no_pid0")
    a.ori("rdi", 4)
    a.label("no_pid0")
    ring.load_result("rdx", 2)
    a.cmpi("rdx", 1)
    a.jl("no_pid2")
    a.ori("rdi", 8)
    a.label("no_pid2")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("handler")
    a.load("rax", "r14", 0)
    a.inc("rax")
    a.store("r14", 0, "rax")
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    return image_from_assembler("uring_signal", a, entry="_start")


def build_uring_async_guest():
    """An *asynchronous* ring drain whose parked entry a signal must race.

    Same shape as :func:`build_uring_signal_guest` — ring of [getpid,
    read(empty pipe), getpid] plus a SIGUSR1 handler — but submitted with
    ``submit_async()``: the read parks on a kernel-side waiter while both
    getpids complete, and the guest then blocks in ``wait(3)`` until the
    host feeder (:func:`arm_pipe_feeder`) writes the pipe.  Signals
    interrupt the wait (the guest's re-enter loop resumes it); the parked
    read must survive any number of interruptions and complete with the
    fed byte count — never ``-EINTR``, never a lost wakeup.  Exit code
    packs the invariants: bit0 = handler ran at least once, bit1 = the
    read entry completed with a *positive* byte count, bit2/bit3 = the
    getpid entries completed with the pid.  Expected: 15.
    """
    from repro.libc.uring import GuestRing

    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    # scratch page: handler counter @0, pipe fds @8
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r14", "rax")
    # rt_sigaction(SIGUSR1, act, 0, 8)
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    # pipe(r14 + 8); only the host-side feeder ever writes it
    a.lea("rdi", "r14", 8)
    a.mov_imm("rax", NR["pipe"])
    a.syscall()
    a.load("r13", "r14", 8)
    a.shl("r13", 32)  # fds are two packed u32s; keep the read end
    a.shr("r13", 32)
    ring = GuestRing(a, entries=4, base="r9")
    ring.emit_mmap()
    ring.push("getpid")
    a.lea("rdx", "r14", 256)
    ring.push_read("r13", "rdx", 8)
    ring.push("getpid")
    ring.submit_async()  # consumes all 3; the read parks kernel-side
    ring.wait(3)         # interruptible; re-enters until all CQEs posted
    # pack the exit code
    a.mov_imm("rdi", 0)
    a.load("rdx", "r14", 0)
    a.cmpi("rdx", 1)
    a.jl("no_handler")
    a.ori("rdi", 1)
    a.label("no_handler")
    ring.load_result("rdx", 1)
    a.cmpi("rdx", 1)
    a.jl("no_bytes")
    a.ori("rdi", 2)
    a.label("no_bytes")
    ring.load_result("rdx", 0)
    a.cmpi("rdx", 1)
    a.jl("no_pid0")
    a.ori("rdi", 4)
    a.label("no_pid0")
    ring.load_result("rdx", 2)
    a.cmpi("rdx", 1)
    a.jl("no_pid2")
    a.ori("rdi", 8)
    a.label("no_pid2")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("handler")
    a.load("rax", "r14", 0)
    a.inc("rax")
    a.store("r14", 0, "rax")
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    return image_from_assembler("uring_async", a, entry="_start")


def arm_pipe_feeder(machine, task, delay=100_000, interval=50_000,
                    payload=b"!"):
    """Write ``payload`` into the task's pipe at ``delay`` cycles.

    The byte lands directly in the shared :class:`~repro.kernel.fs.Pipe`
    buffer — no syscall, no scheduling side effects — so the *only* way
    the guest can observe it is through a wakeup of its parked read.
    Re-armed every ``interval`` until the task exits, so a guest that is
    still installing handlers when the first feed fires is fed again.
    """
    from repro.kernel.fs import PipeWriteEnd

    kernel = machine.kernel

    def feed():
        if not task.alive:
            return
        for desc in task.fdtable.fds.values():
            if isinstance(desc, PipeWriteEnd) and desc.pipe.read_open:
                desc.pipe.buffer += payload
                break
        kernel.post_event_in(interval, feed)

    kernel.post_event_in(delay, feed)


def arm_repeating_signal(machine, task, delay=20_000, interval=50_000):
    """SIGUSR1 at ``delay`` cycles, re-armed until the task exits.

    Firing is held until the guest has installed a SIGUSR1 handler —
    interposition tools shift guest progress later in simulated time, and
    a signal landing before ``rt_sigaction`` would take the default
    (terminate) action, which is correct behaviour but not the race this
    helper exists to provoke.
    """
    from repro.kernel.task import SIG_DFL, SIG_IGN

    kernel = machine.kernel

    def fire():
        if not task.alive:
            return
        if task.sighand.get(SIGUSR1).handler in (SIG_DFL, SIG_IGN):
            kernel.post_event_in(interval, fire)
            return
        kernel.post_signal(task, SIGUSR1)
        kernel.post_event_in(interval, fire)

    kernel.post_event_in(delay, fire)


# ------------------------------------------------------------------ scenarios
def rewrite_window(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """Deliver a signal at one lazypoline-critical instruction boundary.

    The boundary is ``seed % len(boundaries)`` over the stub, the SIGSYS
    slow path and the sigreturn trampoline, so any seed sweep of at least
    ``len(boundaries)`` consecutive seeds covers every boundary.  The
    guest must still exit 0x11 (both handlers exactly once) and the
    per-task selector/sigreturn-stack state must be balanced afterwards.
    """
    from repro.interpose.lazypoline import Lazypoline
    from repro.interpose.lazypoline import gsrel
    from repro.kernel.machine import Machine

    machine = Machine()
    image = build_two_signal_guest()
    process = machine.load(image)
    tool = Lazypoline._install(machine, process, TraceInterposer())

    windows = lazypoline_windows(tool)
    boundaries: list[int] = []
    for name in PROBE_WINDOWS:
        w = windows[name]
        boundaries.extend(
            instruction_boundaries(tool.blobs.code, 0, w.start, w.end)
        )
    target = boundaries[seed % len(boundaries)]
    policy = ExplorerPolicy(
        seed,
        triggers=(
            SignalTrigger(target, SIGUSR2, arm_addr=image.symbols["armed"]),
        ),
        perturb_order=perturb_order,
        perturb_quantum=perturb_quantum,
    )
    machine.scheduler.policy = policy
    machine.run(until=lambda: not process.alive, max_instructions=400_000)

    problems = []
    if process.alive:
        problems.append("guest did not terminate (livelock/self-jump?)")
    elif process.term_signal is not None:
        problems.append(f"guest killed by signal {process.term_signal}")
    elif process.exit_code != 0x11:
        problems.append(f"handler counts wrong: exit={process.exit_code:#x}")
    if not policy.all_triggers_fired:
        problems.append(f"trigger at {target:#x} never fired")
    # the selector/sigreturn-stack balance invariants are asserted per
    # instruction in-test via a CpuHook; here the verdict is behavioural
    del gsrel, tool
    return ScenarioResult(
        scenario="rewrite_window",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={"schedule": policy.trace.digest()},
        covered=(target,),
    )


def differential(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """Corpus program under every full-expressiveness tool pair, one seed.

    The program is chosen by the seed; each tool runs under an
    :class:`ExplorerPolicy` built from the *same* seed, and every pairwise
    report difference is a failure.
    """
    names = sorted(CORPUS)
    program = CORPUS[names[seed % len(names)]]
    reports = {}
    for tool in program.tools:
        policy = ExplorerPolicy(
            seed, perturb_order=perturb_order, perturb_quantum=perturb_quantum
        )
        reports[tool] = run_guest(
            program.build,
            tool,
            policy=policy,
            setup=program.setup,
            max_instructions=program.max_instructions,
        )
    problems = []
    tools = list(program.tools)
    for i, ta in enumerate(tools):
        for tb in tools[i + 1:]:
            for diff in differences(reports[ta], reports[tb]):
                problems.append(f"{ta} vs {tb}: {diff}")
    for tool, report in reports.items():
        if report.crashed:
            problems.append(f"{tool}: guest did not terminate")
    return ScenarioResult(
        scenario="differential",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={tool: r.digest() for tool, r in reports.items()},
        covered=(program.name,),
    )


def transient_faults(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """Seeded EINTR/EAGAIN injection against a retry-correct guest.

    Runs under each full-expressiveness tool with the same seed; the guest
    must absorb every injected fault (exit 0, identical stdout), and the
    recorded fault plan must replay to a byte-identical report.
    """
    problems = []
    digests = {}
    for tool in FULL_EXPRESSIVENESS:
        injector = FaultInjector(
            seed=seed,
            rate=(1, 3),
            errnos=(errno.EINTR, errno.EAGAIN),
            eligible=("write",),
        )
        policy = ExplorerPolicy(
            seed, perturb_order=perturb_order, perturb_quantum=perturb_quantum
        )
        report = run_guest(
            build_eintr_retry_guest,
            tool,
            policy=policy,
            injector=injector,
            max_instructions=2_000_000,
        )
        digests[tool] = report.digest()
        digests[tool + ":plan"] = injector.plan_digest()
        if report.crashed or report.exit != 0:
            problems.append(
                f"{tool}: exit={report.exit} crashed={report.crashed} "
                f"after {len(injector.plan)} injected faults"
            )
        if report.stdout != b"w\n" * 4:
            problems.append(f"{tool}: stdout {report.stdout!r}")
        # exact replay: same plan, no rng — identical observable run
        replayed = run_guest(
            build_eintr_retry_guest,
            tool,
            policy=ExplorerPolicy(
                seed,
                perturb_order=perturb_order,
                perturb_quantum=perturb_quantum,
            ),
            injector=FaultInjector.from_plan(injector.plan),
            max_instructions=2_000_000,
        )
        if replayed.digest() != report.digest():
            problems.append(f"{tool}: replay diverged from recorded plan")
    return ScenarioResult(
        scenario="transient_faults",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests=digests,
    )


def mprotect_fault(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """Fail the mprotect that *opens* lazypoline's rewrite window.

    A seed-selected opening mprotect (identified by its PROT_READ|WRITE
    argument — the restores ask for the saved protections back) returns
    ENOMEM; the site must simply stay on the slow path — same behaviour,
    more SIGSYS hits — and the guest must be none the wiser.  Failing the
    *restore* call is not probed: that genuinely strips execute permission
    from a live code page, which no userspace tool can paper over.
    """
    from repro.interpose.lazypoline import Lazypoline
    from repro.kernel.machine import Machine
    from repro.kernel.syscalls.mm import PROT_READ, PROT_WRITE

    opening = PROT_READ | PROT_WRITE
    injector = FaultInjector(
        rules=(
            FaultRule(
                errno=errno.ENOMEM, name="mprotect", skip=seed % 4,
                max_injections=1 + seed % 2,
                predicate=lambda task, sysno, args: args[2] == opening,
            ),
        )
    )
    machine = Machine(
        policy=ExplorerPolicy(
            seed, perturb_order=perturb_order, perturb_quantum=perturb_quantum
        )
    )
    machine.kernel.fault_injector = injector
    process = machine.load(build_two_signal_guest())
    tool = Lazypoline._install(machine, process, TraceInterposer())
    machine.run(until=lambda: not process.alive, max_instructions=400_000)
    problems = []
    if process.alive:
        problems.append("guest did not terminate")
    elif process.term_signal is not None:
        problems.append(f"guest killed by signal {process.term_signal}")
    elif process.exit_code != 0x1:
        # no trigger posts SIGUSR2 here: only the USR1 count is expected
        problems.append(f"exit={process.exit_code:#x}")
    if not injector.plan:
        problems.append("no mprotect was actually injected")
    return ScenarioResult(
        scenario="mprotect_fault",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={"plan": injector.plan_digest()},
        covered=tuple(r.seq for r in injector.plan),
    )


# ------------------------------------------------- degradation scenarios
def sled_denied(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """Hostile ``mmap_min_addr``: the VA-0 sled is denied at attach time.

    lazypoline must come up in SUD_ONLY — interposition fully live, zero
    rewrites — and the guest must be indistinguishable from bare (behaviour)
    and from plain SUD (identical per-thread trace, since SUD_ONLY *is*
    selector-only SUD).
    """
    from repro.interpose.lazypoline.degrade import Mode

    min_addr = 4096 * (1 + seed % 4)
    captured = {}

    def grab(machine, process, tool):
        captured["tool"] = tool

    def policy():
        return ExplorerPolicy(
            seed, perturb_order=perturb_order, perturb_quantum=perturb_quantum
        )

    reports = {
        name: run_guest(
            build_two_signal_guest,
            tool,
            policy=policy(),
            mmap_min_addr=min_addr,
            configure=grab if tool == "lazypoline" else None,
            max_instructions=400_000,
        )
        for name, tool in (
            ("bare", None), ("lazypoline", "lazypoline"), ("sud", "sud"),
        )
    }
    tool = captured["tool"]
    problems = []
    if tool.mode is not Mode.SUD_ONLY:
        problems.append(f"attached in {tool.mode} instead of SUD_ONLY")
    if tool.rewritten:
        problems.append(f"{len(tool.rewritten)} sites rewritten without a sled")
    if reports["bare"].exit != 0x1:
        problems.append(f"bare guest exit={reports['bare'].exit}")
    if not reports["lazypoline"].trace:
        problems.append("no syscall was interposed in SUD_ONLY")
    for diff in differences(
        reports["lazypoline"], reports["bare"], compare_trace=False
    ):
        problems.append(f"lazypoline vs bare: {diff}")
    for diff in differences(reports["lazypoline"], reports["sud"]):
        problems.append(f"lazypoline vs sud: {diff}")
    return ScenarioResult(
        scenario="sled_denied",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={name: r.digest() for name, r in reports.items()},
        covered=(min_addr, tool.health()["mode"]),
    )


def setup_fault(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """ENOMEM injected into lazypoline's setup-time mmaps.

    Even seeds fail only the VA-0 blob mapping (SUD_ONLY expected); odd
    seeds fail *both* mappings under a ``floor="passthrough"`` policy
    (PASSTHROUGH expected — nothing armed, guest runs bare but runs).
    Either way the guest's observable behaviour matches the bare run.
    """
    from repro.interpose.lazypoline.degrade import Mode

    floor_passthrough = seed % 2 == 1
    injector = FaultInjector(
        rules=(
            FaultRule(
                errno=errno.ENOMEM, name="mmap",
                max_injections=2 if floor_passthrough else 1,
            ),
        )
    )
    captured = {}

    def grab(machine, process, tool):
        captured["tool"] = tool

    def policy():
        return ExplorerPolicy(
            seed, perturb_order=perturb_order, perturb_quantum=perturb_quantum
        )

    bare = run_guest(
        build_two_signal_guest, None, policy=policy(),
        max_instructions=400_000,
    )
    lazy = run_guest(
        build_two_signal_guest,
        "lazypoline",
        policy=policy(),
        injector=injector,
        configure=grab,
        tool_opts=(
            {"degrade_policy": "passthrough"} if floor_passthrough else None
        ),
        max_instructions=400_000,
    )
    tool = captured["tool"]
    expected = Mode.PASSTHROUGH if floor_passthrough else Mode.SUD_ONLY
    problems = []
    if tool.mode is not expected:
        problems.append(f"mode {tool.mode}, expected {expected}")
    if bare.exit != 0x1:
        problems.append(f"bare guest exit={bare.exit}")
    if not floor_passthrough and not lazy.trace:
        problems.append("no syscall was interposed in SUD_ONLY")
    if floor_passthrough and lazy.trace:
        problems.append("PASSTHROUGH mode still interposed syscalls")
    injected = [r for r in injector.plan if r.name == "mmap"]
    if len(injected) != len(injector.plan) or not injected:
        problems.append(f"unexpected fault plan: {injector.plan_json()}")
    # PASSTHROUGH armed nothing, so even the trace must match bare's
    # (both empty); in SUD_ONLY the trace is tool-internal knowledge.
    for diff in differences(
        lazy, bare, compare_trace=floor_passthrough
    ):
        problems.append(f"lazypoline vs bare: {diff}")
    return ScenarioResult(
        scenario="setup_fault",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={
            "bare": bare.digest(), "lazypoline": lazy.digest(),
            "plan": injector.plan_digest(),
        },
        covered=(tool.health()["mode"], len(injected)),
    )


def rewrite_fault(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """Fail seed-selected rewrite mprotects — opening *and* restore calls.

    Unlike :func:`mprotect_fault` (which only probes the opening call),
    the rule here matches any rewrite-window mprotect: transient errnos
    exercise the bounded retry, the non-transient EACCES exercises
    blacklisting, and a failed *restore* exercises the full rollback.
    Whatever is hit, the invariant is absolute: the guest's behaviour is
    unchanged and no attempted site is ever left torn
    (:func:`repro.interpose.zpoline.rewriter.site_intact` on every one).
    """
    from repro.interpose.lazypoline import Lazypoline
    from repro.interpose.zpoline.rewriter import site_intact
    from repro.kernel.machine import Machine

    errnos = (errno.ENOMEM, errno.EAGAIN, errno.EACCES)
    injector = FaultInjector(
        rules=(
            FaultRule(
                errno=errnos[seed % 3], name="mprotect",
                skip=1 + seed % 6,  # skip >= 1: the attach-time blob
                max_injections=1 + seed % 3,  # mprotect always passes
            ),
        )
    )
    machine = Machine(
        policy=ExplorerPolicy(
            seed, perturb_order=perturb_order, perturb_quantum=perturb_quantum
        )
    )
    machine.kernel.fault_injector = injector
    process = machine.load(build_two_signal_guest())
    tool = Lazypoline._install(machine, process, TraceInterposer())
    machine.run(until=lambda: not process.alive, max_instructions=400_000)

    problems = []
    if process.alive:
        problems.append("guest did not terminate")
    elif process.term_signal is not None:
        problems.append(f"guest killed by signal {process.term_signal}")
    elif process.exit_code != 0x1:
        problems.append(f"exit={process.exit_code:#x}")
    if not injector.plan:
        problems.append("no mprotect fault was injected")
    attempted = (
        set(tool.rewritten)
        | tool.degrade.blacklist
        | set(tool.degrade.site_failures)
    )
    torn = [
        hex(site)
        for site in sorted(attempted)
        if not site_intact(process.task, site)
    ]
    if torn:
        problems.append(f"torn sites after injected faults: {torn}")
    return ScenarioResult(
        scenario="rewrite_fault",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={"plan": injector.plan_digest()},
        # (seq, prot) per injection: prot==0x3 is a window opening,
        # anything with PROT_EXEC is a permission restore
        covered=tuple((r.seq, r.args[2]) for r in injector.plan),
    )


def signal_depth(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """Exhaust the per-task sigreturn-selector stack via nested signals.

    ``signal_depth_limit=3`` against a 6-deep nest: even seeds use the
    ``spill`` policy — selectors past the limit chain onto overflow pages
    and the guest result is identical to bare; odd seeds use the ``fault``
    policy — the guest takes a clean SIGSEGV (the kernel force_sigsegv
    analogue), never a host exception.
    """
    from repro.kernel.signals import SIGSEGV

    fault_variant = seed % 2 == 1
    captured = {}

    def grab(machine, process, tool):
        captured["tool"] = tool

    def policy():
        return ExplorerPolicy(
            seed, perturb_order=perturb_order, perturb_quantum=perturb_quantum
        )

    bare = run_guest(
        build_nested_signal_guest, None, policy=policy(),
        max_instructions=400_000,
    )
    lazy = run_guest(
        build_nested_signal_guest,
        "lazypoline",
        policy=policy(),
        configure=grab,
        tool_opts={
            "degrade_policy": {
                "signal_depth_limit": 3,
                "depth_overflow": "fault" if fault_variant else "spill",
            }
        },
        max_instructions=400_000,
    )
    tool = captured["tool"]
    health = tool.health()
    problems = []
    if bare.exit != 6:
        problems.append(f"bare guest exit={bare.exit}, expected 6 activations")
    if fault_variant:
        if lazy.signal != SIGSEGV:
            problems.append(
                f"expected clean SIGSEGV, got signal={lazy.signal} "
                f"exit={lazy.exit} crashed={lazy.crashed}"
            )
        if not health["depth_overflows"]:
            problems.append("no depth overflow was recorded")
    else:
        for diff in differences(lazy, bare, compare_trace=False):
            problems.append(f"lazypoline vs bare: {diff}")
        if not health["spills"]:
            problems.append("nest never spilled past the inline limit")
        if health["depth_overflows"]:
            problems.append("spill policy still took a depth overflow")
    return ScenarioResult(
        scenario="signal_depth",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={"bare": bare.digest(), "lazypoline": lazy.digest()},
        covered=(
            "fault" if fault_variant else "spill",
            health["spills"], health["depth_overflows"],
        ),
    )


def uring_signal(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """Signals racing a ring drain: partial CQ + EINTR, never a lost wakeup.

    A repeating SIGUSR1 is armed with seed-varied timing against
    :func:`build_uring_signal_guest`, whose ring contains a read of a
    forever-empty pipe — the drain *must* be interrupted.  The guest packs
    its invariants into the exit code (expected 15: handler ran, the read
    entry completed -EINTR, both surrounding entries completed), checked
    bare and under a seed-selected interposition tool on a perturbed
    schedule.  Any lost wakeup shows up as the guest spinning to the
    instruction budget (crashed=True) or a missing bit in the exit code.
    """
    tool = ("lazypoline", "zpoline", "ptrace")[seed % 3]
    delay = 10_000 + (seed * 7919) % 40_000
    interval = 30_000 + (seed * 104729) % 50_000

    def arm(machine, process, tool_instance):
        arm_repeating_signal(
            machine, process.task, delay=delay, interval=interval
        )

    def policy():
        return ExplorerPolicy(
            seed, perturb_order=perturb_order, perturb_quantum=perturb_quantum
        )

    bare = run_guest(
        build_uring_signal_guest, None, policy=policy(), configure=arm,
        max_instructions=2_000_000,
    )
    tooled = run_guest(
        build_uring_signal_guest, tool, policy=policy(), configure=arm,
        max_instructions=2_000_000,
    )
    problems = []
    for label, report in (("bare", bare), (tool, tooled)):
        if report.crashed:
            problems.append(f"{label}: run did not terminate (lost wakeup?)")
        elif report.exit != 15:
            problems.append(f"{label}: exit={report.exit}, expected 15")
    return ScenarioResult(
        scenario="uring_signal",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={"bare": bare.digest(), tool: tooled.digest()},
        covered=(tool, delay, interval),
    )


def uring_async(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """Signals racing *parked* ring entries: resumable wait, no lost wakeup.

    :func:`build_uring_async_guest` parks a pipe read on a kernel-side
    waiter and blocks in ``ring_wait`` for its CQE; a repeating SIGUSR1
    (seed-varied timing) interrupts that wait while the entry is parked,
    and a host-side pipe feeder (:func:`arm_pipe_feeder`) delivers the
    wakeup only after at least one signal has had time to land.  The
    guest must resume the wait after every interruption and the parked
    read must complete with the fed bytes — a lost wakeup shows up as the
    guest spinning to the instruction budget (crashed=True), a dropped or
    double completion as a missing bit in the exit code (expected 15).
    Checked bare and under a seed-selected interposition tool on a
    perturbed schedule; both runs must agree.
    """
    tool = ("lazypoline", "zpoline", "ptrace")[seed % 3]
    delay = 10_000 + (seed * 7919) % 40_000
    interval = 30_000 + (seed * 104729) % 50_000
    feed_delay = delay + 2 * interval + (seed * 31) % 20_000

    def arm(machine, process, tool_instance):
        arm_repeating_signal(
            machine, process.task, delay=delay, interval=interval
        )
        arm_pipe_feeder(
            machine, process.task, delay=feed_delay, interval=interval
        )

    def policy():
        return ExplorerPolicy(
            seed, perturb_order=perturb_order, perturb_quantum=perturb_quantum
        )

    bare = run_guest(
        build_uring_async_guest, None, policy=policy(), configure=arm,
        max_instructions=2_000_000,
    )
    tooled = run_guest(
        build_uring_async_guest, tool, policy=policy(), configure=arm,
        max_instructions=2_000_000,
    )
    problems = []
    for label, report in (("bare", bare), (tool, tooled)):
        if report.crashed:
            problems.append(f"{label}: run did not terminate (lost wakeup?)")
        elif report.exit != 15:
            problems.append(f"{label}: exit={report.exit}, expected 15")
    for diff in differences(bare, tooled, compare_trace=False):
        problems.append(f"bare vs {tool}: {diff}")
    return ScenarioResult(
        scenario="uring_async",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={"bare": bare.digest(), tool: tooled.digest()},
        covered=(tool, delay, interval, feed_delay),
    )


# ------------------------------------------------------ fleet chaos (PR 10)
def _cluster_report_digest(report: dict) -> str:
    """Byte-stable digest of a merged cluster report.

    Tier-independent on purpose: the superblock contract is identical
    *cycles*, not identical compile-activity counters, so the obs
    ``block_compile``/``block_invalidate`` counts (and the
    ``dropped_events`` overflow they can shift) are excluded — the
    corpus replays must digest the same with tiering on or off.
    """
    import json as _json

    clone = _json.loads(_json.dumps(report))
    obs = clone.get("obs") or {}
    for kind in ("block_compile", "block_invalidate"):
        obs.get("counts", {}).pop(kind, None)
    obs.pop("dropped_events", None)
    return hashlib.sha256(
        _json.dumps(clone, sort_keys=True).encode()
    ).hexdigest()


def _run_chaos_cluster(shards: int, plan, *, tool, batched, requests,
                       deadline_cycles=None):
    from repro.cluster import Cluster

    return Cluster(
        shards=shards, tool=tool, batched=batched, processes=False,
        chaos=plan, deadline_cycles=deadline_cycles,
    ).serve(requests=requests, warmup=4)


def _chaos_problems(report: dict, *, requests: int,
                    expect_down: list[int]) -> list[str]:
    """The fleet invariants every chaos scenario asserts: 100 % of the
    requests complete via failover/retry, none is lost or duplicated,
    and exactly the faulted shards are marked down."""
    av = report["availability"]
    problems = []
    if av["completed"] != requests:
        problems.append(
            f"completed {av['completed']}/{requests} "
            f"(lost ids: {av['failed_ids']})"
        )
    if av["duplicate_serves"]:
        problems.append(f"{av['duplicate_serves']} duplicated serves")
    if av["shards_down"] != expect_down:
        problems.append(
            f"shards_down={av['shards_down']}, expected {expect_down}"
        )
    return problems


def shard_crash(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """A seeded shard crash mid-serve: failover completes every request.

    One shard of a 2- or 4-shard cluster (seed-picked, occasionally under
    lazypoline) crashes after a seed-picked request; the health model
    downs it, its breaker opens, and the balancer re-plans the stranded
    requests over the live shards.  Invariants: 100 % completion, no
    lost or duplicated request id, exactly the victim down — and the
    whole merged report byte-identical across two runs of the same seed.
    (The schedule-perturbation variants don't apply at the fleet layer;
    they are accepted for CLI compatibility.)
    """
    from repro.cluster import ChaosPlan, ShardFault

    shards = 4 if seed % 2 else 2
    tool = "lazypoline" if seed % 8 == 0 else None
    victim = (seed // 2) % shards
    at = 1 + (seed // 3) % 4
    requests = 12 * shards
    plan = ChaosPlan([ShardFault(shard=victim, kind="crash", at_request=at)])
    first = _run_chaos_cluster(shards, plan, tool=tool, batched=False,
                               requests=requests)
    second = _run_chaos_cluster(shards, plan, tool=tool, batched=False,
                                requests=requests)
    problems = _chaos_problems(first, requests=requests,
                               expect_down=[victim])
    d1, d2 = _cluster_report_digest(first), _cluster_report_digest(second)
    if d1 != d2:
        problems.append("same seed, different report (non-deterministic)")
    return ScenarioResult(
        scenario="shard_crash",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={"report": d1, "replay": d2},
        covered=(shards, tool or "none", victim, at),
    )


def shard_hang(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """A hung shard must return within its deadline, not stall the fleet.

    One shard stops responding mid-serve; the run is bounded by the
    shard deadline, and on the async ring leg (every other seed) the
    shard's in-flight parked entries cancel with ``-ETIMEDOUT`` instead
    of parking forever — asserted via the merged ``ring_timeouts``
    counter.  Same fleet invariants and same-seed byte-identity as
    :func:`shard_crash`.
    """
    from repro.cluster import ChaosPlan, ShardFault

    shards = 2
    batched = "async" if seed % 2 else False
    victim = (seed // 2) % shards
    at = 1 + (seed // 3) % 3
    requests = 24
    plan = ChaosPlan([ShardFault(
        shard=victim, kind="hang", at_request=at,
        deadline_cycles=3_000_000,
    )])
    first = _run_chaos_cluster(shards, plan, tool=None, batched=batched,
                               requests=requests)
    second = _run_chaos_cluster(shards, plan, tool=None, batched=batched,
                                requests=requests)
    problems = _chaos_problems(first, requests=requests,
                               expect_down=[victim])
    if batched == "async" and not first["availability"]["ring_timeouts"]:
        problems.append("async hang produced no -ETIMEDOUT ring completion")
    d1, d2 = _cluster_report_digest(first), _cluster_report_digest(second)
    if d1 != d2:
        problems.append("same seed, different report (non-deterministic)")
    return ScenarioResult(
        scenario="shard_hang",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={"report": d1, "replay": d2},
        covered=(batched if batched else "direct", victim, at),
    )


def shard_degraded(
    seed: int,
    *,
    perturb_order: bool = True,
    perturb_quantum: bool = True,
) -> ScenarioResult:
    """A slow shard blows per-request deadlines: suspect → down → retry.

    One shard pays a seed-picked surcharge on every request, pushing it
    past the cluster's per-request deadline; the health model demotes it
    (up → suspect → down over two bad rounds) and the backoff retries
    land the requests on the fast shard.  Same fleet invariants and
    same-seed byte-identity as :func:`shard_crash`.
    """
    from repro.cluster import ChaosPlan, ShardFault

    shards = 2
    victim = seed % shards
    slow = 260_000 + (seed % 4) * 40_000
    requests = 24
    plan = ChaosPlan([ShardFault(
        shard=victim, kind="degraded", slow_cycles=slow,
    )])
    first = _run_chaos_cluster(shards, plan, tool=None, batched=False,
                               requests=requests, deadline_cycles=250_000)
    second = _run_chaos_cluster(shards, plan, tool=None, batched=False,
                                requests=requests, deadline_cycles=250_000)
    av = first["availability"]
    problems = _chaos_problems(first, requests=requests,
                               expect_down=[victim])
    if not av["timeouts"]:
        problems.append("degraded shard never blew a per-request deadline")
    if not av["retries"]:
        problems.append("timeouts never produced a retry round")
    d1, d2 = _cluster_report_digest(first), _cluster_report_digest(second)
    if d1 != d2:
        problems.append("same seed, different report (non-deterministic)")
    return ScenarioResult(
        scenario="shard_degraded",
        seed=seed,
        ok=not problems,
        detail="; ".join(problems),
        digests={"report": d1, "replay": d2},
        covered=(victim, slow),
    )


SCENARIOS = {
    "rewrite_window": rewrite_window,
    "differential": differential,
    "transient_faults": transient_faults,
    "mprotect_fault": mprotect_fault,
    "sled_denied": sled_denied,
    "setup_fault": setup_fault,
    "rewrite_fault": rewrite_fault,
    "signal_depth": signal_depth,
    "uring_signal": uring_signal,
    "uring_async": uring_async,
    "shard_crash": shard_crash,
    "shard_hang": shard_hang,
    "shard_degraded": shard_degraded,
}
