"""Schedule-invariant guest corpus for the differential oracle.

Each program is written so its *observable* behaviour (exit status, stdout,
filesystem effects, per-thread syscall name sequence) is independent of
scheduling: cross-thread communication goes through explicit handshakes,
signals are self-directed via ``tgkill`` (delivered at a deterministic
point in the sender's own stream), and no output depends on which thread
won a race.  That invariance is exactly what lets the oracle demand
byte-identical reports across explorer seeds and across tools.

The corpus spans the syscalls the paper calls out as hard for interposers:
``fork`` (address-space copy), ``clone`` (threads + per-thread SUD/gsbase
state), ``execve`` (interposer teardown semantics) and ``rt_sigaction`` /
signal delivery (handler virtualisation, Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.arch.encode import Assembler
from repro.kernel.fs import O_CREAT, O_TRUNC, O_WRONLY
from repro.kernel.signals import SIGUSR1
from repro.kernel.syscalls.proc import CLONE_VM, THREAD_FLAGS
from repro.kernel.syscalls.table import NR
from repro.loader.image import ProgramImage, image_from_assembler
from repro.mem import layout


def _syscall(a: Assembler, name: str, *args) -> None:
    regs = ("rdi", "rsi", "rdx", "r10", "r8", "r9")
    for reg, value in zip(regs, args):
        a.mov_imm(reg, value)
    a.mov_imm("rax", NR[name])
    a.syscall()


def _exit(a: Assembler, code: int) -> None:
    _syscall(a, "exit_group", code)


def build_syscall_loop() -> ProgramImage:
    """Single thread: mixed fast-path syscalls, then a file write."""
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    a.mov_imm("rbx", 8)
    a.label("loop")
    _syscall(a, "getpid")
    _syscall(a, "sched_yield")
    _syscall(a, "write", 1, "dot", 1)
    a.dec("rbx")
    a.cmpi("rbx", 0)
    a.jnz("loop")
    _syscall(a, "open", "path", O_WRONLY | O_CREAT | O_TRUNC, 0o644)
    a.mov("rdi", "rax")
    a.mov_imm("rsi", "msg")
    a.mov_imm("rdx", 5)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    _syscall(a, "close")  # fd still in rdi
    _exit(a, 0)
    a.label("dot")
    a.db(b".")
    a.label("msg")
    a.db(b"data\n")
    a.label("path")
    a.db(b"/tmp/loop.txt\x00")
    return image_from_assembler("syscall_loop", a, entry="_start")


def build_fork_wait() -> ProgramImage:
    """fork; child writes a file and exits 21; parent reaps and echoes."""
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    _syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")  # writable scratch for the wait4 status word
    _syscall(a, "fork")
    a.cmpi("rax", 0)
    a.jz("child")
    # parent: wait4(-1, status, 0, 0); exit(status >> 8)
    _syscall(a, "write", 1, "pmsg", 7)
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    a.load("rdi", "r12", 0)
    a.shr("rdi", 8)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("child")
    _syscall(a, "open", "cpath", O_WRONLY | O_CREAT | O_TRUNC, 0o644)
    a.mov("rdi", "rax")
    a.mov_imm("rsi", "cmsg")
    a.mov_imm("rdx", 6)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    _syscall(a, "close")
    _exit(a, 21)
    a.label("pmsg")
    a.db(b"parent\n")
    a.label("cmsg")
    a.db(b"child\n")
    a.label("cpath")
    a.db(b"/tmp/child.txt\x00")
    return image_from_assembler("fork_wait", a, entry="_start")


def build_clone_shared() -> ProgramImage:
    """Two threads, explicit handshake; both issue syscalls on both sides."""
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    _syscall(a, "mmap", 0, 8192, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rdi", THREAD_FLAGS | CLONE_VM)
    a.lea("rsi", "r12", 8192)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    a.mov_imm("r8", 0)
    a.mov_imm("rax", NR["clone"])
    a.syscall()
    a.cmpi("rax", 0)
    a.jz("worker")
    # main: wait for the worker's flag (pure-memory spin: a syscall here
    # would make the trace length schedule-dependent), then report
    a.label("spin")
    a.load("rcx", "r12", 0)
    a.cmpi("rcx", 7)
    a.jnz("spin")
    _syscall(a, "write", 1, "done", 5)
    _exit(a, 7)
    a.label("worker")
    _syscall(a, "getpid")
    _syscall(a, "gettid")
    _syscall(a, "write", 1, "work", 5)
    a.mov_imm("rcx", 7)
    a.store("r12", 0, "rcx")
    # no exit syscall here: whether it would dispatch before main's
    # exit_group is schedule-dependent, which would make the worker's
    # trace length vary per seed.  Spin until exit_group reaps us.
    a.label("park")
    a.jmp("park")
    a.label("done")
    a.db(b"done\n")
    a.label("work")
    a.db(b"work\n")
    return image_from_assembler("clone_shared", a, entry="_start")


def build_sig_pingpong() -> ProgramImage:
    """Self-directed SIGUSR1 three times; handler counts + writes."""
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    _syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r14", "rax")  # writable counter cell shared with the handler
    # rt_sigaction(SIGUSR1, act, NULL, 8)
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    a.mov_imm("rbx", 3)
    a.label("loop")
    # tgkill(getpid(), gettid(), SIGUSR1) — delivered before the next
    # instruction of this very thread, so ordering is schedule-invariant
    _syscall(a, "getpid")
    a.mov("r13", "rax")
    _syscall(a, "gettid")
    a.mov("rsi", "rax")
    a.mov("rdi", "r13")
    a.mov_imm("rdx", SIGUSR1)
    a.mov_imm("rax", NR["tgkill"])
    a.syscall()
    a.dec("rbx")
    a.cmpi("rbx", 0)
    a.jnz("loop")
    a.load("rdi", "r14", 0)
    a.cmpi("rdi", 3)
    a.jnz("bad")
    _syscall(a, "write", 1, "done", 5)
    _exit(a, 0)
    a.label("bad")
    _exit(a, 1)
    a.label("handler")
    a.load("rdx", "r14", 0)
    a.inc("rdx")
    a.store("r14", 0, "rdx")
    _syscall(a, "write", 1, "hand", 2)
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("done")
    a.db(b"done\n")
    a.label("hand")
    a.db(b"h\n")
    return image_from_assembler("sig_pingpong", a, entry="_start")


def build_execve_child() -> ProgramImage:
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    _syscall(a, "write", 1, "msg", 6)
    _exit(a, 5)
    a.label("msg")
    a.db(b"after\n")
    return image_from_assembler("execve_child", a, entry="_start")


def build_execve_chain() -> ProgramImage:
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    _syscall(a, "write", 1, "msg", 7)
    _syscall(a, "execve", "path", 0, 0)
    _exit(a, 99)  # unreachable unless execve failed
    a.label("msg")
    a.db(b"before\n")
    a.label("path")
    a.db(b"/bin/execve_child\x00")
    return image_from_assembler("execve_chain", a, entry="_start")


def _execve_setup(machine) -> None:
    machine.register_binary("/bin/execve_child", build_execve_child())


@dataclass(frozen=True)
class CorpusProgram:
    """One guest plus the tool set whose traces must agree on it."""

    name: str
    build: Callable[[], ProgramImage]
    setup: Optional[Callable] = None
    #: full-expressiveness tools expected to produce identical traces.
    #: execve is the exception: seccomp filters survive execve (as on real
    #: Linux) so a seccomp-user supervisor still intercepts the *new*
    #: program, whose handler page the exec wiped — faithful behaviour, but
    #: not trace-comparable, so that program pins lazypoline vs plain SUD.
    tools: tuple[str, ...] = ("lazypoline", "sud", "seccomp_user")
    max_instructions: int = 3_000_000


CORPUS: dict[str, CorpusProgram] = {
    p.name: p
    for p in (
        CorpusProgram("syscall_loop", build_syscall_loop),
        CorpusProgram("fork_wait", build_fork_wait),
        CorpusProgram("clone_shared", build_clone_shared),
        CorpusProgram("sig_pingpong", build_sig_pingpong),
        CorpusProgram(
            "execve_chain",
            build_execve_chain,
            setup=_execve_setup,
            tools=("lazypoline", "sud"),
        ),
    )
}
