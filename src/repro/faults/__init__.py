"""Deterministic fault injection & schedule exploration (the test harness).

The paper's correctness claims live on adversarial schedules: a signal
arriving *inside* the lazypoline fast-path stub, a second thread executing
a syscall site mid-rewrite, fork/clone/execve racing the SUD re-arm.  The
tier-1 tests exercise those paths only on the happy cooperative schedule;
this subsystem explores the unhappy ones, reproducibly:

* :mod:`repro.faults.explorer` — a seeded :class:`SchedulePolicy` that
  perturbs time-slice quanta and task order, and forces preemption or
  signal delivery at every instruction boundary inside marked windows;
* :mod:`repro.faults.injector` — per-site/count/predicate syscall fault
  injection (``EINTR``/``ENOMEM``/``EAGAIN``, mprotect failures) hooked
  into ``Kernel.dispatch``, with a recorded plan for exact replay;
* :mod:`repro.faults.oracle` — runs one guest under two tool
  configurations (or with/without recoverable faults) and checks
  syscall-trace and final-state equivalence, generalising the §V-A
  exhaustiveness comparison;
* :mod:`repro.faults.scenarios` + ``python -m repro.faults`` — named
  guest/tool/fault combinations, seed sweeps, and failing-seed
  minimisation, so every failure reproduces from one command.

Everything is derived from a single integer seed: the same seed yields a
byte-identical schedule, fault plan and syscall trace (asserted in CI).
"""

from repro.faults.corpus import CORPUS, CorpusProgram
from repro.faults.explorer import (
    ExplorerPolicy,
    ScheduleTrace,
    SignalTrigger,
    Window,
    instruction_boundaries,
    lazypoline_boundaries,
    lazypoline_windows,
)
from repro.faults.injector import FaultInjector, FaultRecord, FaultRule
from repro.faults.oracle import (
    FULL_EXPRESSIVENESS,
    GuestReport,
    differences,
    run_guest,
)
from repro.faults.scenarios import SCENARIOS, ScenarioResult

__all__ = [
    "CORPUS",
    "CorpusProgram",
    "ExplorerPolicy",
    "FULL_EXPRESSIVENESS",
    "FaultInjector",
    "FaultRecord",
    "FaultRule",
    "GuestReport",
    "SCENARIOS",
    "ScenarioResult",
    "ScheduleTrace",
    "SignalTrigger",
    "Window",
    "differences",
    "instruction_boundaries",
    "lazypoline_boundaries",
    "lazypoline_windows",
    "run_guest",
]
