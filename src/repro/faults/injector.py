"""Syscall fault injection hooked into ``Kernel.dispatch``.

Faults are injected at the dispatch layer — after the interception gate,
before the syscall implementation — so an injected ``EINTR`` is
indistinguishable from a real premature return, for the application *and*
for any interposer that re-issued the call.  Rules select syscalls by
name/number, invocation count, target task or arbitrary predicate; a
seeded mode injects retryable errnos at random eligible dispatches.

Every decision appends a :class:`FaultRecord` to ``plan``; the recorded
plan replays exactly via :meth:`FaultInjector.from_plan`, which is how a
failing fuzz run reproduces without its original rule objects.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional

from repro.kernel import errno as errno_mod
from repro.kernel.syscalls.table import NR, syscall_name
from repro.faults.rng import SplitMix64

#: The classic transient errnos (what a hardened application must retry).
TRANSIENT_ERRNOS = (errno_mod.EINTR, errno_mod.EAGAIN, errno_mod.ENOMEM)


@dataclass
class FaultRule:
    """Inject ``errno`` into matching dispatches.

    ``name``/``sysno`` select the syscall (either form); ``skip`` lets the
    first N matching dispatches through; ``max_injections`` bounds how many
    faults this rule produces; ``tid`` restricts to one task; ``predicate``
    (task, sysno, args) -> bool adds arbitrary matching (e.g. "only the
    mprotect that opens the rewrite window").
    """

    errno: int
    name: str | None = None
    sysno: int | None = None
    max_injections: int = 1
    skip: int = 0
    tid: int | None = None
    predicate: Optional[Callable] = None

    def __post_init__(self):
        if self.sysno is None and self.name is not None:
            self.sysno = NR[self.name]
        self._seen = 0
        self._injected = 0

    def matches(self, task, sysno: int, args) -> bool:
        if self._injected >= self.max_injections:
            return False
        if self.sysno is not None and sysno != self.sysno:
            return False
        if self.tid is not None and task.tid != self.tid:
            return False
        if self.predicate is not None and not self.predicate(task, sysno, args):
            return False
        self._seen += 1
        if self._seen <= self.skip:
            return False
        self._injected += 1
        return True


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: dispatch sequence number + what was injected.

    ``args`` snapshots the syscall arguments at injection time so a
    scenario can tell *which* call it hit (e.g. a window-opening mprotect
    vs. a permission restore).  It is diagnostic only: replay keys on
    ``seq`` and the plan digest ignores it.
    """

    seq: int
    tid: int
    sysno: int
    errno: int
    args: tuple = ()

    @property
    def name(self) -> str:
        return syscall_name(self.sysno)

    def to_json(self) -> dict:
        data = {"seq": self.seq, "tid": self.tid, "sysno": self.sysno,
                "errno": self.errno}
        if self.args:
            data["args"] = list(self.args)
        return data

    @classmethod
    def from_json(cls, data: dict) -> "FaultRecord":
        return cls(data["seq"], data["tid"], data["sysno"], data["errno"],
                   tuple(data.get("args", ())))


class FaultInjector:
    """Attached as ``kernel.fault_injector``; consulted on every dispatch."""

    def __init__(
        self,
        rules: tuple[FaultRule, ...] = (),
        *,
        seed: int | None = None,
        rate: tuple[int, int] = (0, 1),
        errnos: tuple[int, ...] = TRANSIENT_ERRNOS,
        eligible: tuple[str, ...] = (),
    ):
        self.rules = list(rules)
        self.rng = SplitMix64(seed) if seed is not None else None
        self.rate = rate
        self.errnos = tuple(errnos)
        self.eligible = frozenset(NR[name] for name in eligible)
        self.seq = 0
        self.plan: list[FaultRecord] = []
        self._replay: dict[int, FaultRecord] | None = None

    @classmethod
    def from_plan(cls, plan) -> "FaultInjector":
        """Replay a recorded plan exactly (by dispatch sequence number)."""
        injector = cls()
        records = [
            r if isinstance(r, FaultRecord) else FaultRecord.from_json(r)
            for r in plan
        ]
        injector._replay = {r.seq: r for r in records}
        return injector

    # ------------------------------------------------------------------ hook
    def intercept(self, kernel, task, sysno: int, args) -> int | None:
        """Return a negative errno to inject a fault, or None to pass."""
        seq = self.seq
        self.seq += 1

        if self._replay is not None:
            record = self._replay.get(seq)
            if record is None:
                return None
            self.plan.append(record)
            return -record.errno

        for rule in self.rules:
            if rule.matches(task, sysno, args):
                self.plan.append(
                    FaultRecord(seq, task.tid, sysno, rule.errno, tuple(args))
                )
                return -rule.errno

        if (
            self.rng is not None
            and sysno in self.eligible
            and self.rng.chance(*self.rate)
        ):
            injected = self.errnos[self.rng.below(len(self.errnos))]
            self.plan.append(
                FaultRecord(seq, task.tid, sysno, injected, tuple(args))
            )
            return -injected
        return None

    # ------------------------------------------------------------ diagnostics
    def plan_digest(self) -> str:
        h = hashlib.sha256()
        for r in self.plan:
            h.update(b"%d:%d:%d:%d;" % (r.seq, r.tid, r.sysno, r.errno))
        return h.hexdigest()

    def plan_json(self) -> list[dict]:
        return [r.to_json() for r in self.plan]
