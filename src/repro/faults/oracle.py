"""Differential trace oracle: two runs of one guest must agree.

This generalises the §V-A exhaustiveness experiment
(:mod:`repro.bench.exhaustiveness`): instead of only comparing syscall
*counts* across tools on the happy schedule, :func:`run_guest` runs a guest
under an arbitrary (tool, schedule policy, fault plan) configuration and
returns a :class:`GuestReport`; :func:`differences` then checks that two
reports are observationally equivalent — same exit status, same output,
same filesystem effects and (for full-expressiveness mechanisms) the same
per-thread syscall name sequence.

Traces are compared per thread by *name only*: pointer arguments and
cross-thread interleaving legitimately differ between mechanisms (stack
layouts shift, emulation order varies), but the sequence of syscalls each
thread issues is part of program semantics and must not.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import GuestCrash
from repro.interpose.lazypoline import Lazypoline
from repro.interpose.ptrace_tool import PtraceTool
from repro.interpose.seccomp_user_tool import SeccompUserTool
from repro.interpose.sud_tool import SudTool
from repro.interpose.zpoline import Zpoline
from repro.kernel.machine import Machine

TOOLS = {
    "zpoline": Zpoline,
    "lazypoline": Lazypoline,
    "sud": SudTool,
    "seccomp_user": SeccompUserTool,
    "ptrace": PtraceTool,
}

#: Tool pairs with full expressiveness (Table I) — these must observe the
#: *identical* per-thread syscall stream, not merely preserve behaviour.
FULL_EXPRESSIVENESS = ("lazypoline", "sud", "seccomp_user")


class TidTracer:
    """Interposer recording ``(tid, name)`` per intercepted syscall."""

    def __init__(self):
        self.events: list[tuple[int, str]] = []

    def __call__(self, ctx):
        self.events.append((ctx.task.tid, ctx.name))
        return ctx.do_syscall()


@dataclass
class GuestReport:
    """Everything observable about one run of a guest."""

    tool: str | None
    exit: int | None
    signal: int | None
    stdout: bytes
    fs: tuple
    trace: tuple[tuple[int, str], ...]
    crashed: bool = False
    schedule_digest: str | None = None
    fault_digest: str | None = None
    fault_plan: tuple = ()
    #: Simulated machine clock (cycles) and retired-instruction total at
    #: the end of the run — the superblock tier must keep both bit-exact.
    cycles: int = 0
    instructions: int = 0

    def trace_by_tid(self) -> dict[int, tuple[str, ...]]:
        out: dict[int, list[str]] = {}
        for tid, name in self.trace:
            out.setdefault(tid, []).append(name)
        return {tid: tuple(names) for tid, names in out.items()}

    def digest(self) -> str:
        """Byte-stable digest of the whole observable outcome."""
        h = hashlib.sha256()
        h.update(repr((self.exit, self.signal, self.crashed)).encode())
        h.update(self.stdout)
        h.update(repr(self.fs).encode())
        h.update(repr(self.trace).encode())
        if self.schedule_digest:
            h.update(self.schedule_digest.encode())
        if self.fault_digest:
            h.update(self.fault_digest.encode())
        return h.hexdigest()


def run_guest(
    image,
    tool: str | None = None,
    *,
    policy=None,
    injector=None,
    interposer=None,
    argv: tuple[str, ...] = (),
    max_instructions: int = 3_000_000,
    setup=None,
    configure=None,
    cores: int = 1,
    smp_seed: int = 0,
    mmap_min_addr: int = 0,
    tool_opts: dict | None = None,
    machine_opts: dict | None = None,
) -> GuestReport:
    """Run ``image`` under ``tool`` with optional schedule/fault harnessing.

    ``image`` may be a :class:`ProgramImage` or a zero-argument callable
    producing one (so corpus entries rebuild fresh per run).  ``setup`` runs
    against the bare machine (seed the fs, register execve binaries);
    ``configure(machine, process, tool_instance)`` runs after the tool is
    installed but before execution — the hook where explorer windows are
    derived from the installed tool's blob addresses.  ``cores``/``smp_seed``
    run the guest on a deterministic SMP machine: guest-visible behaviour
    must not depend on them — that is exactly what the oracle checks.
    ``mmap_min_addr`` makes the machine hostile to VA-0 tools, and
    ``tool_opts`` passes extra keywords (e.g. ``degrade_policy=...``) to the
    tool's ``_install`` — together they drive the graceful-degradation
    scenarios.  ``machine_opts`` forwards extra keywords to
    :class:`Machine` (e.g. ``superblocks=False`` to pin the interpreter to
    one tier for a lockstep comparison).
    """
    machine = Machine(
        policy=policy, cores=cores, smp_seed=smp_seed,
        mmap_min_addr=mmap_min_addr,
        **(machine_opts or {}),
    )
    if injector is not None:
        machine.kernel.fault_injector = injector
    if setup is not None:
        setup(machine)
    if callable(image) and not hasattr(image, "segments"):
        image = image()
    process = machine.load(image, argv)
    tracer = interposer if interposer is not None else TidTracer()
    tool_instance = None
    if tool is not None:
        tool_instance = TOOLS[tool]._install(
            machine, process, tracer, **(tool_opts or {})
        )
    if configure is not None:
        configure(machine, process, tool_instance)
    crashed = False
    try:
        machine.run(
            until=lambda: not any(t.alive for t in machine.kernel.tasks.values()),
            max_instructions=max_instructions,
        )
    except GuestCrash:
        crashed = True
    if any(t.alive for t in machine.kernel.tasks.values()):
        crashed = True
    fs_snapshot = tuple(
        sorted(
            (inode.path, bytes(inode.data))
            for inode in machine.fs._inodes.values()
            if not inode.is_dir
        )
    )
    trace = tuple(tracer.events) if isinstance(tracer, TidTracer) else ()
    report = GuestReport(
        tool=tool,
        exit=process.exit_code,
        signal=process.term_signal,
        stdout=process.stdout,
        fs=fs_snapshot,
        trace=trace,
        crashed=crashed,
        cycles=machine.clock,
        instructions=machine.scheduler.total_instructions,
    )
    if policy is not None and hasattr(policy, "trace"):
        report.schedule_digest = policy.trace.digest()
    if injector is not None:
        report.fault_digest = injector.plan_digest()
        report.fault_plan = tuple(injector.plan)
    return report


def differences(
    a: GuestReport,
    b: GuestReport,
    *,
    compare_trace: bool = True,
    compare_cycles: bool = False,
) -> list[str]:
    """Human-readable list of observable divergences (empty = equivalent).

    ``compare_cycles`` additionally requires bit-identical simulated clock
    and retired-instruction totals — the lockstep criterion for runs that
    differ only in host-side execution strategy (e.g. superblock tiering),
    never across different tools or schedules.
    """
    diffs: list[str] = []
    if compare_cycles:
        if a.cycles != b.cycles:
            diffs.append(f"simulated cycles: {a.cycles} vs {b.cycles}")
        if a.instructions != b.instructions:
            diffs.append(
                f"instructions retired: {a.instructions} vs {b.instructions}"
            )
    if a.crashed != b.crashed:
        diffs.append(f"crashed: {a.crashed} vs {b.crashed}")
    if a.exit != b.exit:
        diffs.append(f"exit code: {a.exit} vs {b.exit}")
    if a.signal != b.signal:
        diffs.append(f"terminating signal: {a.signal} vs {b.signal}")
    if a.stdout != b.stdout:
        diffs.append(f"stdout: {a.stdout!r} vs {b.stdout!r}")
    if a.fs != b.fs:
        paths_a = {p for p, _ in a.fs}
        paths_b = {p for p, _ in b.fs}
        if paths_a != paths_b:
            diffs.append(
                f"fs paths differ: only-left={sorted(paths_a - paths_b)} "
                f"only-right={sorted(paths_b - paths_a)}"
            )
        else:
            changed = [
                p
                for (p, da), (_, db) in zip(a.fs, b.fs)
                if da != db
            ]
            diffs.append(f"fs contents differ at {changed}")
    if compare_trace:
        ta, tb = a.trace_by_tid(), b.trace_by_tid()
        if set(ta) != set(tb):
            diffs.append(f"thread sets differ: {sorted(ta)} vs {sorted(tb)}")
        else:
            for tid in sorted(ta):
                if ta[tid] != tb[tid]:
                    pos = next(
                        (
                            i
                            for i, (x, y) in enumerate(zip(ta[tid], tb[tid]))
                            if x != y
                        ),
                        min(len(ta[tid]), len(tb[tid])),
                    )
                    diffs.append(
                        f"tid {tid} trace diverges at #{pos}: "
                        f"{ta[tid][pos:pos + 3]} vs {tb[tid][pos:pos + 3]} "
                        f"(lengths {len(ta[tid])}/{len(tb[tid])})"
                    )
    return diffs
