"""Fleet-scale serving: shard Machines across host processes.

The ROADMAP's "heavy traffic from millions of users" layer: a
:class:`Cluster` boots N independent simulated machines (one per host
process, deterministic per-shard seeds), a :class:`LoadBalancer` splits
wrk traffic across their prefork webservers — direct or ring-batched —
and the report merges throughput, latency percentiles and per-shard obs
summaries.  See :mod:`repro.cluster.cluster` for the determinism
contract.

Fleet fault tolerance: a seeded :class:`ChaosPlan` injects per-shard
crash/hang/degraded/hostile faults, a :class:`HealthModel` (up → suspect
→ down, per-shard :class:`CircuitBreaker`) feeds the balancer's failover
re-planning, and a :class:`RetryPolicy` drives capped-exponential-backoff
retry rounds — the merged report gains an ``availability`` section.
With no plan injected, reports are byte-identical to the fault-free
cluster.

Quickstart::

    from repro.cluster import Cluster

    report = Cluster(shards=4, tool="lazypoline", batched=True).serve(
        requests=200
    )
    print(report["requests_per_sec"], report["latency_p99_cycles"])
"""

from repro.cluster.balancer import POLICIES, LoadBalancer, fnv1a, session_of
from repro.cluster.chaos import FAULT_KINDS, ChaosPlan, ShardFault
from repro.cluster.cluster import Cluster
from repro.cluster.health import CircuitBreaker, HealthModel, RetryPolicy
from repro.cluster.shard import obs_summary, run_shard

__all__ = [
    "ChaosPlan",
    "CircuitBreaker",
    "Cluster",
    "FAULT_KINDS",
    "HealthModel",
    "LoadBalancer",
    "POLICIES",
    "RetryPolicy",
    "ShardFault",
    "fnv1a",
    "obs_summary",
    "run_shard",
    "session_of",
]
