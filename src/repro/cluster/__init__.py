"""Fleet-scale serving: shard Machines across host processes.

The ROADMAP's "heavy traffic from millions of users" layer: a
:class:`Cluster` boots N independent simulated machines (one per host
process, deterministic per-shard seeds), a :class:`LoadBalancer` splits
wrk traffic across their prefork webservers — direct or ring-batched —
and the report merges throughput, latency percentiles and per-shard obs
summaries.  See :mod:`repro.cluster.cluster` for the determinism
contract.

Quickstart::

    from repro.cluster import Cluster

    report = Cluster(shards=4, tool="lazypoline", batched=True).serve(
        requests=200
    )
    print(report["requests_per_sec"], report["latency_p99_cycles"])
"""

from repro.cluster.balancer import POLICIES, LoadBalancer, fnv1a, session_of
from repro.cluster.cluster import Cluster
from repro.cluster.shard import obs_summary, run_shard

__all__ = [
    "Cluster",
    "LoadBalancer",
    "POLICIES",
    "fnv1a",
    "obs_summary",
    "run_shard",
    "session_of",
]
