"""The cluster: N Machine+webserver shards behind a simulated balancer.

``Cluster(shards=4, tool="lazypoline", batched=True).serve(requests=200)``
boots four independent simulated machines across host processes, splits
the wrk request stream across them through a :class:`LoadBalancer`, runs
each shard's webserver leg (direct, ring-batched, or — with
``batched="async"`` — the event-loop worker overlapping in-flight
requests through the asynchronous ring drain), and merges the results
into one cluster-wide report.

With ``sessions=S`` the shards share backend session state: the balancer
classifies every request as a session hit, cold miss or cross-shard
migration (see :mod:`repro.cluster.balancer`), and each miss/migration
costs the serving shard ``session_miss_cycles`` of user-space work,
threaded into the shard as a per-request ``request_extra_cycles``
schedule.  Sticky policies (``consistent_hash``) keep sessions home and
avoid the surcharge; ``round_robin`` pays a migration on nearly every
request — so policies now diverge in throughput and latency, not just in
per-shard counts.  ``sessions=0`` (default) reproduces the sessionless
report byte-for-byte.

Fleet fault tolerance (PR 10) rides the same machinery.  ``chaos=``
takes a :class:`~repro.cluster.chaos.ChaosPlan` (seeded per-shard crash/
hang/degraded/hostile faults, delivered through the shard configs so
fork-Pool and inline runs inject identically); ``deadline_cycles=`` arms
a per-request deadline.  When either is active, ``serve`` becomes a
retry loop: round 0 serves the planned schedule, then failed requests
(unserved on a crashed/hung shard, or served past their deadline) are
re-planned over live shards by the health-checked balancer
(:class:`~repro.cluster.health.HealthModel`: up → suspect → down,
per-shard circuit breakers with deterministic cooldown ticks) under a
capped-exponential-backoff :class:`~repro.cluster.health.RetryPolicy` —
all seeded and replayable.  The merged report gains an ``availability``
section (success rate, retries, failovers, p99 including failures).
**With the fault layer inactive the report is byte-identical to the
fault-free cluster** — the plain path below is untouched.

Determinism is the design constraint, not an afterthought:

* shard ``i`` seeds its machine with ``smp_seed + i`` — shard 0 of a
  1-shard cluster is *byte-identical* to a direct
  ``run_workload("webserver", ...)`` call with the same seed (retry
  round ``r`` re-seeds shard ``i`` with ``smp_seed + shards*r + i``);
* the balancer plans the whole request schedule before any shard boots,
  so there is no cross-process ordering to race on;
* every number in the report is simulated (cycles, simulated seconds,
  instruction counts) — host wall-clock and host scheduling never leak
  into it, so the same ``(shards, smp_seed, policy, chaos)`` always
  produces the same report.

Aggregation: cluster rps is total measured requests over the *slowest*
shard's measured window (shards run concurrently in simulated time; the
cluster is done when the last one is), latency percentiles are computed
over the merged per-request sample set, and per-shard obs summaries are
merged by summing the tracer's aggregate counters (raw event streams
never cross the process boundary).
"""

from __future__ import annotations

import multiprocessing
import os

from repro.cluster.balancer import POLICIES, LoadBalancer
from repro.cluster.chaos import ChaosPlan
from repro.cluster.health import DOWN, HealthModel, RetryPolicy
from repro.cluster.shard import run_shard
from repro.faults.rng import SplitMix64
from repro.workloads.wrk import latency_percentiles


def _merge_obs(per_shard: list[dict]) -> dict:
    """Sum the aggregate counters; keep health per shard (modes don't add).

    Tolerant of partial entries: a shard that died at boot reports
    ``obs`` of ``None`` (its ``health_per_shard`` slot stays ``None``),
    and missing counter keys default to 0 — summaries from older or
    truncated shard rows still merge.
    """
    counts: dict[str, int] = {}
    interposition: dict[str, int] = {}
    totals = {"ring_enters": 0, "ring_entries": 0, "ring_parks": 0,
              "ring_completes": 0, "ring_timeouts": 0, "slowpath_total": 0,
              "rewritten_sites": 0, "dropped_events": 0}
    for shard in per_shard:
        obs = shard.get("obs")
        if obs is None:
            continue
        for kind, n in obs.get("counts", {}).items():
            counts[kind] = counts.get(kind, 0) + n
        for name, n in obs.get("interposition_counts", {}).items():
            interposition[name] = interposition.get(name, 0) + n
        for key in totals:
            totals[key] += obs.get(key, 0)
    return {
        "counts": counts,
        "interposition_counts": interposition,
        **totals,
        "health_per_shard": [
            s["obs"]["health"] if s.get("obs") else None for s in per_shard
        ],
    }


class Cluster:
    """A fleet of webserver shards behind one simulated load balancer."""

    def __init__(
        self,
        shards: int = 2,
        *,
        tool: str | None = None,
        policy: str = "round_robin",
        batched: bool | str = False,
        cores: int = 1,
        smp_seed: int = 0,
        server: str = "nginx",
        file_size: int = 8192,
        sessions: int = 0,
        session_miss_cycles: int = 40_000,
        processes: bool | None = None,
        tool_opts: dict | None = None,
        machine_opts: dict | None = None,
        chaos: ChaosPlan | list | None = None,
        deadline_cycles: int | None = None,
        retry: RetryPolicy | None = None,
        health_opts: dict | None = None,
        tracer=None,
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown balancing policy {policy!r}; "
                f"choose from {', '.join(POLICIES)}"
            )
        self.shards = shards
        self.tool = tool
        self.policy = policy
        self.batched = batched
        self.cores = cores
        self.smp_seed = smp_seed
        self.server = server
        self.file_size = file_size
        self.sessions = sessions
        self.session_miss_cycles = session_miss_cycles
        self.processes = processes
        #: the balancer behind the most recent plan (session stats source)
        self.last_balancer: LoadBalancer | None = None
        self.tool_opts = tool_opts
        self.machine_opts = machine_opts
        # ---------------------------------------------- fault layer (PR 10)
        if chaos is not None and not isinstance(chaos, ChaosPlan):
            chaos = ChaosPlan(list(chaos))
        if chaos is not None:
            for fault in chaos:
                if fault.shard >= shards:
                    raise ValueError(
                        f"fault targets shard {fault.shard} of a "
                        f"{shards}-shard cluster"
                    )
        self.chaos = chaos
        self.deadline_cycles = deadline_cycles
        self.retry = retry
        self.health_opts = health_opts
        self.tracer = tracer
        #: the health model behind the most recent faulted serve
        self.last_health: HealthModel | None = None

    def _fault_active(self) -> bool:
        """Whether serve() must take the retry-loop path.  A present but
        empty plan (and a configured RetryPolicy alone) keeps the plain
        path — and its byte-identical report."""
        return bool(self.chaos is not None and len(self.chaos)) or \
            self.deadline_cycles is not None

    # ------------------------------------------------------------------ plan
    def shard_configs(
        self,
        requests: int,
        *,
        warmup: int = 20,
        connections: int | None = None,
        client_cycles_per_request: int = 0,
    ) -> list[dict]:
        """Plan the run: balance ``requests`` and build one picklable
        config per shard (shard ``i`` gets seed ``smp_seed + i``).

        A scheduled :class:`~repro.cluster.chaos.ShardFault` rides its
        shard's config as ``config["chaos"]`` — the only delivery path,
        so fork-Pool and inline runs inject identically."""
        balancer = LoadBalancer(self.shards, self.policy)
        counts = balancer.plan(requests, sessions=self.sessions)
        self.last_balancer = balancer
        if min(counts) < 1:
            raise ValueError(
                f"{requests} requests across {self.shards} shards under "
                f"{self.policy!r} starves a shard (counts={counts}); "
                f"send more traffic"
            )
        miss_extra = (
            balancer.miss_schedule(self.session_miss_cycles)
            if self.sessions
            else None
        )
        configs = []
        for index, count in enumerate(counts):
            config = {
                "shard": index,
                "smp_seed": self.smp_seed + index,
                "workload": "webserver",
                "server": self.server,
                "tool": self.tool,
                "cores": self.cores,
                "batched": self.batched,
                "file_size": self.file_size,
                "requests": count,
                "warmup": warmup,
                "connections": connections,
                "client_cycles_per_request": client_cycles_per_request,
            }
            if miss_extra is not None:
                config["request_extra_cycles"] = miss_extra[index]
            if self.tool_opts is not None:
                config["tool_opts"] = self.tool_opts
            if self.machine_opts is not None:
                config["machine_opts"] = self.machine_opts
            if self.chaos is not None:
                fault = self.chaos.fault_for(index)
                if fault is not None:
                    config["chaos"] = fault.to_config()
            configs.append(config)
        return configs

    # ------------------------------------------------------------------ boot
    def _run_shards(self, configs: list[dict]) -> list[dict]:
        use_processes = self.processes
        if use_processes is None:
            use_processes = len(configs) > 1
        if not use_processes:
            return [run_shard(c) for c in configs]
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # no fork on this host: results are identical
            ctx = multiprocessing.get_context("spawn")
        workers = min(len(configs), os.cpu_count() or 1)
        with ctx.Pool(workers) as pool:
            return pool.map(run_shard, configs)

    # ----------------------------------------------------------------- serve
    def serve(
        self,
        requests: int = 200,
        *,
        warmup: int = 20,
        connections: int | None = None,
        client_cycles_per_request: int = 0,
    ) -> dict:
        """Serve ``requests`` across the fleet and return the merged report.

        ``warmup`` and ``connections`` are per shard (each shard runs its
        own wrk client); ``requests`` is the cluster-wide total the
        balancer splits.  With the fault layer active (a non-empty chaos
        plan or a per-request deadline) this becomes the health-checked
        failover/retry loop; otherwise it is the original single-round
        serve, report byte-identical to the fault-free cluster.
        """
        if self._fault_active():
            return self._serve_faulted(
                requests,
                warmup=warmup,
                connections=connections,
                client_cycles_per_request=client_cycles_per_request,
            )
        configs = self.shard_configs(
            requests,
            warmup=warmup,
            connections=connections,
            client_cycles_per_request=client_cycles_per_request,
        )
        per_shard = sorted(self._run_shards(configs), key=lambda s: s["shard"])
        rows = [s["result"] for s in per_shard]

        # The fleet finishes when its slowest shard does.
        measured_seconds = max(r["measured_seconds"] for r in rows)
        total_requests = sum(r["requests"] for r in rows)
        samples: list[int] = []
        for row in rows:
            samples.extend(row["latency_samples_cycles"])
        pct = latency_percentiles(samples)

        session_keys = {}
        if self.sessions:
            # Only present when the session model is on, so sessionless
            # reports stay byte-identical to the pre-session cluster.
            session_keys = {
                "sessions": self.sessions,
                "session_miss_cycles": self.session_miss_cycles,
                "session_stats": self.last_balancer.session_stats(),
            }
        return {
            "workload": "cluster-webserver",
            "shards": self.shards,
            "policy": self.policy,
            "tool": self.tool,
            "batched": self.batched,
            "cores": self.cores,
            "smp_seed": self.smp_seed,
            "server": self.server,
            "file_size": self.file_size,
            "requests_total": total_requests,
            "requests_per_shard": [r["requests"] for r in rows],
            "warmup_per_shard": warmup,
            "requests_per_sec": (
                total_requests / measured_seconds if measured_seconds else 0.0
            ),
            "measured_seconds": measured_seconds,
            "latency_p50_cycles": pct["p50"],
            "latency_p95_cycles": pct["p95"],
            "latency_p99_cycles": pct["p99"],
            "guest_mips_per_shard": [r["guest_mips"] for r in rows],
            "guest_mips_total": sum(r["guest_mips"] for r in rows),
            **session_keys,
            "obs": _merge_obs(per_shard),
            "results": rows,
        }

    # ------------------------------------------------------ faulted serving
    def _serve_faulted(
        self,
        requests: int,
        *,
        warmup: int,
        connections: int | None,
        client_cycles_per_request: int,
    ) -> dict:
        """The chaos path: round 0 + health-checked failover/retry rounds."""
        from repro.cpu.costs import CostModel

        freq = CostModel().frequency_hz
        deadline = self.deadline_cycles
        retry = self.retry if self.retry is not None else RetryPolicy()
        jitter_rng = SplitMix64(self.smp_seed ^ 0xC11A05F417)
        health = self.last_health = HealthModel(
            self.shards, tracer=self.tracer, **(self.health_opts or {})
        )

        configs = self.shard_configs(
            requests,
            warmup=warmup,
            connections=connections,
            client_cycles_per_request=client_cycles_per_request,
        )
        balancer = self.last_balancer
        assigned: list[list[int]] = [[] for _ in range(self.shards)]
        for rid, shard in enumerate(balancer.assignments):
            assigned[shard].append(rid)

        per_shard = sorted(self._run_shards(configs), key=lambda s: s["shard"])

        # per-request outcome state, across rounds
        success: dict[int, int] = {}  # rid -> client-perceived latency
        penalty: dict[int, int] = {}  # rid -> accumulated backoff cycles
        duplicate_serves = 0
        timeout_count = 0

        def evaluate(entries: list[dict], id_lists: dict[int, list[int]],
                     round_: int, ts: int) -> list[tuple[int, int]]:
            """Fold one round's shard rows into outcomes + heartbeats;
            returns the failed ``(rid, from_shard)`` pairs."""
            nonlocal duplicate_serves, timeout_count
            failed: list[tuple[int, int]] = []
            for entry in entries:
                shard = entry["shard"]
                ids = id_lists[shard]
                result = entry["result"]
                info = entry.get("chaos")
                if result is None:
                    served = 0
                    status = "dead"
                    samples = []
                else:
                    served = result.get("served", result["requests"])
                    status = info["status"] if info else "ok"
                    samples = result["latency_samples_cycles"]
                timeouts = 0
                for j, rid in enumerate(ids[:served]):
                    latency = samples[j] if j < len(samples) else 0
                    if deadline is not None and latency > deadline:
                        timeouts += 1
                        failed.append((rid, shard))
                        continue
                    if rid in success:
                        duplicate_serves += 1
                        continue
                    success[rid] = latency + penalty.get(rid, 0)
                for rid in ids[served:]:
                    failed.append((rid, shard))
                timeout_count += timeouts
                health.observe(
                    shard,
                    {"status": status, "assigned": len(ids),
                     "served": served, "timeouts": timeouts},
                    round_=round_, ts=ts,
                )
            return failed

        def window_cycles(entries: list[dict]) -> int:
            rows = [e["result"] for e in entries if e["result"] is not None]
            if not rows:
                return 0
            return int(max(r["measured_seconds"] for r in rows) * freq)

        clock = window_cycles(per_shard)
        failed = evaluate(per_shard, {s: assigned[s] for s in
                                      range(self.shards)}, 0, clock)

        all_entries = list(per_shard)
        backoffs: list[int] = []
        retry_rounds: list[dict] = []
        failover_count = 0
        total_retried = 0
        rounds_run = 1

        for attempt in range(1, retry.max_attempts):
            if not failed:
                break
            health.begin_round(attempt, ts=clock)
            routable = set(health.routable())
            if not routable:
                break
            backoff = retry.backoff(attempt, jitter_rng)
            backoffs.append(backoff)
            clock += backoff
            failed.sort()
            origin = dict(failed)
            ids = [rid for rid, _ in failed]
            for rid in ids:
                penalty[rid] = penalty.get(rid, 0) + backoff
            balancer.set_down(set(range(self.shards)) - routable)
            routed, events = self._route(ids)
            routed = self._trim_probes(routed, health, routable)
            event_of = dict(zip(ids, events))
            per_target: dict[int, list[int]] = {}
            for rid, target in routed:
                per_target.setdefault(target, []).append(rid)
                if target != origin[rid]:
                    failover_count += 1
            if self.tracer is not None:
                pairs: dict[tuple[int, int], int] = {}
                for rid, target in routed:
                    key = (origin[rid], target)
                    pairs[key] = pairs.get(key, 0) + 1
                for (src, dst), n in sorted(pairs.items()):
                    self.tracer.failover(clock, src, dst, n, round_=attempt)
                self.tracer.retry(clock, attempt, len(routed), backoff)
            total_retried += len(routed)

            retry_configs = []
            for target in sorted(per_target):
                retry_configs.append(self._retry_config(
                    target, per_target[target], attempt,
                    warmup=warmup, connections=connections,
                    client_cycles_per_request=client_cycles_per_request,
                    event_of=event_of,
                ))
            entries = sorted(self._run_shards(retry_configs),
                             key=lambda s: s["shard"])
            all_entries.extend(entries)
            clock += window_cycles(entries)
            failed = evaluate(entries, per_target, attempt, clock)
            retry_rounds.append({
                "round": attempt,
                "backoff_cycles": backoff,
                "requests": len(routed),
                "per_shard": {str(s): len(per_target[s])
                              for s in sorted(per_target)},
                "failed_after": len(failed),
            })
            rounds_run += 1

        # ----------------------------------------------------------- report
        rows = [s["result"] for s in per_shard]
        live_rows = [r for r in rows if r is not None]
        completed = len(success)
        final_failed = sorted(rid for rid, _ in failed)
        ok_samples = sorted(success.values())
        pct = latency_percentiles(ok_samples)
        fail_latency = deadline if deadline is not None else \
            max((f.deadline_cycles for f in (self.chaos or ())),
                default=4_000_000)
        pct_incl = latency_percentiles(
            ok_samples + [fail_latency] * len(final_failed)
        )
        measured_seconds = clock / freq if freq else 0.0
        obs = _merge_obs(all_entries)
        obs["health_per_shard"] = [
            s["obs"]["health"] if s.get("obs") else None for s in per_shard
        ]

        session_keys = {}
        if self.sessions:
            session_keys = {
                "sessions": self.sessions,
                "session_miss_cycles": self.session_miss_cycles,
                "session_stats": balancer.session_stats(),
            }
        availability = {
            "requests": requests,
            "completed": completed,
            "failed": len(final_failed),
            "failed_ids": final_failed,
            "duplicate_serves": duplicate_serves,
            "success_rate": round(completed / requests, 6) if requests
            else 1.0,
            "rounds": rounds_run,
            "retries": total_retried,
            "failovers": failover_count,
            "timeouts": timeout_count,
            "ring_timeouts": obs["ring_timeouts"],
            "backoff_cycles": backoffs,
            "retry_rounds": retry_rounds,
            "shards_down": [s for s in range(self.shards)
                            if health.states[s] == DOWN],
            "health": health.snapshot(),
            "latency_p99_cycles_incl_failures": pct_incl["p99"],
        }
        return {
            "workload": "cluster-webserver",
            "shards": self.shards,
            "policy": self.policy,
            "tool": self.tool,
            "batched": self.batched,
            "cores": self.cores,
            "smp_seed": self.smp_seed,
            "server": self.server,
            "file_size": self.file_size,
            "requests_total": completed,
            "requests_per_shard": [r["requests"] if r else 0 for r in rows],
            "warmup_per_shard": warmup,
            "requests_per_sec": (
                completed / measured_seconds if measured_seconds else 0.0
            ),
            "measured_seconds": measured_seconds,
            "latency_p50_cycles": pct["p50"],
            "latency_p95_cycles": pct["p95"],
            "latency_p99_cycles": pct["p99"],
            "guest_mips_per_shard": [
                r["guest_mips"] if r else 0.0 for r in rows
            ],
            "guest_mips_total": sum(
                r["guest_mips"] for r in live_rows
            ),
            **session_keys,
            "chaos": {
                "plan": [f.to_config() | {"shard": f.shard}
                         for f in (self.chaos or ())],
                "deadline_cycles": deadline,
                "retry": {
                    "max_attempts": retry.max_attempts,
                    "backoff_base_cycles": retry.backoff_base_cycles,
                    "backoff_cap_cycles": retry.backoff_cap_cycles,
                },
            },
            "availability": availability,
            "obs": obs,
            "results": rows,
        }

    # ------------------------------------------------------- faulted helpers
    def _route(self, ids: list[int]) -> tuple[list[tuple[int, int]], list]:
        """Replan ``ids`` on the live balancer; returns the routed pairs
        and the aligned session events."""
        balancer = self.last_balancer
        start = len(balancer.session_events)
        routed = balancer.replan(ids, sessions=self.sessions)
        return routed, balancer.session_events[start:]

    def _trim_probes(self, routed: list[tuple[int, int]],
                     health: HealthModel,
                     routable: set[int]) -> list[tuple[int, int]]:
        """Cap half-open shards at their probe quota; overflow re-routes
        to fully-live shards (or stays put when only probes are live)."""
        quotas = {s: health.probe_quota(s) for s in routable}
        if not any(q is not None for q in quotas.values()):
            return routed
        kept: list[tuple[int, int]] = []
        counts: dict[int, int] = {}
        overflow: list[int] = []
        for rid, target in routed:
            quota = quotas.get(target)
            if quota is not None and counts.get(target, 0) >= quota:
                overflow.append(rid)
                continue
            counts[target] = counts.get(target, 0) + 1
            kept.append((rid, target))
        if overflow:
            probing = {s for s, q in quotas.items() if q is not None}
            steady = routable - probing
            if steady:
                balancer = self.last_balancer
                balancer.set_down(set(range(self.shards)) - steady)
                kept.extend(balancer.replan(overflow,
                                            sessions=self.sessions))
                balancer.set_down(set(range(self.shards)) - routable)
            else:  # only probes are live: quota yields to availability
                for rid, target in routed:
                    if rid in overflow:
                        kept.append((rid, target))
        return sorted(kept)

    def _retry_config(self, shard: int, ids: list[int], round_: int, *,
                      warmup: int, connections: int | None,
                      client_cycles_per_request: int,
                      event_of: dict) -> dict:
        """One retry-round shard config: fresh machine, round-distinct
        seed, persistent (degraded/hostile) chaos re-applied — one-shot
        faults (crash/hang) do not repeat, which is what a half-open
        probe restart means."""
        config = {
            "shard": shard,
            "smp_seed": self.smp_seed + self.shards * round_ + shard,
            "workload": "webserver",
            "server": self.server,
            "tool": self.tool,
            "cores": self.cores,
            "batched": self.batched,
            "file_size": self.file_size,
            "requests": len(ids),
            "warmup": warmup,
            "connections": connections,
            "client_cycles_per_request": client_cycles_per_request,
        }
        if self.sessions:
            config["request_extra_cycles"] = [
                self.session_miss_cycles
                if event_of.get(rid) in ("miss", "migrate") else 0
                for rid in ids
            ]
        if self.tool_opts is not None:
            config["tool_opts"] = self.tool_opts
        if self.machine_opts is not None:
            config["machine_opts"] = self.machine_opts
        if self.chaos is not None:
            fault = self.chaos.fault_for(shard)
            if fault is not None and fault.kind in ("degraded", "hostile"):
                config["chaos"] = fault.to_config()
        return config
