"""The cluster: N Machine+webserver shards behind a simulated balancer.

``Cluster(shards=4, tool="lazypoline", batched=True).serve(requests=200)``
boots four independent simulated machines across host processes, splits
the wrk request stream across them through a :class:`LoadBalancer`, runs
each shard's webserver leg (direct, ring-batched, or — with
``batched="async"`` — the event-loop worker overlapping in-flight
requests through the asynchronous ring drain), and merges the results
into one cluster-wide report.

With ``sessions=S`` the shards share backend session state: the balancer
classifies every request as a session hit, cold miss or cross-shard
migration (see :mod:`repro.cluster.balancer`), and each miss/migration
costs the serving shard ``session_miss_cycles`` of user-space work,
threaded into the shard as a per-request ``request_extra_cycles``
schedule.  Sticky policies (``consistent_hash``) keep sessions home and
avoid the surcharge; ``round_robin`` pays a migration on nearly every
request — so policies now diverge in throughput and latency, not just in
per-shard counts.  ``sessions=0`` (default) reproduces the sessionless
report byte-for-byte.

Determinism is the design constraint, not an afterthought:

* shard ``i`` seeds its machine with ``smp_seed + i`` — shard 0 of a
  1-shard cluster is *byte-identical* to a direct
  ``run_workload("webserver", ...)`` call with the same seed;
* the balancer plans the whole request schedule before any shard boots,
  so there is no cross-process ordering to race on;
* every number in the report is simulated (cycles, simulated seconds,
  instruction counts) — host wall-clock and host scheduling never leak
  into it, so the same ``(shards, smp_seed, policy)`` always produces
  the same report.

Aggregation: cluster rps is total measured requests over the *slowest*
shard's measured window (shards run concurrently in simulated time; the
cluster is done when the last one is), latency percentiles are computed
over the merged per-request sample set, and per-shard obs summaries are
merged by summing the tracer's aggregate counters (raw event streams
never cross the process boundary).
"""

from __future__ import annotations

import multiprocessing
import os

from repro.cluster.balancer import POLICIES, LoadBalancer
from repro.cluster.shard import run_shard
from repro.workloads.wrk import latency_percentiles


def _merge_obs(per_shard: list[dict]) -> dict:
    """Sum the aggregate counters; keep health per shard (modes don't add)."""
    counts: dict[str, int] = {}
    interposition: dict[str, int] = {}
    totals = {"ring_enters": 0, "ring_entries": 0, "ring_parks": 0,
              "ring_completes": 0, "slowpath_total": 0,
              "rewritten_sites": 0, "dropped_events": 0}
    for shard in per_shard:
        obs = shard["obs"]
        for kind, n in obs["counts"].items():
            counts[kind] = counts.get(kind, 0) + n
        for name, n in obs["interposition_counts"].items():
            interposition[name] = interposition.get(name, 0) + n
        for key in totals:
            totals[key] += obs[key]
    return {
        "counts": counts,
        "interposition_counts": interposition,
        **totals,
        "health_per_shard": [s["obs"]["health"] for s in per_shard],
    }


class Cluster:
    """A fleet of webserver shards behind one simulated load balancer."""

    def __init__(
        self,
        shards: int = 2,
        *,
        tool: str | None = None,
        policy: str = "round_robin",
        batched: bool | str = False,
        cores: int = 1,
        smp_seed: int = 0,
        server: str = "nginx",
        file_size: int = 8192,
        sessions: int = 0,
        session_miss_cycles: int = 40_000,
        processes: bool | None = None,
        tool_opts: dict | None = None,
        machine_opts: dict | None = None,
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown balancing policy {policy!r}; "
                f"choose from {', '.join(POLICIES)}"
            )
        self.shards = shards
        self.tool = tool
        self.policy = policy
        self.batched = batched
        self.cores = cores
        self.smp_seed = smp_seed
        self.server = server
        self.file_size = file_size
        self.sessions = sessions
        self.session_miss_cycles = session_miss_cycles
        self.processes = processes
        #: the balancer behind the most recent plan (session stats source)
        self.last_balancer: LoadBalancer | None = None
        self.tool_opts = tool_opts
        self.machine_opts = machine_opts

    # ------------------------------------------------------------------ plan
    def shard_configs(
        self,
        requests: int,
        *,
        warmup: int = 20,
        connections: int | None = None,
        client_cycles_per_request: int = 0,
    ) -> list[dict]:
        """Plan the run: balance ``requests`` and build one picklable
        config per shard (shard ``i`` gets seed ``smp_seed + i``)."""
        balancer = LoadBalancer(self.shards, self.policy)
        counts = balancer.plan(requests, sessions=self.sessions)
        self.last_balancer = balancer
        if min(counts) < 1:
            raise ValueError(
                f"{requests} requests across {self.shards} shards under "
                f"{self.policy!r} starves a shard (counts={counts}); "
                f"send more traffic"
            )
        miss_extra = (
            balancer.miss_schedule(self.session_miss_cycles)
            if self.sessions
            else None
        )
        configs = []
        for index, count in enumerate(counts):
            config = {
                "shard": index,
                "smp_seed": self.smp_seed + index,
                "workload": "webserver",
                "server": self.server,
                "tool": self.tool,
                "cores": self.cores,
                "batched": self.batched,
                "file_size": self.file_size,
                "requests": count,
                "warmup": warmup,
                "connections": connections,
                "client_cycles_per_request": client_cycles_per_request,
            }
            if miss_extra is not None:
                config["request_extra_cycles"] = miss_extra[index]
            if self.tool_opts is not None:
                config["tool_opts"] = self.tool_opts
            if self.machine_opts is not None:
                config["machine_opts"] = self.machine_opts
            configs.append(config)
        return configs

    # ------------------------------------------------------------------ boot
    def _run_shards(self, configs: list[dict]) -> list[dict]:
        use_processes = self.processes
        if use_processes is None:
            use_processes = len(configs) > 1
        if not use_processes:
            return [run_shard(c) for c in configs]
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # no fork on this host: results are identical
            ctx = multiprocessing.get_context("spawn")
        workers = min(len(configs), os.cpu_count() or 1)
        with ctx.Pool(workers) as pool:
            return pool.map(run_shard, configs)

    # ----------------------------------------------------------------- serve
    def serve(
        self,
        requests: int = 200,
        *,
        warmup: int = 20,
        connections: int | None = None,
        client_cycles_per_request: int = 0,
    ) -> dict:
        """Serve ``requests`` across the fleet and return the merged report.

        ``warmup`` and ``connections`` are per shard (each shard runs its
        own wrk client); ``requests`` is the cluster-wide total the
        balancer splits.
        """
        configs = self.shard_configs(
            requests,
            warmup=warmup,
            connections=connections,
            client_cycles_per_request=client_cycles_per_request,
        )
        per_shard = sorted(self._run_shards(configs), key=lambda s: s["shard"])
        rows = [s["result"] for s in per_shard]

        # The fleet finishes when its slowest shard does.
        measured_seconds = max(r["measured_seconds"] for r in rows)
        total_requests = sum(r["requests"] for r in rows)
        samples: list[int] = []
        for row in rows:
            samples.extend(row["latency_samples_cycles"])
        pct = latency_percentiles(samples)

        session_keys = {}
        if self.sessions:
            # Only present when the session model is on, so sessionless
            # reports stay byte-identical to the pre-session cluster.
            session_keys = {
                "sessions": self.sessions,
                "session_miss_cycles": self.session_miss_cycles,
                "session_stats": self.last_balancer.session_stats(),
            }
        return {
            "workload": "cluster-webserver",
            "shards": self.shards,
            "policy": self.policy,
            "tool": self.tool,
            "batched": self.batched,
            "cores": self.cores,
            "smp_seed": self.smp_seed,
            "server": self.server,
            "file_size": self.file_size,
            "requests_total": total_requests,
            "requests_per_shard": [r["requests"] for r in rows],
            "warmup_per_shard": warmup,
            "requests_per_sec": (
                total_requests / measured_seconds if measured_seconds else 0.0
            ),
            "measured_seconds": measured_seconds,
            "latency_p50_cycles": pct["p50"],
            "latency_p95_cycles": pct["p95"],
            "latency_p99_cycles": pct["p99"],
            "guest_mips_per_shard": [r["guest_mips"] for r in rows],
            "guest_mips_total": sum(r["guest_mips"] for r in rows),
            **session_keys,
            "obs": _merge_obs(per_shard),
            "results": rows,
        }
