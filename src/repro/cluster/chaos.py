"""Seeded per-shard fault schedules for the fleet (chaos injection).

A :class:`ChaosPlan` is the cluster-level analogue of a
:class:`repro.faults.injector.FaultInjector` plan: a small, fully
serializable schedule of per-shard faults, fixed *before* any shard
boots, so fork-Pool and inline runs inject identically and the same
``(plan, smp_seed)`` always reproduces the same merged report.

Four fault kinds, each mapping onto machinery the simulator already has:

``crash``
    The shard dies after serving ``at_request`` measured requests
    (``at_request=0`` means it never comes up).  Delivered by truncating
    the shard's request budget — the run up to the crash is byte-identical
    to an honest short run — and synthesizing a dead row for the
    at-boot case.

``hang``
    The shard stops responding after ``at_request`` measured requests:
    the wrk client partitions (stops sending, drops late data) and the
    machine runs on under an absolute ``deadline_cycles`` run deadline.
    On the async ring legs the shard's in-flight parked entries cancel
    with ``-ETIMEDOUT`` (``Machine(ring_park_timeout=...)``) instead of
    parking forever, so the run returns *within its deadline* rather
    than stalling.

``degraded``
    A slow shard: every request pays ``slow_cycles`` of extra user-space
    work (threaded through the existing ``request_extra_cycles``
    schedule).  With a per-request deadline armed this is the
    timeout-and-retry path.

``hostile``
    Attach-time hostile environment: the shard's machine boots with
    ``mmap_min_addr`` raised, forcing the PR 5 graceful-degradation
    ladder (FULL_HYBRID → SUD_ONLY) — visible in the merged report's
    ``health_per_shard``.

``ChaosPlan.seeded(seed, shards, requests)`` derives a plan from one
integer with the harness's own :class:`repro.faults.rng.SplitMix64`, so
``python -m repro.faults`` scenario sweeps can explore fleet faults the
same way they explore schedules.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.faults.rng import SplitMix64

FAULT_KINDS = ("crash", "hang", "degraded", "hostile")

#: default absolute run deadline for a hung shard (cycles from boot)
DEFAULT_SHARD_DEADLINE = 4_000_000
#: default degraded-shard surcharge (cycles per request)
DEFAULT_SLOW_CYCLES = 60_000
#: default hostile mmap_min_addr (denies VA-0, forcing SUD_ONLY)
DEFAULT_MMAP_MIN_ADDR = 4096


@dataclass(frozen=True)
class ShardFault:
    """One scheduled fault on one shard (see module docstring)."""

    shard: int
    kind: str
    #: crash/hang trigger: measured request index at which the fault hits
    at_request: int = 0
    #: degraded: per-request user-space surcharge (cycles)
    slow_cycles: int = DEFAULT_SLOW_CYCLES
    #: hang: absolute machine-run deadline (cycles from boot)
    deadline_cycles: int = DEFAULT_SHARD_DEADLINE
    #: hang: bounded-park deadline for ring waiters (default: deadline/2)
    park_timeout_cycles: int | None = None
    #: hostile: the raised mmap_min_addr
    mmap_min_addr: int = DEFAULT_MMAP_MIN_ADDR

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {', '.join(FAULT_KINDS)}"
            )
        if self.shard < 0:
            raise ValueError(f"negative shard {self.shard}")

    def to_config(self) -> dict:
        """The picklable/JSON slice delivered through a shard config."""
        config = {"kind": self.kind}
        if self.kind in ("crash", "hang"):
            config["at_request"] = self.at_request
        if self.kind == "hang":
            config["deadline_cycles"] = self.deadline_cycles
            config["park_timeout_cycles"] = (
                self.park_timeout_cycles
                if self.park_timeout_cycles is not None
                else self.deadline_cycles // 2
            )
        if self.kind == "degraded":
            config["slow_cycles"] = self.slow_cycles
        if self.kind == "hostile":
            config["mmap_min_addr"] = self.mmap_min_addr
        return config


class ChaosPlan:
    """An immutable per-shard fault schedule (at most one fault per shard)."""

    def __init__(self, faults: list[ShardFault] | tuple[ShardFault, ...] = ()):
        seen: set[int] = set()
        for fault in faults:
            if fault.shard in seen:
                raise ValueError(
                    f"shard {fault.shard} scheduled twice; "
                    "one fault per shard"
                )
            seen.add(fault.shard)
        self.faults: tuple[ShardFault, ...] = tuple(faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def fault_for(self, shard: int) -> ShardFault | None:
        for fault in self.faults:
            if fault.shard == shard:
                return fault
        return None

    # ------------------------------------------------------------- serialize
    def to_json(self) -> str:
        return json.dumps(
            [
                {
                    "shard": f.shard, "kind": f.kind,
                    "at_request": f.at_request,
                    "slow_cycles": f.slow_cycles,
                    "deadline_cycles": f.deadline_cycles,
                    "park_timeout_cycles": f.park_timeout_cycles,
                    "mmap_min_addr": f.mmap_min_addr,
                }
                for f in self.faults
            ],
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        return cls([ShardFault(**row) for row in json.loads(text)])

    # ----------------------------------------------------------------- seeded
    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        shards: int,
        requests: int,
        faults: int = 1,
        kinds: tuple[str, ...] = FAULT_KINDS,
    ) -> "ChaosPlan":
        """Derive a plan from one integer seed (SplitMix64, replayable).

        Picks ``faults`` distinct victim shards and one fault each; crash
        and hang points land inside the shard's expected request share so
        the fault actually fires mid-serve.
        """
        rng = SplitMix64(seed)
        victims = rng.shuffle(list(range(shards)))[:max(0, faults)]
        share = max(2, requests // max(1, shards))
        scheduled = []
        for shard in sorted(victims):
            kind = kinds[rng.below(len(kinds))]
            scheduled.append(
                ShardFault(
                    shard=shard,
                    kind=kind,
                    at_request=1 + rng.below(share - 1),
                    slow_cycles=20_000 + rng.below(8) * 10_000,
                )
            )
        return cls(scheduled)
