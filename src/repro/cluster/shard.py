"""The per-shard worker: one Machine + webserver per host process.

:func:`run_shard` is deliberately a *top-level function taking one plain
dict* so ``multiprocessing`` can pickle the call under any start method.
Everything it returns is JSON-serializable: the full
:func:`repro.workloads.runner.run_workload` result row plus an
:func:`obs_summary` of the shard's tracer.  Raw event streams stay
shard-local on purpose — at fleet scale they are the expensive part, and
the cheap aggregate counters the :class:`~repro.obs.tracer.Tracer`
maintains at emit time are what the cluster front-end actually merges.

Chaos injection rides the same config dict (``config["chaos"]``, written
by :meth:`repro.cluster.cluster.Cluster.shard_configs` from a
:class:`~repro.cluster.chaos.ChaosPlan`), so fork-Pool and inline runs
inject identically:

* ``crash`` truncates the shard's request budget at the crash point (the
  run up to it is byte-identical to an honest short run); a crash at
  request 0 never boots the machine and returns a dead row with
  ``result``/``obs`` of ``None`` — which the cluster's merge tolerates;
* ``hang`` partitions the wrk client at the hang point and bounds the
  run with an absolute deadline plus ``ring_park_timeout`` (parked ring
  entries cancel with ``-ETIMEDOUT`` instead of parking forever);
* ``degraded`` adds ``slow_cycles`` to every request's user-space cost;
* ``hostile`` boots the machine with a raised ``mmap_min_addr``, forcing
  the PR 5 degradation ladder at attach time.
"""

from __future__ import annotations

from repro.obs.tracer import Tracer
from repro.workloads.runner import run_workload


def obs_summary(tracer: Tracer) -> dict:
    """The serializable slice of a tracer: aggregate counters + health.

    Everything here is maintained at emit time (never an event walk) and
    is plain ints/strings, so it crosses the process boundary unchanged.
    """
    return {
        "counts": dict(tracer.counts),
        "interposition_counts": dict(tracer.interposition_counts),
        "ring_enters": tracer.ring_enters,
        "ring_entries": tracer.ring_entries,
        "ring_parks": tracer.ring_parks,
        "ring_completes": tracer.ring_completes,
        "ring_timeouts": tracer.ring_timeouts,
        "slowpath_total": tracer.slowpath_total,
        "rewritten_sites": len(tracer.rewritten_sites),
        "dropped_events": tracer.dropped,
        "health": tracer.health(),
    }


def _apply_chaos(config: dict, chaos: dict) -> dict | None:
    """Rewrite ``config`` in place for the scheduled fault.

    Returns the chaos bookkeeping dict for the shard row, or the
    complete dead row's bookkeeping when the shard must not boot at all
    (crash at request 0) — the caller checks ``["status"] == "dead"``.
    """
    kind = chaos["kind"]
    assigned = config["requests"]
    if kind == "crash":
        point = min(max(0, chaos["at_request"]), assigned)
        if point == 0:
            return {"kind": kind, "status": "dead",
                    "assigned": assigned, "served": 0}
        config["requests"] = point
        return {"kind": kind, "status": "crashed",
                "assigned": assigned, "served": point}
    if kind == "hang":
        point = min(max(0, chaos["at_request"]), assigned)
        config["partition_after"] = config.get("warmup", 20) + point
        config["deadline_cycles"] = chaos["deadline_cycles"]
        machine_opts = dict(config.get("machine_opts") or {})
        machine_opts["ring_park_timeout"] = chaos["park_timeout_cycles"]
        config["machine_opts"] = machine_opts
        return {"kind": kind, "status": "hung",
                "assigned": assigned, "served": point}
    if kind == "degraded":
        slow = chaos["slow_cycles"]
        extra = config.get("request_extra_cycles")
        extra = list(extra) if extra is not None else [0] * assigned
        config["request_extra_cycles"] = [e + slow for e in extra]
        return {"kind": kind, "status": "ok",
                "assigned": assigned, "served": assigned}
    if kind == "hostile":
        machine_opts = dict(config.get("machine_opts") or {})
        machine_opts["mmap_min_addr"] = chaos["mmap_min_addr"]
        config["machine_opts"] = machine_opts
        return {"kind": kind, "status": "ok",
                "assigned": assigned, "served": assigned}
    raise ValueError(f"unknown chaos kind {kind!r}")


def run_shard(config: dict) -> dict:
    """Boot one shard and run its workload; the cluster worker entry point.

    ``config`` is ``{"shard": index, "smp_seed": seed, "workload": name,
    **run_workload kwargs}``.  A fresh aggregates-only tracer
    (``max_events=0``) is always attached: observability is free in
    simulated time, so the shard's numbers are byte-identical to an
    untraced direct :func:`run_workload` call with the same seed.

    An optional ``config["chaos"]`` entry (see :mod:`repro.cluster.chaos`)
    injects the shard's scheduled fault; the row then carries a
    ``"chaos"`` bookkeeping dict (``status``/``assigned``/``served``).
    A shard that dies at boot returns ``result``/``obs`` of ``None``.
    """
    config = dict(config)
    index = config.pop("shard")
    seed = config.pop("smp_seed")
    workload = config.pop("workload", "webserver")
    chaos = config.pop("chaos", None)
    chaos_info = None
    if chaos is not None:
        chaos_info = _apply_chaos(config, chaos)
        if chaos_info["status"] == "dead":
            return {"shard": index, "smp_seed": seed,
                    "result": None, "obs": None, "chaos": chaos_info}
    tracer = Tracer(max_events=0)
    result = run_workload(workload, tracer=tracer, smp_seed=seed, **config)
    row = {
        "shard": index,
        "smp_seed": seed,
        "result": result,
        "obs": obs_summary(tracer),
    }
    if chaos_info is not None:
        if "served" in result:
            chaos_info["served"] = result["served"]
            if chaos_info["kind"] == "hang" and not result["deadline_hit"]:
                chaos_info["status"] = "ok"  # hang point past the budget
        row["chaos"] = chaos_info
    return row
