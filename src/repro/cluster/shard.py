"""The per-shard worker: one Machine + webserver per host process.

:func:`run_shard` is deliberately a *top-level function taking one plain
dict* so ``multiprocessing`` can pickle the call under any start method.
Everything it returns is JSON-serializable: the full
:func:`repro.workloads.runner.run_workload` result row plus an
:func:`obs_summary` of the shard's tracer.  Raw event streams stay
shard-local on purpose — at fleet scale they are the expensive part, and
the cheap aggregate counters the :class:`~repro.obs.tracer.Tracer`
maintains at emit time are what the cluster front-end actually merges.
"""

from __future__ import annotations

from repro.obs.tracer import Tracer
from repro.workloads.runner import run_workload


def obs_summary(tracer: Tracer) -> dict:
    """The serializable slice of a tracer: aggregate counters + health.

    Everything here is maintained at emit time (never an event walk) and
    is plain ints/strings, so it crosses the process boundary unchanged.
    """
    return {
        "counts": dict(tracer.counts),
        "interposition_counts": dict(tracer.interposition_counts),
        "ring_enters": tracer.ring_enters,
        "ring_entries": tracer.ring_entries,
        "ring_parks": tracer.ring_parks,
        "ring_completes": tracer.ring_completes,
        "slowpath_total": tracer.slowpath_total,
        "rewritten_sites": len(tracer.rewritten_sites),
        "dropped_events": tracer.dropped,
        "health": tracer.health(),
    }


def run_shard(config: dict) -> dict:
    """Boot one shard and run its workload; the cluster worker entry point.

    ``config`` is ``{"shard": index, "smp_seed": seed, "workload": name,
    **run_workload kwargs}``.  A fresh aggregates-only tracer
    (``max_events=0``) is always attached: observability is free in
    simulated time, so the shard's numbers are byte-identical to an
    untraced direct :func:`run_workload` call with the same seed.
    """
    config = dict(config)
    index = config.pop("shard")
    seed = config.pop("smp_seed")
    workload = config.pop("workload", "webserver")
    tracer = Tracer(max_events=0)
    result = run_workload(workload, tracer=tracer, smp_seed=seed, **config)
    return {
        "shard": index,
        "smp_seed": seed,
        "result": result,
        "obs": obs_summary(tracer),
    }
