"""Deterministic shard health, circuit breaking and retry backoff.

The fleet's control plane, built like everything else here as pure
functions of the inputs — no wall clock, no randomness outside the
seeded jitter — so a chaos run replays byte-identically.

* :class:`HealthModel` — per-shard ``up -> suspect -> down`` state fed by
  shard *heartbeats*: the progress counters and obs ``health()`` summary
  each shard worker already reports.  A hard failure (crash, hang, dead
  at boot) downs the shard immediately; a soft one (timed-out requests
  above ``suspect_fraction``) demotes it to ``suspect`` first and downs
  it only on a second bad round; a clean round recovers ``suspect`` back
  to ``up``.

* :class:`CircuitBreaker` — per-shard ``closed -> open -> half_open``
  gate with deterministic cooldown ticks: downing a shard opens its
  breaker; after ``cooldown_rounds`` retry rounds the breaker half-opens
  and the balancer may send it a bounded probe (``probe_requests``); a
  clean probe closes the breaker and the shard rejoins the fleet, a
  failed one re-opens it.

* :class:`RetryPolicy` — capped exponential backoff between retry
  rounds (``base * 2^(round-1)`` up to ``cap``), plus optional seeded
  SplitMix64 jitter, all in simulated cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.rng import SplitMix64

UP = "up"
SUSPECT = "suspect"
DOWN = "down"

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: heartbeat statuses that down a shard outright
HARD_FAILURES = ("crashed", "hung", "dead")


class CircuitBreaker:
    """closed -> open -> half_open -> closed, ticked once per retry round."""

    def __init__(self, *, cooldown_rounds: int = 1, probe_requests: int = 2):
        self.state = CLOSED
        self.cooldown_rounds = cooldown_rounds
        self.probe_requests = probe_requests
        self.opened_round: int | None = None

    def trip(self, round_: int) -> bool:
        """Open the breaker; returns True on a state change."""
        changed = self.state != OPEN
        self.state = OPEN
        self.opened_round = round_
        return changed

    def tick(self, round_: int) -> bool:
        """Cooldown tick at the top of a retry round; True when the
        breaker half-opens."""
        if (self.state == OPEN
                and round_ - self.opened_round > self.cooldown_rounds):
            self.state = HALF_OPEN
            return True
        return False

    def succeed(self) -> bool:
        """A clean probe round closes a half-open breaker."""
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self.opened_round = None
            return True
        return False


class HealthModel:
    """Per-shard health states + breakers, fed by round heartbeats."""

    def __init__(
        self,
        shards: int,
        *,
        suspect_fraction: float = 0.25,
        cooldown_rounds: int = 1,
        probe_requests: int = 2,
        tracer=None,
    ):
        self.shards = shards
        self.states = [UP] * shards
        self.suspect_fraction = suspect_fraction
        self.breakers = [
            CircuitBreaker(
                cooldown_rounds=cooldown_rounds,
                probe_requests=probe_requests,
            )
            for _ in range(shards)
        ]
        self.tracer = tracer
        #: (round, shard, transition) log — the deterministic audit trail
        self.log: list[dict] = []

    # ---------------------------------------------------------------- feeding
    def observe(self, shard: int, heartbeat: dict, *, round_: int,
                ts: int = 0) -> None:
        """Fold one shard heartbeat into the model.

        ``heartbeat``: ``{"status": "ok"|"crashed"|"hung"|"dead",
        "assigned": n, "served": n, "timeouts": n}``.
        """
        status = heartbeat.get("status", "ok")
        assigned = heartbeat.get("assigned", 0)
        timeouts = heartbeat.get("timeouts", 0)
        state = self.states[shard]
        if status in HARD_FAILURES:
            self._down(shard, status, round_=round_, ts=ts)
            return
        soft_bad = assigned and timeouts / assigned >= self.suspect_fraction
        if soft_bad:
            if state == UP:
                self._transition(shard, SUSPECT, "timeouts",
                                 round_=round_, ts=ts)
            elif state == SUSPECT:
                self._down(shard, "timeouts", round_=round_, ts=ts)
            return
        # clean heartbeat: recover
        if state == SUSPECT:
            self._transition(shard, UP, "recovered", round_=round_, ts=ts)
        elif state == DOWN and self.breakers[shard].state == HALF_OPEN:
            self._transition(shard, UP, "probe_ok", round_=round_, ts=ts)
            if self.breakers[shard].succeed():
                self._breaker_event(shard, HALF_OPEN, CLOSED,
                                    round_=round_, ts=ts)

    def begin_round(self, round_: int, *, ts: int = 0) -> None:
        """Cooldown tick: open breakers may half-open for a probe."""
        for shard, breaker in enumerate(self.breakers):
            if breaker.tick(round_):
                self._breaker_event(shard, OPEN, HALF_OPEN,
                                    round_=round_, ts=ts)

    # ---------------------------------------------------------------- routing
    def routable(self) -> list[int]:
        """Shards the balancer may send requests to this round: every
        non-down shard, plus down shards whose breaker is half-open
        (bounded probes)."""
        return [
            s for s in range(self.shards)
            if self.states[s] != DOWN or self.breakers[s].state == HALF_OPEN
        ]

    def probe_quota(self, shard: int) -> int | None:
        """Max probe requests for a half-open down shard (None: unlimited)."""
        if (self.states[shard] == DOWN
                and self.breakers[shard].state == HALF_OPEN):
            return self.breakers[shard].probe_requests
        return None

    def snapshot(self) -> dict:
        return {
            "states": list(self.states),
            "breakers": [b.state for b in self.breakers],
            "log": [dict(entry) for entry in self.log],
        }

    # --------------------------------------------------------------- internal
    def _down(self, shard: int, reason: str, *, round_: int, ts: int) -> None:
        if self.states[shard] != DOWN:
            self._transition(shard, DOWN, reason, round_=round_, ts=ts)
            if self.tracer is not None:
                self.tracer.shard_down(ts, shard, reason, round_=round_)
        if self.breakers[shard].trip(round_):
            self._breaker_event(
                shard, CLOSED, OPEN, round_=round_, ts=ts)

    def _transition(self, shard: int, new: str, reason: str, *,
                    round_: int, ts: int) -> None:
        old = self.states[shard]
        self.states[shard] = new
        self.log.append({"round": round_, "shard": shard, "kind": "health",
                         "old": old, "new": new, "reason": reason})

    def _breaker_event(self, shard: int, old: str, new: str, *,
                       round_: int, ts: int) -> None:
        self.log.append({"round": round_, "shard": shard, "kind": "breaker",
                         "old": old, "new": new})
        if self.tracer is not None:
            self.tracer.breaker(ts, shard, old, new, round_=round_)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff between retry rounds (cycles)."""

    #: total rounds including the initial serve
    max_attempts: int = 4
    backoff_base_cycles: int = 200_000
    backoff_cap_cycles: int = 1_600_000
    #: seeded jitter amplitude added to each round's backoff (0: none)
    jitter_cycles: int = 0

    def backoff(self, round_: int, rng: SplitMix64 | None = None) -> int:
        """Backoff before retry round ``round_`` (1-based)."""
        cycles = min(
            self.backoff_base_cycles << (round_ - 1),
            self.backoff_cap_cycles,
        )
        if self.jitter_cycles and rng is not None:
            cycles += rng.below(self.jitter_cycles)
        return cycles
