"""The simulated load-balancer front-end.

A :class:`LoadBalancer` maps a stream of request keys onto shard indices
*before* any shard boots: the cluster plans the whole request schedule up
front, hands each shard its slice, and lets the shards run concurrently
(each in its own host process, each with its own wrk client).  That keeps
the balancer a pure function of ``(shards, policy, request stream)`` — no
cross-process chatter, so cluster results stay exactly as deterministic
as a single-machine run.

Three policies, mirroring the classic L4 front-end choices:

``round_robin``
    Rotate through the shards.  The reference policy: perfectly even
    split, used by the scaling benchmark.

``least_conn``
    Greedy least-outstanding-connections with a deterministic service
    model: each request occupies its shard for ``service_ticks``
    assignment ticks (default = shard count, i.e. service rate matches
    arrival rate).  With homogeneous simulated shards this converges to
    an even split — the point is exercising the accounting path the
    policy needs, not a different steady state.

``consistent_hash``
    FNV-1a hashing of the request key onto a ring of ``vnodes`` virtual
    nodes per shard.  Deliberately *not* Python's builtin ``hash`` —
    that is salted per process and would break cross-process
    determinism.  Splits are uneven by design (cache-affinity routing
    trades balance for key stickiness).

Sessions couple the policies to shared backend state.  With
``plan(requests, sessions=S)`` every request ``i`` belongs to session
``session_of(i, S)`` and the balancer classifies each assignment as a
session *hit* (the session's state already lives on the chosen shard), a
cold *miss* (first request of the session anywhere) or a *migration*
(the state lives on a different shard and must move).  ``consistent_hash``
routes by the session key, so a session is sticky to one shard and never
migrates; ``round_robin`` sprays sessions across the fleet and pays a
migration on nearly every request; ``least_conn`` feeds the penalty back
into its own accounting — a miss occupies the shard for
``miss_penalty`` service intervals instead of one, so miss-heavy shards
shed load.  The per-request penalty schedule (:meth:`miss_schedule`)
becomes user-space cycle surcharges on the shards, which is how the
policies come to differ in throughput and latency, not just in counts.
"""

from __future__ import annotations

from bisect import bisect_left

POLICIES = ("round_robin", "least_conn", "consistent_hash")

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a(data: bytes) -> int:
    """64-bit FNV-1a + avalanche finalizer: stable across processes
    (unlike builtin ``hash``, which is salted per process).

    Raw FNV-1a clusters short keys with a shared prefix (``req-0``,
    ``req-1``, ...) into a narrow band of the 64-bit space, which would
    collapse the consistent-hash ring onto one shard; the splitmix64
    finalizer spreads them uniformly.
    """
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    # splitmix64 finalizer
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return h ^ (h >> 31)


def session_of(index: int, sessions: int) -> int:
    """The session request ``index`` belongs to — a stable hash, not a
    modulo of the index, so consecutive requests hop between sessions the
    way interleaved client connections do."""
    return fnv1a(f"req-{index}".encode()) % sessions


class LoadBalancer:
    """Deterministic request-to-shard assignment under one policy."""

    def __init__(
        self,
        shards: int,
        policy: str = "round_robin",
        *,
        vnodes: int = 64,
        service_ticks: int | None = None,
        miss_penalty: int = 2,
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown balancing policy {policy!r}; "
                f"choose from {', '.join(POLICIES)}"
            )
        self.shards = shards
        self.policy = policy
        self.assignments: list[int] = []
        #: per-assignment "hit"/"miss"/"migrate", or None outside sessions
        self.session_events: list[str | None] = []
        #: shards currently excluded from routing (health model feed);
        #: empty (the default) leaves every policy's behavior untouched
        self._down: set[int] = set()
        self._tick = 0
        # sessions: shard currently holding each session's backend state
        self._session_home: dict[int, int] = {}
        self._miss_penalty = miss_penalty
        # round_robin
        self._next = 0
        # least_conn
        self._service_ticks = service_ticks or shards
        self._in_flight: list[list[int]] = [[] for _ in range(shards)]
        # consistent_hash: sorted ring of (point, shard)
        self._ring: list[tuple[int, int]] = sorted(
            (fnv1a(f"shard-{s}:vnode-{v}".encode()), s)
            for s in range(shards)
            for v in range(vnodes)
        )
        self._points = [p for p, _ in self._ring]

    # ------------------------------------------------------------- assignment
    def assign(self, key: str | int | None = None, *,
               session: int | None = None) -> int:
        """Route one request; ``key`` only matters for ``consistent_hash``.

        With ``session`` set, ``consistent_hash`` routes by the session
        (sticky), the assignment is classified hit/miss/migrate against
        the session's current home shard, and ``least_conn`` charges the
        miss penalty into its occupancy model.
        """
        if len(self._down) >= self.shards:
            raise RuntimeError("no live shard to route to")
        tick = self._tick
        self._tick = tick + 1
        if self.policy == "round_robin":
            shard = self._next
            while shard in self._down:
                shard = (shard + 1) % self.shards
            self._next = (shard + 1) % self.shards
        elif self.policy == "least_conn":
            shard = self._pick_least_conn(tick)
        elif session is not None:
            shard = self._assign_hash(f"session-{session}")
        else:
            shard = self._assign_hash(key if key is not None else tick)
        event = self._touch_session(session, shard)
        if self.policy == "least_conn":
            intervals = self._miss_penalty if event in ("miss", "migrate") \
                else 1
            self._in_flight[shard].append(
                tick + self._service_ticks * intervals
            )
        self.assignments.append(shard)
        self.session_events.append(event)
        return shard

    def _pick_least_conn(self, tick: int) -> int:
        for queue in self._in_flight:
            while queue and queue[0] <= tick:
                queue.pop(0)
        return min(
            (s for s in range(self.shards) if s not in self._down),
            key=lambda s: (len(self._in_flight[s]), s),
        )

    def _touch_session(self, session: int | None, shard: int) -> str | None:
        if session is None:
            return None
        home = self._session_home.get(session)
        self._session_home[session] = shard
        if home == shard:
            return "hit"
        return "miss" if home is None else "migrate"

    def _assign_hash(self, key) -> int:
        point = fnv1a(str(key).encode())
        i = bisect_left(self._points, point)
        if i == len(self._points):
            i = 0
        if not self._down:
            return self._ring[i][1]
        # walk the ring clockwise to the first live shard — the classic
        # consistent-hash failover: only keys homed on a dead shard move
        for step in range(len(self._ring)):
            shard = self._ring[(i + step) % len(self._ring)][1]
            if shard not in self._down:
                return shard
        raise RuntimeError("no live shard to route to")

    # --------------------------------------------------------------- planning
    def plan(self, requests: int, *, sessions: int = 0) -> list[int]:
        """Assign ``requests`` sequential request ids; return per-shard
        counts.  The full assignment order stays in :attr:`assignments`.

        With ``sessions > 0`` each request is routed and classified under
        its :func:`session_of` session; ``sessions=0`` is the sessionless
        legacy behavior, assignment-for-assignment identical to before.
        """
        counts = [0] * self.shards
        for i in range(requests):
            sid = session_of(i, sessions) if sessions else None
            counts[self.assign(f"req-{i}", session=sid)] += 1
        return counts

    # ---------------------------------------------------- failover re-planning
    def set_down(self, down: set[int]) -> None:
        """Exclude ``down`` shards from subsequent assignments (health
        model feed).  An empty set restores the original behavior."""
        if len(down) >= self.shards:
            raise RuntimeError(
                f"all {self.shards} shards down; nothing to route to"
            )
        self._down = set(down)

    def replan(self, request_ids: list[int], *,
               sessions: int = 0) -> list[tuple[int, int]]:
        """Incrementally re-plan failed requests onto live shards.

        ``request_ids`` are *original* request indices (so retried
        requests keep their identity — and their session, which the
        re-route classifies with the usual hit/miss/migrate accounting:
        a session homed on a dead shard migrates).  Returns
        ``(request_id, shard)`` pairs in id order; the assignments are
        appended to :attr:`assignments`/:attr:`session_events` like any
        other, so :meth:`session_stats` covers failover traffic too.
        """
        routed = []
        for i in request_ids:
            sid = session_of(i, sessions) if sessions else None
            routed.append((i, self.assign(f"req-{i}", session=sid)))
        return routed

    def miss_schedule(self, miss_cycles: int) -> list[list[int]]:
        """Per-shard surcharge lists aligned with each shard's request
        order: ``miss_cycles`` for every cold miss or migration, 0 for
        hits — what the cluster threads into ``request_extra_cycles``."""
        extra: list[list[int]] = [[] for _ in range(self.shards)]
        for shard, event in zip(self.assignments, self.session_events):
            extra[shard].append(
                miss_cycles if event in ("miss", "migrate") else 0
            )
        return extra

    def session_stats(self) -> dict:
        """Aggregate hit/miss/migration counts over all assignments."""
        hits = self.session_events.count("hit")
        misses = self.session_events.count("miss")
        migrations = self.session_events.count("migrate")
        routed = hits + misses + migrations
        return {
            "distinct_sessions": len(self._session_home),
            "hits": hits,
            "misses": misses,
            "migrations": migrations,
            "sticky_ratio": round(hits / routed, 4) if routed else 0.0,
        }
