"""The simulated load-balancer front-end.

A :class:`LoadBalancer` maps a stream of request keys onto shard indices
*before* any shard boots: the cluster plans the whole request schedule up
front, hands each shard its slice, and lets the shards run concurrently
(each in its own host process, each with its own wrk client).  That keeps
the balancer a pure function of ``(shards, policy, request stream)`` — no
cross-process chatter, so cluster results stay exactly as deterministic
as a single-machine run.

Three policies, mirroring the classic L4 front-end choices:

``round_robin``
    Rotate through the shards.  The reference policy: perfectly even
    split, used by the scaling benchmark.

``least_conn``
    Greedy least-outstanding-connections with a deterministic service
    model: each request occupies its shard for ``service_ticks``
    assignment ticks (default = shard count, i.e. service rate matches
    arrival rate).  With homogeneous simulated shards this converges to
    an even split — the point is exercising the accounting path the
    policy needs, not a different steady state.

``consistent_hash``
    FNV-1a hashing of the request key onto a ring of ``vnodes`` virtual
    nodes per shard.  Deliberately *not* Python's builtin ``hash`` —
    that is salted per process and would break cross-process
    determinism.  Splits are uneven by design (cache-affinity routing
    trades balance for key stickiness).
"""

from __future__ import annotations

from bisect import bisect_left

POLICIES = ("round_robin", "least_conn", "consistent_hash")

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv1a(data: bytes) -> int:
    """64-bit FNV-1a + avalanche finalizer: stable across processes
    (unlike builtin ``hash``, which is salted per process).

    Raw FNV-1a clusters short keys with a shared prefix (``req-0``,
    ``req-1``, ...) into a narrow band of the 64-bit space, which would
    collapse the consistent-hash ring onto one shard; the splitmix64
    finalizer spreads them uniformly.
    """
    h = _FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    # splitmix64 finalizer
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return h ^ (h >> 31)


class LoadBalancer:
    """Deterministic request-to-shard assignment under one policy."""

    def __init__(
        self,
        shards: int,
        policy: str = "round_robin",
        *,
        vnodes: int = 64,
        service_ticks: int | None = None,
    ):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if policy not in POLICIES:
            raise ValueError(
                f"unknown balancing policy {policy!r}; "
                f"choose from {', '.join(POLICIES)}"
            )
        self.shards = shards
        self.policy = policy
        self.assignments: list[int] = []
        self._tick = 0
        # round_robin
        self._next = 0
        # least_conn
        self._service_ticks = service_ticks or shards
        self._in_flight: list[list[int]] = [[] for _ in range(shards)]
        # consistent_hash: sorted ring of (point, shard)
        self._ring: list[tuple[int, int]] = sorted(
            (fnv1a(f"shard-{s}:vnode-{v}".encode()), s)
            for s in range(shards)
            for v in range(vnodes)
        )
        self._points = [p for p, _ in self._ring]

    # ------------------------------------------------------------- assignment
    def assign(self, key: str | int | None = None) -> int:
        """Route one request; ``key`` only matters for ``consistent_hash``."""
        tick = self._tick
        self._tick = tick + 1
        if self.policy == "round_robin":
            shard = self._next
            self._next = (shard + 1) % self.shards
        elif self.policy == "least_conn":
            shard = self._assign_least_conn(tick)
        else:
            shard = self._assign_hash(key if key is not None else tick)
        self.assignments.append(shard)
        return shard

    def _assign_least_conn(self, tick: int) -> int:
        for queue in self._in_flight:
            while queue and queue[0] <= tick:
                queue.pop(0)
        shard = min(
            range(self.shards), key=lambda s: (len(self._in_flight[s]), s)
        )
        self._in_flight[shard].append(tick + self._service_ticks)
        return shard

    def _assign_hash(self, key) -> int:
        point = fnv1a(str(key).encode())
        i = bisect_left(self._points, point)
        if i == len(self._points):
            i = 0
        return self._ring[i][1]

    # --------------------------------------------------------------- planning
    def plan(self, requests: int) -> list[int]:
        """Assign ``requests`` sequential request ids; return per-shard
        counts.  The full assignment order stays in :attr:`assignments`."""
        counts = [0] * self.shards
        for i in range(requests):
            counts[self.assign(f"req-{i}")] += 1
        return counts
