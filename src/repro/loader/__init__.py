"""Program images and the loader."""

from repro.loader.image import ProgramImage, Segment, image_from_assembler
from repro.loader.loading import load_into, VDSO_BASE

__all__ = [
    "ProgramImage",
    "Segment",
    "image_from_assembler",
    "load_into",
    "VDSO_BASE",
]
