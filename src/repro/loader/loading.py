"""Loading program images into a task's address space.

Besides segments and a stack, the loader maps a one-page vdso containing the
default signal restorer (``mov rax, __NR_rt_sigreturn; syscall``) — the
page the kernel points handler return addresses at when a sigaction carries
no ``sa_restorer``.  Note that this restorer contains a *real syscall
instruction*, which is precisely why a typical SUD deployment must allowlist
it and why lazypoline's selector-only design is interesting (§IV-A).
"""

from __future__ import annotations

from repro.arch.encode import Assembler
from repro.errors import LoaderError
from repro.kernel.syscalls.table import NR
from repro.loader.image import ProgramImage
from repro.mem import layout
from repro.mem.pages import PAGE_SIZE, Perm, page_align_down, page_align_up

#: Where the vdso (default sigreturn restorer) is mapped.
VDSO_BASE = 0x7FFE_0000


def build_vdso() -> bytes:
    asm = Assembler(base=VDSO_BASE)
    asm.label("__vdso_sigreturn")
    asm.mov_imm("rax", NR["rt_sigreturn"])
    asm.syscall()
    return asm.assemble()


def load_into(
    kernel,
    task,
    image: ProgramImage,
    argv: tuple[str, ...] = (),
    *,
    stack_size: int = layout.STACK_SIZE,
) -> None:
    """Map ``image`` into ``task`` and prepare registers for entry."""
    mem = task.mem
    top_of_load = 0
    for seg in image.segments:
        base = page_align_down(seg.addr)
        end = page_align_up(seg.addr + max(len(seg.data), 1))
        if mem.is_mapped(base, end - base):
            raise LoaderError(
                f"segment {seg.name or hex(seg.addr)} overlaps an existing mapping"
            )
        mem.map(base, end - base, seg.perm)
        mem.write(seg.addr, seg.data, check=None)
        top_of_load = max(top_of_load, end)

    # Stack.
    stack_base = layout.STACK_TOP - stack_size
    mem.map(stack_base, stack_size, Perm.RW)

    # vdso with the default sigreturn restorer.
    if not mem.is_mapped(VDSO_BASE):
        mem.map(VDSO_BASE, PAGE_SIZE, Perm.RX)
        mem.write(VDSO_BASE, build_vdso(), check=None)
    task.vdso_sigreturn = VDSO_BASE

    # argv: strings then the pointer array, at the very top of the stack.
    cursor = layout.STACK_TOP
    pointers = []
    for arg in argv:
        raw = arg.encode() + b"\x00"
        cursor -= len(raw)
        mem.write(cursor, raw, check=None)
        pointers.append(cursor)
    cursor &= ~7
    for ptr in reversed(pointers + [0]):
        cursor -= 8
        mem.write_u64(cursor, ptr, check=None)
    argv_array = cursor
    cursor -= 8
    mem.write_u64(cursor, len(argv), check=None)

    rsp = cursor & ~15
    task.regs.rip = image.entry
    task.regs.write(4, rsp)  # rsp
    task.regs.write(7, len(argv))  # rdi = argc
    task.regs.write(6, argv_array)  # rsi = argv
    task.comm = image.name
    task.brk_base = top_of_load + 0x10_0000
    task.brk = 0
