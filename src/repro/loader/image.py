"""Program images — the simulator's executable file format.

A :class:`ProgramImage` is the ELF stand-in: named segments with load
addresses and permissions, an entry point, and a symbol table.  Images are
usually produced from an :class:`~repro.arch.encode.Assembler` via
:func:`image_from_assembler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.encode import Assembler
from repro.mem.pages import Perm


@dataclass(frozen=True)
class Segment:
    """One loadable segment."""

    addr: int
    data: bytes
    perm: Perm
    name: str = ""


@dataclass
class ProgramImage:
    """A loadable program."""

    name: str
    segments: list[Segment]
    entry: int
    symbols: dict[str, int] = field(default_factory=dict)

    def text_segments(self) -> list[Segment]:
        return [seg for seg in self.segments if seg.perm & Perm.X]

    def symbol(self, name: str) -> int:
        return self.symbols[name]


def image_from_assembler(
    name: str,
    asm: Assembler,
    *,
    entry: str | int = 0,
    extra_segments: list[Segment] | None = None,
    text_perm: Perm = Perm.RX,
) -> ProgramImage:
    """Build an image whose text segment is ``asm``'s output.

    ``entry`` may be a label name or an absolute address (0 = text base).
    All assembler labels become symbols.
    """
    code = asm.assemble()
    if isinstance(entry, str):
        entry_addr = asm.address_of(entry)
    else:
        entry_addr = entry or asm.base
    symbols = {label: asm.base + off for label, off in asm._labels.items()}
    segments = [Segment(asm.base, code, text_perm, name=".text")]
    if extra_segments:
        segments.extend(extra_segments)
    return ProgramImage(name, segments, entry_addr, symbols)
