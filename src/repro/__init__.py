"""repro — reproduction of "System Call Interposition Without Compromise".

This package implements the paper's lazypoline system and every substrate it
depends on, on top of a simulated x86-64/Linux machine:

* :mod:`repro.arch` — the instruction set, assembler and disassemblers,
* :mod:`repro.mem` — paged virtual memory with permissions,
* :mod:`repro.cpu` — the interpreter and the calibrated cycle cost model,
* :mod:`repro.kernel` — tasks, scheduler, signals, SUD, seccomp+BPF, ptrace,
  an in-memory filesystem and a loopback network,
* :mod:`repro.loader` / :mod:`repro.libc` — program images and CRT variants,
* :mod:`repro.interpose` — the interposition tools: ptrace, seccomp-bpf,
  seccomp-user, SUD, zpoline, and **lazypoline** (the paper's contribution),
* :mod:`repro.analysis` — the Pin-style register-preservation tool,
* :mod:`repro.workloads` — microbenchmarks, coreutils, a JIT, web servers,
* :mod:`repro.bench` — harnesses regenerating every table and figure.

Quickstart::

    from repro import Machine
    from repro.interpose import attach
    from repro.workloads.microbench import build_syscall_loop

    machine = Machine()
    proc = machine.load(build_syscall_loop(iterations=10))
    tool = attach(machine, proc, tool="lazypoline", interposer=my_interposer)
    machine.run()
"""

from repro.kernel.machine import Machine
from repro.cpu.costs import CostModel

__version__ = "1.0.0"

__all__ = ["Machine", "CostModel", "__version__"]
