"""Syscall-aggregation microbenchmark: overhead-per-syscall vs batch size.

The paper's Table II measures what one interposed *crossing* costs; this
workload measures how that cost amortizes when a guest batches B syscalls
per crossing through ``repro.kernel.uring``.  A steady-state loop submits
the same B-entry ring over and over (SQEs written once, cursors rewound
per iteration), so each iteration is exactly one ``ring_enter`` crossing
draining B entries.

Per-iteration costs are obtained by differencing two runs with different
iteration counts — cancelling startup, tool attach, and the one-time
SIGSYS rewrite of the enter site exactly (same technique as
``repro.workloads.microbench``).  Interposition overhead per syscall is
then ``cycles_per_syscall(tool) - cycles_per_syscall(bare)`` at the same
batch size: since a drained entry pays identical per-entry costs with and
without a tool attached (the tool only sees the single ``ring_enter``),
the overhead scales like 1/B.
"""

from __future__ import annotations

from repro.arch.encode import Assembler
from repro.interpose.api import passthrough_interposer
from repro.kernel.syscalls.table import NR
from repro.libc.uring import GuestRing
from repro.loader.image import ProgramImage, image_from_assembler
from repro.mem import layout

#: Tools compared in BENCH_uring.json (None = bare kernel).
RING_TOOLS = (None, "lazypoline", "zpoline", "ptrace")

#: Batch sizes of the trajectory.
RING_BATCHES = (1, 4, 16, 64)


def build_ring_loop(
    enters: int, batch: int, name: str = "getpid",
    *, base: int = layout.CODE_BASE,
) -> ProgramImage:
    """``enters`` ring_enter crossings, each draining ``batch`` ``name`` SQEs.

    The SQEs are written once at startup; the loop only rewinds the ring
    cursors and re-enters, so steady-state iterations measure the crossing
    + drain and nothing else.
    """
    a = Assembler(base=base)
    a.label("_start")
    ring = GuestRing(a, entries=batch)  # base = libc.uring.RING_BASE_REG
    ring.emit_mmap()
    for _ in range(batch):
        ring.push(name)
    a.mov_imm("rbx", enters)
    a.label("loop")
    ring.flush(batch)
    a.dec("rbx")
    a.jnz("loop")
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    return image_from_assembler(f"ringbench-b{batch}", a, entry="_start")


def _run_once(tool: str | None, enters: int, batch: int,
              name: str) -> tuple[int, int]:
    """Returns (final clock, ring_enter crossings) for one run."""
    from repro.workloads.runner import run_workload

    row = run_workload(
        "ringbench",
        tool=tool,
        interposer=passthrough_interposer if tool is not None else None,
        enters=enters,
        batch=batch,
        syscall=name,
    )
    return row["clock"], row["ring_enters"]


def measure_ring(
    tool: str | None, batch: int, *, enters: int = 64, name: str = "getpid",
) -> dict:
    """Steady-state per-syscall numbers for ``tool`` at ``batch``.

    A thin wrapper over two :func:`repro.workloads.runner.run_workload`
    calls: ``cycles_per_syscall`` and ``crossings_per_syscall`` are
    differenced between ``enters`` and ``2 * enters`` iterations, so
    attach/startup and the one-time rewrite traps cancel exactly.
    """
    clock_lo, cross_lo = _run_once(tool, enters, batch, name)
    clock_hi, cross_hi = _run_once(tool, 2 * enters, batch, name)
    syscalls = enters * batch
    return {
        "tool": tool or "none",
        "batch": batch,
        "cycles_per_syscall": (clock_hi - clock_lo) / syscalls,
        "crossings_per_syscall": (cross_hi - cross_lo) / syscalls,
    }


def ring_trajectory(
    tools=RING_TOOLS, batches=RING_BATCHES, *, enters: int = 64,
) -> dict[str, dict]:
    """The full tool x batch matrix, with per-syscall overhead vs bare.

    Returns ``{"<tool>_b<batch>": row}`` where each row additionally
    carries ``overhead_per_syscall`` — the tool's cycles-per-syscall
    minus bare's at the same batch size, i.e. what interposition itself
    costs once the crossing is amortized over the batch.
    """
    rows: dict[str, dict] = {}
    bare: dict[int, float] = {}
    for batch in batches:
        row = measure_ring(None, batch, enters=enters)
        bare[batch] = row["cycles_per_syscall"]
        row["overhead_per_syscall"] = 0.0
        rows[f"none_b{batch}"] = row
    for tool in tools:
        if tool is None:
            continue
        for batch in batches:
            row = measure_ring(tool, batch, enters=enters)
            row["overhead_per_syscall"] = round(
                row["cycles_per_syscall"] - bare[batch], 6
            )
            rows[f"{tool}_b{batch}"] = row
    return rows
