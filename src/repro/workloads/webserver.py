"""Event-driven static-content web servers (the Fig. 5 macrobenchmark).

Two server personalities model nginx and lighttpd: both are epoll-driven
accept/read/respond loops written in guest assembly, serving one static
file over keep-alive connections.  They differ the way the real servers do
at this workload:

* **nginx**: ``open`` + ``fstat`` + header ``write`` + a ``sendfile`` loop
  (one syscall per 64 KiB chunk, single kernel-side copy),
* **lighttpd**: ``open`` + ``fstat`` + header ``write`` + a ``read``/
  ``write`` loop (two syscalls and two copies per chunk), with slightly
  higher per-request user-space work.

Per-request application work (request parsing, response-header formatting,
logging) is charged through a host-call — it is user-space work that no
interposition mechanism touches, exactly like the real servers' C code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.encode import Assembler
from repro.kernel.syscalls.table import NR
from repro.libc.uring import (
    DEFAULT_RING_ENTRIES,
    GuestRing,
    ring_region_size,
    ring_result,
)
from repro.loader.image import ProgramImage, image_from_assembler
from repro.mem import layout
from repro.workloads.wrk import HEADER_SIZE, WrkClient

FILE_PATH = "/www/file.bin"
CHUNK = 65536

# Buffer-page layout (r15-relative).
_EV = 0  # epoll_event (12 bytes)
_ADDR = 16  # sockaddr scratch
_REQBUF = 64
_FILEBUF = 8192
_RING = _FILEBUF + CHUNK  # submission/completion ring (batched variant)
_RING_ENTRIES = DEFAULT_RING_ENTRIES
_BUFSIZE = _RING + ring_region_size(_RING_ENTRIES)


@dataclass(frozen=True)
class ServerSpec:
    """One server personality."""

    name: str
    parse_cost: int  # user-space cycles per request (parse + headers + log)
    delivery: str  # "sendfile" | "readwrite"


NGINX = ServerSpec(name="nginx", parse_cost=8200, delivery="sendfile")
LIGHTTPD = ServerSpec(name="lighttpd", parse_cost=9800, delivery="readwrite")

SERVERS = {spec.name: spec for spec in (NGINX, LIGHTTPD)}


def build_server_image(
    spec: ServerSpec,
    parse_hcall: int,
    *,
    port: int = 8080,
    workers: int = 1,
    batched: bool = False,
    base: int = layout.CODE_BASE,
) -> ProgramImage:
    """Build the server.  ``workers > 1`` emits a pre-forking master that
    forks ``workers - 1`` children after ``listen``; every worker runs its
    own epoll loop on the shared listening socket, like nginx's prefork
    model.

    ``batched=True`` emits the syscall-aggregation variant: the whole
    per-request tail (open / fstat / header write / delivery / close) is
    pushed into a submission ring in the worker's buffer page and drained
    with **one** ``ring_enter`` crossing, using result links for the file
    descriptor.  The accept/epoll front end stays unbatched (those are
    genuinely event-driven), and the response fits one chunk by
    construction (``ServerWorkload`` enforces ``file_size <= CHUNK``).
    """
    a = Assembler(base=base)

    def sys(name):
        a.mov_imm("rax", NR[name])
        a.syscall()

    a.label("_start")
    # buffers
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", _BUFSIZE)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    sys("mmap")
    a.mov("r15", "rax")

    # listen socket.  SOCK_NONBLOCK matters once there are multiple
    # workers: level-triggered epoll wakes every worker for one pending
    # connection, and a loser whose accept4 finds the backlog already
    # drained must get EAGAIN and return to its event loop — a blocking
    # accept would wedge it forever (real nginx marks the listen socket
    # non-blocking for exactly this reason).
    a.mov_imm("rdi", 2)  # AF_INET
    a.mov_imm("rsi", 1 | 0o4000)  # SOCK_STREAM | SOCK_NONBLOCK
    a.mov_imm("rdx", 0)
    sys("socket")
    a.mov("rbx", "rax")
    # sockaddr: port in network byte order at +2/+3
    a.mov_imm("rcx", (port >> 8) & 0xFF)
    a.store8("r15", _ADDR + 2, "rcx")
    a.mov_imm("rcx", port & 0xFF)
    a.store8("r15", _ADDR + 3, "rcx")
    a.mov("rdi", "rbx")
    a.lea("rsi", "r15", _ADDR)
    a.mov_imm("rdx", 16)
    sys("bind")
    a.mov("rdi", "rbx")
    a.mov_imm("rsi", 128)
    sys("listen")

    # prefork: each child falls straight through to the worker loop; the
    # master forks workers-1 children and then serves as well.
    for _ in range(max(workers - 1, 0)):
        sys("fork")
        a.cmpi("rax", 0)
        a.jz("worker")
    a.label("worker")
    # Each worker mmaps its own buffer page (children inherited the
    # master's, but private copies keep the workers symmetric).
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", _BUFSIZE)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    sys("mmap")
    a.mov("r15", "rax")

    ring = None
    if batched:
        ring = GuestRing(a, entries=_RING_ENTRIES, base="r15", disp=_RING,
                         tag="srv")
        ring.emit_init()

    # epoll
    a.mov_imm("rdi", 0)
    sys("epoll_create1")
    a.mov("r14", "rax")
    # Register the listen fd.  Event layout: events u32 @0, data u64 @4 —
    # the u64 store of `events` is written first so the data store may
    # overlap it harmlessly.
    a.mov_imm("rcx", 1)  # EPOLLIN
    a.store("r15", _EV, "rcx")
    a.store("r15", _EV + 4, "rbx")
    a.mov("rdi", "r14")
    a.mov_imm("rsi", 1)  # EPOLL_CTL_ADD
    a.mov("rdx", "rbx")
    a.lea("r10", "r15", _EV)
    sys("epoll_ctl")

    # ---------------------------------------------------------- event loop
    a.label("loop")
    a.mov("rdi", "r14")
    a.lea("rsi", "r15", _EV)
    a.mov_imm("rdx", 1)  # one event at a time
    a.mov_imm("r10", (1 << 64) - 1)  # timeout -1: block
    sys("epoll_wait")
    a.cmpi("rax", 0)
    a.jle("loop")
    a.load("r13", "r15", _EV + 4)  # event data = fd
    a.cmp("r13", "rbx")
    a.jnz("conn_event")

    # -- new connection ----------------------------------------------------
    a.mov("rdi", "rbx")
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    sys("accept4")
    a.cmpi("rax", 0)
    a.jl("loop")
    a.mov("r13", "rax")
    a.mov_imm("rcx", 1)
    a.store("r15", _EV, "rcx")
    a.store("r15", _EV + 4, "r13")
    a.mov("rdi", "r14")
    a.mov_imm("rsi", 1)  # ADD
    a.mov("rdx", "r13")
    a.lea("r10", "r15", _EV)
    sys("epoll_ctl")
    a.jmp("loop")

    # -- request on an existing connection -----------------------------------
    a.label("conn_event")
    a.mov("rdi", "r13")
    a.lea("rsi", "r15", _REQBUF)
    a.mov_imm("rdx", 4096)
    sys("read")
    a.cmpi("rax", 0)
    a.jle("conn_closed")

    a.hcall(parse_hcall)  # request parsing + response header build (user code)

    if batched:
        # The whole response tail rides the ring: one crossing instead of
        # five (nginx) / six (lighttpd).  The opened fd is not known until
        # drain time, so downstream entries reference it with result links.
        a.lea("rdx", "r15", _ADDR + 16)  # fstat buffer
        fd = ring_result(ring.push("open", "file_path", 0, 0))
        ring.push("fstat", fd, "rdx")
        if spec.delivery == "sendfile":
            ring.push_write("r13", "header", HEADER_SIZE)
            ring.push("sendfile", "r13", fd, 0, CHUNK)
        else:
            a.lea("rsi", "r15", _FILEBUF)
            nread = ring_result(ring.push_read(fd, "rsi", CHUNK))
            ring.push_write("r13", "header", HEADER_SIZE)
            ring.push_write("r13", "rsi", nread)
        ring.push("close", fd)
        ring.flush()
        ring.reset()
        a.jmp("loop")

    # open the resource
    a.mov_imm("rdi", "file_path")
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    sys("open")
    a.cmpi("rax", 0)
    a.jl("loop")
    a.mov("r12", "rax")
    # fstat for the response length
    a.mov("rdi", "r12")
    a.lea("rsi", "r15", _ADDR + 16)
    sys("fstat")
    # header
    a.mov("rdi", "r13")
    a.mov_imm("rsi", "header")
    a.mov_imm("rdx", HEADER_SIZE)
    sys("write")

    if spec.delivery == "sendfile":
        a.label("send_loop")
        a.mov("rdi", "r13")
        a.mov("rsi", "r12")
        a.mov_imm("rdx", 0)
        a.mov_imm("r10", CHUNK)
        sys("sendfile")
        a.cmpi("rax", 0)
        a.jg("send_loop")
    else:
        a.label("send_loop")
        a.mov("rdi", "r12")
        a.lea("rsi", "r15", _FILEBUF)
        a.mov_imm("rdx", CHUNK)
        sys("read")
        a.cmpi("rax", 0)
        a.jle("send_done")
        a.mov("rdx", "rax")
        a.mov("rdi", "r13")
        a.lea("rsi", "r15", _FILEBUF)
        sys("write")
        a.jmp("send_loop")
        a.label("send_done")

    a.mov("rdi", "r12")
    sys("close")
    a.jmp("loop")

    # -- peer closed -----------------------------------------------------------
    a.label("conn_closed")
    a.mov("rdi", "r14")
    a.mov_imm("rsi", 2)  # EPOLL_CTL_DEL
    a.mov("rdx", "r13")
    a.mov_imm("r10", 0)
    sys("epoll_ctl")
    a.mov("rdi", "r13")
    sys("close")
    a.jmp("loop")

    # ---------------------------------------------------------------- data
    a.label("file_path")
    a.db(FILE_PATH.encode() + b"\x00")
    a.label("header")
    header = b"HTTP/1.1 200 OK\r\nServer: %s\r\n\r\n" % spec.name.encode()
    a.db(header.ljust(HEADER_SIZE, b"\x00"))
    name = spec.name + ("-batched" if batched else "")
    return image_from_assembler(name, a, entry="_start")


def build_async_server_image(
    spec: ServerSpec,
    parse_hcall: int,
    *,
    port: int = 8080,
    depth: int = 4,
    base: int = layout.CODE_BASE,
) -> ProgramImage:
    """Build the event-loop server: **one** worker overlapping ``depth``
    in-flight requests through the asynchronous ring drain.

    There is no epoll and no per-request syscall crossing at all.  The
    worker keeps one blocking ``read`` SQE in flight per connection; the
    async drain parks them all kernel-side (``depth`` simultaneously
    blocked I/Os owned by a single task), and a ``ring_wait`` harvests the
    wave once every connection has a request pending.  Each wave then
    pushes all ``depth`` response tails (open / fstat / header write /
    delivery / close, linked on the opened fd) and submits them with one
    more crossing — two ``ring_enter`` crossings per ``depth`` requests,
    against the sync-batched leg's one crossing *plus* epoll_wait and read
    per request.
    """
    a = Assembler(base=base)
    connfd = 64  # per-connection fd array, u64 each
    req0 = connfd + 8 * depth  # per-connection request buffers
    filebuf = (req0 + 256 * depth + 63) & ~63
    ring_off = filebuf + CHUNK
    entries = 6 * depth  # one read + five response entries per connection
    bufsize = ring_off + ring_region_size(entries)

    def sys(name):
        a.mov_imm("rax", NR[name])
        a.syscall()

    a.label("_start")
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", bufsize)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    sys("mmap")
    a.mov("r15", "rax")

    # Listen socket.  *Blocking* on purpose (no SOCK_NONBLOCK): parked
    # accept4 SQEs are how the async drain overlaps the accept wave —
    # there is exactly one worker, so no thundering herd to dodge.
    a.mov_imm("rdi", 2)  # AF_INET
    a.mov_imm("rsi", 1)  # SOCK_STREAM
    a.mov_imm("rdx", 0)
    sys("socket")
    a.mov("rbx", "rax")
    a.mov_imm("rcx", (port >> 8) & 0xFF)
    a.store8("r15", _ADDR + 2, "rcx")
    a.mov_imm("rcx", port & 0xFF)
    a.store8("r15", _ADDR + 3, "rcx")
    a.mov("rdi", "rbx")
    a.lea("rsi", "r15", _ADDR)
    a.mov_imm("rdx", 16)
    sys("bind")
    a.mov("rdi", "rbx")
    a.mov_imm("rsi", 128)
    sys("listen")

    ring = GuestRing(a, entries=entries, base="r15", disp=ring_off,
                     tag="asrv")
    ring.emit_init()

    # -- accept wave: depth parked accepts, one crossing ------------------
    for _ in range(depth):
        ring.push_accept("rbx")
    ring.submit_async(min_complete=depth)
    # CQEs are slot-correlated, so conn fds harvest in slot order.
    for i in range(depth):
        ring.load_result("r13", i)
        a.store("r15", connfd + 8 * i, "r13")
    ring.reset()

    # ---------------------------------------------------------- event loop
    a.label("loop")
    ring.rewind()
    ring.reset()
    # Read wave: one blocking read per connection, all in flight at once.
    for i in range(depth):
        a.load("r13", "r15", connfd + 8 * i)
        a.lea("rsi", "r15", req0 + 256 * i)
        ring.push_read("r13", "rsi", 256)
    ring.submit_async(min_complete=depth)
    # Response wave: parse + the full batched tail per connection.
    for i in range(depth):
        a.hcall(parse_hcall)  # request parsing + header build (user code)
        a.load("r13", "r15", connfd + 8 * i)
        a.lea("rdx", "r15", _ADDR + 16)  # fstat buffer
        fd = ring_result(ring.push("open", "file_path", 0, 0))
        ring.push("fstat", fd, "rdx")
        if spec.delivery == "sendfile":
            ring.push_write("r13", "header", HEADER_SIZE)
            ring.push("sendfile", "r13", fd, 0, CHUNK)
        else:
            a.lea("rsi", "r15", filebuf)
            nread = ring_result(ring.push_read(fd, "rsi", CHUNK))
            ring.push_write("r13", "header", HEADER_SIZE)
            ring.push_write("r13", "rsi", nread)
        ring.push("close", fd)
    ring.submit_async(min_complete=entries)
    a.jmp("loop")

    # ---------------------------------------------------------------- data
    a.label("file_path")
    a.db(FILE_PATH.encode() + b"\x00")
    a.label("header")
    header = b"HTTP/1.1 200 OK\r\nServer: %s\r\n\r\n" % spec.name.encode()
    a.db(header.ljust(HEADER_SIZE, b"\x00"))
    return image_from_assembler(spec.name + "-async", a, entry="_start")


class ServerWorkload:
    """One loaded server process plus its content and parse-cost hook.

    ``batched`` selects the syscall shape: ``False`` (direct), ``True``
    (sync-batched response tails), or ``"async"`` (the event-loop leg —
    one worker, ``async_depth`` overlapping in-flight requests through
    the asynchronous ring drain).

    ``request_extra_cycles`` charges additional per-request user-space
    cycles, indexed by service order — the cluster layer uses it to model
    session-cache misses and cross-shard session migrations.
    """

    def __init__(self, machine, spec: ServerSpec, *, file_size: int,
                 port: int = 8080, workers: int = 1,
                 batched: bool | str = False, async_depth: int = 4,
                 request_extra_cycles: list[int] | None = None):
        if batched and file_size > CHUNK:
            raise ValueError(
                f"batched server delivers one chunk per request: "
                f"file_size {file_size} > {CHUNK}"
            )
        if batched == "async" and workers != 1:
            raise ValueError(
                "the async event-loop server is single-worker by design "
                f"(overlap comes from parked I/O, not processes): "
                f"workers={workers}"
            )
        self.machine = machine
        self.spec = spec
        self.port = port
        self.file_size = file_size
        self.workers = workers
        self.batched = batched
        self.async_depth = async_depth
        self.last_client = None
        machine.fs.create(FILE_PATH, bytes(file_size))
        extra = list(request_extra_cycles or ())
        served = {"n": 0}

        def parse(ctx):
            i = served["n"]
            served["n"] = i + 1
            cost = spec.parse_cost
            if i < len(extra):
                cost += extra[i]
            ctx.charge(cost)

        hcall = machine.kernel.register_hcall(parse)
        if batched == "async":
            self.image = build_async_server_image(
                spec, hcall, port=port, depth=async_depth
            )
        else:
            self.image = build_server_image(
                spec, hcall, port=port, workers=workers,
                batched=bool(batched),
            )
        self.process = machine.load(self.image)

    def run_until_listening(self, max_instructions: int = 500_000) -> None:
        kernel = self.machine.kernel

        def listening():
            sock = kernel.net.listeners.get(self.port)
            return sock is not None and sock.listening

        self.machine.run(until=listening, max_instructions=max_instructions)
        if not listening():
            raise RuntimeError(f"{self.spec.name} never started listening")

    def _start_when_listening(self, client, interval: int = 1_000) -> None:
        """Arm an event that starts ``client`` the moment the listener is up.

        The async worker parks its whole accept wave inside ONE interposed
        ``ring_enter``; with a single task, ``listen()`` and that blocking
        crossing can land in the same scheduler slice, so a
        ``machine.run(until=listening)`` driver may never get control in
        between to wire the clients — and the parked accepts would then
        wait on wakeups nobody can produce.  Starting the client from the
        event queue closes the race: the poll event keeps the kernel's
        cooperative wait making progress and fires the connects into the
        parked accept wave.  The fixed interval keeps it deterministic.
        """
        kernel = self.machine.kernel

        def poll():
            sock = kernel.net.listeners.get(self.port)
            if sock is not None and sock.listening:
                client.start()
            else:
                kernel.post_event_in(interval, poll)

        kernel.post_event_in(interval, poll)

    def benchmark(
        self,
        *,
        requests: int = 300,
        warmup: int = 30,
        connections: int = 4,
        client_cycles_per_request: int = 0,
        deadline_cycles: int | None = None,
        partition_after: int | None = None,
    ) -> float:
        """Drive the server with the wrk model; returns requests/second.

        The driving :class:`WrkClient` is kept on ``self.last_client`` so
        callers (the unified runner, the cluster shard worker) can read
        latency samples and the measured window after the run.

        With ``deadline_cycles`` set the run is bounded: instead of
        raising when the server stalls, it returns once the machine clock
        reaches the (absolute) deadline — the fleet hang-recovery path.
        ``partition_after`` caps the client's total sends (see
        :class:`WrkClient`); both default to off, leaving normal runs
        byte-identical.
        """
        is_async = self.batched == "async"
        if not is_async:
            self.run_until_listening()
        client = self.last_client = WrkClient(
            self.machine.kernel,
            self.port,
            connections=connections,
            response_size=self.file_size,
            warmup_requests=warmup,
            client_cycles_per_request=client_cycles_per_request,
            partition_after=partition_after,
        )
        if is_async:
            self._start_when_listening(client)
        else:
            client.start()
        total = warmup + requests
        kernel = self.machine.kernel
        if deadline_cycles is None:
            until = lambda: client.stats.completed >= total
        else:
            # a no-op timer guarantees an idle machine still advances
            # simulated time to the deadline instead of deadlocking
            kernel.post_event(deadline_cycles, lambda: None)
            until = lambda: (client.stats.completed >= total
                             or kernel.clock >= deadline_cycles)
        self.machine.run(until=until, max_instructions=1_000_000_000)
        client.stop()
        if client.stats.completed < total and deadline_cycles is None:
            raise RuntimeError(
                f"server stalled: {client.stats.completed}/{total} responses"
            )
        return client.throughput(self.machine.costs.frequency_hz)


def run_scaled(
    spec: ServerSpec,
    *,
    cores: int,
    tool: str | None = None,
    requests: int = 200,
    warmup: int = 20,
    file_size: int = 8192,
    connections: int | None = None,
    smp_seed: int = 0,
    batched: bool = False,
) -> dict:
    """One point of the SMP scaling curve: serve on ``cores`` cores.

    A thin wrapper over the unified runner —
    ``run_workload("webserver", server=spec.name, cores=cores, ...)`` —
    kept for the existing benchmark callers.  The row additionally carries
    the measured window, latency percentiles and raw latency samples (see
    :class:`repro.workloads.runner.WebserverWorkload`).
    """
    from repro.workloads.runner import run_workload

    return run_workload(
        "webserver",
        server=spec.name if isinstance(spec, ServerSpec) else spec,
        tool=tool,
        cores=cores,
        batched=batched,
        smp_seed=smp_seed,
        requests=requests,
        warmup=warmup,
        file_size=file_size,
        connections=connections,
    )


def scaling_curve(
    spec: ServerSpec,
    core_counts=(1, 2, 4),
    **kwargs,
) -> list[dict]:
    """The webserver SMP scaling curve (one :func:`run_scaled` row each)."""
    return [run_scaled(spec, cores=n, **kwargs) for n in core_counts]
