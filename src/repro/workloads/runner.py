"""The unified workload runner: one entry point for every workload.

Before this module each workload grew its own runner with its own private
setup helpers — ``webserver.run_scaled``, ``ringbench.measure_ring`` and
``microbench.measure_cycles_per_syscall`` each built a Machine, loaded a
guest and attached a tool in slightly different ways (``_run_once``,
``_install``, ``bench.runner.install_mechanism``).  :func:`run_workload`
replaces all of them with a single protocol::

    run_workload(name, *, tool=None, cores=1, batched=False, tracer=None,
                 smp_seed=0, interposer=None, tool_opts=None,
                 machine_opts=None, **options) -> dict

Every workload implements :class:`Workload` and registers itself; both the
cluster shard worker (:mod:`repro.cluster`) and the benchmarks call the
same entry point, so there is exactly one place where ``degrade_policy``
(via ``tool_opts``), ``superblocks``/``translation_cache``/``costs`` (via
``machine_opts``) and the ring options (``batched=``) are threaded through.

Migration map (old entry points remain as thin wrappers):

===============================================  ===========================
old entry point                                  unified call
===============================================  ===========================
``webserver.run_scaled(spec, cores=N, ...)``     ``run_workload("webserver",
                                                 server=spec.name, cores=N,
                                                 ...)``
``webserver.scaling_curve(spec, ...)``           one ``run_workload`` per
                                                 core count
``ringbench.measure_ring(tool, batch, ...)``     two ``run_workload("ringbench",
                                                 tool=tool, batch=B,
                                                 enters=E)`` runs, differenced
``microbench.measure_cycles_per_syscall(mech)``  two ``run_workload("microbench",
                                                 tool=mech, iterations=I)``
                                                 runs, differenced
``bench.runner.install_mechanism(name, ...)``    ``attach_mechanism(machine,
                                                 process, name, ...)``
===============================================  ===========================

Results are plain JSON-serializable dicts so they can cross the cluster's
process boundary unchanged; every number in them is *simulated* (cycles,
instructions, simulated seconds) and therefore deterministic for a given
``(workload, options, smp_seed)``.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.interpose.api import Interposer, passthrough_interposer
from repro.kernel.machine import Machine


# --------------------------------------------------------------- mechanisms
#: Benchmark-only mechanism names handled by :func:`attach_mechanism` on
#: top of the plain :func:`repro.interpose.attach` registry names.
#: ``baseline``/``none``/``None`` attach nothing; ``sud_enabled_allow``
#: arms SUD with a permanently-ALLOW selector (Table II row 5); the
#: ``lazypoline_*`` variants are the paper's §V-B ablations.
def _lazypoline_config(mechanism: str):
    from repro.arch.registers import XComponent
    from repro.interpose.lazypoline import LazypolineConfig

    presets = {
        "lazypoline_xstate_sse": XComponent.SSE,
        "lazypoline_xstate_x87": XComponent.X87,
        "lazypoline_xstate_sse_avx": XComponent.SSE | XComponent.AVX,
    }
    if mechanism in presets:
        xstate = presets[mechanism]
    elif "noxstate" in mechanism:
        xstate = XComponent.none()
    else:
        xstate = XComponent.all()
    return LazypolineConfig(
        preserve_xstate=xstate,
        enable_sud="nosud" not in mechanism,
        protect_gs_with_pkey="pkey" in mechanism,
    )


def attach_mechanism(
    machine,
    process,
    mechanism: str | None,
    *,
    interposer: Interposer | None = None,
    tool_opts: dict | None = None,
):
    """Attach ``mechanism`` to ``process`` through the unified registry.

    The shared setup path for every runner and benchmark: accepts plain
    registry tool names (``lazypoline``, ``zpoline``, ``ptrace``, ...),
    the benchmark pseudo-mechanisms (``baseline``/``none``/``None``,
    ``sud_enabled_allow``) and the lazypoline ablation names
    (``lazypoline_noxstate``, ``lazypoline_nosud``, ``lazypoline_pkey``,
    ``lazypoline_xstate_*``).  Everything ultimately goes through
    :func:`repro.interpose.attach`; ``tool_opts`` (e.g. ``degrade_policy``,
    ``mode`` for zpoline) pass straight through to it.

    Returns the tool object, or ``None`` when nothing was attached.
    """
    opts = dict(tool_opts or {})
    if mechanism is None or mechanism in ("baseline", "none"):
        if opts:
            raise ValueError(
                f"tool options {sorted(opts)} given without a tool"
            )
        return None
    if mechanism == "sud_enabled_allow":
        # SUD armed but the selector permanently ALLOW: isolates the cost
        # of the slower kernel entry path + selector read (Table II row 5).
        from repro.kernel.sud import SELECTOR_ALLOW, SudState
        from repro.mem.pages import Perm

        task = process.task
        addr = task.mem.map_anywhere(4096, Perm.RW)
        task.mem.write_u8(addr, SELECTOR_ALLOW, check=None)
        task.sud = SudState(selector_addr=addr, allow_start=0, allow_len=0)
        return None

    from repro.interpose import attach

    if mechanism == "seccomp_bpf":
        # cBPF runs in kernel space: no interposer (the registry enforces it).
        return attach(machine, process, "seccomp_bpf", **opts)
    if mechanism.startswith("lazypoline") and mechanism != "lazypoline":
        opts.setdefault("config", _lazypoline_config(mechanism))
        mechanism = "lazypoline"
    return attach(machine, process, mechanism, interposer=interposer, **opts)


# ------------------------------------------------------------------ context
class RunContext:
    """Everything one :class:`Workload` run needs, in one bag.

    ``options`` holds the workload-specific keywords of the
    :func:`run_workload` call; :meth:`option` pops them with defaults so a
    workload can reject unknown leftovers.
    """

    def __init__(
        self,
        *,
        tool: str | None,
        cores: int,
        batched: bool,
        tracer,
        smp_seed: int,
        interposer: Interposer | None,
        tool_opts: dict | None,
        machine_opts: dict | None,
        options: dict,
    ):
        self.tool = tool
        self.cores = cores
        self.batched = batched
        self.tracer = tracer
        self.smp_seed = smp_seed
        self.interposer = interposer
        self.tool_opts = tool_opts
        self.machine_opts = dict(machine_opts or {})
        self.options = dict(options)

    def boot(self) -> Machine:
        """Build the Machine: cores/seed/tracer plus ``machine_opts``
        (``costs``, ``quantum``, ``superblocks``, ``translation_cache``,
        ``mmap_min_addr``, ...)."""
        opts = dict(self.machine_opts)
        costs = opts.pop("costs", None)
        return Machine(
            costs,
            cores=self.cores,
            smp_seed=self.smp_seed,
            tracer=self.tracer,
            **opts,
        )

    def attach(self, machine, process):
        """Attach ``self.tool`` through the shared setup path."""
        return attach_mechanism(
            machine,
            process,
            self.tool,
            interposer=self.interposer,
            tool_opts=self.tool_opts,
        )

    def option(self, name: str, default=None):
        return self.options.pop(name, default)

    def reject_unknown_options(self, workload: str) -> None:
        if self.options:
            raise TypeError(
                f"unknown options for workload {workload!r}: "
                f"{sorted(self.options)}"
            )


@runtime_checkable
class Workload(Protocol):
    """A benchmarkable guest scenario runnable through :func:`run_workload`.

    Implementations build their Machine with ``ctx.boot()``, attach the
    requested tool with ``ctx.attach(machine, process)`` and return a plain
    JSON-serializable dict of simulated (deterministic) results.
    """

    name: str

    def run(self, ctx: RunContext) -> dict: ...


# ---------------------------------------------------------------- workloads
class WebserverWorkload:
    """The Fig. 5 macrobenchmark: prefork epoll server driven by wrk.

    Options: ``server`` ("nginx"/"lighttpd"), ``requests``, ``warmup``,
    ``file_size``, ``connections`` (default ``2 * cores``), ``workers``
    (default one per core), ``client_cycles_per_request``,
    ``request_extra_cycles`` (per-request user-space surcharge list, used
    by the cluster's session model), plus the chaos knobs
    ``deadline_cycles`` (bounded run: return at the absolute deadline
    instead of raising on a stall) and ``partition_after`` (cap the wrk
    client's total sends) — both off by default and byte-invisible then.

    ``batched="async"`` selects the event-loop leg: a single worker
    overlapping ``connections`` (default 4) in-flight requests through
    the asynchronous ring drain — connections and overlap depth are the
    same number there, so it is fixed before the server image is built.

    The result row carries throughput (``requests_per_sec``), the measured
    window (``measured_seconds``), per-request latency percentiles *and*
    the raw post-warmup latency samples (simulated cycles) so a cluster
    front-end can merge percentile distributions across shards.
    """

    name = "webserver"

    def run(self, ctx: RunContext) -> dict:
        from repro.workloads.webserver import SERVERS, ServerWorkload
        from repro.workloads.wrk import latency_percentiles

        server = ctx.option("server", "nginx")
        spec = SERVERS[server] if isinstance(server, str) else server
        requests = ctx.option("requests", 200)
        warmup = ctx.option("warmup", 20)
        file_size = ctx.option("file_size", 8192)
        connections = ctx.option("connections")
        workers = ctx.option("workers", ctx.cores)
        client_cycles = ctx.option("client_cycles_per_request", 0)
        extra_cycles = ctx.option("request_extra_cycles")
        # chaos knobs (fleet fault tolerance); both default to off and the
        # result row is unchanged whenever they are off
        deadline_cycles = ctx.option("deadline_cycles")
        partition_after = ctx.option("partition_after")
        ctx.reject_unknown_options(self.name)

        is_async = ctx.batched == "async"
        if is_async:
            # One worker; the overlap depth *is* the connection count and
            # must be known before the server image is emitted.
            workers = 1
            connections = connections if connections is not None else 4
        elif connections is None:
            connections = 2 * ctx.cores
        if extra_cycles is not None:
            # The parse hook serves warmup requests first; they carry no
            # session surcharge.
            extra_cycles = [0] * warmup + list(extra_cycles)

        machine = ctx.boot()
        workload = ServerWorkload(
            machine, spec, file_size=file_size, workers=workers,
            batched=ctx.batched, async_depth=connections,
            request_extra_cycles=extra_cycles,
        )
        ctx.attach(machine, workload.process)
        rps = workload.benchmark(
            requests=requests,
            warmup=warmup,
            connections=connections,
            client_cycles_per_request=client_cycles,
            deadline_cycles=deadline_cycles,
            partition_after=partition_after,
        )
        stats = workload.last_client.stats
        start = stats.start_clock if stats.start_clock is not None else 0
        measured_cycles = stats.end_clock - start
        served = max(0, stats.completed - warmup)
        deadline_hit = deadline_cycles is not None and served < requests
        if deadline_hit:
            # the shard held its slot until the deadline: the measured
            # window (and the fleet's) extends to it
            measured_cycles = max(0, deadline_cycles - start)
        insns = machine.scheduler.total_instructions
        seconds = machine.seconds
        freq = machine.costs.frequency_hz
        pct = latency_percentiles(stats.samples)
        chaos_keys = {}
        if deadline_cycles is not None or partition_after is not None:
            if deadline_hit and measured_cycles:
                rps = served / (measured_cycles / freq)
            chaos_keys = {"served": served, "deadline_hit": deadline_hit}
        return {
            "workload": self.name,
            "server": spec.name,
            "cores": ctx.cores,
            "smp_seed": ctx.smp_seed,
            "tool": ctx.tool,
            "batched": ctx.batched,
            "requests": requests,
            "warmup": warmup,
            "connections": len(workload.last_client._conns),
            "file_size": file_size,
            "requests_per_sec": rps,
            "measured_seconds": measured_cycles / freq,
            "guest_mips": insns / seconds / 1e6 if seconds else 0.0,
            "instructions": insns,
            "cycles": machine.clock,
            "shootdowns": machine.scheduler.shootdowns,
            "steals": sum(c.steals for c in machine.cores),
            "utilization": [
                round(row["utilization"], 3) for row in machine.core_stats()
            ],
            "latency_p50_cycles": pct["p50"],
            "latency_p95_cycles": pct["p95"],
            "latency_p99_cycles": pct["p99"],
            "latency_samples_cycles": list(stats.samples),
            **chaos_keys,
        }


class RingBenchWorkload:
    """One steady-state syscall-aggregation run (see ``ringbench``).

    Options: ``enters`` (ring_enter crossings), ``batch`` (SQEs per
    crossing), ``syscall`` (the batched syscall name).  Returns the final
    clock and the crossing count; per-syscall numbers come from
    differencing two runs (``ringbench.measure_ring``).
    """

    name = "ringbench"

    def run(self, ctx: RunContext) -> dict:
        from repro.obs.tracer import Tracer
        from repro.workloads.ringbench import build_ring_loop

        enters = ctx.option("enters", 64)
        batch = ctx.option("batch", 1)
        name = ctx.option("syscall", "getpid")
        ctx.reject_unknown_options(self.name)

        if ctx.tracer is None:
            # aggregates only; the crossing counter is part of the result
            ctx.tracer = Tracer(max_events=0)
        machine = ctx.boot()
        process = machine.load(build_ring_loop(enters, batch, name))
        ctx.attach(machine, process)
        machine.run_process(process, max_instructions=200_000_000)
        return {
            "workload": self.name,
            "tool": ctx.tool,
            "enters": enters,
            "batch": batch,
            "syscall": name,
            "clock": machine.clock,
            "ring_enters": ctx.tracer.ring_enters,
            "instructions": machine.scheduler.total_instructions,
        }


class MicroBenchWorkload:
    """One Table II / Fig. 4 syscall-loop run (see ``microbench``).

    Options: ``iterations``, ``sysno``, ``steady_state`` (pre-rewrite the
    loop's syscall site under lazypoline so the measurement contains no
    slow-path executions — on by default, straight from §V-B a).  The tool
    accepts the full mechanism vocabulary of :func:`attach_mechanism`.
    """

    name = "microbench"

    def run(self, ctx: RunContext) -> dict:
        from repro.workloads.microbench import (
            NOSYS_SYSNO,
            build_syscall_loop,
            loop_syscall_site,
        )

        iterations = ctx.option("iterations", 400)
        sysno = ctx.option("sysno", NOSYS_SYSNO)
        steady_state = ctx.option("steady_state", True)
        ctx.reject_unknown_options(self.name)

        if ctx.interposer is None:
            ctx.interposer = passthrough_interposer
        machine = ctx.boot()
        process = machine.load(build_syscall_loop(iterations, sysno))
        tool = ctx.attach(machine, process)
        if steady_state and ctx.tool and ctx.tool.startswith("lazypoline"):
            tool.rewrite_site_now(loop_syscall_site(machine, process))
        machine.run_process(process, max_instructions=200_000_000)
        return {
            "workload": self.name,
            "tool": ctx.tool,
            "iterations": iterations,
            "sysno": sysno,
            "clock": machine.clock,
            "instructions": machine.scheduler.total_instructions,
        }


# ----------------------------------------------------------------- registry
_WORKLOADS: dict[str, Workload] = {}


def register_workload(workload: Workload) -> None:
    """Register (or replace) a workload under ``workload.name``."""
    _WORKLOADS[workload.name] = workload


def workload_names() -> list[str]:
    """Names accepted by :func:`run_workload`, sorted."""
    return sorted(_WORKLOADS)


for _w in (WebserverWorkload(), RingBenchWorkload(), MicroBenchWorkload()):
    register_workload(_w)


def run_workload(
    name: str,
    *,
    tool: str | None = None,
    cores: int = 1,
    batched: bool = False,
    tracer=None,
    smp_seed: int = 0,
    interposer: Interposer | None = None,
    tool_opts: dict | None = None,
    machine_opts: dict | None = None,
    **options: Any,
) -> dict:
    """Run one registered workload and return its result dict.

    The one entry point every benchmark, example and cluster shard goes
    through.  ``tool`` takes any :func:`attach_mechanism` name;
    ``tool_opts`` reach :func:`repro.interpose.attach` unchanged (e.g.
    ``degrade_policy=...``, zpoline's ``mode=...``); ``machine_opts``
    reach the :class:`Machine` constructor (``costs``, ``quantum``,
    ``superblocks``, ``translation_cache``, ``mmap_min_addr``);
    workload-specific keywords ride ``**options``.
    """
    impl = _WORKLOADS.get(name)
    if impl is None:
        raise ValueError(
            f"unknown workload {name!r}; available: {', '.join(workload_names())}"
        )
    ctx = RunContext(
        tool=tool,
        cores=cores,
        batched=batched,
        tracer=tracer,
        smp_seed=smp_seed,
        interposer=interposer,
        tool_opts=tool_opts,
        machine_opts=machine_opts,
        options=options,
    )
    return impl.run(ctx)
