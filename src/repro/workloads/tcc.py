"""The tcc-style JIT workload for the exhaustiveness experiment (§V-A).

Models ``tcc -run`` on a C program containing one non-libc ``getpid``
syscall: the "compiler" reads a source file, then emits machine code —
including a brand-new syscall instruction — into a freshly mmapped RWX page
*at run time* and calls it.

Static rewriters scanned the image before this code existed, so they miss
the JIT-ed getpid; exhaustive mechanisms (SUD, lazypoline) intercept it.
"""

from __future__ import annotations

from repro.arch.encode import Assembler
from repro.kernel.syscalls.table import NR
from repro.loader.image import ProgramImage, image_from_assembler
from repro.mem import layout

#: The code the JIT emits: ``mov eax, __NR_getpid; syscall; ret`` — exactly
#: eight bytes, written with a single 64-bit store like a real code emitter.
JIT_CODE = bytes((0xB8, NR["getpid"], 0x00, 0x00, 0x00, 0x0F, 0x05, 0xC3))

SOURCE_PATH = b"/src/prog.c"
SOURCE_TEXT = b"int main(void){ return syscall(SYS_getpid); }\n"


def build_tcc_image(*, base: int = layout.CODE_BASE) -> ProgramImage:
    a = Assembler(base=base)
    a.label("_start")

    # -- "compile": read the source file --------------------------------
    a.mov_imm("rdi", "src_path")
    a.mov_imm("rsi", 0)  # O_RDONLY
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["open"])
    a.syscall()
    a.mov("rbx", "rax")
    # scratch buffer
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 8192)
    a.mov_imm("rdx", 3)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r15", "rax")
    a.mov("rdi", "rbx")
    a.mov("rsi", "r15")
    a.mov_imm("rdx", 4096)
    a.mov_imm("rax", NR["read"])
    a.syscall()
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["close"])
    a.syscall()

    # -- "codegen": map an RWX page and store the compiled bytes --------
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 7)  # PROT_READ | PROT_WRITE | PROT_EXEC
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r12", "rax")  # JIT page
    a.mov_imm("rcx", int.from_bytes(JIT_CODE, "little"))
    a.store("r12", 0, "rcx")  # the syscall instruction is born HERE

    # -- run the JIT-ed function -----------------------------------------
    a.call_reg("r12")
    a.mov("r13", "rax")  # pid returned by the JIT-ed getpid

    # -- report and exit ---------------------------------------------------
    a.mov_imm("rdi", 1)
    a.mov_imm("rsi", "msg")
    a.mov_imm("rdx", 3)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()

    a.label("src_path")
    a.db(SOURCE_PATH + b"\x00")
    a.label("msg")
    a.db(b"ok\n")
    return image_from_assembler("tcc-run", a, entry="_start")


def setup_fs(machine) -> None:
    machine.fs.create(SOURCE_PATH.decode(), SOURCE_TEXT)
