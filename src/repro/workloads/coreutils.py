"""The ten coreutils of Table III, built against a modelled libc.

Each utility is a real guest program: CRT startup from the selected
:class:`~repro.libc.variants.LibcVariant`, then a body performing the
utility's characteristic syscalls against the in-memory filesystem.

Whether a utility links libpthread decides if the Ubuntu 20.04 build runs
the Listing-1 pthread initialisation.  The paper found 40% of the evaluated
coreutils affected on Ubuntu 20.04 (Table III: ls, mkdir, mv, cp) — on real
systems via their libselinux/libpthread dependency chain — so those four are
modelled as thread-capable.
"""

from __future__ import annotations

from typing import Callable

from repro.arch.encode import Assembler
from repro.kernel.syscalls.table import NR
from repro.libc.variants import GLIBC_231_UBUNTU, LibcVariant
from repro.loader.image import ProgramImage, image_from_assembler
from repro.mem import layout

#: Utilities whose Ubuntu 20.04 builds pull in the pthread initialisation
#: (the ✓ rows of Table III's Ubuntu column).
THREAD_LINKED = frozenset({"ls", "mkdir", "mv", "cp"})

COREUTIL_NAMES = ("ls", "pwd", "chmod", "mkdir", "mv", "cp", "rm", "touch",
                  "cat", "clear")


def _sys(asm: Assembler, name: str) -> None:
    asm.mov_imm("rax", NR[name])
    asm.syscall()


def _exit0(asm: Assembler) -> None:
    asm.mov_imm("rdi", 0)
    _sys(asm, "exit_group")


def _emit_ls(a: Assembler) -> None:
    """openat + getdents64 + write, the classic directory listing."""
    a.mov_imm("rdi", (1 << 64) - 100)  # AT_FDCWD
    a.mov_imm("rsi", "path")
    a.mov_imm("rdx", 0o200000)  # O_DIRECTORY
    a.mov_imm("r10", 0)
    _sys(a, "openat")
    a.mov("rbx", "rax")  # dirfd
    a.label("more")
    a.mov("rdi", "rbx")
    a.lea("rsi", "r15", 0x200)  # libc data page as the dirent buffer
    a.mov_imm("rdx", 0x600)
    _sys(a, "getdents64")
    a.cmpi("rax", 0)
    a.jle("done")
    a.mov("rdx", "rax")
    a.mov_imm("rdi", 1)
    a.lea("rsi", "r15", 0x200)
    _sys(a, "write")
    a.jmp("more")
    a.label("done")
    a.mov("rdi", "rbx")
    _sys(a, "close")


def _emit_pwd(a: Assembler) -> None:
    a.lea("rdi", "r15", 0x200)
    a.mov_imm("rsi", 256)
    _sys(a, "getcwd")
    a.mov("rdx", "rax")  # includes the NUL; close enough for a model
    a.mov_imm("rdi", 1)
    a.lea("rsi", "r15", 0x200)
    _sys(a, "write")


def _emit_chmod(a: Assembler) -> None:
    a.mov_imm("rdi", "path")
    a.mov_imm("rsi", 0o644)
    _sys(a, "chmod")


def _emit_mkdir(a: Assembler) -> None:
    a.mov_imm("rdi", "path")
    a.mov_imm("rsi", 0o755)
    _sys(a, "mkdir")


def _emit_mv(a: Assembler) -> None:
    a.mov_imm("rdi", "path")
    a.mov_imm("rsi", "path2")
    _sys(a, "rename")


def _emit_cp(a: Assembler) -> None:
    a.mov_imm("rdi", "path")
    a.mov_imm("rsi", 0)  # O_RDONLY
    a.mov_imm("rdx", 0)
    _sys(a, "open")
    a.mov("rbx", "rax")  # src fd
    a.mov_imm("rdi", "path2")
    a.mov_imm("rsi", 0o101)  # O_CREAT | O_WRONLY
    a.mov_imm("rdx", 0o644)
    _sys(a, "open")
    a.mov("r14", "rax")  # dst fd
    a.label("copy")
    a.mov("rdi", "rbx")
    a.lea("rsi", "r15", 0x200)
    a.mov_imm("rdx", 0x400)
    _sys(a, "read")
    a.cmpi("rax", 0)
    a.jle("done")
    a.mov("rdx", "rax")
    a.mov("rdi", "r14")
    a.lea("rsi", "r15", 0x200)
    _sys(a, "write")
    a.jmp("copy")
    a.label("done")
    a.mov("rdi", "rbx")
    _sys(a, "close")
    a.mov("rdi", "r14")
    _sys(a, "close")


def _emit_rm(a: Assembler) -> None:
    a.mov_imm("rdi", "path")
    _sys(a, "unlink")


def _emit_touch(a: Assembler) -> None:
    a.mov_imm("rdi", "path")
    a.mov_imm("rsi", 0o101)  # O_CREAT | O_WRONLY
    a.mov_imm("rdx", 0o644)
    _sys(a, "open")
    a.mov("rdi", "rax")
    _sys(a, "close")


def _emit_cat(a: Assembler) -> None:
    a.mov_imm("rdi", "path")
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    _sys(a, "open")
    a.mov("rbx", "rax")
    a.label("more")
    a.mov("rdi", "rbx")
    a.lea("rsi", "r15", 0x200)
    a.mov_imm("rdx", 0x400)
    _sys(a, "read")
    a.cmpi("rax", 0)
    a.jle("done")
    a.mov("rdx", "rax")
    a.mov_imm("rdi", 1)
    a.lea("rsi", "r15", 0x200)
    _sys(a, "write")
    a.jmp("more")
    a.label("done")
    a.mov("rdi", "rbx")
    _sys(a, "close")


def _emit_clear(a: Assembler) -> None:
    a.mov_imm("rdi", 1)
    a.mov_imm("rsi", "escape")
    a.mov_imm("rdx", 7)
    _sys(a, "write")


_BODIES: dict[str, Callable[[Assembler], None]] = {
    "ls": _emit_ls,
    "pwd": _emit_pwd,
    "chmod": _emit_chmod,
    "mkdir": _emit_mkdir,
    "mv": _emit_mv,
    "cp": _emit_cp,
    "rm": _emit_rm,
    "touch": _emit_touch,
    "cat": _emit_cat,
    "clear": _emit_clear,
}

#: Default paths the utilities operate on (created by :func:`setup_fs`).
SRC_PATH = b"/home/user/file.txt"
DST_PATH = b"/home/user/copy.txt"
DIR_PATH = b"/home/user"
NEWDIR_PATH = b"/home/user/newdir"


def _paths_for(name: str) -> tuple[bytes, bytes]:
    if name == "ls":
        return DIR_PATH, b""
    if name == "mkdir":
        return NEWDIR_PATH, b""
    if name in ("mv", "cp"):
        return SRC_PATH, DST_PATH
    return SRC_PATH, b""


def build_coreutil(
    name: str,
    variant: LibcVariant = GLIBC_231_UBUNTU,
    *,
    base: int = layout.CODE_BASE,
) -> ProgramImage:
    """Build one coreutil against the given libc variant."""
    if name not in _BODIES:
        raise ValueError(f"unknown coreutil {name!r}")
    uses_threads = name in THREAD_LINKED
    a = Assembler(base=base)
    a.label("_start")
    variant.emit(a, uses_threads=uses_threads)
    _BODIES[name](a)
    _exit0(a)
    path, path2 = _paths_for(name)
    a.label("path")
    a.db(path + b"\x00")
    if path2:
        a.label("path2")
        a.db(path2 + b"\x00")
    if name == "clear":
        a.label("escape")
        a.db(b"\x1b[H\x1b[2J\x00")
    return image_from_assembler(name, a, entry="_start")


def setup_fs(machine) -> None:
    """Populate the filesystem the utilities expect."""
    machine.fs.makedirs("/home/user")
    machine.fs.create("/home/user/file.txt", b"The quick brown fox.\n" * 8)
    machine.fs.create("/home/user/other.txt", b"another file\n")


def run_coreutil(machine, name: str, variant: LibcVariant = GLIBC_231_UBUNTU):
    """Build, load and run one utility; returns the finished process."""
    setup_fs(machine)
    image = build_coreutil(name, variant)
    process = machine.load(image)
    machine.run(until=lambda: not process.alive, max_instructions=2_000_000)
    return process
