"""Evaluation workloads: microbenchmark loop, coreutils, JIT, web servers.

All workloads run through the unified runner protocol —
:func:`repro.workloads.runner.run_workload` — which is re-exported here::

    from repro.workloads import run_workload
    row = run_workload("webserver", tool="lazypoline", cores=4, batched=True)
"""

from repro.workloads.runner import (  # noqa: F401
    Workload,
    attach_mechanism,
    register_workload,
    run_workload,
    workload_names,
)
