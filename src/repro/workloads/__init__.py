"""Evaluation workloads: microbenchmark loop, coreutils, JIT, web servers."""
