"""A wrk-style closed-loop HTTP load generator (host-side model).

The paper drives its servers with wrk: 36 client threads, keep-alive
connections, continuously requesting one static resource.  This model
reproduces that shape: ``connections`` persistent loopback connections each
send a fixed request, count response bytes until a full response arrived,
and immediately (plus an optional per-request client cost) send the next
request.

Responses are framed by size: the server always sends a fixed-length header
followed by the file body, so the client needs no HTTP parsing — it counts
bytes, like wrk's fast path effectively does for a known static resource.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: The fixed request wrk sends (keep-alive GET).
REQUEST = (
    b"GET /www/file.bin HTTP/1.1\r\n"
    b"Host: localhost\r\n"
    b"Connection: keep-alive\r\n\r\n"
)

#: Fixed server response header size (the server pads to this).
HEADER_SIZE = 64


@dataclass
class WrkStats:
    completed: int = 0
    bytes_received: int = 0
    start_clock: int | None = None
    end_clock: int = 0
    errors: int = 0
    #: per-request latency samples in simulated cycles (send -> last byte),
    #: post-warmup requests only, in completion order
    samples: list = field(default_factory=list)


def latency_percentiles(samples: list[int]) -> dict[str, int]:
    """Nearest-rank p50/p95/p99 over latency ``samples`` (cycles).

    Deterministic (pure integer selection on the sorted samples); returns
    zeros when there are no samples.
    """
    if not samples:
        return {"p50": 0, "p95": 0, "p99": 0}
    ordered = sorted(samples)
    n = len(ordered)
    pick = lambda q: ordered[min(n - 1, max(0, -(-q * n // 100) - 1))]
    return {"p50": pick(50), "p95": pick(95), "p99": pick(99)}


class WrkClient:
    """Closed-loop load generator over the simulated loopback."""

    def __init__(
        self,
        kernel,
        port: int,
        *,
        connections: int = 4,
        response_size: int,
        warmup_requests: int = 0,
        client_cycles_per_request: int = 0,
        partition_after: int | None = None,
    ):
        self.kernel = kernel
        self.port = port
        self.connections = connections
        self.expected = HEADER_SIZE + response_size
        self.warmup = warmup_requests
        self.client_cost = client_cycles_per_request
        #: chaos knob: after this many total sends (warmup included) the
        #: client partitions — no further requests, and data arriving on a
        #: connection with no request in flight is dropped (a hung/failed
        #: shard's late bytes).  ``None`` (default) changes nothing.
        self.partition_after = partition_after
        self.stats = WrkStats()
        self._conns: list = []
        self._received: dict[int, int] = {}
        self._sent_at: dict[int, int] = {}
        self._sends = 0
        self._in_flight: set[int] = set()
        self._stopped = False

    # ------------------------------------------------------------------ drive
    def start(self) -> None:
        """Open the connections and fire the first request on each."""
        for i in range(self.connections):
            conn = self.kernel.net.connect(
                self.port,
                on_data=lambda data, idx=i: self._on_data(idx, data),
            )
            self._conns.append(conn)
            self._received[i] = 0
        for i in range(self.connections):
            self._send(i)

    def stop(self) -> None:
        self._stopped = True
        for conn in self._conns:
            conn.client.close()

    def _send(self, idx: int) -> None:
        if self._stopped:
            return
        if self.partition_after is not None:
            if self._sends >= self.partition_after:
                return  # partitioned: the connection goes quiet
            self._sends += 1
            self._in_flight.add(idx)
        self._sent_at[idx] = self.kernel.now
        self._conns[idx].client.send(REQUEST)

    def _on_data(self, idx: int, data: bytes) -> None:
        if self.partition_after is not None and idx not in self._in_flight:
            return  # unsolicited bytes after partitioning: dropped
        self._received[idx] += len(data)
        self.stats.bytes_received += len(data)
        if self._received[idx] < self.expected:
            return
        if self._received[idx] > self.expected:
            self.stats.errors += 1
        self._received[idx] = 0
        self._in_flight.discard(idx)
        self.stats.completed += 1
        if self.stats.completed == self.warmup:
            self.stats.start_clock = self.kernel.now
        elif self.stats.completed > self.warmup:
            self.stats.samples.append(self.kernel.now - self._sent_at[idx])
        self.stats.end_clock = self.kernel.now
        if self.client_cost:
            self.kernel.post_event_in(self.client_cost, lambda: self._send(idx))
        else:
            self._send(idx)

    # ------------------------------------------------------------------ stats
    def throughput(self, frequency_hz: float) -> float:
        """Requests per second over the measured (post-warmup) window."""
        if self.stats.start_clock is None:
            start = 0
            measured = self.stats.completed
        else:
            start = self.stats.start_clock
            measured = self.stats.completed - self.warmup
        cycles = self.stats.end_clock - start
        if cycles <= 0:
            return 0.0
        return measured / (cycles / frequency_hz)
