"""The Table II / Fig. 4 microbenchmark (§V-B a).

A tight loop invokes a non-existent syscall (number 500 by default): the
ENOSYS round trip is the cheapest possible kernel entry, so interposition
overhead ratios are maximally visible.  Syscall 500 also enters the zpoline
nop sled near its tail, minimising sled cost — both choices straight from
the paper.

Per-iteration cycles are measured by differencing two runs with different
iteration counts, which cancels program startup/exit and tool install costs
exactly (the paper instead runs 100M iterations; our simulator is
deterministic, so differencing gives the identical steady state).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.encode import Assembler
from repro.arch.registers import XComponent
from repro.cpu.costs import CostModel
from repro.interpose.api import Interposer, passthrough_interposer
from repro.interpose.lazypoline import LazypolineConfig
from repro.interpose.registry import attach
from repro.kernel.machine import Machine
from repro.kernel.sud import SELECTOR_ALLOW, SudState
from repro.kernel.syscalls.table import NR
from repro.loader.image import ProgramImage, image_from_assembler
from repro.mem import layout

#: The non-existent syscall number the paper uses.
NOSYS_SYSNO = 500

#: Mechanisms understood by :func:`measure_cycles_per_syscall`.
MECHANISMS = (
    "baseline",
    "sud_enabled_allow",
    "zpoline",
    "lazypoline",
    "lazypoline_noxstate",
    "lazypoline_nosud",
    "lazypoline_nosud_noxstate",
    "lazypoline_pkey",
    "lazypoline_xstate_sse",
    "lazypoline_xstate_x87",
    "lazypoline_xstate_sse_avx",
    "sud",
    "seccomp_bpf",
    "seccomp_user",
    "ptrace",
)

#: xstate component sets for the ablation configurations.
_XSTATE_PRESETS = {
    "lazypoline_xstate_sse": XComponent.SSE,
    "lazypoline_xstate_x87": XComponent.X87,
    "lazypoline_xstate_sse_avx": XComponent.SSE | XComponent.AVX,
}


def build_syscall_loop(
    iterations: int, sysno: int = NOSYS_SYSNO, *, base: int = layout.CODE_BASE
) -> ProgramImage:
    """A loop performing ``iterations`` syscalls from a single site.

    The syscall instruction's address is exported as the ``the_syscall``
    symbol so steady-state benchmarks can pre-rewrite it.
    """
    asm = Assembler(base=base)
    asm.label("_start")
    asm.mov_imm("rbx", iterations)
    asm.label("loop")
    asm.mov_imm("rax", sysno)
    asm.label("the_syscall")
    asm.syscall()
    asm.dec("rbx")
    asm.jnz("loop")
    asm.mov_imm("rax", NR["exit_group"])
    asm.mov_imm("rdi", 0)
    asm.syscall()
    return image_from_assembler("microbench", asm, entry="_start")


@dataclass
class MicroSetup:
    machine: Machine
    process: object
    tool: object | None


def _install(mechanism: str, machine: Machine, process,
             interposer: Interposer) -> object | None:
    task = process.task
    if mechanism == "baseline":
        return None
    if mechanism == "sud_enabled_allow":
        # SUD armed but the selector permanently ALLOW: isolates the cost
        # of the slower kernel entry path + selector read (Table II row 5).
        from repro.mem.pages import Perm

        addr = task.mem.map_anywhere(4096, Perm.RW)
        task.mem.write_u8(addr, SELECTOR_ALLOW, check=None)
        task.sud = SudState(selector_addr=addr, allow_start=0, allow_len=0)
        return None
    if mechanism == "zpoline":
        return attach(machine, process, "zpoline", interposer=interposer)
    if mechanism.startswith("lazypoline"):
        if mechanism in _XSTATE_PRESETS:
            xstate = _XSTATE_PRESETS[mechanism]
        elif "noxstate" in mechanism:
            xstate = XComponent.none()
        else:
            xstate = XComponent.all()
        config = LazypolineConfig(
            preserve_xstate=xstate,
            enable_sud="nosud" not in mechanism,
            protect_gs_with_pkey="pkey" in mechanism,
        )
        tool = attach(
            machine, process, "lazypoline", interposer=interposer, config=config
        )
        # Steady state: rewrite the loop's syscall site up front, so the
        # measurement contains no slow-path executions (§V-B a).
        tool.rewrite_site_now(_loop_syscall_site(machine, process))
        return tool
    if mechanism == "seccomp_bpf":
        return attach(machine, process, "seccomp_bpf")
    if mechanism in ("sud", "seccomp_user", "ptrace"):
        return attach(machine, process, mechanism, interposer=interposer)
    raise ValueError(f"unknown mechanism {mechanism!r}")


def _loop_syscall_site(machine, process) -> int:
    image = machine.kernel.binaries.get("/bin/" + process.task.comm)
    return image.symbols["the_syscall"]


def _run_once(
    mechanism: str,
    iterations: int,
    sysno: int,
    costs: CostModel | None,
    interposer: Interposer,
) -> int:
    machine = Machine(costs or CostModel())
    image = build_syscall_loop(iterations, sysno)
    process = machine.load(image)
    _install(mechanism, machine, process, interposer)
    machine.run_process(process, max_instructions=200_000_000)
    return machine.clock


def measure_cycles_per_syscall(
    mechanism: str,
    *,
    iterations: int = 400,
    sysno: int = NOSYS_SYSNO,
    costs: CostModel | None = None,
    interposer: Interposer | None = None,
) -> float:
    """Steady-state cycles per loop iteration under ``mechanism``."""
    interposer = interposer or passthrough_interposer
    low = _run_once(mechanism, iterations, sysno, costs, interposer)
    high = _run_once(mechanism, 2 * iterations, sysno, costs, interposer)
    return (high - low) / iterations


def overhead_vs_baseline(
    mechanism: str, *, iterations: int = 400, costs: CostModel | None = None
) -> float:
    """The Table II metric: per-syscall cycles relative to native."""
    base = measure_cycles_per_syscall(
        "baseline", iterations=iterations, costs=costs
    )
    mech = measure_cycles_per_syscall(
        mechanism, iterations=iterations, costs=costs
    )
    return mech / base
