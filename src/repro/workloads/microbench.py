"""The Table II / Fig. 4 microbenchmark (§V-B a).

A tight loop invokes a non-existent syscall (number 500 by default): the
ENOSYS round trip is the cheapest possible kernel entry, so interposition
overhead ratios are maximally visible.  Syscall 500 also enters the zpoline
nop sled near its tail, minimising sled cost — both choices straight from
the paper.

Per-iteration cycles are measured by differencing two runs with different
iteration counts, which cancels program startup/exit and tool install costs
exactly (the paper instead runs 100M iterations; our simulator is
deterministic, so differencing gives the identical steady state).
"""

from __future__ import annotations

from repro.arch.encode import Assembler
from repro.cpu.costs import CostModel
from repro.interpose.api import Interposer
from repro.kernel.syscalls.table import NR
from repro.loader.image import ProgramImage, image_from_assembler
from repro.mem import layout

#: The non-existent syscall number the paper uses.
NOSYS_SYSNO = 500

#: Mechanisms understood by :func:`measure_cycles_per_syscall` — all
#: resolved by the unified :func:`repro.workloads.runner.attach_mechanism`
#: setup path.
MECHANISMS = (
    "baseline",
    "sud_enabled_allow",
    "zpoline",
    "lazypoline",
    "lazypoline_noxstate",
    "lazypoline_nosud",
    "lazypoline_nosud_noxstate",
    "lazypoline_pkey",
    "lazypoline_xstate_sse",
    "lazypoline_xstate_x87",
    "lazypoline_xstate_sse_avx",
    "sud",
    "seccomp_bpf",
    "seccomp_user",
    "ptrace",
)


def build_syscall_loop(
    iterations: int, sysno: int = NOSYS_SYSNO, *, base: int = layout.CODE_BASE
) -> ProgramImage:
    """A loop performing ``iterations`` syscalls from a single site.

    The syscall instruction's address is exported as the ``the_syscall``
    symbol so steady-state benchmarks can pre-rewrite it.
    """
    asm = Assembler(base=base)
    asm.label("_start")
    asm.mov_imm("rbx", iterations)
    asm.label("loop")
    asm.mov_imm("rax", sysno)
    asm.label("the_syscall")
    asm.syscall()
    asm.dec("rbx")
    asm.jnz("loop")
    asm.mov_imm("rax", NR["exit_group"])
    asm.mov_imm("rdi", 0)
    asm.syscall()
    return image_from_assembler("microbench", asm, entry="_start")


def loop_syscall_site(machine, process) -> int:
    """Address of the loop's syscall instruction (``the_syscall`` symbol)."""
    image = machine.kernel.binaries.get("/bin/" + process.task.comm)
    return image.symbols["the_syscall"]


def _run_once(
    mechanism: str,
    iterations: int,
    sysno: int,
    costs: CostModel | None,
    interposer: Interposer | None,
) -> int:
    from repro.workloads.runner import run_workload

    machine_opts = {"costs": costs} if costs is not None else None
    return run_workload(
        "microbench",
        tool=None if mechanism == "baseline" else mechanism,
        interposer=interposer,
        machine_opts=machine_opts,
        iterations=iterations,
        sysno=sysno,
    )["clock"]


def measure_cycles_per_syscall(
    mechanism: str,
    *,
    iterations: int = 400,
    sysno: int = NOSYS_SYSNO,
    costs: CostModel | None = None,
    interposer: Interposer | None = None,
) -> float:
    """Steady-state cycles per loop iteration under ``mechanism``.

    A thin wrapper over two :func:`repro.workloads.runner.run_workload`
    calls (the unified runner protocol), differenced to cancel startup.
    """
    low = _run_once(mechanism, iterations, sysno, costs, interposer)
    high = _run_once(mechanism, 2 * iterations, sysno, costs, interposer)
    return (high - low) / iterations


def overhead_vs_baseline(
    mechanism: str, *, iterations: int = 400, costs: CostModel | None = None
) -> float:
    """The Table II metric: per-syscall cycles relative to native."""
    base = measure_cycles_per_syscall(
        "baseline", iterations=iterations, costs=costs
    )
    mech = measure_cycles_per_syscall(
        mechanism, iterations=iterations, costs=costs
    )
    return mech / base
