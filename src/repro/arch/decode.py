"""Single-instruction decoder.

``decode_one`` decodes exactly one instruction from a byte buffer.  It is the
single source of truth for instruction semantics shared by the CPU, the
linear-sweep disassembler, and the binary rewriters.

Operand tuple layouts by mnemonic:

=================  =======================================================
mnemonic           operands
=================  =======================================================
no-operand insns   ``()``
push/pop/inc/dec   ``(reg,)``
call_reg/jmp_reg   ``(reg,)``
rel jumps/calls    ``(rel,)`` — signed displacement from the *next* insn
mov_imm64          ``(reg, imm)`` — also used for the 5-byte imm32 form
reg-reg ALU/mov    ``(dst, src)``
shl/shr            ``(dst, imm8)``
imm ALU            ``(dst, imm)`` — imm decoded as signed 32-bit
load/lea           ``(dst, base, disp)``
store              ``(base, disp, src)``
movq_xg            ``(xmm, gpr)``;  movq_gx: ``(gpr, xmm)``
movups_load        ``(xmm, base, disp)``; movups_store: ``(base, disp, xmm)``
xmm-xmm ops        ``(dst_xmm, src_xmm)``
fld_mem/fstp_mem   ``(base, disp)``
xsave/xrstor       ``(base, disp)``
rdgsbase/wrgsbase  ``(reg,)``
gsload/gsload8     ``(dst, disp)`` — disp unsigned 32-bit
gsstore/gsstore8   ``(disp, src)``
hcall              ``(hook_id,)``
=================  =======================================================
"""

from __future__ import annotations

import struct

from repro.arch.isa import (
    EXT,
    JCC8,
    JCC32,
    Instruction,
    Mnemonic,
)
from repro.errors import InvalidOpcode

_S32 = struct.Struct("<i")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_U16 = struct.Struct("<H")


def _s8(b: int) -> int:
    return b - 256 if b >= 128 else b


def _need(buf: bytes, off: int, n: int, addr: int) -> None:
    if off + n > len(buf):
        raise InvalidOpcode(addr, buf[off] if off < len(buf) else None)


def decode_one(buf: bytes, off: int = 0, addr: int = 0) -> Instruction:
    """Decode one instruction from ``buf`` starting at ``off``.

    ``addr`` is the virtual address of the instruction, used only for error
    reporting.  Raises :class:`InvalidOpcode` on undefined encodings or a
    truncated buffer.
    """
    _need(buf, off, 1, addr)
    op = buf[off]

    # -- one-byte encodings -------------------------------------------------
    if op == 0x90:
        return Instruction(Mnemonic.NOP, (), 1)
    if op == 0xC3:
        return Instruction(Mnemonic.RET, (), 1)
    if op == 0xF4:
        return Instruction(Mnemonic.HLT, (), 1)
    if op == 0xCC:
        return Instruction(Mnemonic.INT3, (), 1)
    if 0x50 <= op <= 0x57:
        return Instruction(Mnemonic.PUSH, (op - 0x50,), 1)
    if 0x58 <= op <= 0x5F:
        return Instruction(Mnemonic.POP, (op - 0x58,), 1)

    # -- REX.B prefix for high registers ------------------------------------
    if op == 0x41:
        _need(buf, off, 2, addr)
        op2 = buf[off + 1]
        if 0x50 <= op2 <= 0x57:
            return Instruction(Mnemonic.PUSH, (8 + op2 - 0x50,), 2)
        if 0x58 <= op2 <= 0x5F:
            return Instruction(Mnemonic.POP, (8 + op2 - 0x58,), 2)
        if op2 == 0xFF:
            _need(buf, off, 3, addr)
            op3 = buf[off + 2]
            if 0xD0 <= op3 <= 0xD7:
                return Instruction(Mnemonic.CALL_REG, (8 + op3 - 0xD0,), 3)
            if 0xE0 <= op3 <= 0xE7:
                return Instruction(Mnemonic.JMP_REG, (8 + op3 - 0xE0,), 3)
        raise InvalidOpcode(addr, op)

    # -- FF group: register-indirect call/jmp --------------------------------
    if op == 0xFF:
        _need(buf, off, 2, addr)
        op2 = buf[off + 1]
        if 0xD0 <= op2 <= 0xD7:
            return Instruction(Mnemonic.CALL_REG, (op2 - 0xD0,), 2)
        if 0xE0 <= op2 <= 0xE7:
            return Instruction(Mnemonic.JMP_REG, (op2 - 0xE0,), 2)
        raise InvalidOpcode(addr, op)

    # -- relative control flow ----------------------------------------------
    if op == 0xEB:
        _need(buf, off, 2, addr)
        return Instruction(Mnemonic.JMP_REL, (_s8(buf[off + 1]),), 2)
    if op in JCC8:
        _need(buf, off, 2, addr)
        return Instruction(JCC8[op], (_s8(buf[off + 1]),), 2)
    if op == 0xE9:
        _need(buf, off, 5, addr)
        (rel,) = _S32.unpack_from(buf, off + 1)
        return Instruction(Mnemonic.JMP_REL, (rel,), 5)
    if op == 0xE8:
        _need(buf, off, 5, addr)
        (rel,) = _S32.unpack_from(buf, off + 1)
        return Instruction(Mnemonic.CALL_REL, (rel,), 5)

    # -- 0F two-byte namespace ----------------------------------------------
    if op == 0x0F:
        _need(buf, off, 2, addr)
        op2 = buf[off + 1]
        if op2 == 0x05:
            return Instruction(Mnemonic.SYSCALL, (), 2)
        if op2 == 0x34:
            return Instruction(Mnemonic.SYSENTER, (), 2)
        if op2 == 0x0B:
            return Instruction(Mnemonic.UD2, (), 2)
        if op2 in JCC32:
            _need(buf, off, 6, addr)
            (rel,) = _S32.unpack_from(buf, off + 2)
            return Instruction(JCC32[op2], (rel,), 6)
        raise InvalidOpcode(addr, op)

    # -- mov reg, imm ---------------------------------------------------------
    if 0xB8 <= op <= 0xBF:
        _need(buf, off, 5, addr)
        (imm,) = _U32.unpack_from(buf, off + 1)
        return Instruction(Mnemonic.MOV_IMM64, (op - 0xB8, imm), 5)
    if op == 0x49:
        _need(buf, off, 2, addr)
        op2 = buf[off + 1]
        if 0xB8 <= op2 <= 0xBF:
            _need(buf, off, 10, addr)
            (imm,) = _U64.unpack_from(buf, off + 2)
            return Instruction(Mnemonic.MOV_IMM64, (8 + op2 - 0xB8, imm), 10)
        raise InvalidOpcode(addr, op)

    # -- 48 extended namespace ------------------------------------------------
    if op == 0x48:
        _need(buf, off, 2, addr)
        sub = buf[off + 1]
        if 0xB8 <= sub <= 0xBF:
            _need(buf, off, 10, addr)
            (imm,) = _U64.unpack_from(buf, off + 2)
            return Instruction(Mnemonic.MOV_IMM64, (sub - 0xB8, imm), 10)
        if sub not in EXT:
            raise InvalidOpcode(addr, op)
        mnemonic, length = EXT[sub]
        _need(buf, off, length, addr)
        body = buf[off + 2 : off + length]
        return Instruction(mnemonic, _ext_operands(mnemonic, body, addr), length)

    raise InvalidOpcode(addr, op)


def _reg(byte: int, addr: int) -> int:
    """Validate a register-field byte: only 16 registers exist (#UD else)."""
    if byte >= 16:
        raise InvalidOpcode(addr, byte)
    return byte


def _ext_operands(mnemonic: Mnemonic, body: bytes, addr: int) -> tuple:
    """Decode the operand bytes of a 48-namespace instruction."""
    m = Mnemonic
    if mnemonic in (m.FLD1, m.FADDP):
        return ()
    if mnemonic in (m.INC, m.DEC, m.RDGSBASE, m.WRGSBASE, m.RDPKRU, m.WRPKRU):
        return (_reg(body[0], addr),)
    if mnemonic in (m.SHL, m.SHR):  # second byte is a shift count, not a reg
        return (_reg(body[0], addr), body[1])
    if mnemonic in (
        m.MOV, m.ADD, m.SUB, m.CMP, m.AND, m.OR, m.XOR, m.IMUL,
        m.MOVQ_XG, m.MOVQ_GX, m.MOVAPS, m.PUNPCKLQDQ, m.XORPS, m.VADDPD,
    ):
        return (_reg(body[0], addr), _reg(body[1], addr))
    if mnemonic in (m.LOAD, m.LOAD8, m.LEA, m.MOVUPS_LOAD):
        (disp,) = _S32.unpack_from(body, 2)
        return (_reg(body[0], addr), _reg(body[1], addr), disp)
    if mnemonic in (m.STORE, m.STORE8, m.MOVUPS_STORE):
        (disp,) = _S32.unpack_from(body, 2)
        return (_reg(body[1], addr), disp, _reg(body[0], addr))
    if mnemonic in (m.FLD_MEM, m.FSTP_MEM, m.XSAVE, m.XRSTOR):
        (disp,) = _S32.unpack_from(body, 1)
        return (_reg(body[0], addr), disp)
    if mnemonic in (m.ADDI, m.SUBI, m.CMPI, m.ANDI, m.ORI, m.XORI):
        (imm,) = _S32.unpack_from(body, 1)
        return (_reg(body[0], addr), imm)
    if mnemonic in (m.GSLOAD, m.GSLOAD8):
        (disp,) = _U32.unpack_from(body, 1)
        return (_reg(body[0], addr), disp)
    if mnemonic in (m.GSSTORE, m.GSSTORE8):
        (disp,) = _U32.unpack_from(body, 1)
        return (disp, _reg(body[0], addr))
    if mnemonic in (m.GSJMP, m.GSWRPKRU):
        (disp,) = _U32.unpack_from(body, 0)
        return (disp,)
    if mnemonic is m.GSCOPY8:
        (dst,) = _U32.unpack_from(body, 0)
        (src,) = _U32.unpack_from(body, 4)
        return (dst, src)
    if mnemonic is m.HCALL:
        (hook_id,) = _U16.unpack_from(body, 0)
        return (hook_id,)
    raise AssertionError(f"unhandled extended mnemonic {mnemonic}")
