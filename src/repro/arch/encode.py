"""Two-pass assembler with label support.

The :class:`Assembler` is a builder: each method appends one instruction and
returns ``self`` so call chains read like an assembly listing::

    a = Assembler(base=0x400000)
    a.label("loop")
    a.mov_imm("rax", 500)
    a.syscall()
    a.dec("rbx")
    a.jnz("loop")
    a.ret()
    code = a.assemble()

Register operands accept either an x86 register name (``"rax"``, ``"r10"``,
``"xmm3"``) or a raw index.  Branch targets accept a label name or an
absolute integer address.  Label references are patched in a second pass at
:meth:`assemble` time; ``mov_imm`` of a label always uses the 10-byte
imm64 form so the reference width is known up front.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.arch.isa import EXT_SUB, JCC32_OP, Mnemonic
from repro.arch.registers import GPR_INDEX, XMM_INDEX
from repro.errors import AssemblerError

_U16 = struct.Struct("<H")
_S32 = struct.Struct("<i")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _gpr(reg: int | str) -> int:
    if isinstance(reg, str):
        try:
            return GPR_INDEX[reg]
        except KeyError:
            raise AssemblerError(f"unknown register {reg!r}") from None
    if not 0 <= reg < 16:
        raise AssemblerError(f"GPR index out of range: {reg}")
    return reg


def _xmm(reg: int | str) -> int:
    if isinstance(reg, str):
        try:
            return XMM_INDEX[reg]
        except KeyError:
            raise AssemblerError(f"unknown xmm register {reg!r}") from None
    if not 0 <= reg < 16:
        raise AssemblerError(f"xmm index out of range: {reg}")
    return reg


@dataclass
class _Fixup:
    """A label reference to patch at assemble time."""

    offset: int  # byte offset of the field within the code
    kind: str  # "rel32" (relative to insn end) or "abs64"
    target: str  # label name
    insn_end: int  # offset just past the instruction (rel32 anchor)


class Assembler:
    """Builds machine code for the simulated ISA."""

    def __init__(self, base: int = 0):
        self.base = base
        self._code = bytearray()
        self._labels: dict[str, int] = {}
        self._fixups: list[_Fixup] = []

    # ------------------------------------------------------------------ core
    def label(self, name: str) -> "Assembler":
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise AssemblerError(f"duplicate label {name!r}")
        self._labels[name] = len(self._code)
        return self

    def here(self) -> int:
        """Absolute address of the next emitted byte."""
        return self.base + len(self._code)

    def db(self, data: bytes) -> "Assembler":
        """Emit raw data bytes (e.g. strings, tables) inline."""
        self._code += data
        return self

    def dq(self, value: int | str) -> "Assembler":
        """Emit a 64-bit data word; a label name emits its absolute address."""
        if isinstance(value, str):
            field = len(self._code)
            self._code += b"\x00" * 8
            self._fixups.append(_Fixup(field, "abs64", value, len(self._code)))
            return self
        self._code += _U64.pack(value & (1 << 64) - 1)
        return self

    def align(self, boundary: int, fill: int = 0x90) -> "Assembler":
        while len(self._code) % boundary:
            self._code.append(fill)
        return self

    def assemble(self) -> bytes:
        """Resolve label fixups and return the code bytes."""
        for fix in self._fixups:
            if fix.target not in self._labels:
                raise AssemblerError(f"undefined label {fix.target!r}")
            target_addr = self.base + self._labels[fix.target]
            if fix.kind == "rel32":
                rel = target_addr - (self.base + fix.insn_end)
                _S32.pack_into(self._code, fix.offset, rel)
            elif fix.kind == "abs64":
                _U64.pack_into(self._code, fix.offset, target_addr)
            else:  # pragma: no cover - internal invariant
                raise AssemblerError(f"bad fixup kind {fix.kind}")
        return bytes(self._code)

    def address_of(self, name: str) -> int:
        """Absolute address of a defined label (valid after definition)."""
        if name not in self._labels:
            raise AssemblerError(f"undefined label {name!r}")
        return self.base + self._labels[name]

    # ------------------------------------------------------------- emit utils
    def _emit(self, *parts: bytes | int) -> "Assembler":
        for part in parts:
            if isinstance(part, int):
                self._code.append(part)
            else:
                self._code += part
        return self

    def _branch_rel32(self, opcode: bytes, target: str | int) -> "Assembler":
        start = len(self._code)
        self._code += opcode
        field = len(self._code)
        self._code += b"\x00\x00\x00\x00"
        end = len(self._code)
        if isinstance(target, str):
            self._fixups.append(_Fixup(field, "rel32", target, end))
        else:
            rel = target - (self.base + end)
            _S32.pack_into(self._code, field, rel)
        del start
        return self

    # ----------------------------------------------------------- no operands
    def nop(self) -> "Assembler":
        return self._emit(0x90)

    def ret(self) -> "Assembler":
        return self._emit(0xC3)

    def hlt(self) -> "Assembler":
        return self._emit(0xF4)

    def int3(self) -> "Assembler":
        return self._emit(0xCC)

    def syscall(self) -> "Assembler":
        return self._emit(0x0F, 0x05)

    def sysenter(self) -> "Assembler":
        return self._emit(0x0F, 0x34)

    def ud2(self) -> "Assembler":
        return self._emit(0x0F, 0x0B)

    # ---------------------------------------------------------------- stack
    def push(self, reg: int | str) -> "Assembler":
        r = _gpr(reg)
        if r < 8:
            return self._emit(0x50 + r)
        return self._emit(0x41, 0x50 + r - 8)

    def pop(self, reg: int | str) -> "Assembler":
        r = _gpr(reg)
        if r < 8:
            return self._emit(0x58 + r)
        return self._emit(0x41, 0x58 + r - 8)

    # ---------------------------------------------------------- control flow
    def call_reg(self, reg: int | str) -> "Assembler":
        r = _gpr(reg)
        if r < 8:
            return self._emit(0xFF, 0xD0 + r)
        return self._emit(0x41, 0xFF, 0xD0 + r - 8)

    def jmp_reg(self, reg: int | str) -> "Assembler":
        r = _gpr(reg)
        if r < 8:
            return self._emit(0xFF, 0xE0 + r)
        return self._emit(0x41, 0xFF, 0xE0 + r - 8)

    def call(self, target: str | int) -> "Assembler":
        return self._branch_rel32(b"\xe8", target)

    def jmp(self, target: str | int) -> "Assembler":
        return self._branch_rel32(b"\xe9", target)

    def _jcc(self, mnemonic: Mnemonic, target: str | int) -> "Assembler":
        opcode = bytes((0x0F, JCC32_OP[mnemonic]))
        return self._branch_rel32(opcode, target)

    def jz(self, target: str | int) -> "Assembler":
        return self._jcc(Mnemonic.JZ, target)

    def jnz(self, target: str | int) -> "Assembler":
        return self._jcc(Mnemonic.JNZ, target)

    def jl(self, target: str | int) -> "Assembler":
        return self._jcc(Mnemonic.JL, target)

    def jg(self, target: str | int) -> "Assembler":
        return self._jcc(Mnemonic.JG, target)

    def jge(self, target: str | int) -> "Assembler":
        return self._jcc(Mnemonic.JGE, target)

    def jle(self, target: str | int) -> "Assembler":
        return self._jcc(Mnemonic.JLE, target)

    def jmp_short(self, rel: int) -> "Assembler":
        """Two-byte jump with an explicit rel8 (no label support)."""
        if not -128 <= rel <= 127:
            raise AssemblerError("rel8 out of range")
        return self._emit(0xEB, rel & 0xFF)

    # ------------------------------------------------------------------ data
    def mov_imm(self, reg: int | str, value: int | str) -> "Assembler":
        """``mov reg, imm``.

        A label name as ``value`` emits the 10-byte imm64 form with an
        absolute fixup; integers use the short imm32 form when they fit.
        """
        r = _gpr(reg)
        if isinstance(value, str):
            if r < 8:
                self._emit(0x48, 0xB8 + r)
            else:
                self._emit(0x49, 0xB8 + r - 8)
            field = len(self._code)
            self._code += b"\x00" * 8
            self._fixups.append(_Fixup(field, "abs64", value, len(self._code)))
            return self
        value &= (1 << 64) - 1
        if r < 8 and value < (1 << 32):
            return self._emit(0xB8 + r, _U32.pack(value))
        if r < 8:
            return self._emit(0x48, 0xB8 + r, _U64.pack(value))
        return self._emit(0x49, 0xB8 + r - 8, _U64.pack(value))

    # ------------------------------------------------------ 48-namespace ALU
    def _rr(self, mnemonic: Mnemonic, dst: int, src: int) -> "Assembler":
        return self._emit(0x48, EXT_SUB[mnemonic], dst, src)

    def mov(self, dst: int | str, src: int | str) -> "Assembler":
        return self._rr(Mnemonic.MOV, _gpr(dst), _gpr(src))

    def add(self, dst: int | str, src: int | str) -> "Assembler":
        return self._rr(Mnemonic.ADD, _gpr(dst), _gpr(src))

    def sub(self, dst: int | str, src: int | str) -> "Assembler":
        return self._rr(Mnemonic.SUB, _gpr(dst), _gpr(src))

    def cmp(self, dst: int | str, src: int | str) -> "Assembler":
        return self._rr(Mnemonic.CMP, _gpr(dst), _gpr(src))

    def and_(self, dst: int | str, src: int | str) -> "Assembler":
        return self._rr(Mnemonic.AND, _gpr(dst), _gpr(src))

    def or_(self, dst: int | str, src: int | str) -> "Assembler":
        return self._rr(Mnemonic.OR, _gpr(dst), _gpr(src))

    def xor(self, dst: int | str, src: int | str) -> "Assembler":
        return self._rr(Mnemonic.XOR, _gpr(dst), _gpr(src))

    def imul(self, dst: int | str, src: int | str) -> "Assembler":
        return self._rr(Mnemonic.IMUL, _gpr(dst), _gpr(src))

    def shl(self, dst: int | str, count: int) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.SHL], _gpr(dst), count & 0xFF)

    def shr(self, dst: int | str, count: int) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.SHR], _gpr(dst), count & 0xFF)

    def _ri(self, mnemonic: Mnemonic, dst: int, imm: int) -> "Assembler":
        return self._emit(0x48, EXT_SUB[mnemonic], dst, _S32.pack(imm))

    def addi(self, dst: int | str, imm: int) -> "Assembler":
        return self._ri(Mnemonic.ADDI, _gpr(dst), imm)

    def subi(self, dst: int | str, imm: int) -> "Assembler":
        return self._ri(Mnemonic.SUBI, _gpr(dst), imm)

    def cmpi(self, dst: int | str, imm: int) -> "Assembler":
        return self._ri(Mnemonic.CMPI, _gpr(dst), imm)

    def andi(self, dst: int | str, imm: int) -> "Assembler":
        return self._ri(Mnemonic.ANDI, _gpr(dst), imm)

    def ori(self, dst: int | str, imm: int) -> "Assembler":
        return self._ri(Mnemonic.ORI, _gpr(dst), imm)

    def xori(self, dst: int | str, imm: int) -> "Assembler":
        return self._ri(Mnemonic.XORI, _gpr(dst), imm)

    def inc(self, reg: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.INC], _gpr(reg))

    def dec(self, reg: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.DEC], _gpr(reg))

    # --------------------------------------------------------------- memory
    def _mem(self, mnemonic: Mnemonic, reg: int, base: int, disp: int) -> "Assembler":
        return self._emit(0x48, EXT_SUB[mnemonic], reg, base, _S32.pack(disp))

    def load(self, dst: int | str, base: int | str, disp: int = 0) -> "Assembler":
        return self._mem(Mnemonic.LOAD, _gpr(dst), _gpr(base), disp)

    def store(self, base: int | str, disp: int, src: int | str) -> "Assembler":
        return self._mem(Mnemonic.STORE, _gpr(src), _gpr(base), disp)

    def load8(self, dst: int | str, base: int | str, disp: int = 0) -> "Assembler":
        return self._mem(Mnemonic.LOAD8, _gpr(dst), _gpr(base), disp)

    def store8(self, base: int | str, disp: int, src: int | str) -> "Assembler":
        return self._mem(Mnemonic.STORE8, _gpr(src), _gpr(base), disp)

    def lea(self, dst: int | str, base: int | str, disp: int = 0) -> "Assembler":
        return self._mem(Mnemonic.LEA, _gpr(dst), _gpr(base), disp)

    # --------------------------------------------------------------- vector
    def movq_xg(self, xmm: int | str, gpr: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.MOVQ_XG], _xmm(xmm), _gpr(gpr))

    def movq_gx(self, gpr: int | str, xmm: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.MOVQ_GX], _gpr(gpr), _xmm(xmm))

    def movups_load(self, xmm: int | str, base: int | str, disp: int = 0) -> "Assembler":
        return self._mem(Mnemonic.MOVUPS_LOAD, _xmm(xmm), _gpr(base), disp)

    def movups_store(self, base: int | str, disp: int, xmm: int | str) -> "Assembler":
        return self._mem(Mnemonic.MOVUPS_STORE, _xmm(xmm), _gpr(base), disp)

    def movaps(self, dst: int | str, src: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.MOVAPS], _xmm(dst), _xmm(src))

    def punpcklqdq(self, dst: int | str, src: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.PUNPCKLQDQ], _xmm(dst), _xmm(src))

    def xorps(self, dst: int | str, src: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.XORPS], _xmm(dst), _xmm(src))

    def vaddpd(self, dst: int | str, src: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.VADDPD], _xmm(dst), _xmm(src))

    # ------------------------------------------------------------------ x87
    def fld1(self) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.FLD1])

    def faddp(self) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.FADDP])

    def fld_mem(self, base: int | str, disp: int = 0) -> "Assembler":
        return self._emit(
            0x48, EXT_SUB[Mnemonic.FLD_MEM], _gpr(base), _S32.pack(disp)
        )

    def fstp_mem(self, base: int | str, disp: int = 0) -> "Assembler":
        return self._emit(
            0x48, EXT_SUB[Mnemonic.FSTP_MEM], _gpr(base), _S32.pack(disp)
        )

    # --------------------------------------------------------------- xstate
    def xsave(self, base: int | str, disp: int = 0) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.XSAVE], _gpr(base), _S32.pack(disp))

    def xrstor(self, base: int | str, disp: int = 0) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.XRSTOR], _gpr(base), _S32.pack(disp))

    # ------------------------------------------------------------------- gs
    def rdgsbase(self, dst: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.RDGSBASE], _gpr(dst))

    def wrgsbase(self, src: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.WRGSBASE], _gpr(src))

    def gsload(self, dst: int | str, disp: int) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.GSLOAD], _gpr(dst), _U32.pack(disp))

    def gsstore(self, disp: int, src: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.GSSTORE], _gpr(src), _U32.pack(disp))

    def gsload8(self, dst: int | str, disp: int) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.GSLOAD8], _gpr(dst), _U32.pack(disp))

    def gsstore8(self, disp: int, src: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.GSSTORE8], _gpr(src), _U32.pack(disp))

    def rdpkru(self, dst: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.RDPKRU], _gpr(dst))

    def wrpkru(self, src: int | str) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.WRPKRU], _gpr(src))

    def gswrpkru(self, disp: int) -> "Assembler":
        """Load PKRU from ``gs:[disp]`` without touching any register.

        Models the ERIM-style domain-close gadget (register spill to
        protected scratch + wrpkru) as one instruction.
        """
        return self._emit(0x48, EXT_SUB[Mnemonic.GSWRPKRU], _U32.pack(disp))

    def gsjmp(self, disp: int) -> "Assembler":
        """Jump to the address stored at ``gs:[disp]`` (clobbers nothing)."""
        return self._emit(0x48, EXT_SUB[Mnemonic.GSJMP], _U32.pack(disp))

    def gscopy8(self, dst_disp: int, src_disp: int) -> "Assembler":
        """Byte move ``gs:[dst] <- gs:[src]`` without touching registers."""
        return self._emit(
            0x48, EXT_SUB[Mnemonic.GSCOPY8], _U32.pack(dst_disp), _U32.pack(src_disp)
        )

    # ------------------------------------------------------------ host calls
    def hcall(self, hook_id: int) -> "Assembler":
        return self._emit(0x48, EXT_SUB[Mnemonic.HCALL], _U16.pack(hook_id))
