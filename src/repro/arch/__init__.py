"""Simulated x86-64-flavoured architecture.

The instruction set keeps the encodings that the paper's mechanisms depend on
bit-identical to real x86-64:

* ``syscall``  = ``0F 05`` (two bytes),
* ``sysenter`` = ``0F 34`` (two bytes),
* ``call rax`` = ``FF D0`` (two bytes) — the zpoline replacement,
* ``nop``      = ``90`` (one byte) — the trampoline sled,
* rel32 jumps/calls are five bytes — too large to replace a syscall in place.

Everything else lives in a ``48``-prefixed namespace with explicit lengths.
"""

from repro.arch.registers import (
    GPR_NAMES,
    GPR_INDEX,
    RegisterFile,
    XComponent,
    RAX,
    RCX,
    RDX,
    RBX,
    RSP,
    RBP,
    RSI,
    RDI,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
)
from repro.arch.isa import Instruction, Mnemonic
from repro.arch.encode import Assembler
from repro.arch.asmtext import assemble_text
from repro.arch.decode import decode_one
from repro.arch.disasm import linear_sweep, find_syscall_sites

__all__ = [
    "GPR_NAMES",
    "GPR_INDEX",
    "RegisterFile",
    "XComponent",
    "Instruction",
    "Mnemonic",
    "Assembler",
    "assemble_text",
    "decode_one",
    "linear_sweep",
    "find_syscall_sites",
    "RAX",
    "RCX",
    "RDX",
    "RBX",
    "RSP",
    "RBP",
    "RSI",
    "RDI",
    "R8",
    "R9",
    "R10",
    "R11",
    "R12",
    "R13",
    "R14",
    "R15",
]
