"""Static disassembly helpers.

``linear_sweep`` performs the classic linear-sweep disassembly that static
binary rewriters rely on, including its genuine failure modes (§II-B of the
paper): data embedded in a text section desynchronises the sweep, and
byte-level scans find "syscall instructions" inside the immediates of other
instructions.

``find_syscall_sites`` is the byte-level scan the zpoline rewriter uses: it
reports *every* ``0F 05`` / ``0F 34`` byte pair, whether or not it is a real
instruction — faithfully reproducing the misidentification hazard the paper
discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.decode import decode_one
from repro.arch.isa import Instruction, Mnemonic, SYSCALL_BYTES, SYSENTER_BYTES
from repro.errors import InvalidOpcode


@dataclass(frozen=True)
class SweepEntry:
    """One linear-sweep result: a decoded instruction or an opaque byte."""

    address: int
    instruction: Instruction | None  # None for undecodable bytes
    raw: bytes

    @property
    def is_data(self) -> bool:
        return self.instruction is None


def linear_sweep(code: bytes, base: int = 0) -> list[SweepEntry]:
    """Disassemble ``code`` sequentially from its first byte.

    Undecodable bytes are emitted as single-byte data entries and the sweep
    resumes at the next byte — the standard recovery strategy, and the
    standard source of desynchronisation.
    """
    entries: list[SweepEntry] = []
    off = 0
    while off < len(code):
        addr = base + off
        try:
            insn = decode_one(code, off, addr)
        except InvalidOpcode:
            entries.append(SweepEntry(addr, None, code[off : off + 1]))
            off += 1
            continue
        entries.append(SweepEntry(addr, insn, code[off : off + insn.length]))
        off += insn.length
    return entries


def sweep_syscall_addresses(code: bytes, base: int = 0) -> list[int]:
    """Addresses of syscall/sysenter instructions found by linear sweep."""
    return [
        e.address
        for e in linear_sweep(code, base)
        if e.instruction is not None
        and e.instruction.mnemonic in (Mnemonic.SYSCALL, Mnemonic.SYSENTER)
    ]


def find_syscall_sites(code: bytes, base: int = 0) -> list[int]:
    """Byte-level scan for ``0F 05``/``0F 34`` pairs (zpoline-style).

    Returns the address of each occurrence.  Unlike
    :func:`sweep_syscall_addresses` this never *misses* an aligned syscall
    instruction, but it may return false positives pointing into the middle
    of other instructions or data.
    """
    sites: list[int] = []
    start = 0
    for pattern in (SYSCALL_BYTES, SYSENTER_BYTES):
        start = 0
        while True:
            idx = code.find(pattern, start)
            if idx < 0:
                break
            sites.append(base + idx)
            start = idx + 1
    sites.sort()
    return sites
