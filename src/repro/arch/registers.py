"""Register file for the simulated CPU.

Registers follow the x86-64 layout: sixteen 64-bit general purpose
registers in hardware encoding order, sixteen 128-bit ``xmm`` vector
registers (the low half of the corresponding ``ymm``), an eight-slot x87
stack, and a small set of flags.  The ``%gs`` segment base is modelled as a
plain base address, exactly how lazypoline uses it for per-task storage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

MASK64 = (1 << 64) - 1
MASK128 = (1 << 128) - 1

GPR_NAMES = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)
GPR_INDEX = {name: i for i, name in enumerate(GPR_NAMES)}

RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI = range(8)
R8, R9, R10, R11, R12, R13, R14, R15 = range(8, 16)

#: Linux x86-64 syscall argument registers, in order.
SYSCALL_ARG_REGS = (RDI, RSI, RDX, R10, R8, R9)

#: Registers the kernel is allowed to clobber across a syscall.
SYSCALL_CLOBBERS = (RAX, RCX, R11)

XMM_NAMES = tuple(f"xmm{i}" for i in range(16))
XMM_INDEX = {name: i for i, name in enumerate(XMM_NAMES)}

X87_DEPTH = 8


class XComponent(enum.Flag):
    """Extended-state components, mirroring XSAVE feature bits."""

    X87 = enum.auto()
    SSE = enum.auto()
    AVX = enum.auto()

    @classmethod
    def all(cls) -> "XComponent":
        return cls.X87 | cls.SSE | cls.AVX

    @classmethod
    def none(cls) -> "XComponent":
        return cls(0)


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's complement."""
    value &= MASK64
    return value - (1 << 64) if value >> 63 else value


def to_unsigned(value: int) -> int:
    """Wrap a Python int into the 64-bit unsigned range."""
    return value & MASK64


@dataclass
class RegisterFile:
    """Complete user-visible register state of one hardware thread."""

    gpr: list[int] = field(default_factory=lambda: [0] * 16)
    xmm: list[int] = field(default_factory=lambda: [0] * 16)
    ymm_high: list[int] = field(default_factory=lambda: [0] * 16)
    x87: list[int] = field(default_factory=lambda: [0] * X87_DEPTH)
    x87_top: int = X87_DEPTH  # empty stack: top == depth
    rip: int = 0
    zf: bool = False
    lt: bool = False  # signed less-than result of the last compare
    gs_base: int = 0
    pkru: int = 0  # protection-key rights register (2 bits per key)

    # -- general purpose ---------------------------------------------------
    def read(self, reg: int) -> int:
        return self.gpr[reg]

    def write(self, reg: int, value: int) -> None:
        self.gpr[reg] = value & MASK64

    def read_name(self, name: str) -> int:
        return self.gpr[GPR_INDEX[name]]

    def write_name(self, name: str, value: int) -> None:
        self.write(GPR_INDEX[name], value)

    # -- vector ------------------------------------------------------------
    def read_xmm(self, reg: int) -> int:
        return self.xmm[reg]

    def write_xmm(self, reg: int, value: int) -> None:
        self.xmm[reg] = value & MASK128

    # -- x87 ---------------------------------------------------------------
    def x87_push(self, value: int) -> None:
        self.x87_top = (self.x87_top - 1) % X87_DEPTH
        self.x87[self.x87_top] = value & MASK64

    def x87_pop(self) -> int:
        value = self.x87[self.x87_top % X87_DEPTH]
        self.x87_top = min(self.x87_top + 1, X87_DEPTH)
        return value

    # -- state capture -----------------------------------------------------
    def snapshot_gprs(self) -> tuple[int, ...]:
        return tuple(self.gpr)

    def restore_gprs(self, snap: tuple[int, ...]) -> None:
        self.gpr[:] = snap

    def snapshot_xstate(self, components: XComponent) -> dict:
        """Capture selected extended-state components (xsave analogue)."""
        snap: dict = {"components": components}
        if components & XComponent.SSE:
            snap["xmm"] = tuple(self.xmm)
        if components & XComponent.AVX:
            snap["ymm_high"] = tuple(self.ymm_high)
        if components & XComponent.X87:
            snap["x87"] = tuple(self.x87)
            snap["x87_top"] = self.x87_top
        return snap

    def restore_xstate(self, snap: dict) -> None:
        """Restore components captured by :meth:`snapshot_xstate`."""
        components: XComponent = snap["components"]
        if components & XComponent.SSE:
            self.xmm[:] = snap["xmm"]
        if components & XComponent.AVX:
            self.ymm_high[:] = snap["ymm_high"]
        if components & XComponent.X87:
            self.x87[:] = snap["x87"]
            self.x87_top = snap["x87_top"]

    def copy(self) -> "RegisterFile":
        clone = RegisterFile(
            gpr=list(self.gpr),
            xmm=list(self.xmm),
            ymm_high=list(self.ymm_high),
            x87=list(self.x87),
            x87_top=self.x87_top,
            rip=self.rip,
            zf=self.zf,
            lt=self.lt,
            gs_base=self.gs_base,
            pkru=self.pkru,
        )
        return clone
