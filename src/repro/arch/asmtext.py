"""A text front-end for the assembler.

``assemble_text`` turns an Intel-flavoured listing into machine code via
the :class:`~repro.arch.encode.Assembler` builder::

    asm = assemble_text('''
    _start:
        mov rax, 39          ; getpid
        syscall
        mov rdi, rax
        mov rax, 231         ; exit_group
        syscall
    msg:
        .asciz "hello"
    ''', base=0x400000)
    code = asm.assemble()

Supported operand forms:

* registers (``rax`` … ``r15``, ``xmm0`` … ``xmm15``),
* immediates (decimal, ``0x`` hex, negative) and label references,
* memory ``[reg]``, ``[reg+disp]``, ``[reg-disp]``,
* gs-relative memory ``gs:[disp]``.

Directives: ``.ascii``/``.asciz`` (with the usual escapes), ``.byte``,
``.quad`` (values or labels), ``.align``.  Comments start with ``;`` or
``#``.  Byte-sized moves use the ``movb`` mnemonic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.arch.encode import Assembler
from repro.arch.registers import GPR_INDEX, XMM_INDEX
from repro.errors import AssemblerError

_MEM_RE = re.compile(r"^\[\s*(\w+)\s*(?:([+-])\s*(\w+)\s*)?\]$")
_GS_RE = re.compile(r"^gs:\[\s*([^\]]+)\s*\]$")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):(.*)$")


@dataclass(frozen=True)
class Gpr:
    index: int


@dataclass(frozen=True)
class Xmm:
    index: int


@dataclass(frozen=True)
class Imm:
    value: int


@dataclass(frozen=True)
class LabelRef:
    name: str


@dataclass(frozen=True)
class Mem:
    base: int
    disp: int


@dataclass(frozen=True)
class GsMem:
    disp: int


def _parse_int(text: str) -> int | None:
    try:
        return int(text.strip(), 0)
    except ValueError:
        return None


def parse_operand(text: str):
    """Parse one operand into a typed wrapper."""
    text = text.strip()
    low = text.lower()
    if low in GPR_INDEX:
        return Gpr(GPR_INDEX[low])
    if low in XMM_INDEX:
        return Xmm(XMM_INDEX[low])
    gs = _GS_RE.match(low)
    if gs:
        disp = _parse_int(gs.group(1))
        if disp is None:
            raise AssemblerError(f"bad gs displacement in {text!r}")
        return GsMem(disp)
    mem = _MEM_RE.match(low)
    if mem:
        base_name, sign, disp_text = mem.groups()
        if base_name not in GPR_INDEX:
            raise AssemblerError(f"bad base register in {text!r}")
        disp = 0
        if disp_text is not None:
            value = _parse_int(disp_text)
            if value is None:
                raise AssemblerError(f"bad displacement in {text!r}")
            disp = -value if sign == "-" else value
        return Mem(GPR_INDEX[base_name], disp)
    value = _parse_int(text)
    if value is not None:
        return Imm(value)
    if re.fullmatch(r"[A-Za-z_.$][\w.$]*", text):
        return LabelRef(text)
    raise AssemblerError(f"cannot parse operand {text!r}")


def _split_operands(rest: str) -> list:
    if not rest.strip():
        return []
    parts = []
    depth = 0
    current = ""
    for ch in rest:
        if ch == "," and depth == 0:
            parts.append(current)
            current = ""
            continue
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        current += ch
    parts.append(current)
    return [parse_operand(p) for p in parts]


def _unescape(raw: str) -> bytes:
    return raw.encode("utf-8").decode("unicode_escape").encode("latin-1")


_SIMPLE = {
    "nop": "nop", "ret": "ret", "hlt": "hlt", "int3": "int3",
    "syscall": "syscall", "sysenter": "sysenter", "ud2": "ud2",
    "fld1": "fld1", "faddp": "faddp",
}
_ONE_GPR = {
    "push": "push", "pop": "pop", "inc": "inc", "dec": "dec",
    "rdgsbase": "rdgsbase", "wrgsbase": "wrgsbase",
    "rdpkru": "rdpkru", "wrpkru": "wrpkru",
}
_ALU_RR = {"add": "add", "sub": "sub", "cmp": "cmp", "and": "and_",
           "or": "or_", "xor": "xor", "imul": "imul"}
_ALU_RI = {"add": "addi", "sub": "subi", "cmp": "cmpi", "and": "andi",
           "or": "ori", "xor": "xori"}
_XMM_RR = {"movaps": "movaps", "punpcklqdq": "punpcklqdq", "xorps": "xorps",
           "vaddpd": "vaddpd"}
_JCC = {"jz": "jz", "je": "jz", "jnz": "jnz", "jne": "jnz", "jl": "jl",
        "jg": "jg", "jge": "jge", "jle": "jle"}


class _Line:
    def __init__(self, number: int, text: str):
        self.number = number
        self.text = text

    def error(self, message: str) -> AssemblerError:
        return AssemblerError(f"line {self.number}: {message} ({self.text!r})")


def _emit(asm: Assembler, mnemonic: str, ops: list, line: _Line) -> None:
    m = mnemonic.lower()

    if m in _SIMPLE:
        if ops:
            raise line.error(f"{m} takes no operands")
        getattr(asm, _SIMPLE[m])()
        return
    if m in _ONE_GPR:
        if len(ops) == 1 and isinstance(ops[0], Gpr):
            getattr(asm, _ONE_GPR[m])(ops[0].index)
            return
        if m == "wrpkru" and len(ops) == 1 and isinstance(ops[0], GsMem):
            asm.gswrpkru(ops[0].disp)  # the memory-sourced form
            return
        raise line.error(f"{m} needs one register operand")
    if m == "call":
        if len(ops) == 1 and isinstance(ops[0], Gpr):
            asm.call_reg(ops[0].index)
            return
        if len(ops) == 1 and isinstance(ops[0], LabelRef):
            asm.call(ops[0].name)
            return
        raise line.error("call needs a register or label")
    if m == "jmp":
        if len(ops) == 1 and isinstance(ops[0], GsMem):
            asm.gsjmp(ops[0].disp)
            return
        if len(ops) == 1 and isinstance(ops[0], Gpr):
            asm.jmp_reg(ops[0].index)
            return
        if len(ops) == 1 and isinstance(ops[0], LabelRef):
            asm.jmp(ops[0].name)
            return
        raise line.error("jmp needs a register, label, or gs:[disp]")
    if m in _JCC:
        if len(ops) == 1 and isinstance(ops[0], LabelRef):
            getattr(asm, _JCC[m])(ops[0].name)
            return
        raise line.error(f"{m} needs a label")
    if m in ("shl", "shr"):
        if len(ops) == 2 and isinstance(ops[0], Gpr) and isinstance(ops[1], Imm):
            getattr(asm, m)(ops[0].index, ops[1].value)
            return
        raise line.error(f"{m} needs register, immediate")
    if m == "lea":
        if len(ops) == 2 and isinstance(ops[0], Gpr) and isinstance(ops[1], Mem):
            asm.lea(ops[0].index, ops[1].base, ops[1].disp)
            return
        raise line.error("lea needs register, [mem]")
    if m == "hcall":
        if len(ops) == 1 and isinstance(ops[0], Imm):
            asm.hcall(ops[0].value)
            return
        raise line.error("hcall needs an immediate")
    if m in ("xsave", "xrstor"):
        if len(ops) == 1 and isinstance(ops[0], Mem):
            getattr(asm, m)(ops[0].base, ops[0].disp)
            return
        raise line.error(f"{m} needs a [mem] operand")
    if m in ("fld", "fstp"):
        if len(ops) == 1 and isinstance(ops[0], Mem):
            method = "fld_mem" if m == "fld" else "fstp_mem"
            getattr(asm, method)(ops[0].base, ops[0].disp)
            return
        raise line.error(f"{m} needs a [mem] operand")
    if m == "movb":
        _emit_movb(asm, ops, line)
        return
    if m == "movq":
        if len(ops) == 2 and isinstance(ops[0], Xmm) and isinstance(ops[1], Gpr):
            asm.movq_xg(ops[0].index, ops[1].index)
            return
        if len(ops) == 2 and isinstance(ops[0], Gpr) and isinstance(ops[1], Xmm):
            asm.movq_gx(ops[0].index, ops[1].index)
            return
        raise line.error("movq moves between a gpr and an xmm register")
    if m == "movups":
        if len(ops) == 2 and isinstance(ops[0], Xmm) and isinstance(ops[1], Mem):
            asm.movups_load(ops[0].index, ops[1].base, ops[1].disp)
            return
        if len(ops) == 2 and isinstance(ops[0], Mem) and isinstance(ops[1], Xmm):
            asm.movups_store(ops[0].base, ops[0].disp, ops[1].index)
            return
        raise line.error("movups moves between an xmm register and memory")
    if m in _XMM_RR:
        if len(ops) == 2 and isinstance(ops[0], Xmm) and isinstance(ops[1], Xmm):
            getattr(asm, _XMM_RR[m])(ops[0].index, ops[1].index)
            return
        raise line.error(f"{m} needs two xmm registers")
    if m == "mov":
        _emit_mov(asm, ops, line)
        return
    if m in _ALU_RR:
        if len(ops) == 2 and isinstance(ops[0], Gpr) and isinstance(ops[1], Gpr):
            getattr(asm, _ALU_RR[m])(ops[0].index, ops[1].index)
            return
        if len(ops) == 2 and isinstance(ops[0], Gpr) and isinstance(ops[1], Imm):
            getattr(asm, _ALU_RI[m])(ops[0].index, ops[1].value)
            return
        raise line.error(f"{m} needs register,register or register,immediate")
    raise line.error(f"unknown mnemonic {mnemonic!r}")


def _emit_movb(asm: Assembler, ops: list, line: _Line) -> None:
    if len(ops) != 2:
        raise line.error("movb needs two operands")
    dst, src = ops
    if isinstance(dst, GsMem) and isinstance(src, GsMem):
        asm.gscopy8(dst.disp, src.disp)
        return
    if isinstance(dst, GsMem) and isinstance(src, Gpr):
        asm.gsstore8(dst.disp, src.index)
        return
    if isinstance(dst, Gpr) and isinstance(src, GsMem):
        asm.gsload8(dst.index, src.disp)
        return
    if isinstance(dst, Mem) and isinstance(src, Gpr):
        asm.store8(dst.base, dst.disp, src.index)
        return
    if isinstance(dst, Gpr) and isinstance(src, Mem):
        asm.load8(dst.index, src.base, src.disp)
        return
    raise line.error("unsupported movb operand combination")


def _emit_mov(asm: Assembler, ops: list, line: _Line) -> None:
    if len(ops) != 2:
        raise line.error("mov needs two operands")
    dst, src = ops
    if isinstance(dst, Gpr) and isinstance(src, Gpr):
        asm.mov(dst.index, src.index)
        return
    if isinstance(dst, Gpr) and isinstance(src, Imm):
        asm.mov_imm(dst.index, src.value)
        return
    if isinstance(dst, Gpr) and isinstance(src, LabelRef):
        asm.mov_imm(dst.index, src.name)
        return
    if isinstance(dst, Gpr) and isinstance(src, Mem):
        asm.load(dst.index, src.base, src.disp)
        return
    if isinstance(dst, Mem) and isinstance(src, Gpr):
        asm.store(dst.base, dst.disp, src.index)
        return
    if isinstance(dst, Gpr) and isinstance(src, GsMem):
        asm.gsload(dst.index, src.disp)
        return
    if isinstance(dst, GsMem) and isinstance(src, Gpr):
        asm.gsstore(src=src.index, disp=dst.disp)
        return
    raise line.error("unsupported mov operand combination")


def _emit_directive(asm: Assembler, directive: str, rest: str, line: _Line) -> None:
    if directive in (".ascii", ".asciz"):
        match = re.match(r'^\s*"(.*)"\s*$', rest, re.DOTALL)
        if not match:
            raise line.error(f"{directive} needs a quoted string")
        data = _unescape(match.group(1))
        if directive == ".asciz":
            data += b"\x00"
        asm.db(data)
        return
    if directive == ".byte":
        for part in rest.split(","):
            value = _parse_int(part)
            if value is None or not 0 <= value <= 0xFF:
                raise line.error(f"bad byte value {part.strip()!r}")
            asm.db(bytes((value,)))
        return
    if directive == ".quad":
        for part in rest.split(","):
            operand = parse_operand(part)
            if isinstance(operand, Imm):
                asm.dq(operand.value)
            elif isinstance(operand, LabelRef):
                asm.dq(operand.name)
            else:
                raise line.error(f"bad .quad value {part.strip()!r}")
        return
    if directive == ".align":
        value = _parse_int(rest)
        if value is None or value <= 0:
            raise line.error("bad .align value")
        asm.align(value, fill=0)
        return
    raise line.error(f"unknown directive {directive!r}")


def assemble_text(source: str, *, base: int = 0) -> Assembler:
    """Assemble a text listing; returns the populated Assembler.

    Call ``.assemble()`` on the result for the code bytes, or pass it to
    :func:`repro.loader.image.image_from_assembler`.
    """
    asm = Assembler(base=base)
    for number, raw in enumerate(source.splitlines(), start=1):
        # strip comments (naive: quotes containing ;/# are not supported
        # except inside .ascii, handled by stripping only outside quotes)
        text = raw
        in_string = False
        cut = None
        for i, ch in enumerate(text):
            if ch == '"':
                in_string = not in_string
            elif ch in ";#" and not in_string:
                cut = i
                break
        if cut is not None:
            text = text[:cut]
        text = text.strip()
        if not text:
            continue
        line = _Line(number, text)

        label_match = _LABEL_RE.match(text)
        if label_match:
            asm.label(label_match.group(1))
            text = label_match.group(2).strip()
            if not text:
                continue
            line = _Line(number, text)

        if text.startswith("."):
            parts = text.split(None, 1)
            _emit_directive(asm, parts[0], parts[1] if len(parts) > 1 else "",
                            line)
            continue

        parts = text.split(None, 1)
        mnemonic = parts[0]
        ops = _split_operands(parts[1]) if len(parts) > 1 else []
        _emit(asm, mnemonic, ops, line)
    return asm
