"""Instruction set definition shared by the assembler, decoder and CPU.

Encoding summary
================

Faithful x86-64 encodings (load-bearing for the paper's mechanisms):

========================  =========================  ======
instruction               bytes                      length
========================  =========================  ======
``nop``                   ``90``                     1
``ret``                   ``C3``                     1
``hlt``                   ``F4``                     1
``int3``                  ``CC``                     1
``push r`` (r < 8)        ``50+r``                   1
``pop r`` (r < 8)         ``58+r``                   1
``push r`` (r >= 8)       ``41 50+(r-8)``            2
``pop r`` (r >= 8)        ``41 58+(r-8)``            2
``syscall``               ``0F 05``                  2
``sysenter``              ``0F 34``                  2
``ud2``                   ``0F 0B``                  2
``call r`` (r < 8)        ``FF D0+r``                2
``jmp r`` (r < 8)         ``FF E0+r``                2
``call r`` (r >= 8)       ``41 FF D0+(r-8)``         3
``jmp r`` (r >= 8)        ``41 FF E0+(r-8)``         3
``jmp rel8``              ``EB ib``                  2
``jz/jnz/jl/jg/jge/jle``  ``74/75/7C/7F/7D/7E ib``   2
``jmp rel32``             ``E9 id``                  5
``call rel32``            ``E8 id``                  5
``jz rel32``              ``0F 84 id``               6
``jnz rel32``             ``0F 85 id``               6
``mov r, imm64``          ``48 B8+r iq`` (r < 8)     10
``mov r, imm64``          ``49 B8+(r-8) iq``         10
========================  =========================  ======

Everything else lives in the ``48 <sub>`` extended namespace with an explicit
per-sub-opcode length (see ``EXT``); register operands are raw bytes, and
immediates/displacements are little-endian.  This is a deliberate
simplification of ModRM — the properties the paper depends on (two-byte
syscall, five-byte arbitrary jump, byte-searchable code) are preserved.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Mnemonic(str, enum.Enum):
    """All instruction mnemonics understood by the CPU."""

    NOP = "nop"
    RET = "ret"
    HLT = "hlt"
    INT3 = "int3"
    SYSCALL = "syscall"
    SYSENTER = "sysenter"
    UD2 = "ud2"
    PUSH = "push"
    POP = "pop"
    CALL_REG = "call_reg"
    JMP_REG = "jmp_reg"
    CALL_REL = "call_rel"
    JMP_REL = "jmp_rel"
    JZ = "jz"
    JNZ = "jnz"
    JL = "jl"
    JG = "jg"
    JGE = "jge"
    JLE = "jle"
    MOV_IMM64 = "mov_imm64"
    # 48-namespace
    MOV = "mov"
    LOAD = "load"
    STORE = "store"
    LOAD8 = "load8"
    STORE8 = "store8"
    ADD = "add"
    SUB = "sub"
    CMP = "cmp"
    AND = "and"
    OR = "or"
    XOR = "xor"
    IMUL = "imul"
    SHL = "shl"
    SHR = "shr"
    ADDI = "addi"
    SUBI = "subi"
    CMPI = "cmpi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    INC = "inc"
    DEC = "dec"
    LEA = "lea"
    MOVQ_XG = "movq_xg"  # xmm <- gpr
    MOVQ_GX = "movq_gx"  # gpr <- xmm (low 64 bits)
    MOVUPS_LOAD = "movups_load"  # xmm <- [mem]
    MOVUPS_STORE = "movups_store"  # [mem] <- xmm
    MOVAPS = "movaps"  # xmm <- xmm
    PUNPCKLQDQ = "punpcklqdq"
    XORPS = "xorps"
    VADDPD = "vaddpd"  # ymm-high touching op (AVX component)
    FLD1 = "fld1"
    FADDP = "faddp"
    FLD_MEM = "fld_mem"
    FSTP_MEM = "fstp_mem"
    XSAVE = "xsave"
    XRSTOR = "xrstor"
    RDGSBASE = "rdgsbase"
    WRGSBASE = "wrgsbase"
    GSLOAD = "gsload"
    GSSTORE = "gsstore"
    GSLOAD8 = "gsload8"
    GSSTORE8 = "gsstore8"
    GSJMP = "gsjmp"  # jmp qword ptr gs:[disp] — register-transparent jump
    GSCOPY8 = "gscopy8"  # byte move gs:[dst] <- gs:[src], no registers/flags
    RDPKRU = "rdpkru"
    WRPKRU = "wrpkru"
    GSWRPKRU = "gswrpkru"  # pkru <- u32 at gs:[disp]; register-transparent
    HCALL = "hcall"


# Dense per-mnemonic index for list-based dispatch and cost tables.  Named
# ``op_index`` (not ``index``) because Mnemonic is a str enum and a plain
# ``index`` attribute would shadow ``str.index``.
for _i, _m in enumerate(Mnemonic):
    _m.op_index = _i
del _i, _m

#: Number of mnemonics — the length of every op_index-keyed table.
N_MNEMONICS = len(Mnemonic)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``operands`` is a tuple whose meaning depends on the mnemonic; see the
    decoder for the exact layout per mnemonic.  ``length`` is the encoded
    size in bytes, which the CPU uses to advance ``rip`` and the rewriters
    use to check in-place-patchability.

    ``handler`` and ``cost`` memoise the per-mnemonic execution handler and
    cycle cost.  They are bound by the CPU when the instruction enters a
    translation cache (see ``repro.cpu.core``), so the steady-state step is
    fetch-check-generation -> charge -> call with no per-step table lookups.
    A ``cost`` of None marks instructions (xsave/xrstor) whose cost depends
    on per-task state and must be computed at execution time.  Both fields
    are excluded from equality/repr: two decodes of the same bytes compare
    equal whether or not they have been bound.
    """

    mnemonic: Mnemonic
    operands: tuple
    length: int
    handler: object = field(default=None, compare=False, repr=False)
    cost: object = field(default=None, compare=False, repr=False)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        ops = ", ".join(str(o) for o in self.operands)
        return f"{self.mnemonic.value} {ops}".strip()


# Extended (0x48-prefixed) sub-opcodes: sub -> (mnemonic, total_length).
# Operand layouts are documented in decode.py next to each branch.
EXT: dict[int, tuple[Mnemonic, int]] = {
    0x01: (Mnemonic.MOV, 4),
    0x02: (Mnemonic.LOAD, 8),
    0x03: (Mnemonic.STORE, 8),
    0x04: (Mnemonic.ADD, 4),
    0x05: (Mnemonic.SUB, 4),
    0x06: (Mnemonic.CMP, 4),
    0x07: (Mnemonic.AND, 4),
    0x08: (Mnemonic.OR, 4),
    0x09: (Mnemonic.XOR, 4),
    0x0A: (Mnemonic.IMUL, 4),
    0x0B: (Mnemonic.SHL, 4),
    0x0C: (Mnemonic.SHR, 4),
    0x10: (Mnemonic.ADDI, 7),
    0x11: (Mnemonic.SUBI, 7),
    0x12: (Mnemonic.CMPI, 7),
    0x13: (Mnemonic.ANDI, 7),
    0x14: (Mnemonic.ORI, 7),
    0x15: (Mnemonic.XORI, 7),
    0x16: (Mnemonic.INC, 3),
    0x17: (Mnemonic.DEC, 3),
    0x18: (Mnemonic.LEA, 8),
    0x19: (Mnemonic.LOAD8, 8),
    0x1A: (Mnemonic.STORE8, 8),
    0x20: (Mnemonic.MOVQ_XG, 4),
    0x21: (Mnemonic.MOVQ_GX, 4),
    0x22: (Mnemonic.MOVUPS_LOAD, 8),
    0x23: (Mnemonic.MOVUPS_STORE, 8),
    0x24: (Mnemonic.PUNPCKLQDQ, 4),
    0x25: (Mnemonic.XORPS, 4),
    0x26: (Mnemonic.MOVAPS, 4),
    0x27: (Mnemonic.VADDPD, 4),
    0x28: (Mnemonic.FLD1, 2),
    0x2A: (Mnemonic.FADDP, 2),
    0x2C: (Mnemonic.FSTP_MEM, 7),
    0x2D: (Mnemonic.FLD_MEM, 7),
    0x30: (Mnemonic.XSAVE, 7),
    0x31: (Mnemonic.XRSTOR, 7),
    0x32: (Mnemonic.RDGSBASE, 3),
    0x33: (Mnemonic.WRGSBASE, 3),
    0x34: (Mnemonic.GSLOAD, 7),
    0x35: (Mnemonic.GSSTORE, 7),
    0x36: (Mnemonic.GSLOAD8, 7),
    0x37: (Mnemonic.GSSTORE8, 7),
    0x38: (Mnemonic.GSJMP, 6),
    0x3A: (Mnemonic.GSCOPY8, 10),
    0x3C: (Mnemonic.RDPKRU, 3),
    0x3D: (Mnemonic.WRPKRU, 3),
    0x3E: (Mnemonic.GSWRPKRU, 6),
    0x40: (Mnemonic.HCALL, 4),
}

EXT_SUB: dict[Mnemonic, int] = {mn: sub for sub, (mn, _len) in EXT.items()}

#: Conditional-jump short opcodes: opcode -> mnemonic.
JCC8: dict[int, Mnemonic] = {
    0x74: Mnemonic.JZ,
    0x75: Mnemonic.JNZ,
    0x7C: Mnemonic.JL,
    0x7F: Mnemonic.JG,
    0x7D: Mnemonic.JGE,
    0x7E: Mnemonic.JLE,
}
JCC8_OP: dict[Mnemonic, int] = {mn: op for op, mn in JCC8.items()}

#: Near conditional jumps (0F-prefixed, rel32).
JCC32: dict[int, Mnemonic] = {
    0x84: Mnemonic.JZ,
    0x85: Mnemonic.JNZ,
    0x8C: Mnemonic.JL,
    0x8D: Mnemonic.JGE,
    0x8E: Mnemonic.JLE,
    0x8F: Mnemonic.JG,
}
JCC32_OP: dict[Mnemonic, int] = {mn: op for op, mn in JCC32.items()}

#: Maximum encoded instruction length (mov r, imm64).
MAX_INSN_LEN = 10

#: The two-byte encodings central to the paper.
SYSCALL_BYTES = bytes((0x0F, 0x05))
SYSENTER_BYTES = bytes((0x0F, 0x34))
CALL_RAX_BYTES = bytes((0xFF, 0xD0))
NOP_BYTE = 0x90
