"""Benchmark harnesses: one module per table/figure of the paper.

Each module exposes ``run(...)`` returning a structured result and
``format_report(result)`` producing the rows the paper reports.  The
``benchmarks/`` pytest-benchmark suite drives these and asserts the paper's
*shape* (orderings and approximate ratios), per DESIGN.md §5.
"""
