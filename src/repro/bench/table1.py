"""Table I: characteristics of the interposition mechanisms.

Rather than restating the paper's matrix, every cell is *probed*:

* **Expressiveness** — can the mechanism's handler read the buffer behind a
  ``write`` syscall's pointer argument (deep argument inspection)?
  seccomp-bpf structurally cannot (cBPF has no loads through pointers), so
  its probe checks the best it can do: number-based filtering only.
* **Exhaustiveness** — does the mechanism intercept a syscall instruction
  JIT-generated after install (the §V-A workload)?  For seccomp-bpf, whose
  verdicts are in-kernel, the probe checks the filter still *applied* to
  the JIT-ed syscall (it does: the kernel sees every syscall).
* **Efficiency** — the Table II micro overhead, banded like the paper:
  High (< 5x — covers zpoline, seccomp-bpf and lazypoline-with-xstate),
  Moderate (< 30x — the signal-delivery mechanisms), Low (>= 30x — ptrace).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.runner import format_table, install_mechanism
from repro.interpose.api import TraceInterposer
from repro.interpose.seccomp_bpf_tool import SeccompBpfTool
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR
from repro.workloads import tcc
from repro.workloads.microbench import measure_cycles_per_syscall

MECHANISMS = ("ptrace", "seccomp_bpf", "seccomp_user", "sud", "zpoline", "lazypoline")

#: The paper's Table I.
PAPER = {
    "ptrace": ("Full", True, "Low"),
    "seccomp_bpf": ("Limited", True, "High"),
    "seccomp_user": ("Full", True, "Moderate"),
    "sud": ("Full", True, "Moderate"),
    "zpoline": ("Full", False, "High"),
    "lazypoline": ("Full", True, "High"),
}


@dataclass
class Table1Result:
    expressiveness: dict[str, str] = field(default_factory=dict)
    exhaustiveness: dict[str, bool] = field(default_factory=dict)
    efficiency: dict[str, str] = field(default_factory=dict)
    overheads: dict[str, float] = field(default_factory=dict)

    def matches_paper(self) -> bool:
        return all(
            (
                self.expressiveness[m],
                self.exhaustiveness[m],
                self.efficiency[m],
            )
            == PAPER[m]
            for m in MECHANISMS
        )


def probe_expressiveness(mechanism: str) -> str:
    """Deep-argument-inspection probe: read the bytes behind write()."""
    if mechanism == "seccomp_bpf":
        # cBPF cannot dereference pointers: structurally Limited.
        return "Limited"
    from repro.arch.encode import Assembler
    from repro.loader.image import image_from_assembler
    from repro.mem import layout

    captured = []

    def peek(ctx):
        if ctx.name == "write" and ctx.args[0] == 1:
            captured.append(ctx.read_mem(ctx.args[1], ctx.args[2]))
        return ctx.do_syscall()

    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    a.mov_imm("rdi", 1)
    a.mov_imm("rsi", "msg")
    a.mov_imm("rdx", 6)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("msg")
    a.db(b"probe!")
    machine = Machine()
    process = machine.load(image_from_assembler("probe", a, entry="_start"))
    install_mechanism(mechanism, machine, process, peek)
    machine.run_process(process)
    return "Full" if captured == [b"probe!"] else "Limited"


def probe_exhaustiveness(mechanism: str) -> bool:
    """Does the mechanism still see the JIT-generated getpid?"""
    machine = Machine()
    tcc.setup_fs(machine)
    process = machine.load(tcc.build_tcc_image())
    if mechanism == "seccomp_bpf":
        # In-kernel verdicts: make getpid fail and observe the effect on
        # the JIT-ed call's return value.
        from repro.kernel.seccomp.core import SECCOMP_RET_ERRNO
        from repro.kernel.seccomp.filter import FilterBuilder

        SeccompBpfTool._install(
            machine,
            process,
            FilterBuilder.deny_syscalls([NR["getpid"]], SECCOMP_RET_ERRNO | 38),
        )
        machine.run_process(process)
        # The JIT-ed getpid stored its result in r13: -38 when filtered.
        from repro.arch.registers import to_signed

        return to_signed(process.task.regs.read_name("r13")) == -38
    tracer = TraceInterposer()
    install_mechanism(mechanism, machine, process, tracer)
    machine.run_process(process)
    return "getpid" in tracer.names


def efficiency_band(overhead: float) -> str:
    if overhead < 5.0:
        return "High"
    if overhead < 30.0:
        return "Moderate"
    return "Low"


def run(*, iterations: int = 200) -> Table1Result:
    result = Table1Result()
    base = measure_cycles_per_syscall("baseline", iterations=iterations)
    for mechanism in MECHANISMS:
        result.expressiveness[mechanism] = probe_expressiveness(mechanism)
        result.exhaustiveness[mechanism] = probe_exhaustiveness(mechanism)
        overhead = (
            measure_cycles_per_syscall(mechanism, iterations=iterations) / base
        )
        result.overheads[mechanism] = overhead
        result.efficiency[mechanism] = efficiency_band(overhead)
    return result


def format_report(result: Table1Result) -> str:
    rows = []
    for mechanism in MECHANISMS:
        paper_expr, paper_exh, paper_eff = PAPER[mechanism]
        rows.append(
            [
                mechanism,
                result.expressiveness[mechanism],
                "yes" if result.exhaustiveness[mechanism] else "no",
                f"{result.efficiency[mechanism]} "
                f"({result.overheads[mechanism]:.1f}x)",
                f"{paper_expr}/{'yes' if paper_exh else 'no'}/{paper_eff}",
            ]
        )
    table = format_table(
        ["mechanism", "expressive", "exhaustive", "efficiency", "paper"],
        rows,
        title="Table I: probed characteristics",
    )
    verdict = "MATCHES" if result.matches_paper() else "DIFFERS FROM"
    return table + f"\nmatrix {verdict} the paper's Table I"
