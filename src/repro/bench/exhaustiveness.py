"""§V-A: the tcc-JIT exhaustiveness experiment.

Run the same JIT program under SUD, zpoline and lazypoline with the same
tracing interposition function.  Expected result (paper): lazypoline and
SUD print the exact same syscalls in the same order, including the JIT-ed
getpid; zpoline's trace misses it because the syscall instruction did not
exist when it scanned the binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.runner import format_table, install_mechanism
from repro.interpose.api import TraceInterposer
from repro.kernel.machine import Machine
from repro.workloads import tcc

MECHANISMS = ("sud", "zpoline", "lazypoline")


@dataclass
class ExhaustivenessResult:
    traces: dict[str, list[str]] = field(default_factory=dict)
    slowpath_hits: int = 0
    rewritten_sites: int = 0

    @property
    def lazypoline_matches_sud(self) -> bool:
        return self.traces["lazypoline"] == self.traces["sud"]

    @property
    def zpoline_missed_jit(self) -> bool:
        return (
            "getpid" not in self.traces["zpoline"]
            and "getpid" in self.traces["lazypoline"]
        )


def run() -> ExhaustivenessResult:
    result = ExhaustivenessResult()
    for mechanism in MECHANISMS:
        machine = Machine()
        tcc.setup_fs(machine)
        process = machine.load(tcc.build_tcc_image())
        tracer = TraceInterposer()
        tool = install_mechanism(mechanism, machine, process, tracer)
        code = machine.run_process(process)
        if code != 0 or process.stdout != b"ok\n":
            raise RuntimeError(f"tcc workload failed under {mechanism}")
        result.traces[mechanism] = tracer.names
        if mechanism == "lazypoline":
            result.slowpath_hits = tool.slowpath_hits
            result.rewritten_sites = len(tool.rewritten)
    return result


def format_report(result: ExhaustivenessResult) -> str:
    rows = []
    for mechanism in MECHANISMS:
        trace = result.traces[mechanism]
        rows.append(
            [
                mechanism,
                str(len(trace)),
                "yes" if "getpid" in trace else "MISSED",
            ]
        )
    table = format_table(
        ["mechanism", "syscalls traced", "JIT getpid seen"],
        rows,
        title="Exhaustiveness (§V-A): tcc-style JIT under identical tracing",
    )
    match = "identical" if result.lazypoline_matches_sud else "DIFFERENT"
    return table + (
        f"\nlazypoline vs SUD trace: {match} (paper: identical)"
        f"\nlazypoline slow-path hits: {result.slowpath_hits}, "
        f"sites rewritten: {result.rewritten_sites}"
        f"\nfull lazypoline trace: {' '.join(result.traces['lazypoline'])}"
    )
