"""Table III: coreutils register-preservation expectations under Pin.

Ten coreutils × two libc builds, each run under the register-preservation
tool.  A ✓ means the program expected at least one extended-state component
to survive at least one syscall (so an interposer that only preserves GPRs
would corrupt it).

Paper result: Ubuntu 20.04 — 4/10 affected (ls, mkdir, mv, cp, all via the
same glibc-2.31 pthread-init pattern of Listing 1); Clear Linux — 10/10
affected (all via the ptmalloc_init getrandom pattern).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.pin import RegisterPreservationTool
from repro.bench.runner import format_table
from repro.kernel.machine import Machine
from repro.libc.variants import GLIBC_231_UBUNTU, GLIBC_239_CLEARLINUX
from repro.workloads.coreutils import COREUTIL_NAMES, build_coreutil, setup_fs

#: The paper's Table III (True = ✓ = expects xstate preservation).
PAPER = {
    "Ubuntu 20.04": {
        "ls": True, "pwd": False, "chmod": False, "mkdir": True, "mv": True,
        "cp": True, "rm": False, "touch": False, "cat": False, "clear": False,
    },
    "Clear Linux": {name: True for name in COREUTIL_NAMES},
}

VARIANTS = {
    "Ubuntu 20.04": GLIBC_231_UBUNTU,
    "Clear Linux": GLIBC_239_CLEARLINUX,
}


@dataclass
class Table3Result:
    #: distro -> util -> expects-xstate verdict
    verdicts: dict[str, dict[str, bool]] = field(default_factory=dict)
    #: distro -> util -> syscalls found carrying live xstate
    details: dict[str, dict[str, list[str]]] = field(default_factory=dict)

    def matches_paper(self) -> bool:
        return self.verdicts == PAPER


def run() -> Table3Result:
    result = Table3Result()
    for distro, variant in VARIANTS.items():
        result.verdicts[distro] = {}
        result.details[distro] = {}
        for name in COREUTIL_NAMES:
            machine = Machine()
            setup_fs(machine)
            tool = RegisterPreservationTool()
            machine.kernel.cpu.add_hook(tool)
            process = machine.load(build_coreutil(name, variant))
            machine.run(
                until=lambda: not process.alive, max_instructions=2_000_000
            )
            if process.exit_code != 0:
                raise RuntimeError(
                    f"{name} ({distro}) failed: exit={process.exit_code} "
                    f"signal={process.term_signal}"
                )
            result.verdicts[distro][name] = tool.expects_xstate_preservation()
            result.details[distro][name] = sorted(
                {f"{f.register} across {f.syscall}" for f in tool.xstate_findings}
            )
    return result


def format_report(result: Table3Result) -> str:
    def mark(value: bool) -> str:
        return "Y" if value else "-"

    rows = []
    for name in COREUTIL_NAMES:
        rows.append(
            [
                name,
                mark(result.verdicts["Ubuntu 20.04"][name]),
                mark(PAPER["Ubuntu 20.04"][name]),
                mark(result.verdicts["Clear Linux"][name]),
                mark(PAPER["Clear Linux"][name]),
            ]
        )
    table = format_table(
        ["coreutil", "ubuntu", "(paper)", "clearlinux", "(paper)"],
        rows,
        title="Table III: xstate preservation expectations (Pin tool)",
    )
    notes = []
    sample = result.details["Ubuntu 20.04"].get("ls", [])
    if sample:
        notes.append(f"Ubuntu root cause (ls): {', '.join(sample)}")
    sample = result.details["Clear Linux"].get("pwd", [])
    if sample:
        notes.append(f"Clear Linux root cause (pwd): {', '.join(sample)}")
    verdict = "MATCHES" if result.matches_paper() else "DIFFERS FROM"
    notes.append(f"matrix {verdict} the paper's Table III")
    return table + "\n" + "\n".join(notes)
