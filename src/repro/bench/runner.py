"""Shared benchmark plumbing: tool installers and report formatting."""

from __future__ import annotations

from typing import Callable

from repro.interpose.api import Interposer, passthrough_interposer
from repro.workloads.runner import attach_mechanism


def install_mechanism(
    name: str, machine, process, interposer: Interposer | None = None
):
    """Install one named interposition mechanism on a loaded process.

    A thin veneer over the unified setup path
    (:func:`repro.workloads.runner.attach_mechanism`), which understands
    the plain registry names plus the benchmark-only pseudo-mechanisms
    (``baseline``, ``sud_enabled_allow``, the ``lazypoline_*`` ablations).
    """
    return attach_mechanism(
        machine, process, name,
        interposer=interposer or passthrough_interposer,
    )


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Plain-text table matching the repo's report style."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def within_band(measured: float, paper: float, tolerance: float = 0.25) -> bool:
    """True if ``measured`` is within ±tolerance (relative) of ``paper``."""
    return abs(measured - paper) <= tolerance * paper


def run_once(fn: Callable, *args, **kwargs):
    """Run a harness exactly once under pytest-benchmark's pedantic mode."""
    return fn(*args, **kwargs)
