"""Shared benchmark plumbing: tool installers and report formatting."""

from __future__ import annotations

from typing import Callable

from repro.arch.registers import XComponent
from repro.interpose.api import Interposer, passthrough_interposer
from repro.interpose.registry import attach


def install_mechanism(
    name: str, machine, process, interposer: Interposer | None = None
):
    """Install one named interposition mechanism on a loaded process.

    A thin veneer over :func:`repro.interpose.attach` that also knows the
    benchmark-only names ``baseline`` (no tool) and ``lazypoline_noxstate``
    (the §V-B xstate ablation).
    """
    interposer = interposer or passthrough_interposer
    if name == "baseline":
        return None
    if name == "lazypoline_noxstate":
        from repro.interpose.lazypoline import LazypolineConfig

        return attach(
            machine,
            process,
            "lazypoline",
            interposer=interposer,
            config=LazypolineConfig(preserve_xstate=XComponent.none()),
        )
    if name == "seccomp_bpf":
        return attach(machine, process, "seccomp_bpf")
    return attach(machine, process, name, interposer=interposer)


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Plain-text table matching the repo's report style."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def within_band(measured: float, paper: float, tolerance: float = 0.25) -> bool:
    """True if ``measured`` is within ±tolerance (relative) of ``paper``."""
    return abs(measured - paper) <= tolerance * paper


def run_once(fn: Callable, *args, **kwargs):
    """Run a harness exactly once under pytest-benchmark's pedantic mode."""
    return fn(*args, **kwargs)
