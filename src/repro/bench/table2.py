"""Table II: microbenchmark overhead vs. native execution.

The paper interposes non-existent syscall #500 100M times and reports the
geomean slowdown over 10 runs.  Our simulator is deterministic; we run a
differenced steady-state measurement (see
:mod:`repro.workloads.microbench`) and report the same rows.  To exercise
the statistics path anyway, ``run`` repeats the measurement with several
loop lengths and reports the (tiny) relative deviation honestly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.bench.runner import format_table
from repro.workloads.microbench import measure_cycles_per_syscall

#: Paper values (Table II).  The zpoline cell is corrupted in our source
#: text; 1.24x is inferred from Fig. 4's additive breakdown (see DESIGN.md).
PAPER = {
    "zpoline": 1.24,
    "lazypoline_noxstate": 1.66,
    "lazypoline": 2.38,
    "sud": 20.8,
    "sud_enabled_allow": 1.42,
}

ROW_LABELS = {
    "zpoline": "zpoline",
    "lazypoline_noxstate": "lazypoline without xstate preservation",
    "lazypoline": "lazypoline",
    "sud": "SUD",
    "sud_enabled_allow": "baseline with SUD enabled (selector=ALLOW)",
}


@dataclass
class Table2Result:
    baseline_cycles: float
    overheads: dict[str, float] = field(default_factory=dict)  # mechanism -> x
    max_rel_deviation: float = 0.0


def run(*, iterations: int = 300, repeats: int = 3) -> Table2Result:
    """Measure every Table II row; returns overhead ratios vs. baseline."""
    samples: dict[str, list[float]] = {}
    baselines: list[float] = []
    for rep in range(repeats):
        iters = iterations + 50 * rep
        base = measure_cycles_per_syscall("baseline", iterations=iters)
        baselines.append(base)
        for mech in PAPER:
            cycles = measure_cycles_per_syscall(mech, iterations=iters)
            samples.setdefault(mech, []).append(cycles / base)

    result = Table2Result(baseline_cycles=sum(baselines) / len(baselines))
    max_dev = 0.0
    for mech, values in samples.items():
        geomean = math.exp(sum(math.log(v) for v in values) / len(values))
        result.overheads[mech] = geomean
        mean = sum(values) / len(values)
        if mean:
            dev = (max(values) - min(values)) / mean
            max_dev = max(max_dev, dev)
    result.max_rel_deviation = max_dev
    return result


def format_report(result: Table2Result) -> str:
    rows = []
    for mech, paper in PAPER.items():
        measured = result.overheads[mech]
        rows.append(
            [
                ROW_LABELS[mech],
                f"{measured:.2f}x",
                f"{paper:.2f}x",
                f"{100 * (measured - paper) / paper:+.1f}%",
            ]
        )
    table = format_table(
        ["configuration", "measured", "paper", "delta"],
        rows,
        title="Table II: microbenchmark overhead vs baseline (syscall #500)",
    )
    return (
        table
        + f"\nbaseline: {result.baseline_cycles:.1f} cycles/syscall; "
        + f"max relative deviation {100 * result.max_rel_deviation:.2f}% "
        + "(paper: below 0.19%)"
    )
