"""Ablations of lazypoline's design choices.

Two sweeps beyond the paper's headline numbers:

* **xstate components** (§IV-B's configurable preservation option): how the
  fast-path cost scales as the preserved component set grows from nothing
  to x87+SSE+AVX.  Table III tells users which point of this curve their
  workload requires.
* **selector isolation** (§VI): the cost of protecting the %gs region with
  a memory protection key — two PKRU switches per interposition — compared
  against unprotected lazypoline and against what it buys (the selector-
  overwrite bypass stops working).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.runner import format_table
from repro.workloads.microbench import measure_cycles_per_syscall

XSTATE_CONFIGS = (
    ("none", "lazypoline_noxstate"),
    ("x87 only", "lazypoline_xstate_x87"),
    ("SSE only", "lazypoline_xstate_sse"),
    ("SSE+AVX", "lazypoline_xstate_sse_avx"),
    ("x87+SSE+AVX (default)", "lazypoline"),
)


@dataclass
class AblationResult:
    baseline: float = 0.0
    xstate: dict[str, float] = field(default_factory=dict)  # label -> cycles
    unprotected: float = 0.0
    pkey_protected: float = 0.0

    @property
    def pkey_extra_cycles(self) -> float:
        return self.pkey_protected - self.unprotected

    def xstate_overhead(self, label: str) -> float:
        return self.xstate[label] / self.baseline


def run(*, iterations: int = 300) -> AblationResult:
    result = AblationResult()
    result.baseline = measure_cycles_per_syscall(
        "baseline", iterations=iterations
    )
    for label, mechanism in XSTATE_CONFIGS:
        result.xstate[label] = measure_cycles_per_syscall(
            mechanism, iterations=iterations
        )
    result.unprotected = result.xstate["x87+SSE+AVX (default)"]
    result.pkey_protected = measure_cycles_per_syscall(
        "lazypoline_pkey", iterations=iterations
    )
    return result


def format_report(result: AblationResult) -> str:
    rows = []
    previous = None
    for label, _mech in XSTATE_CONFIGS:
        cycles = result.xstate[label]
        step = f"{cycles - previous:+.0f}" if previous is not None else "-"
        rows.append(
            [label, f"{cycles:.0f}", f"{cycles / result.baseline:.2f}x", step]
        )
        previous = cycles
    table = format_table(
        ["preserved components", "cycles/syscall", "vs baseline", "step"],
        rows,
        title="Ablation: xstate preservation granularity (micro, syscall #500)",
    )
    pkey = (
        f"\nAblation: %gs selector isolation via MPK (§VI)\n"
        f"  lazypoline              {result.unprotected:.0f} cycles/syscall "
        f"({result.unprotected / result.baseline:.2f}x)\n"
        f"  lazypoline + pkey       {result.pkey_protected:.0f} cycles/syscall "
        f"({result.pkey_protected / result.baseline:.2f}x)\n"
        f"  isolation premium       {result.pkey_extra_cycles:+.0f} cycles "
        f"(two PKRU switches per interposition)"
    )
    return table + pkey
