"""Fig. 5: web-server macrobenchmarks.

nginx- and lighttpd-like servers serving static files of several sizes,
driven by the wrk client model, under every mechanism the paper plots:
baseline, zpoline, lazypoline, lazypoline-without-xstate, and SUD — for a
single worker and a 12-worker deployment.

Single-worker throughput comes from direct simulation.  The 12-worker
number aggregates independent workers under a finite client capacity
(DESIGN.md §6): ``min(12 × single_rate, client_capacity)``, with the
client capacity set to a multiple of the baseline single-worker rate at
that file size.  That reproduces the paper's lower panels, where the
rewriting-based mechanisms all saturate the client and only SUD's slowdown
remains visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.runner import format_table, install_mechanism
from repro.kernel.machine import Machine
from repro.workloads.webserver import SERVERS, ServerWorkload

MECHANISMS = ("baseline", "zpoline", "lazypoline_noxstate", "lazypoline", "sud")

#: File sizes served (bytes); the paper sweeps sizes up to 256 KB.
SIZES = (1024, 4096, 16384, 65536, 262144)

#: Aggregate client capacity, as a multiple of the single-worker baseline
#: rate at the same file size (36 wrk threads vs 12 server cores).
CLIENT_CAPACITY_FACTOR = 8.0

WORKERS = (1, 12)


@dataclass
class Fig5Result:
    #: server -> size -> mechanism -> single-worker requests/second
    single: dict[str, dict[int, dict[str, float]]] = field(default_factory=dict)
    #: server -> size -> mechanism -> 12-worker requests/second
    multi: dict[str, dict[int, dict[str, float]]] = field(default_factory=dict)

    def retention(self, server: str, size: int, mechanism: str,
                  workers: int = 1) -> float:
        """Throughput relative to baseline (the paper's bar heights)."""
        table = self.single if workers == 1 else self.multi
        return table[server][size][mechanism] / table[server][size]["baseline"]


def _measure_single(server: str, size: int, mechanism: str, *,
                    requests: int, warmup: int) -> float:
    machine = Machine()
    workload = ServerWorkload(machine, SERVERS[server], file_size=size)
    install_mechanism(mechanism, machine, workload.process)
    return workload.benchmark(requests=requests, warmup=warmup)


def run(
    *,
    servers: tuple[str, ...] = ("nginx", "lighttpd"),
    sizes: tuple[int, ...] = SIZES,
    mechanisms: tuple[str, ...] = MECHANISMS,
    requests: int = 200,
    warmup: int = 20,
) -> Fig5Result:
    result = Fig5Result()
    for server in servers:
        result.single[server] = {}
        result.multi[server] = {}
        for size in sizes:
            single = {}
            for mechanism in mechanisms:
                single[mechanism] = _measure_single(
                    server, size, mechanism, requests=requests, warmup=warmup
                )
            result.single[server][size] = single
            capacity = CLIENT_CAPACITY_FACTOR * single["baseline"]
            result.multi[server][size] = {
                mechanism: min(12 * rate, capacity)
                for mechanism, rate in single.items()
            }
    return result


def format_report(result: Fig5Result) -> str:
    sections = []
    for server, by_size in result.single.items():
        for workers, table in ((1, result.single), (12, result.multi)):
            rows = []
            for size, rates in table[server].items():
                row = [f"{size // 1024}KB" if size >= 1024 else f"{size}B"]
                row.append(f"{rates['baseline'] / 1000:.1f}k")
                for mechanism in MECHANISMS[1:]:
                    if mechanism in rates:
                        pct = 100 * rates[mechanism] / rates["baseline"]
                        row.append(f"{pct:.1f}%")
                    else:
                        row.append("-")
                rows.append(row)
            sections.append(
                format_table(
                    ["size", "baseline", "zpoline", "lzp-nox", "lzp", "SUD"],
                    rows,
                    title=f"Fig. 5: {server}, {workers} worker(s) "
                    "(throughput relative to baseline)",
                )
            )
    sections.append(
        "paper claims: worst-case lazypoline-noxstate >= 94.7% of baseline;\n"
        "<= 3.6pp behind zpoline; xstate costs <= 4.7pp; SUD ~ half throughput\n"
        "at small sizes; rewriting overheads vanish >= 64KB; 12-worker panels\n"
        "flatten for everything except SUD."
    )
    return "\n\n".join(sections)
