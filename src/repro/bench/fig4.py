"""Fig. 4: lazypoline's overhead breakdown.

The figure decomposes lazypoline's microbenchmark overhead into three
additive parts:

* the pure zpoline-style fast path (call rax + sled + stub),
* "enabling SUD" — the slower kernel entry path taken once any interception
  interface is armed, plus the selector-byte read,
* "xstate preservation" — the xsave/xrstor pair around the interposer.

We measure each part directly: lazypoline with SUD disabled isolates the
fast path (the paper's "with SUD disabled, lazypoline's fast path matches
zpoline"), then arming SUD and enabling xstate add their components.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import format_table
from repro.workloads.microbench import measure_cycles_per_syscall

#: Paper component sizes as multiples of the baseline syscall cost,
#: derived from Table II: 1.66x − 1.24x = 0.42x for enabling SUD (matching
#: the 1.42x SUD-enabled-baseline row), 2.38x − 1.66x = 0.72x for xstate.
PAPER_COMPONENTS = {
    "fast path (zpoline-equivalent)": 0.24,
    "enabling SUD": 0.42,
    "xstate preservation": 0.72,
}


@dataclass
class Fig4Result:
    baseline: float
    zpoline: float
    fastpath_only: float  # lazypoline, SUD off, xstate off
    with_sud: float  # lazypoline, SUD on, xstate off
    full: float  # lazypoline, SUD on, xstate on

    @property
    def components(self) -> dict[str, float]:
        """Each component in units of the baseline syscall cost."""
        return {
            "fast path (zpoline-equivalent)": (
                (self.fastpath_only - self.baseline) / self.baseline
            ),
            "enabling SUD": (self.with_sud - self.fastpath_only) / self.baseline,
            "xstate preservation": (self.full - self.with_sud) / self.baseline,
        }


def run(*, iterations: int = 300) -> Fig4Result:
    measure = lambda mech: measure_cycles_per_syscall(  # noqa: E731
        mech, iterations=iterations
    )
    return Fig4Result(
        baseline=measure("baseline"),
        zpoline=measure("zpoline"),
        fastpath_only=measure("lazypoline_nosud_noxstate"),
        with_sud=measure("lazypoline_noxstate"),
        full=measure("lazypoline"),
    )


def format_report(result: Fig4Result) -> str:
    rows = []
    for name, measured in result.components.items():
        paper = PAPER_COMPONENTS[name]
        rows.append([name, f"{measured:+.2f}x", f"{paper:+.2f}x"])
    table = format_table(
        ["overhead component", "measured", "paper"],
        rows,
        title="Fig. 4: lazypoline overhead breakdown (vs baseline cost)",
    )
    fast_vs_zpoline = 100 * (result.fastpath_only / result.zpoline - 1)
    return table + (
        f"\nfast path with SUD disabled vs zpoline: {fast_vs_zpoline:+.1f}% "
        "(paper: matches)"
    )
