"""libc syscall-wrapper functions.

Programs built against this layer invoke syscalls the way C programs do:
through small libc wrapper functions (``write(2)`` the function wrapping
``write`` the syscall).  Function-level interposers (LD_PRELOAD-style,
§VII of the paper) interpose these *functions* — which works only until a
program invokes a syscall instruction directly.
"""

from __future__ import annotations

from repro.arch.encode import Assembler
from repro.kernel.syscalls.table import NR

#: Wrappers emitted by default.
DEFAULT_WRAPPERS = (
    "read", "write", "open", "close", "getpid", "mkdir", "unlink",
    "exit_group", "mmap",
)


def wrapper_symbol(name: str) -> str:
    return f"libc_{name}"


def emit_wrappers(asm: Assembler, names: tuple[str, ...] = DEFAULT_WRAPPERS) -> None:
    """Emit one wrapper function per syscall name.

    Each wrapper follows the function ABI (arguments already in the right
    registers, since the function ABI's first six slots coincide with the
    syscall ABI's here): load the number, trap, return.
    """
    for name in names:
        asm.label(wrapper_symbol(name))
        asm.mov_imm("rax", NR[name])
        asm.syscall()
        asm.ret()


def emit_call(asm: Assembler, name: str) -> None:
    """Call a previously emitted wrapper."""
    asm.call(wrapper_symbol(name))
