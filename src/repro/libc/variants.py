"""libc CRT startup variants.

Table III's root causes, reproduced instruction-for-instruction:

* **glibc 2.31 / Ubuntu 20.04** (x86-64-v1): programs linked against
  libpthread run the Listing-1 pthread initialisation — the compiler
  preloads ``xmm0`` with ``&__stack_user`` duplicated into both halves
  (``movq`` + ``punpcklqdq``), performs the ``set_tid_address`` and
  ``set_robust_list`` syscalls, and only then uses a single ``movups`` to
  initialise the ``prev``/``next`` fields.  The value in ``xmm0`` is live
  *across two syscalls*.

* **glibc 2.39 / Clear Linux** (x86-64-v3 paths enabled): *every* program
  runs ``ptmalloc_init``, which pre-populates an xmm register to initialise
  ``main_arena`` fields and expects it to survive an intervening
  ``getrandom`` syscall.

A CRT needs writable libc data; startup mmaps one anonymous page and keeps
its address in ``r15`` (callee-saved) — ``__stack_user`` lives at
``r15+0x40``, ``main_arena`` at ``r15+0x80``, the entropy buffer at
``r15+0xC0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.arch.encode import Assembler
from repro.kernel.syscalls.table import NR

#: libc data-page field offsets (r15-relative).
STACK_USER_OFF = 0x40
MAIN_ARENA_OFF = 0x80
ENTROPY_OFF = 0xC0


def _emit_mmap_libc_data(asm: Assembler) -> None:
    """mmap one RW page for libc state; keeps the base in r15."""
    asm.mov_imm("rdi", 0)
    asm.mov_imm("rsi", 4096)
    asm.mov_imm("rdx", 3)  # PROT_READ | PROT_WRITE
    asm.mov_imm("r10", 0x22)  # MAP_PRIVATE | MAP_ANONYMOUS
    asm.mov_imm("r8", (1 << 64) - 1)
    asm.mov_imm("r9", 0)
    asm.mov_imm("rax", NR["mmap"])
    asm.syscall()
    asm.mov("r15", "rax")


def _emit_set_tid_address(asm: Assembler) -> None:
    asm.lea("rdi", "r15", 0x10)
    asm.mov_imm("rax", NR["set_tid_address"])
    asm.syscall()


def _emit_set_robust_list(asm: Assembler) -> None:
    asm.lea("rdi", "r15", 0x20)
    asm.mov_imm("rsi", 24)
    asm.mov_imm("rax", NR["set_robust_list"])
    asm.syscall()


def _glibc231_startup(asm: Assembler, uses_threads: bool) -> None:
    """Ubuntu 20.04 startup; Listing 1 runs only for pthread programs."""
    _emit_mmap_libc_data(asm)
    if uses_threads:
        # --- Listing 1 (paper, §IV-B): verbatim structure -----------------
        asm.lea("r12", "r15", STACK_USER_OFF)  # r12 = &__stack_user
        asm.movq_xg("xmm0", "r12")  # load into both
        asm.punpcklqdq("xmm0", "xmm0")  # halves of xmm0
        _emit_set_tid_address(asm)  # syscall: set_tid_address
        _emit_set_robust_list(asm)  # syscall: set_robust_list
        asm.movups_store("r12", 0, "xmm0")  # write '&__stack_user'
        #                                   # to 'prev' + 'next'
    else:
        _emit_set_tid_address(asm)
        _emit_set_robust_list(asm)


def _glibc239_clearlinux_startup(asm: Assembler, uses_threads: bool) -> None:
    """Clear Linux startup: ptmalloc_init affects every program.

    An xmm register is pre-populated to initialise two adjacent main_arena
    fields; the intervening ``getrandom`` (malloc randomisation) must
    preserve it.  The x86-64-v3 build also keeps a ymm-wide accumulator
    live across the same syscall.
    """
    _emit_mmap_libc_data(asm)
    _emit_set_tid_address(asm)
    _emit_set_robust_list(asm)
    # --- ptmalloc_init --------------------------------------------------
    asm.lea("r13", "r15", MAIN_ARENA_OFF)  # r13 = &main_arena.top
    asm.movq_xg("xmm1", "r13")
    asm.punpcklqdq("xmm1", "xmm1")
    asm.vaddpd("xmm1", "xmm1")  # v3 code path: ymm half becomes live too
    # getrandom(&entropy, 8, 0)
    asm.lea("rdi", "r15", ENTROPY_OFF)
    asm.mov_imm("rsi", 8)
    asm.mov_imm("rdx", 0)
    asm.mov_imm("rax", NR["getrandom"])
    asm.syscall()
    asm.movups_store("r13", 0, "xmm1")  # expects xmm1 preserved
    asm.vaddpd("xmm1", "xmm1")  # ...and the ymm half as well


@dataclass(frozen=True)
class LibcVariant:
    """One modelled libc build."""

    name: str
    distro: str
    glibc_version: str
    march: str
    emit_startup: Callable[[Assembler, bool], None]

    def emit(self, asm: Assembler, *, uses_threads: bool) -> None:
        self.emit_startup(asm, uses_threads)


GLIBC_231_UBUNTU = LibcVariant(
    name="glibc231-ubuntu2004",
    distro="Ubuntu 20.04",
    glibc_version="2.31",
    march="x86-64-v1",
    emit_startup=_glibc231_startup,
)

GLIBC_239_CLEARLINUX = LibcVariant(
    name="glibc239-clearlinux",
    distro="Clear Linux",
    glibc_version="2.39",
    march="x86-64-v3",
    emit_startup=_glibc239_clearlinux_startup,
)

LIBC_VARIANTS = {
    variant.name: variant
    for variant in (GLIBC_231_UBUNTU, GLIBC_239_CLEARLINUX)
}
