"""Guest-side helpers for the syscall-aggregation ring.

:class:`GuestRing` emits the assembly a batching libc would ship: ring
setup (mmap or carve out of an existing buffer), SQE stores, the
``ring_enter`` re-enter loop (resuming a partially drained ring after a
signal), and CQE loads.  The layout constants come from
``repro.kernel.uring`` so guest and kernel can never disagree.

Two usage styles:

* **one-shot / linked batches** — ``push()`` entries (slots are assigned
  sequentially), then ``submit()``.  Cross-batch result links work as
  long as the total entry count stays within the ring capacity.
* **steady-state loops** — write the SQEs once with ``push()``, then
  ``flush(n)`` inside the guest loop: it rewinds ``sq_head``/``sq_tail``
  so the same N entries are re-submitted every iteration without
  re-storing them (the kernel never modifies SQE contents).
* **async submission** — ``submit_async()`` publishes entries through an
  asynchronous drain (blocking SQEs park kernel-side instead of stalling;
  see :data:`repro.kernel.uring.RING_ENTER_ASYNC`), then ``wait(n)``
  blocks until at least ``n`` CQEs have posted — the event-loop shape:
  one task keeps many I/Os in flight and harvests completions in bulk.
  Host-side completion callbacks registered with ``on_completion(slot,
  emit)`` are emitted by ``emit_completions()`` after a wait.

Example::

    ring = GuestRing(a, entries=8, base="r9")
    ring.emit_mmap()                       # or emit_init() into own buffer
    s0 = ring.push("open", "path_label", 0, 0)
    s1 = ring.push("fstat", ring_result(s0), "rdx")   # rdx holds a buf ptr
    ring.push("close", ring_result(s0))
    ring.submit()                          # one ring_enter, three syscalls
    ring.load_result("rax", s1)            # fstat's return value

Arguments to ``push`` may be integer immediates, assembler label names
(resolved to addresses), GPR names (stored at push time), or
:func:`ring_result` links (resolved by the kernel at drain time).
"""

from __future__ import annotations

from repro.kernel.syscalls.table import NR
from repro.kernel.uring import (
    RING_ENTER_ASYNC,
    CQE_SIZE,
    HDR_CQ_HEAD,
    HDR_CQ_CAP,
    HDR_CQ_TAIL,
    HDR_SQ_CAP,
    HDR_SQ_HEAD,
    HDR_SQ_TAIL,
    HEADER_SIZE,
    SQE_ARGS,
    SQE_SIZE,
    SQE_SYSNO,
    SQE_USER_DATA,
    cqe_offset,
    ring_result,
    ring_size,
    sqe_offset,
)

__all__ = [
    "DEFAULT_RING_ENTRIES",
    "RING_BASE_REG",
    "RING_ENTER_ASYNC",
    "GuestRing",
    "ring_result",
    "ring_region_size",
    "ring_size",
]

# ------------------------------------------------------- shared geometry
#: Default ring capacity for in-tree ring users (the batched webserver's
#: per-worker ring, examples).  Every builder that carves a ring out of a
#: larger buffer must size that buffer with :func:`ring_region_size` so a
#: layout change here (or in ``repro.kernel.uring``'s SQE/CQE sizes) grows
#: the buffer instead of silently overlapping whatever lives after it.
DEFAULT_RING_ENTRIES = 8

#: Conventional GPR holding the ring base in generated guest code.
RING_BASE_REG = "r9"


def ring_region_size(entries: int = DEFAULT_RING_ENTRIES,
                     *, align: int = 4096) -> int:
    """Bytes to reserve for a ring of ``entries`` slots, ``align``-rounded.

    Page-rounding keeps buffer layouts stable across small geometry tweaks
    (benchmark cycle counts depend on the mmap length immediate), while a
    genuine layout growth past the page boundary resizes the reservation
    instead of corrupting the neighbouring buffer.
    """
    size = ring_size(entries)
    return (size + align - 1) & ~(align - 1)

_GPRS = frozenset(
    ["rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp"]
    + [f"r{i}" for i in range(8, 16)]
)

#: mmap(NULL, size, PROT_READ|PROT_WRITE, MAP_PRIVATE|MAP_ANONYMOUS, -1, 0)
_PROT_RW = 0x3
_MAP_PRIVATE_ANON = 0x22


class GuestRing:
    """Emits ring-management assembly against an ``Assembler``.

    ``base`` is the GPR holding the ring's base address (plus a constant
    ``disp``, letting the ring live inside a larger buffer).  ``scratch``
    is clobbered by every helper; ``submit``/``flush`` additionally
    clobber ``rdi/rsi/rdx/r10/rax`` (the syscall argument registers).
    """

    def __init__(self, asm, *, entries: int, base: str = RING_BASE_REG,
                 disp: int = 0, scratch: str = "rcx", tag: str = "ring"):
        self.asm = asm
        self.entries = entries
        self.base = base
        self.disp = disp
        self.scratch = scratch
        self.tag = tag
        self._next_slot = 0
        self._label_seq = 0
        self._callbacks: dict[int, object] = {}

    # ------------------------------------------------------------------ setup
    def emit_mmap(self) -> "GuestRing":
        """mmap a fresh anonymous region for the ring and initialise it.

        Clobbers the syscall argument registers; leaves the ring address
        in ``base``.
        """
        a = self.asm
        a.mov_imm("rdi", 0)
        a.mov_imm("rsi", ring_size(self.entries))
        a.mov_imm("rdx", _PROT_RW)
        a.mov_imm("r10", _MAP_PRIVATE_ANON)
        a.mov_imm("r8", (1 << 64) - 1)
        a.mov_imm("r9", 0)
        a.mov_imm("rax", NR["mmap"])
        a.syscall()
        a.mov(self.base, "rax")
        self.disp = 0
        return self.emit_init()

    def emit_init(self) -> "GuestRing":
        """Write the header: capacities set, all cursors zeroed."""
        a, s = self.asm, self.scratch
        a.mov_imm(s, self.entries)
        a.store(self.base, self.disp + HDR_SQ_CAP, s)
        a.store(self.base, self.disp + HDR_CQ_CAP, s)
        a.mov_imm(s, 0)
        for off in (HDR_SQ_HEAD, HDR_SQ_TAIL, HDR_CQ_HEAD, HDR_CQ_TAIL):
            a.store(self.base, self.disp + off, s)
        return self

    # ------------------------------------------------------------- submission
    def _store_value(self, offset: int, value) -> None:
        """Store an immediate/label (via scratch) or a GPR at base+offset."""
        a = self.asm
        if isinstance(value, str) and value in _GPRS:
            a.store(self.base, self.disp + offset, value)
        else:
            a.mov_imm(self.scratch, value)
            a.store(self.base, self.disp + offset, self.scratch)

    def push(self, name, *args, user_data=None, slot: int | None = None) -> int:
        """Write one SQE; returns the slot it occupies.

        ``name`` is a syscall name (or a raw number).  Unsupplied trailing
        arguments are not stored — fine for fresh (zeroed) ring memory or
        when re-pushing the same shape into a reused slot.
        """
        if slot is None:
            slot = self._next_slot
            self._next_slot += 1
        if slot >= self.entries:
            raise ValueError(f"slot {slot} exceeds ring capacity {self.entries}")
        off = sqe_offset(slot)
        sysno = NR[name] if isinstance(name, str) else name
        self._store_value(off + SQE_SYSNO, sysno)
        for k, arg in enumerate(args):
            self._store_value(off + SQE_ARGS + 8 * k, arg)
        if user_data is not None:
            self._store_value(off + SQE_USER_DATA, user_data)
        return slot

    # Batched wrappers a libc would export -------------------------------
    def push_read(self, fd, buf, count) -> int:
        return self.push("read", fd, buf, count)

    def push_write(self, fd, buf, count) -> int:
        return self.push("write", fd, buf, count)

    def push_accept(self, fd) -> int:
        return self.push("accept4", fd, 0, 0, 0)

    def push_send(self, fd, buf, count) -> int:
        # send(fd, buf, n, 0) on a connected socket == write(fd, buf, n)
        return self.push("write", fd, buf, count)

    def _enter_loop(self, target_head: int, *, min_complete: int = 0,
                    flags: int = 0) -> None:
        """Emit ring_enter, re-entering until ``sq_head == target_head``.

        The loop is what makes signal interruption invisible to the guest
        in the common case: a partial drain returns early (the handler
        runs at the next instruction boundary) and the re-enter resumes
        from the published ``sq_head`` — never re-running completed
        entries, never losing the remainder.
        """
        a, s = self.asm, self.scratch
        label = f"__{self.tag}_enter_{self._label_seq}"
        self._label_seq += 1
        a.label(label)
        a.lea("rdi", self.base, self.disp)
        a.mov_imm("rsi", 0)
        a.mov_imm("rdx", min_complete)
        a.mov_imm("r10", flags)
        a.mov_imm("rax", NR["ring_enter"])
        a.syscall()
        a.load(s, self.base, self.disp + HDR_SQ_HEAD)
        a.cmpi(s, target_head)
        a.jnz(label)

    def submit(self) -> int:
        """Publish all pushed entries and drain them with one crossing."""
        n = self._next_slot
        a, s = self.asm, self.scratch
        a.mov_imm(s, n)
        a.store(self.base, self.disp + HDR_SQ_TAIL, s)
        self._enter_loop(n)
        return n

    def submit_async(self, *, min_complete: int = 0) -> int:
        """Publish all pushed entries through an *asynchronous* drain.

        The crossing returns as soon as every entry is consumed —
        completed or parked kernel-side — so the guest overlaps all its
        in-flight I/O.  With ``min_complete`` the same crossing then
        waits until that many CQEs have posted (submit-and-wait).
        """
        n = self._next_slot
        a, s = self.asm, self.scratch
        a.mov_imm(s, n)
        a.store(self.base, self.disp + HDR_SQ_TAIL, s)
        self._enter_loop(n, min_complete=min_complete,
                         flags=RING_ENTER_ASYNC)
        return n

    def wait(self, min_complete: int) -> None:
        """Emit a ``ring_wait``: block until ``cq_tail >= min_complete``.

        Re-enters after signal interruption (the kernel call returns
        -EINTR-style early; the guest re-checks the published cursor), so
        a wait is never lost to a handler running in the middle of it.
        """
        a, s = self.asm, self.scratch
        label = f"__{self.tag}_wait_{self._label_seq}"
        self._label_seq += 1
        a.label(label)
        a.lea("rdi", self.base, self.disp)
        a.mov_imm("rsi", 0)
        a.mov_imm("rdx", min_complete)
        a.mov_imm("r10", RING_ENTER_ASYNC)
        a.mov_imm("rax", NR["ring_enter"])
        a.syscall()
        a.load(s, self.base, self.disp + HDR_CQ_TAIL)
        a.cmpi(s, min_complete)
        a.jl(label)

    def flush(self, n: int | None = None) -> None:
        """Re-submit slots ``0..n-1`` (already written) with one crossing.

        Rewinds the cursors, so the SQE stores are paid once at setup and
        the steady-state loop costs only the enter itself.
        """
        if n is None:
            n = self._next_slot
        a, s = self.asm, self.scratch
        a.mov_imm(s, 0)
        a.store(self.base, self.disp + HDR_SQ_HEAD, s)
        a.store(self.base, self.disp + HDR_CQ_HEAD, s)
        a.store(self.base, self.disp + HDR_CQ_TAIL, s)
        a.mov_imm(s, n)
        a.store(self.base, self.disp + HDR_SQ_TAIL, s)
        self._enter_loop(n)

    def rewind(self) -> None:
        """Rewind all cursors guest-side *without* entering — the prologue
        of a steady-state wave that re-pushes entries before submitting."""
        a, s = self.asm, self.scratch
        a.mov_imm(s, 0)
        for off in (HDR_SQ_HEAD, HDR_CQ_HEAD, HDR_CQ_TAIL):
            a.store(self.base, self.disp + off, s)

    def flush_async(self, n: int | None = None, *,
                    min_complete: int = 0) -> None:
        """Async counterpart of :meth:`flush`: rewind the cursors and
        re-submit slots ``0..n-1`` through the asynchronous drain."""
        if n is None:
            n = self._next_slot
        a, s = self.asm, self.scratch
        a.mov_imm(s, 0)
        a.store(self.base, self.disp + HDR_SQ_HEAD, s)
        a.store(self.base, self.disp + HDR_CQ_HEAD, s)
        a.store(self.base, self.disp + HDR_CQ_TAIL, s)
        a.mov_imm(s, n)
        a.store(self.base, self.disp + HDR_SQ_TAIL, s)
        self._enter_loop(n, min_complete=min_complete,
                         flags=RING_ENTER_ASYNC)

    # ------------------------------------------------------------- completion
    def on_completion(self, slot: int, emit) -> None:
        """Register a host-side completion callback for CQ ``slot``.

        ``emit(asm, ring, slot)`` is invoked by :meth:`emit_completions`
        to generate the guest code consuming that completion — the
        assembly-level analogue of an event loop's per-request callback.
        """
        self._callbacks[slot] = emit

    def emit_completions(self) -> None:
        """Emit every registered completion callback, in slot order.

        Call after a :meth:`wait` (or ``submit_async(min_complete=...)``)
        that guarantees the slots' CQEs have posted.
        """
        for slot in sorted(self._callbacks):
            self._callbacks[slot](self.asm, self, slot)

    def load_result(self, dst: str, slot: int) -> None:
        """Load CQ slot ``slot``'s result (u64 two's complement) into ``dst``."""
        self.asm.load(dst, self.base,
                      self.disp + cqe_offset(self.entries, slot))

    def reset(self) -> None:
        """Forget pushed slots and registered completion callbacks
        (host-side only; guest memory untouched)."""
        self._next_slot = 0
        self._callbacks.clear()
