"""Minimal libc models: CRT startup variants reproducing Table III."""

from repro.libc.variants import (
    LIBC_VARIANTS,
    LibcVariant,
    GLIBC_231_UBUNTU,
    GLIBC_239_CLEARLINUX,
)

__all__ = [
    "LibcVariant",
    "LIBC_VARIANTS",
    "GLIBC_231_UBUNTU",
    "GLIBC_239_CLEARLINUX",
]
