"""Minimal libc models: CRT startup variants reproducing Table III,
plus guest-side syscall-aggregation helpers (:class:`GuestRing`)."""

from repro.libc.variants import (
    LIBC_VARIANTS,
    LibcVariant,
    GLIBC_231_UBUNTU,
    GLIBC_239_CLEARLINUX,
)
from repro.libc.uring import GuestRing, ring_result, ring_size

__all__ = [
    "LibcVariant",
    "LIBC_VARIANTS",
    "GLIBC_231_UBUNTU",
    "GLIBC_239_CLEARLINUX",
    "GuestRing",
    "ring_result",
    "ring_size",
]
