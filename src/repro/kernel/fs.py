"""An in-memory filesystem and the file-description objects syscalls use.

Every open fd maps to a :class:`FileDescription` subclass; the syscall layer
only talks to this interface, so regular files, pipes, sockets and epoll
instances all plug in uniformly.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field

from repro.kernel import errno
from repro.kernel.waits import WouldBlock

# open(2) flags (Linux values).
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_EXCL = 0o200
O_TRUNC = 0o1000
O_APPEND = 0o2000
O_NONBLOCK = 0o4000
O_DIRECTORY = 0o200000
O_CLOEXEC = 0o2000000

# poll/epoll event bits.
EPOLLIN = 0x001
EPOLLOUT = 0x004
EPOLLERR = 0x008
EPOLLHUP = 0x010

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

# dirent d_type values.
DT_REG = 8
DT_DIR = 4


@dataclass
class Inode:
    """One filesystem object."""

    path: str
    is_dir: bool = False
    mode: int = 0o644
    data: bytearray = field(default_factory=bytearray)
    nlink: int = 1
    ino: int = 0


class SimFS:
    """A flat in-memory filesystem with POSIX-style paths."""

    def __init__(self):
        self._inodes: dict[str, Inode] = {}
        self._next_ino = 2
        self._mkdir_raw("/")

    @staticmethod
    def normalize(path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        norm = posixpath.normpath(path)
        if norm.startswith("//"):  # POSIX's special '//' root is not a thing here
            norm = "/" + norm.lstrip("/")
        return norm

    def _mkdir_raw(self, path: str) -> Inode:
        inode = Inode(path, is_dir=True, mode=0o755, ino=self._next_ino)
        self._next_ino += 1
        self._inodes[path] = inode
        return inode

    # ----------------------------------------------------------------- query
    def lookup(self, path: str) -> Inode | None:
        return self._inodes.get(self.normalize(path))

    def exists(self, path: str) -> bool:
        return self.normalize(path) in self._inodes

    def listdir(self, path: str) -> list[str]:
        prefix = self.normalize(path)
        if prefix != "/":
            prefix += "/"
        names = set()
        for other in self._inodes:
            if other != "/" and other.startswith(prefix):
                rest = other[len(prefix):]
                names.add(rest.split("/", 1)[0])
        return sorted(names)

    # ---------------------------------------------------------------- mutate
    def create(self, path: str, data: bytes = b"", mode: int = 0o644) -> Inode:
        """Create (or truncate-replace) a regular file with ``data``."""
        path = self.normalize(path)
        parent = posixpath.dirname(path)
        if not self.exists(parent):
            self.makedirs(parent)
        inode = Inode(path, data=bytearray(data), mode=mode, ino=self._next_ino)
        self._next_ino += 1
        self._inodes[path] = inode
        return inode

    def mkdir(self, path: str, mode: int = 0o755) -> int:
        path = self.normalize(path)
        if self.exists(path):
            return -errno.EEXIST
        parent = posixpath.dirname(path)
        parent_inode = self.lookup(parent)
        if parent_inode is None or not parent_inode.is_dir:
            return -errno.ENOENT
        inode = self._mkdir_raw(path)
        inode.mode = mode
        return 0

    def makedirs(self, path: str) -> None:
        path = self.normalize(path)
        parts = [p for p in path.split("/") if p]
        cur = ""
        for part in parts:
            cur += "/" + part
            if not self.exists(cur):
                self._mkdir_raw(cur)

    def unlink(self, path: str) -> int:
        path = self.normalize(path)
        inode = self.lookup(path)
        if inode is None:
            return -errno.ENOENT
        if inode.is_dir:
            return -errno.EISDIR
        del self._inodes[path]
        return 0

    def rmdir(self, path: str) -> int:
        path = self.normalize(path)
        inode = self.lookup(path)
        if inode is None:
            return -errno.ENOENT
        if not inode.is_dir:
            return -errno.ENOTDIR
        if self.listdir(path):
            return -errno.ENOTEMPTY
        del self._inodes[path]
        return 0

    def rename(self, old: str, new: str) -> int:
        old = self.normalize(old)
        new = self.normalize(new)
        inode = self.lookup(old)
        if inode is None:
            return -errno.ENOENT
        del self._inodes[old]
        inode.path = new
        self._inodes[new] = inode
        return 0

    def chmod(self, path: str, mode: int) -> int:
        inode = self.lookup(path)
        if inode is None:
            return -errno.ENOENT
        inode.mode = mode & 0o7777
        return 0


# --------------------------------------------------------------------------
class FileDescription:
    """Base class: one open file table entry."""

    def __init__(self):
        self.flags = 0
        self.refcount = 1

    @property
    def nonblocking(self) -> bool:
        return bool(self.flags & O_NONBLOCK)

    def read(self, task, length: int) -> bytes | int:
        return -errno.EINVAL

    def write(self, task, data: bytes) -> int:
        return -errno.EINVAL

    def poll(self) -> int:
        """Current readiness event mask."""
        return 0

    def close(self) -> None:
        self.refcount -= 1

    def dup(self) -> "FileDescription":
        self.refcount += 1
        return self


class RegularFile(FileDescription):
    """An open regular file with a seek offset."""

    def __init__(self, inode: Inode, flags: int):
        super().__init__()
        self.inode = inode
        self.flags = flags
        self.offset = len(inode.data) if flags & O_APPEND else 0

    def read(self, task, length: int) -> bytes:
        data = bytes(self.inode.data[self.offset : self.offset + length])
        self.offset += len(data)
        return data

    def pread(self, offset: int, length: int) -> bytes:
        return bytes(self.inode.data[offset : offset + length])

    def write(self, task, data: bytes) -> int:
        if self.flags & O_APPEND:
            self.offset = len(self.inode.data)
        end = self.offset + len(data)
        if end > len(self.inode.data):
            self.inode.data.extend(b"\x00" * (end - len(self.inode.data)))
        self.inode.data[self.offset : end] = data
        self.offset = end
        return len(data)

    def seek(self, offset: int, whence: int) -> int:
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = self.offset + offset
        elif whence == SEEK_END:
            new = len(self.inode.data) + offset
        else:
            return -errno.EINVAL
        if new < 0:
            return -errno.EINVAL
        self.offset = new
        return new

    def poll(self) -> int:
        return EPOLLIN | EPOLLOUT


class DirFile(FileDescription):
    """An open directory, for getdents64."""

    def __init__(self, fs: SimFS, inode: Inode):
        super().__init__()
        self.fs = fs
        self.inode = inode
        self.position = 0

    def entries(self) -> list[tuple[str, Inode]]:
        result = []
        for name in self.fs.listdir(self.inode.path):
            child = self.fs.lookup(posixpath.join(self.inode.path, name))
            if child is not None:
                result.append((name, child))
        return result


class StdStream(FileDescription):
    """stdout/stderr capture stream (fd 1 / fd 2 by default)."""

    def __init__(self, which: str):
        super().__init__()
        self.which = which

    def write(self, task, data: bytes) -> int:
        leader = task
        while leader.parent is not None and leader.tid != leader.pid:
            leader = leader.parent
        buf = leader.stdout if self.which == "stdout" else leader.stderr
        buf += data
        return len(data)

    def read(self, task, length: int) -> bytes:
        return b""  # empty stdin semantics when dup'ed onto fd 0

    def poll(self) -> int:
        return EPOLLOUT


class Pipe:
    """The shared buffer of a pipe pair."""

    def __init__(self, capacity: int = 65536):
        self.buffer = bytearray()
        self.capacity = capacity
        self.read_open = True
        self.write_open = True


class PipeReadEnd(FileDescription):
    def __init__(self, pipe: Pipe):
        super().__init__()
        self.pipe = pipe

    def read(self, task, length: int):
        if not self.pipe.buffer:
            if not self.pipe.write_open:
                return b""
            if self.nonblocking:
                return -errno.EAGAIN
            pipe = self.pipe
            raise WouldBlock(lambda: bool(pipe.buffer) or not pipe.write_open)
        data = bytes(self.pipe.buffer[:length])
        del self.pipe.buffer[: len(data)]
        return data

    def poll(self) -> int:
        mask = 0
        if self.pipe.buffer:
            mask |= EPOLLIN
        if not self.pipe.write_open:
            mask |= EPOLLHUP
        return mask

    def close(self) -> None:
        super().close()
        if self.refcount == 0:
            self.pipe.read_open = False


class PipeWriteEnd(FileDescription):
    def __init__(self, pipe: Pipe):
        super().__init__()
        self.pipe = pipe

    def write(self, task, data: bytes):
        if not self.pipe.read_open:
            return -errno.EPIPE
        if len(self.pipe.buffer) + len(data) > self.pipe.capacity:
            if self.nonblocking:
                return -errno.EAGAIN
            pipe = self.pipe
            need = len(data)
            raise WouldBlock(
                lambda: len(pipe.buffer) + need <= pipe.capacity or not pipe.read_open
            )
        self.pipe.buffer += data
        return len(data)

    def poll(self) -> int:
        mask = 0
        if len(self.pipe.buffer) < self.pipe.capacity:
            mask |= EPOLLOUT
        if not self.pipe.read_open:
            mask |= EPOLLERR
        return mask

    def close(self) -> None:
        super().close()
        if self.refcount == 0:
            self.pipe.write_open = False
