"""Signal numbers, frame layout, delivery and sigreturn.

Signal frames live on the interrupted task's stack in simulated memory, so
handlers can inspect and *modify* the saved context — the ``REG_RIP``
redirection trick lazypoline's SIGSYS handler performs (§IV-A) works exactly
like it does on Linux.

Frame layout (offsets from the frame base, which becomes ``rsp`` on handler
entry)::

    +0    return address       -> sa_restorer (or the kernel's default)
    +8    siginfo (40 bytes):
          +8   signo   u32
          +12  code    u32
          +16  call_addr / fault_addr  u64   (si_call_addr for SIGSYS)
          +24  syscall u32  (si_syscall)
          +28  arch    u32
          +32  errno   u32
    +48   ucontext:
          +48   gprs[16]       (8 bytes each, hardware order)
          +176  rip            u64
          +184  flags          u64  (bit0 = zf, bit1 = lt)
          +192  gs_base        u64
          +200  xsave area     (XSAVE_AREA_SIZE bytes, all components)

The handler receives ``rdi = signo``, ``rsi = &siginfo``, ``rdx = &ucontext``.
"""

from __future__ import annotations

from repro.arch.registers import XComponent
from repro.cpu.core import XSAVE_AREA_SIZE, xrstor_apply, xsave_serialize
from repro.kernel.task import SIG_DFL, SIG_IGN, PendingSignal, Task

# ---------------------------------------------------------------- numbers
SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGILL = 4
SIGTRAP = 5
SIGABRT = 6
SIGBUS = 7
SIGFPE = 8
SIGKILL = 9
SIGUSR1 = 10
SIGSEGV = 11
SIGUSR2 = 12
SIGPIPE = 13
SIGALRM = 14
SIGTERM = 15
SIGCHLD = 17
SIGCONT = 18
SIGSTOP = 19
SIGWINCH = 28
SIGSYS = 31

NSIG = 32

SIGNAL_NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.startswith("SIG") and not name.startswith("SIGNAL") and isinstance(value, int)
}

#: Signals whose default action is to ignore.
DEFAULT_IGNORED = {SIGCHLD, SIGWINCH, SIGCONT}

#: Signals that can never be caught or blocked.
UNCATCHABLE = {SIGKILL, SIGSTOP}

# ----------------------------------------------------------- siginfo codes
SYS_SECCOMP = 1  # si_code for seccomp SIGSYS
SYS_USER_DISPATCH = 2  # si_code for SUD SIGSYS

# ---------------------------------------------------------------- sa_flags
SA_SIGINFO = 0x4
SA_RESTORER = 0x04000000
SA_NODEFER = 0x40000000

# ------------------------------------------------------------ frame layout
FRAME_RETADDR = 0
FRAME_SIGINFO = 8
SI_SIGNO = 8
SI_CODE = 12
SI_ADDR = 16
SI_SYSCALL = 24
SI_ARCH = 28
SI_ERRNO = 32
FRAME_UCONTEXT = 48
UC_GPRS = 0  # offsets relative to the ucontext pointer
UC_RIP = 128
UC_FLAGS = 136
UC_GSBASE = 144
UC_SIGMASK = 152
UC_XSTATE = 160
UCONTEXT_SIZE = UC_XSTATE + XSAVE_AREA_SIZE
FRAME_SIZE = (FRAME_UCONTEXT + UCONTEXT_SIZE + 15) & ~15

#: x86-64 audit arch value, reported in siginfo.arch.
AUDIT_ARCH_X86_64 = 0xC000003E


def signal_name(sig: int) -> str:
    return SIGNAL_NAMES.get(sig, f"SIG{sig}")


def default_action_ignores(sig: int) -> bool:
    return sig in DEFAULT_IGNORED


class SignalDelivery:
    """Builds and tears down signal frames for a kernel."""

    def __init__(self, kernel):
        self.kernel = kernel

    # ------------------------------------------------------------- sending
    def would_act(self, task: Task, sig: int) -> bool:
        """Whether ``sig`` would currently do anything to ``task``.

        Discarded signals (ignored, or default-ignored like SIGCHLD) never
        interrupt sleeping syscalls — Linux semantics.
        """
        if sig in UNCATCHABLE:
            return True
        action = task.sighand.get(sig)
        if action.handler == SIG_IGN:
            return False
        if action.handler == SIG_DFL and default_action_ignores(sig):
            return False
        return True

    def post(self, task: Task, sig: int, info: dict | None = None) -> None:
        """Queue ``sig`` for ``task`` (asynchronous delivery).

        Signals whose disposition discards them are dropped immediately,
        like the kernel does (a later handler registration does not
        resurrect them).
        """
        if not self.would_act(task, sig):
            return
        task.pending.append(PendingSignal(sig, info or {}))

    def deliver_pending(self, task: Task) -> bool:
        """Deliver one deliverable pending signal, if any.  Returns True if
        a signal was acted upon (frame pushed or task killed)."""
        for idx, pend in enumerate(task.pending):
            if pend.sig in UNCATCHABLE or not task.signal_blocked(pend.sig):
                task.pending.pop(idx)
                return self.deliver_now(task, pend.sig, pend.info)
        return False

    # ------------------------------------------------------------ delivery
    def deliver_now(self, task: Task, sig: int, info: dict | None = None) -> bool:
        """Deliver ``sig`` synchronously to ``task``.

        Returns True if the signal had an effect (handler invoked or task
        terminated); False if it was ignored.
        """
        info = info or {}
        action = task.sighand.get(sig)
        tracer = self.kernel.tracer
        if sig in UNCATCHABLE or action.handler == SIG_DFL:
            if default_action_ignores(sig):
                return False
            if tracer is not None:
                tracer.signal(self.kernel.clock, task.tid, sig, "kill")
            self.kernel.terminate_group(task, signal=sig)
            return True
        if action.handler == SIG_IGN:
            return False
        if tracer is not None:
            tracer.signal(self.kernel.clock, task.tid, sig, "handler")
        self._push_frame(task, sig, action, info)
        return True

    def _push_frame(self, task: Task, sig: int, action, info: dict) -> None:
        kernel = self.kernel
        regs = task.regs
        mem = task.mem
        kernel.charge(task, kernel.costs.signal_delivery)

        frame_base = ((regs.read(4) - 128 - FRAME_SIZE) & ~15)  # rsp, redzone
        restorer = action.restorer or kernel.default_restorer(task)
        mem.write_u64(frame_base + FRAME_RETADDR, restorer, check=None)

        # siginfo
        mem.write_u32(frame_base + SI_SIGNO, sig, check=None)
        mem.write_u32(frame_base + SI_CODE, info.get("code", 0), check=None)
        mem.write_u64(frame_base + SI_ADDR, info.get("addr", 0), check=None)
        mem.write_u32(frame_base + SI_SYSCALL, info.get("syscall", 0), check=None)
        mem.write_u32(frame_base + SI_ARCH, AUDIT_ARCH_X86_64, check=None)
        mem.write_u32(frame_base + SI_ERRNO, info.get("errno", 0), check=None)

        # ucontext: the interrupted machine context
        uc = frame_base + FRAME_UCONTEXT
        for i, value in enumerate(regs.gpr):
            mem.write_u64(uc + UC_GPRS + 8 * i, value, check=None)
        mem.write_u64(uc + UC_RIP, regs.rip, check=None)
        # flags word: zf/lt in the low bits, PKRU in the high 32 (PKRU is
        # xstate on real hardware and travels with the frame).
        flags = (1 if regs.zf else 0) | (2 if regs.lt else 0)
        flags |= (regs.pkru & 0xFFFFFFFF) << 32
        mem.write_u64(uc + UC_FLAGS, flags, check=None)
        mem.write_u64(uc + UC_GSBASE, regs.gs_base, check=None)
        mem.write_u64(uc + UC_SIGMASK, task.sigmask, check=None)
        mem.write(uc + UC_XSTATE, xsave_serialize(regs, XComponent.all()), check=None)

        # switch to the handler
        regs.write(4, frame_base)  # rsp
        regs.write(7, sig)  # rdi
        regs.write(6, frame_base + FRAME_SIGINFO)  # rsi
        regs.write(2, uc)  # rdx
        regs.rip = action.handler

        # block the signal itself during handling (unless SA_NODEFER)
        if not action.flags & SA_NODEFER:
            task.sigmask |= 1 << sig
        task.sigmask |= action.mask

    # ----------------------------------------------------------- sigreturn
    def sigreturn(self, task: Task) -> None:
        """Restore the context saved in the frame the task is returning from.

        Called with ``rsp`` pointing just past the frame's return address
        (the restorer popped it), i.e. at ``frame_base + 8``.
        """
        kernel = self.kernel
        regs = task.regs
        mem = task.mem
        kernel.charge(task, kernel.costs.sigreturn_work)

        frame_base = regs.read(4) - 8  # rsp
        uc = frame_base + FRAME_UCONTEXT
        for i in range(16):
            regs.gpr[i] = mem.read_u64(uc + UC_GPRS + 8 * i, check=None)
        regs.rip = mem.read_u64(uc + UC_RIP, check=None)
        flags = mem.read_u64(uc + UC_FLAGS, check=None)
        regs.zf = bool(flags & 1)
        regs.lt = bool(flags & 2)
        regs.pkru = (flags >> 32) & 0xFFFFFFFF
        mem.active_pkru = regs.pkru
        regs.gs_base = mem.read_u64(uc + UC_GSBASE, check=None)
        task.sigmask = mem.read_u64(uc + UC_SIGMASK, check=None)
        xrstor_apply(regs, mem.read(uc + UC_XSTATE, XSAVE_AREA_SIZE, check=None))
