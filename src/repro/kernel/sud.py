"""Syscall User Dispatch (SUD) state.

Mirrors Linux's ``prctl(PR_SET_SYSCALL_USER_DISPATCH, ...)`` interface
(§II-A, Fig. 1 of the paper): a per-task on/off switch, a user-space selector
byte the kernel reads on every syscall entry, and one allowlisted code
address range whose syscalls are never dispatched regardless of the selector.
"""

from __future__ import annotations

from dataclasses import dataclass

#: prctl option (Linux value).
PR_SET_SYSCALL_USER_DISPATCH = 59

#: prctl arg2 values.
PR_SYS_DISPATCH_OFF = 0
PR_SYS_DISPATCH_ON = 1

#: Selector byte values (Linux: SYSCALL_DISPATCH_FILTER_*).
SELECTOR_ALLOW = 0
SELECTOR_BLOCK = 1


@dataclass
class SudState:
    """Per-task SUD configuration."""

    selector_addr: int  #: user VA of the selector byte (0 = no selector)
    allow_start: int  #: start of the always-allowed code range
    allow_len: int  #: length of the always-allowed code range

    def allows_address(self, addr: int) -> bool:
        """True if a syscall at ``addr`` is exempt from dispatch."""
        return self.allow_start <= addr < self.allow_start + self.allow_len
