"""Blocking-syscall support.

A syscall implementation that cannot complete raises :class:`WouldBlock`
with a ``ready`` predicate.  The kernel parks the task and re-runs the
syscall once the predicate holds (Linux-style syscall restart).  Interposer
code calling back into the kernel uses the same mechanism through
``Kernel.wait_until``, which cooperatively schedules other tasks and, when
everything is idle, lets registered external event sources (client models,
timers) advance simulated time.
"""

from __future__ import annotations

from typing import Callable


class WouldBlock(Exception):
    """Raised by a syscall implementation that must wait.

    ``ready`` returns True once the syscall should be retried.
    ``interruptible`` waits abort with -EINTR when a signal is pending.
    """

    def __init__(self, ready: Callable[[], bool], *, interruptible: bool = True):
        self.ready = ready
        self.interruptible = interruptible
        super().__init__("syscall would block")


class DeadlockError(RuntimeError):
    """All tasks blocked and no external event source can make progress."""


class RingWaiter:
    """One aggregation-ring entry parked kernel-side by an async drain.

    An async ``ring_enter`` (see :mod:`repro.kernel.uring`) that hits a
    blocking SQE does not stall the drain: the entry is captured here and
    appended to ``task.ring_waiters``, and the drain moves on.  The waiter
    completes later — its CQE posts and the guest's published ``cq_tail``
    advances — when :func:`repro.kernel.uring.complete_ring_waiters` finds
    it runnable, either because its ``ready`` predicate fired or because
    the parked slots it links to (``deps``) have all completed.

    Two parked states, distinguished by ``args``:

    * ``args is None`` — *dependency-parked*: the entry has never run
      because a result link targets a slot that is itself parked.  Once
      ``deps`` empties, the entry resolves/gates/dispatches for the first
      time (and may then re-park as predicate-parked).
    * ``args`` set — *predicate-parked*: the dispatch raised
      :class:`WouldBlock`; ``ready`` is that exception's predicate and the
      resolved arguments are kept for the Linux-style restart.

    ``deadline`` (absolute kernel clock, or None) bounds the park: once
    the clock reaches it the entry completes with ``-ETIMEDOUT`` instead
    of waiting forever (set from ``Machine(ring_park_timeout=...)``).
    """

    __slots__ = ("ring", "slot", "index", "sysno", "raw_args", "args",
                 "user_data", "cq_base", "capacity", "ready", "deps",
                 "parked_at", "deadline")

    def __init__(self, *, ring: int, slot: int, index: int, sysno: int,
                 raw_args: tuple, user_data: int, cq_base: int,
                 capacity: int, parked_at: int,
                 args: tuple | None = None,
                 ready: Callable[[], bool] | None = None,
                 deps: set | None = None,
                 deadline: int | None = None):
        self.ring = ring
        self.slot = slot
        self.index = index
        self.sysno = sysno
        self.raw_args = raw_args
        self.args = args
        self.user_data = user_data
        self.cq_base = cq_base
        self.capacity = capacity
        self.ready = ready
        self.deps = deps if deps is not None else set()
        self.parked_at = parked_at
        self.deadline = deadline
