"""Blocking-syscall support.

A syscall implementation that cannot complete raises :class:`WouldBlock`
with a ``ready`` predicate.  The kernel parks the task and re-runs the
syscall once the predicate holds (Linux-style syscall restart).  Interposer
code calling back into the kernel uses the same mechanism through
``Kernel.wait_until``, which cooperatively schedules other tasks and, when
everything is idle, lets registered external event sources (client models,
timers) advance simulated time.
"""

from __future__ import annotations

from typing import Callable


class WouldBlock(Exception):
    """Raised by a syscall implementation that must wait.

    ``ready`` returns True once the syscall should be retried.
    ``interruptible`` waits abort with -EINTR when a signal is pending.
    """

    def __init__(self, ready: Callable[[], bool], *, interruptible: bool = True):
        self.ready = ready
        self.interruptible = interruptible
        super().__init__("syscall would block")


class DeadlockError(RuntimeError):
    """All tasks blocked and no external event source can make progress."""
