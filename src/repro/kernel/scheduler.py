"""Cooperative round-robin scheduler.

One simulated CPU runs all tasks in time slices.  Blocking works two ways:

* a *guest* blocking syscall raises WouldBlock out of the entry path; the
  task is parked with a restart record and retried when its predicate holds,
* *host-side* code (an interposer deep in an hcall) blocks through
  ``Kernel.wait_until``, which calls back into :meth:`run_others_once` —
  re-entrancy is guarded so a task is never stepped while it is already
  live on the (Python) stack.
"""

from __future__ import annotations

from repro.arch.registers import MASK64, RAX
from repro.errors import BreakpointTrap, GuestCrash, InvalidOpcode, PageFault
from repro.kernel.task import Task, TaskState
from repro.kernel.waits import DeadlockError, WouldBlock


class SchedulePolicy:
    """Hook points a scheduling policy may implement (all optional).

    The default scheduler behaviour — fixed quantum, kernel task order, no
    forced preemption — is what you get from this base class.  The fault
    harness (:mod:`repro.faults.explorer`) subclasses it to perturb quanta,
    reorder runnable tasks and force preemption or signal delivery at
    chosen instruction boundaries, all derived from a single seed.
    """

    def quantum_for(self, task: Task, default: int) -> int:
        """Instruction budget for the next slice of ``task``."""
        return default

    def schedule_order(self, tasks: list[Task]) -> list[Task]:
        """Order in which the run loop offers slices this round."""
        return tasks

    def on_boundary(self, kernel, task: Task) -> bool:
        """Called at every instruction boundary before the signal check.

        May post signals (they are deliverable at this very boundary).
        Returning True requests preemption; the scheduler honours it only
        after at least one instruction ran in the slice, so a policy can
        never livelock a task.
        """
        return False

    def record_slice(self, task: Task, executed: int) -> None:
        """One slice of ``task`` finished after ``executed`` instructions."""


class Scheduler:
    def __init__(self, kernel, quantum: int = 64, policy: SchedulePolicy | None = None):
        self.kernel = kernel
        self.quantum = quantum
        self.policy = policy
        self._active: set[int] = set()  # tids currently on the Python stack
        #: Bumped whenever any slice starts.  A slice snapshots the value and
        #: re-stores its task's PKRU if it changed mid-step — i.e. a nested
        #: scheduler invocation (Kernel.wait_until from inside an hcall) ran
        #: another task, which may share this address space.
        self._nest_epoch = 0
        self.total_instructions = 0
        self._last_tid: int | None = None  # for ctx_switch trace events

    # --------------------------------------------------------------- slices
    def _maybe_unblock(self, task: Task) -> None:
        if task.state is not TaskState.BLOCKED:
            return
        if task.blocked_reason is not None and not task.blocked_reason():
            return
        task.state = TaskState.RUNNABLE
        task.blocked_reason = None
        restart = task.in_syscall_restart
        if restart is None:
            return
        task.in_syscall_restart = None
        sysno, args = restart
        try:
            ret = self.kernel.dispatch(task, sysno, args)
        except WouldBlock as block:
            task.state = TaskState.BLOCKED
            task.blocked_reason = block.ready
            task.blocked_interruptible = block.interruptible
            task.in_syscall_restart = (sysno, args)
            return
        if ret is not None:
            task.regs.write(RAX, ret & MASK64)

    def run_task_slice(self, task: Task, quantum: int | None = None) -> int:
        """Run up to ``quantum`` instructions of ``task``; returns how many."""
        kernel = self.kernel
        policy = self.policy
        executed = 0
        if quantum is not None:
            budget = quantum
        elif policy is not None:
            budget = policy.quantum_for(task, self.quantum)
        else:
            budget = self.quantum
        if task.tid in self._active:
            return 0
        self._active.add(task.tid)
        self._nest_epoch += 1
        tracer = kernel.tracer
        if tracer is not None:
            if self._last_tid != task.tid:
                tracer.ctx_switch(kernel.clock, self._last_tid, task.tid)
                self._last_tid = task.tid
            tracer.slice_start(kernel.clock, task.tid)
        # Invariants hoisted out of the per-instruction body: the CPU step
        # and fault handler bindings, and the protection-key rights load
        # (per-thread PKRU) — a slice is the task-switch point, so PKRU is
        # stored once here and re-stored only when a nested scheduler run
        # (_nest_epoch changed) or an execve (task.mem rebound) may have
        # clobbered it.  ``until()`` predicates are only consulted between
        # slices, so insn_count is batched to slice exit as well.
        step = kernel.cpu.step
        handle_fault = kernel.handle_fault
        runnable = TaskState.RUNNABLE
        try:
            mem = task.mem
            mem.active_pkru = task.regs.pkru
            epoch = self._nest_epoch
            for _ in range(budget):
                if not task.alive:
                    break
                if task.state is not runnable:
                    self._maybe_unblock(task)
                    if task.state is not runnable:
                        break
                if policy is not None and policy.on_boundary(kernel, task):
                    if executed:
                        break
                if task.pending and task.has_deliverable_signal():
                    kernel.signals.deliver_pending(task)
                    if not task.alive:
                        break
                if task.mem is not mem or self._nest_epoch != epoch:
                    mem = task.mem
                    epoch = self._nest_epoch
                    mem.active_pkru = task.regs.pkru
                addr = task.regs.rip
                try:
                    step(task)
                except (PageFault, InvalidOpcode, BreakpointTrap) as exc:
                    handle_fault(task, exc, addr)
                executed += 1
                if self._nest_epoch != epoch:
                    epoch = self._nest_epoch
                    if task.mem is mem:
                        mem.active_pkru = task.regs.pkru
        finally:
            self._active.discard(task.tid)
        task.insn_count += executed
        self.total_instructions += executed
        if tracer is not None:
            tracer.slice_end(kernel.clock, task.tid, executed)
        if policy is not None:
            policy.record_slice(task, executed)
        return executed

    # ------------------------------------------------------------- main loop
    def run(
        self,
        *,
        max_instructions: int | None = None,
        until=None,
        raise_on_deadlock: bool = True,
    ) -> None:
        """Run until all tasks exit, ``until()`` is true, or the budget ends."""
        kernel = self.kernel
        start = self.total_instructions
        while True:
            if until is not None and until():
                return
            # live_tasks() is maintained on state transitions — no rescan of
            # the full task table (which keeps zombies for wait4) per round.
            round_tasks = kernel.live_tasks()
            if not round_tasks:
                return
            if (
                max_instructions is not None
                and self.total_instructions - start >= max_instructions
            ):
                return
            progress = 0
            if self.policy is not None:
                round_tasks = self.policy.schedule_order(round_tasks)
            for task in round_tasks:
                if not task.alive or task.tid in self._active:
                    continue
                progress += self.run_task_slice(task)
                if until is not None and until():
                    return
            kernel.fire_due_events()
            if progress == 0:
                if kernel.advance_time():
                    continue
                # No instruction ran and no event is pending.
                still_live = kernel.live_tasks()
                if not still_live:
                    return
                if raise_on_deadlock:
                    raise DeadlockError(
                        "all tasks blocked with no pending events: "
                        + ", ".join(repr(t) for t in still_live)
                    )
                return

    def run_others_once(self, current: Task) -> bool:
        """One scheduling pass over every task except ``current``.

        Used by Kernel.wait_until while ``current`` is blocked inside
        host-side interposer code.  Returns True if any instruction ran.
        """
        progress = 0
        others = self.kernel.live_tasks()
        if self.policy is not None:
            others = self.policy.schedule_order(others)
        for task in others:
            if task is current or not task.alive or task.tid in self._active:
                continue
            progress += self.run_task_slice(task)
        return progress > 0


def run_to_exit(machine, process, max_instructions: int = 10_000_000) -> int:
    """Convenience: run until ``process`` exits; returns its exit code."""
    machine.run(
        until=lambda: not process.task.alive, max_instructions=max_instructions
    )
    if process.task.alive:
        raise GuestCrash(
            f"process {process.task.comm!r} did not exit within "
            f"{max_instructions} instructions"
        )
    return process.exit_code
