"""Cooperative round-robin scheduler, single- or multi-core.

With one core (the default) a single simulated CPU runs all tasks in time
slices.  Blocking works two ways:

* a *guest* blocking syscall raises WouldBlock out of the entry path; the
  task is parked with a restart record and retried when its predicate holds,
* *host-side* code (an interposer deep in an hcall) blocks through
  ``Kernel.wait_until``, which calls back into :meth:`run_others_once` —
  re-entrancy is guarded so a task is never stepped while it is already
  live on the (Python) stack.

With ``cores > 1`` the scheduler becomes a deterministic SMP simulator:
each :class:`repro.kernel.smp.Core` keeps its own clock, runqueue and
private decoded-insn caches, and rounds interleave the cores in an order
drawn from a seeded RNG.  Slices still execute one at a time in host order
(so every existing kernel invariant holds), but each slice runs on its
core's *local* timeline: the kernel's global ``clock`` attribute is swapped
to the core's clock for the duration of the slice and harvested back at the
end.  Elapsed machine time is the *frontier* — the maximum core clock — so
work spread over N cores genuinely takes ~1/N the simulated time.  The
single-core code path is bit-for-bit the one that ran before SMP existed:
``Machine(cores=1)`` is cycle-identical by construction.
"""

from __future__ import annotations

import heapq
import random

from repro.arch.registers import MASK64, RAX
from repro.cpu.superblock import HOT_THRESHOLD as _HOT
from repro.cpu.superblock import BlockCache
from repro.errors import BreakpointTrap, GuestCrash, InvalidOpcode, PageFault
from repro.kernel.smp import Core
from repro.kernel.task import Task, TaskState
from repro.kernel.waits import DeadlockError, WouldBlock


class SchedulePolicy:
    """Hook points a scheduling policy may implement (all optional).

    The default scheduler behaviour — fixed quantum, kernel task order, no
    forced preemption — is what you get from this base class.  The fault
    harness (:mod:`repro.faults.explorer`) subclasses it to perturb quanta,
    reorder runnable tasks and force preemption or signal delivery at
    chosen instruction boundaries, all derived from a single seed.
    """

    def quantum_for(self, task: Task, default: int) -> int:
        """Instruction budget for the next slice of ``task``."""
        return default

    def schedule_order(self, tasks: list[Task]) -> list[Task]:
        """Order in which the run loop offers slices this round."""
        return tasks

    def on_boundary(self, kernel, task: Task) -> bool:
        """Called at every instruction boundary before the signal check.

        May post signals (they are deliverable at this very boundary).
        Returning True requests preemption; the scheduler honours it only
        after at least one instruction ran in the slice, so a policy can
        never livelock a task.
        """
        return False

    def record_slice(self, task: Task, executed: int) -> None:
        """One slice of ``task`` finished after ``executed`` instructions."""


class Scheduler:
    def __init__(
        self,
        kernel,
        quantum: int = 64,
        policy: SchedulePolicy | None = None,
        *,
        cores: int = 1,
        smp_seed: int = 0,
    ):
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.kernel = kernel
        self.quantum = quantum
        self.policy = policy
        self._active: set[int] = set()  # tids currently on the Python stack
        #: Bumped whenever any slice starts.  A slice snapshots the value and
        #: re-stores its task's PKRU if it changed mid-step — i.e. a nested
        #: scheduler invocation (Kernel.wait_until from inside an hcall) ran
        #: another task, which may share this address space.
        self._nest_epoch = 0
        self.total_instructions = 0
        self._last_tid: int | None = None  # for ctx_switch trace events
        #: SMP state.  ``cores == 1`` keeps the legacy single-core run loop
        #: (``self.smp`` False); core 0 then only collects busy-cycle stats.
        self.cores = [Core(i) for i in range(cores)]
        self.smp = cores > 1
        self.smp_seed = smp_seed
        self._rng = random.Random(smp_seed)
        self._current_core = self.cores[0]
        #: Total cross-core shootdown IPIs sent (see :meth:`_shootdown`).
        self.shootdowns = 0

    # --------------------------------------------------------------- slices
    def _maybe_unblock(self, task: Task) -> None:
        if task.state is not TaskState.BLOCKED:
            return
        if task.blocked_reason is not None and not task.blocked_reason():
            return
        task.state = TaskState.RUNNABLE
        task.blocked_reason = None
        restart = task.in_syscall_restart
        if restart is None:
            return
        task.in_syscall_restart = None
        sysno, args = restart
        try:
            ret = self.kernel.dispatch(task, sysno, args)
        except WouldBlock as block:
            task.state = TaskState.BLOCKED
            task.blocked_reason = block.ready
            task.blocked_interruptible = block.interruptible
            task.in_syscall_restart = (sysno, args)
            return
        if ret is not None:
            task.regs.write(RAX, ret & MASK64)

    def run_task_slice(self, task: Task, quantum: int | None = None) -> int:
        """Run up to ``quantum`` instructions of ``task``; returns how many."""
        kernel = self.kernel
        policy = self.policy
        executed = 0
        if quantum is not None:
            budget = quantum
        elif policy is not None:
            budget = policy.quantum_for(task, self.quantum)
        else:
            budget = self.quantum
        if task.tid in self._active:
            return 0
        if task.ring_waiters:
            # Slice boundaries are the async ring's scheduler-side safe
            # point: post completions for parked entries whose wakeups
            # fired, so a guest polling cq_tail observes them without
            # another crossing.
            kernel.complete_ring_waiters(task)
            if not task.alive:
                return 0
        self._active.add(task.tid)
        self._nest_epoch += 1
        tracer = kernel.tracer
        if tracer is not None:
            if self._last_tid != task.tid:
                tracer.ctx_switch(kernel.clock, self._last_tid, task.tid)
                self._last_tid = task.tid
            tracer.slice_start(kernel.clock, task.tid)
        # Invariants hoisted out of the per-instruction body: the CPU step
        # and fault handler bindings, and the protection-key rights load
        # (per-thread PKRU) — a slice is the task-switch point, so PKRU is
        # stored once here and re-stored only when a nested scheduler run
        # (_nest_epoch changed) or an execve (task.mem rebound) may have
        # clobbered it.  ``until()`` predicates are only consulted between
        # slices, so insn_count is batched to slice exit as well.
        cpu = kernel.cpu
        step = cpu.step
        handle_fault = kernel.handle_fault
        runnable = TaskState.RUNNABLE
        core = self._current_core
        core._depth += 1
        slice_t0 = kernel.clock
        hooks = cpu.hooks
        # Tier-2 dispatch is only sound when nothing can observe or change
        # state at interior instruction boundaries: a schedule policy may
        # preempt or post signals anywhere, and CPU hooks (ptrace) see
        # every instruction — both force pure single-stepping.  Blocks
        # contain no syscalls/hcalls, so with tier on, every signal
        # delivery point, boundary check and quantum edge that the
        # single-step loop would hit still lands on the same instruction.
        tier = cpu.superblocks and policy is None and not hooks
        blocks = heads = gens = None
        try:
            mem = task.mem
            mem.active_pkru = task.regs.pkru
            epoch = self._nest_epoch
            if tier:
                bcache = self._tier_state(cpu, mem)
                blocks = bcache.blocks
                heads = bcache.heads
                gens = mem.exec_gen
            while executed < budget:
                if not task.alive:
                    break
                if task.state is not runnable:
                    self._maybe_unblock(task)
                    if task.state is not runnable:
                        break
                if policy is not None and policy.on_boundary(kernel, task):
                    if executed:
                        break
                if task.pending and task.has_deliverable_signal():
                    kernel.signals.deliver_pending(task)
                    if not task.alive:
                        break
                if task.mem is not mem or self._nest_epoch != epoch:
                    mem = task.mem
                    epoch = self._nest_epoch
                    mem.active_pkru = task.regs.pkru
                    if self.smp:
                        # A nested slice (or an execve) may have pointed
                        # this address space's live decode cache at another
                        # core's private copy; re-bind ours.
                        self._bind_core(core, mem)
                    tier = cpu.superblocks and policy is None and not hooks
                    if tier:
                        bcache = self._tier_state(cpu, mem)
                        blocks = bcache.blocks
                        heads = bcache.heads
                        gens = mem.exec_gen
                addr = task.regs.rip
                if tier:
                    b = blocks.get(addr)
                    if b is None:
                        if executed == 0:
                            # Quantum cuts land mid-run, so slice entry
                            # points recur without ever being a taken
                            # branch target; count them as head
                            # candidates too (once per slice — cheap).
                            c = heads.get(addr, 0) + 1
                            if c >= _HOT:
                                heads.pop(addr, None)
                                cpu.compile_superblock(mem, addr, task.tid)
                            else:
                                heads[addr] = c
                    else:
                        fn = b.fn
                        if (gens.get(b.p0, 0) != b.g0
                                or gens.get(b.p1, 0) != b.g1):
                            # Missed by the eager flush (e.g. invalidated
                            # while bound to another core's cache).
                            del blocks[addr]
                            if fn is not None:
                                cpu.note_block_invalidate(addr, task.tid)
                        elif fn is not None and b.n <= budget - executed:
                            # Chain compiled blocks back-to-back.  This
                            # skips the boundary checks above *between*
                            # blocks, which is sound because a block runs
                            # no syscalls/hcalls: nothing inside a chain
                            # can change liveness, pending signals or the
                            # address-space binding — only a fault can,
                            # and it breaks the chain.
                            charge = kernel.charge
                            while True:
                                try:
                                    n = fn(task, charge)
                                except (PageFault, InvalidOpcode,
                                        BreakpointTrap) as exc:
                                    executed += task.sb_fault
                                    b.runs += 1
                                    handle_fault(task, exc, task.regs.rip)
                                    break
                                executed += n
                                b.runs += 1
                                # Hotness: block exits chain into heads.
                                nrip = task.regs.rip
                                nb = blocks.get(nrip)
                                if nb is None:
                                    c = heads.get(nrip, 0) + 1
                                    if c >= _HOT:
                                        heads.pop(nrip, None)
                                        cpu.compile_superblock(
                                            mem, nrip, task.tid)
                                    else:
                                        heads[nrip] = c
                                    break
                                fn = nb.fn
                                if (fn is None
                                        or nb.n > budget - executed):
                                    break
                                if (gens.get(nb.p0, 0) != nb.g0
                                        or gens.get(nb.p1, 0) != nb.g1):
                                    del blocks[nrip]
                                    cpu.note_block_invalidate(
                                        nrip, task.tid)
                                    break
                                b = nb
                            # Blocks never nest a scheduler run (no
                            # syscalls/hcalls inside), so the post-step
                            # epoch recheck below cannot fire; skip it.
                            continue
                        elif fn is not None:
                            # The block overruns the remaining budget.
                            # Run a *tail* variant truncated to exactly
                            # the leftover — same instructions, costs and
                            # fault behaviour as that many single steps,
                            # without the per-instruction boundary
                            # protocol (sound for the same reason the
                            # chain above is: no syscalls/hcalls inside).
                            rem = budget - executed
                            if rem >= 1:
                                key = (addr, rem)
                                tb = blocks.get(key)
                                if tb is not None and (
                                        gens.get(tb.p0, 0) != tb.g0
                                        or gens.get(tb.p1, 0) != tb.g1):
                                    del blocks[key]
                                    if tb.fn is not None:
                                        cpu.note_block_invalidate(
                                            addr, task.tid)
                                    tb = None
                                if tb is None:
                                    tb = cpu.compile_superblock(
                                        mem, addr, task.tid, max_len=rem)
                                tfn = tb.fn
                                if tfn is not None:
                                    try:
                                        n = tfn(task, kernel.charge)
                                    except (PageFault, InvalidOpcode,
                                            BreakpointTrap) as exc:
                                        executed += task.sb_fault
                                        tb.runs += 1
                                        handle_fault(
                                            task, exc, task.regs.rip)
                                    else:
                                        executed += n
                                        tb.runs += 1
                                    continue
                try:
                    insn = step(task)
                except (PageFault, InvalidOpcode, BreakpointTrap) as exc:
                    handle_fault(task, exc, addr)
                    insn = None
                executed += 1
                if tier and insn is not None:
                    # Count taken control transfers as candidate block
                    # heads; straight-line fallthrough is covered by the
                    # run that eventually compiles across it.
                    nrip = task.regs.rip
                    if nrip != addr + insn.length and nrip not in blocks:
                        c = heads.get(nrip, 0) + 1
                        if c >= _HOT:
                            heads.pop(nrip, None)
                            cpu.compile_superblock(mem, nrip, task.tid)
                        else:
                            heads[nrip] = c
                if self._nest_epoch != epoch:
                    epoch = self._nest_epoch
                    if task.mem is mem:
                        mem.active_pkru = task.regs.pkru
                    if self.smp:
                        self._bind_core(core, task.mem)
                    tier = cpu.superblocks and policy is None and not hooks
                    if tier and task.mem is not None:
                        bcache = self._tier_state(cpu, task.mem)
                        blocks = bcache.blocks
                        heads = bcache.heads
                        gens = task.mem.exec_gen
        finally:
            self._active.discard(task.tid)
            core._depth -= 1
            if core._depth == 0:
                # Outermost frame on this core: everything charged during
                # the slice (including nested same-core work, which lands
                # on the same timeline) counts as busy time.
                core.busy_cycles += kernel.clock - slice_t0
        task.insn_count += executed
        self.total_instructions += executed
        if tracer is not None:
            tracer.slice_end(kernel.clock, task.tid, executed)
        if policy is not None:
            policy.record_slice(task, executed)
        return executed

    # ------------------------------------------------------------- main loop
    def run(
        self,
        *,
        max_instructions: int | None = None,
        until=None,
        raise_on_deadlock: bool = True,
    ) -> None:
        """Run until all tasks exit, ``until()`` is true, or the budget ends."""
        if self.smp:
            return self._run_smp(
                max_instructions=max_instructions,
                until=until,
                raise_on_deadlock=raise_on_deadlock,
            )
        kernel = self.kernel
        start = self.total_instructions
        while True:
            if until is not None and until():
                return
            # live_tasks() is maintained on state transitions — no rescan of
            # the full task table (which keeps zombies for wait4) per round.
            round_tasks = kernel.live_tasks()
            if not round_tasks:
                return
            if (
                max_instructions is not None
                and self.total_instructions - start >= max_instructions
            ):
                return
            progress = 0
            if self.policy is not None:
                round_tasks = self.policy.schedule_order(round_tasks)
            for task in round_tasks:
                if not task.alive or task.tid in self._active:
                    continue
                progress += self.run_task_slice(task)
                if until is not None and until():
                    return
            kernel.fire_due_events()
            if progress == 0:
                if kernel.advance_time():
                    continue
                # No instruction ran and no event is pending.
                still_live = kernel.live_tasks()
                if not still_live:
                    return
                if raise_on_deadlock:
                    raise DeadlockError(
                        "all tasks blocked with no pending events: "
                        + ", ".join(repr(t) for t in still_live)
                    )
                return

    def run_others_once(self, current: Task) -> bool:
        """One scheduling pass over every task except ``current``.

        Used by Kernel.wait_until while ``current`` is blocked inside
        host-side interposer code.  Returns True if any instruction ran.
        """
        if self.smp:
            progress, _ = self._smp_round(exclude=current)
            return progress > 0
        progress = 0
        others = self.kernel.live_tasks()
        if self.policy is not None:
            others = self.policy.schedule_order(others)
        for task in others:
            if task is current or not task.alive or task.tid in self._active:
                continue
            progress += self.run_task_slice(task)
        return progress > 0

    # ---------------------------------------------------------------- SMP
    def frontier(self) -> int:
        """Machine-wide elapsed cycles: the maximum over all core clocks."""
        f = self.kernel.clock
        for core in self.cores:
            if core.clock > f:
                f = core.clock
        return f

    def on_task_created(self, task: Task) -> None:
        """Home a new task: least-loaded core, never before 'now'."""
        task.wake_clock = self.kernel.clock
        if not self.smp:
            return
        core = min(self.cores, key=lambda c: (len(c.runqueue), c.id))
        task.core_id = core.id
        core.runqueue.append(task)

    def _bind_core(self, core: Core, mem) -> None:
        """Point ``mem``'s live decode cache at ``core``'s private copy.

        The CPU hot path reads ``mem.insn_cache`` per instruction; swapping
        the dict at slice granularity gives each core a private translation
        cache with zero per-instruction overhead.  The first bind also arms
        the cross-core shootdown hook on this address space.  The tier-2
        superblock cache swaps alongside, so compiled blocks are per-core
        too and remote rewrites can shoot down exactly the stale ones.
        """
        cache = core.caches.get(mem.asid)
        if cache is None:
            cache = core.caches[mem.asid] = {}
        mem.insn_cache = cache
        bc = core.block_caches.get(mem.asid)
        if bc is None:
            bc = core.block_caches[mem.asid] = BlockCache()
        mem.block_cache = bc
        if mem.smp_shootdown is None:
            mem.smp_shootdown = self._shootdown

    # ------------------------------------------------------------- tier 2
    def _tier_state(self, cpu, mem):
        """Per-slice superblock bookkeeping for ``mem``'s bound cache.

        Drops the cache wholesale if the CPU's cost tables were rebuilt
        since it was filled (blocks bake costs in), and arms the flush
        hook so eager invalidations surface as ``block_invalidate``
        events.  Runs at slice granularity — never per instruction.
        """
        bcache = mem.block_cache
        if bcache.cost_epoch != cpu.cost_epoch:
            bcache.reset(cpu.cost_epoch)
        if mem.block_flush_hook is None:
            mem.block_flush_hook = self._block_flush
        return bcache

    def _block_flush(self, mem, pn: int, dropped: list) -> None:
        """Eager flush callback: blocks spanning page ``pn`` were dropped."""
        cpu = self.kernel.cpu
        for head in dropped:
            if type(head) is tuple:  # tail-variant key -> report the head
                head = head[0]
            cpu.note_block_invalidate(head, -1, "smc")

    def superblock_stats(self) -> dict:
        """Aggregate tier-2 counters across every live block cache."""
        cpu = self.kernel.cpu
        caches = []
        seen = set()
        for task in self.kernel.tasks.values():
            mem = task.mem
            if mem is not None and id(mem.block_cache) not in seen:
                seen.add(id(mem.block_cache))
                caches.append(mem.block_cache)
        for core in self.cores:
            for bc in core.block_caches.values():
                if id(bc) not in seen:
                    seen.add(id(bc))
                    caches.append(bc)
        live_blocks = runs = insns = 0
        for bc in caches:
            for b in bc.blocks.values():
                if b.fn is not None:
                    live_blocks += 1
                    runs += b.runs
                    insns += b.runs * b.n
        return {
            "enabled": cpu.superblocks,
            "compiled": cpu.blocks_compiled,
            "invalidated": cpu.blocks_invalidated,
            "live_blocks": live_blocks,
            "block_runs": runs,
            "block_insns": insns,
            "block_shootdowns": sum(
                c.block_shootdowns for c in self.cores
            ),
        }

    def _shootdown(self, mem, pn: int) -> None:
        """A code patch invalidated page ``pn``: flush remote caches.

        Every *other* core holding decodes of ``pn`` drops them and costs
        the writer one IPI round-trip — the cross-core analogue of the
        icache/TLB flush that makes lazypoline's in-place rewrite (§IV-A b)
        expensive but safe on real SMP hardware.
        """
        cur = self._current_core
        asid = mem.asid
        kernel = self.kernel
        cpu = kernel.cpu
        ipi = kernel.costs.smp_shootdown_ipi
        for core in self.cores:
            if core is cur:
                continue
            # Remote superblocks spanning the page ride the same flush —
            # never a separate IPI charge, so simulated cycles stay
            # bit-identical to a machine with tiering off.
            bc = core.block_caches.get(asid)
            if bc is not None and bc.blocks:
                victims = bc.index.pop(pn, None)
                if victims:
                    blocks = bc.blocks
                    for head in victims:
                        b = blocks.pop(head, None)
                        if b is not None and b.fn is not None:
                            core.block_shootdowns += 1
                            if type(head) is tuple:
                                head = head[0]
                            cpu.note_block_invalidate(head, -1, "shootdown")
            cache = core.caches.get(asid)
            if not cache:
                continue
            stale = [
                addr for addr, entry in cache.items()
                if entry[3] == pn or entry[5] == pn
            ]
            if stale:
                for addr in stale:
                    del cache[addr]
                core.shootdowns += 1
                self.shootdowns += 1
                kernel.charge(None, ipi)

    def _slice_on(self, core: Core, task: Task) -> int:
        """Run one slice of ``task`` on ``core``'s local timeline.

        The global ``kernel.clock`` is the *running* clock: it is swapped
        to the core's clock for the slice and harvested back afterwards, so
        every charge inside (instructions, hcalls, re-issued syscalls)
        lands on this core without any hot-path indirection.  When slices
        nest on the *same* core (``Kernel.wait_until`` timesharing), the
        checkpoint and the harvest alias the same ``Core`` object, which
        serialises the nested work into the waiter's timeline — exactly
        what one physical core would do.
        """
        kernel = self.kernel
        prev = self._current_core
        if prev._depth:
            prev.clock = kernel.clock  # checkpoint the interrupted slice
        self._current_core = core
        if core.clock < task.wake_clock:
            core.clock = task.wake_clock
        kernel.clock = core.clock
        self._bind_core(core, task.mem)
        tracer = kernel.tracer
        if tracer is not None:
            tracer.current_core = core.id
        try:
            return self.run_task_slice(task)
        finally:
            core.clock = kernel.clock
            core.slices += 1
            self._current_core = prev
            kernel.clock = prev.clock
            if tracer is not None:
                tracer.current_core = prev.id

    @staticmethod
    def _has_runnable(tasks: list[Task], exclude: Task | None) -> bool:
        return any(
            t.state is TaskState.RUNNABLE and t is not exclude for t in tasks
        )

    def _steal_for(self, core: Core, exclude: Task | None) -> Task | None:
        """Idle-steal: migrate one runnable task from the busiest core.

        Only donors that would keep at least one runnable task are eligible
        (stealing a busy core's only work just moves the imbalance).  The
        thief pays the migration cost; the task's registers, SUD selector
        and ``%gs`` region travel with it — they are per-task state.
        """
        best_donor = None
        best_tasks: list[Task] = []
        for donor in self.cores:
            if donor is core:
                continue
            runnable = [
                t for t in donor.runqueue
                if t.alive and t.state is TaskState.RUNNABLE
                and t.tid not in self._active and t is not exclude
            ]
            if len(runnable) > max(len(best_tasks), 1):
                best_donor, best_tasks = donor, runnable
        if best_donor is None:
            return None
        task = best_tasks[0]  # FIFO steal: the longest-waiting runnable
        best_donor.runqueue.remove(task)
        core.runqueue.append(task)
        task.core_id = core.id
        core.steals += 1
        core.clock += self.kernel.costs.smp_steal_cost
        return task

    def _smp_round(
        self, *, until=None, exclude: Task | None = None
    ) -> tuple[int, bool]:
        """One SMP scheduling round; returns (instructions run, stop?).

        Cores are visited in a seeded random order; each offers one slice
        to every task in its runqueue (blocked tasks get their unblock
        check, as in the single-core loop).  A core with no runnable task
        first tries to steal one.  At the end, cores that did no work are
        pulled forward to the slowest busy core's clock — bounded by the
        next timer event so sleepers still wake exactly on time — because
        an idle core's time passes even though it retires nothing.
        """
        progress = 0
        cores = self.cores
        order = self._rng.sample(cores, len(cores))
        ran: list[Core] = []
        for core in order:
            tasks = core.alive_tasks()
            if not self._has_runnable(tasks, exclude):
                stolen = self._steal_for(core, exclude)
                if stolen is not None:
                    tasks.append(stolen)
            if self.policy is not None and len(tasks) > 1:
                tasks = self.policy.schedule_order(tasks)
            core_ran = 0
            for task in tasks:
                if (
                    task is exclude
                    or not task.alive
                    or task.tid in self._active
                ):
                    continue
                core_ran += self._slice_on(core, task)
                if until is not None and until():
                    return progress + core_ran, True
            if core_ran:
                progress += core_ran
                ran.append(core)
        if ran and len(ran) < len(cores):
            target = min(core.clock for core in ran)
            next_event = self.kernel.next_event_time()
            if next_event is not None and next_event < target:
                target = next_event
            for core in cores:
                if core not in ran and core._depth == 0 and core.clock < target:
                    core.clock = target
        return progress, False

    def _advance_time_smp(self) -> bool:
        """All cores idle: jump every clock to the next event and fire it."""
        kernel = self.kernel
        if not kernel._events:
            return False
        at, _seq, callback = heapq.heappop(kernel._events)
        for core in self.cores:
            if core.clock < at:
                core.clock = at
        if kernel.clock < at:
            kernel.clock = at
        callback()
        return True

    def _run_smp(
        self,
        *,
        max_instructions: int | None = None,
        until=None,
        raise_on_deadlock: bool = True,
    ) -> None:
        """The SMP analogue of :meth:`run`, round-by-round over all cores."""
        kernel = self.kernel
        start = self.total_instructions
        while True:
            if until is not None and until():
                return
            if not kernel.live_tasks():
                return
            if (
                max_instructions is not None
                and self.total_instructions - start >= max_instructions
            ):
                return
            progress, stopped = self._smp_round(until=until)
            if stopped:
                return
            # Events are machine-global; fire them against the frontier.
            # (kernel.clock is scratch between slices — the next slice
            # re-swaps it to its core's local clock.)
            kernel.clock = self.frontier()
            kernel.fire_due_events()
            if progress == 0:
                if self._advance_time_smp():
                    continue
                still_live = kernel.live_tasks()
                if not still_live:
                    return
                if raise_on_deadlock:
                    raise DeadlockError(
                        "all tasks blocked with no pending events: "
                        + ", ".join(repr(t) for t in still_live)
                    )
                return


def run_to_exit(machine, process, max_instructions: int = 10_000_000) -> int:
    """Convenience: run until ``process`` exits; returns its exit code."""
    machine.run(
        until=lambda: not process.task.alive, max_instructions=max_instructions
    )
    if process.task.alive:
        raise GuestCrash(
            f"process {process.task.comm!r} did not exit within "
            f"{max_instructions} instructions"
        )
    return process.exit_code
