"""io_uring-style syscall aggregation: one crossing, many syscalls.

The paper minimizes the *per-syscall* cost of interposition; *AnyCall*
attacks the complementary axis — amortize many syscalls over a single
kernel crossing.  This module implements that lever for the simulated
kernel: a submission/completion ring living entirely in guest memory.
A guest writes N syscall entries into the SQ ring, then issues **one**
``ring_enter`` syscall; the kernel drains the SQ, executing each entry
through the normal dispatch machinery, and posts results to the CQ ring.

Ring memory layout (all fields u64, little-endian, in guest memory)::

    header (64 bytes):
      +0   sq_head   kernel-advanced: index of the next unconsumed SQE
      +8   sq_tail   guest-advanced: one past the last submitted SQE
      +16  cq_head   guest-advanced consumption cursor (kernel ignores it)
      +24  cq_tail   kernel-advanced: one past the last posted CQE
      +32  sq_capacity
      +40  cq_capacity   (must equal sq_capacity)
      +48.. reserved
    sqes: sq_capacity x 64 bytes   {sysno, arg0..arg5, user_data}
    cqes: sq_capacity x 16 bytes   {res, user_data}

Indices advance monotonically; the slot for index ``i`` is
``i % capacity``.  CQEs are *slot-correlated*: the completion for the SQE
at slot ``j`` lands at CQ slot ``j``, which is what makes result links
(below) resolvable without a search.

Semantics, entry by entry:

* each entry pays :attr:`CostModel.uring_per_entry` plus its own service
  cost, runs every armed **seccomp filter** (the interception gate with
  ``sud=False`` — ring entries never cross via a syscall instruction, so
  the SUD selector read and ptrace stops are skipped: that is the
  amortization), and passes through the **fault injector** and the obs
  dispatch event like any other syscall;
* only :data:`RINGABLE` syscalls may ride the ring (I/O and cheap
  getters); anything else completes with ``-EINVAL``.  Process-control
  syscalls (fork/execve/ring_enter itself) are structurally excluded;
* an argument of the form :func:`ring_result`\\ ``(j)`` is substituted
  with the result already posted at CQ slot ``j`` — io_uring's linked
  SQEs, flattened.  If that result is negative the entry completes with
  ``-ECANCELED``;
* a **blocking** entry parks cooperatively exactly like an
  interposer-issued syscall (:meth:`Kernel.dispatch_blocking`); if a
  signal interrupts it, the entry completes with ``-EINTR``;
* a deliverable **signal** stops the drain after the current entry: the
  kernel publishes ``sq_head``/``cq_tail`` for everything completed (a
  partial CQ), returns the completed count, and the remainder stays in
  the SQ — re-entering after the handler resumes exactly where the drain
  stopped, so no wakeup is ever lost.  The first entry of a drain always
  executes, guaranteeing forward progress even under a signal storm;
* a seccomp ``RET_TRAP`` on an entry delivers SIGSYS as usual but
  completes the entry with ``-EINTR`` so the drain (and the guest's
  re-enter loop) cannot spin on a trapping entry.

``ring_enter(ring_addr, to_submit, 0, 0)`` returns the number of entries
completed this call (0 if the SQ was empty), or ``-EINVAL``/``-EFAULT``
for a malformed/unmapped ring.

Interposition tools see a *single* ``ring_enter`` crossing — one SUD
selector read, one sled transit, one rewrite, one ptrace stop pair — no
matter how many entries it drains.  Per-entry attribution is preserved in
the obs stream: the tracer gets one ``ring_enter`` event per crossing and
one ``ring_entry`` event per drained entry (plus the usual ``syscall``
dispatch events).
"""

from __future__ import annotations

from repro.arch.registers import MASK64, to_signed
from repro.errors import PageFault
from repro.kernel import errno
from repro.kernel.syscalls.table import NR, syscall, syscall_name

# ------------------------------------------------------------------ layout
HDR_SQ_HEAD = 0
HDR_SQ_TAIL = 8
HDR_CQ_HEAD = 16
HDR_CQ_TAIL = 24
HDR_SQ_CAP = 32
HDR_CQ_CAP = 40
HEADER_SIZE = 64
SQE_SIZE = 64
CQE_SIZE = 16
SQE_SYSNO = 0
SQE_ARGS = 8
SQE_USER_DATA = 56
CQE_RES = 0
CQE_USER_DATA = 8

#: Largest accepted ring capacity (entries).
MAX_ENTRIES = 1024


def ring_size(entries: int) -> int:
    """Bytes of guest memory a ring with ``entries`` slots occupies."""
    return HEADER_SIZE + entries * (SQE_SIZE + CQE_SIZE)


def sqe_offset(slot: int) -> int:
    return HEADER_SIZE + slot * SQE_SIZE


def cqe_offset(capacity: int, slot: int) -> int:
    return HEADER_SIZE + capacity * SQE_SIZE + slot * CQE_SIZE


# ------------------------------------------------------------- result links
#: Tag in the top 16 bits marking an SQE argument as "the result of CQ
#: slot j".  Real pointers live in the canonical lower half of the address
#: space, so the tag can never collide with a legitimate argument the
#: RINGABLE syscalls accept.
RESULT_TAG = 0xF1C0
_RESULT_SHIFT = 48


def ring_result(slot: int) -> int:
    """SQE argument placeholder: substitute the result posted at CQ ``slot``."""
    if not 0 <= slot < MAX_ENTRIES:
        raise ValueError(f"ring_result slot {slot} out of range")
    return (RESULT_TAG << _RESULT_SHIFT) | slot


def is_result_link(value: int) -> bool:
    return (value >> _RESULT_SHIFT) == RESULT_TAG and \
        (value & ((1 << _RESULT_SHIFT) - 1)) < MAX_ENTRIES


# ---------------------------------------------------------------- allowlist
#: Syscalls allowed to ride the ring: file/socket I/O plus cheap getters.
#: Process control (fork/clone/execve/exit), signal-frame machinery
#: (rt_sigreturn), address-space surgery, blocking multiplexers with
#: their own wait semantics (epoll_wait/wait4/futex), and ``ring_enter``
#: itself are excluded — entries completing with -EINVAL.
RINGABLE_NAMES = (
    "read", "write", "pread64", "pwrite64", "readv", "writev",
    "open", "openat", "close", "stat", "fstat", "lseek", "access",
    "getdents64", "dup", "rename", "mkdir", "rmdir", "unlink", "chmod",
    "sendfile", "socket", "connect", "accept", "accept4", "bind",
    "listen", "setsockopt", "shutdown", "epoll_create1", "epoll_ctl",
    "getpid", "gettid", "getppid", "getuid", "getcwd", "uname",
    "sched_yield", "nanosleep", "time", "clock_gettime", "getrandom",
)
RINGABLE = frozenset(NR[name] for name in RINGABLE_NAMES)


# ------------------------------------------------------------------- drain
def _resolve_args(mem, cq_base: int, capacity: int, raw_args) -> tuple | int:
    """Substitute result links; -ECANCELED if a linked result is negative."""
    resolved = []
    for value in raw_args:
        if is_result_link(value):
            slot = value & ((1 << _RESULT_SHIFT) - 1)
            if slot >= capacity:
                return -errno.EINVAL
            prev = to_signed(mem.read_u64(cq_base + slot * CQE_SIZE,
                                          check="read"))
            if prev < 0:
                return -errno.ECANCELED
            resolved.append(prev & MASK64)
        else:
            resolved.append(value)
    return tuple(resolved)


def _execute_entry(kernel, task, sysno: int, raw_args, cq_base: int,
                   capacity: int) -> int:
    """Run one SQE through gate + dispatch; always returns a result."""
    if sysno not in RINGABLE:
        return -errno.EINVAL
    args = _resolve_args(task.mem, cq_base, capacity, raw_args)
    if isinstance(args, int):
        return args
    gate = kernel._interception_gate(task, sysno, args, insn_addr=0,
                                     sud=False)
    if isinstance(gate, tuple):  # seccomp RET_ERRNO / user-notif verdict
        return gate[1]
    if gate == "handled":
        # RET_TRAP delivered SIGSYS (or the task was killed).  Complete
        # the entry with -EINTR so the drain makes forward progress; the
        # pending signal stops the drain at the top of the loop.
        return -errno.EINTR
    ret = kernel.dispatch_blocking(task, sysno, args)
    return 0 if ret is None else ret


@syscall("ring_enter")
def sys_ring_enter(kernel, task, args):
    ring, to_submit = args[0], args[1]
    mem = task.mem
    try:
        sq_head = mem.read_u64(ring + HDR_SQ_HEAD, check="read")
        sq_tail = mem.read_u64(ring + HDR_SQ_TAIL, check="read")
        cq_tail = mem.read_u64(ring + HDR_CQ_TAIL, check="read")
        sq_cap = mem.read_u64(ring + HDR_SQ_CAP, check="read")
        cq_cap = mem.read_u64(ring + HDR_CQ_CAP, check="read")
    except PageFault:
        return -errno.EFAULT
    if not 0 < sq_cap <= MAX_ENTRIES or cq_cap != sq_cap:
        return -errno.EINVAL
    if sq_tail < sq_head or sq_tail - sq_head > sq_cap:
        return -errno.EINVAL
    pending = sq_tail - sq_head
    if to_submit:
        pending = min(pending, to_submit)
    if pending == 0:
        return 0

    tracer = kernel.tracer
    drain_start = kernel.clock if tracer is not None else 0
    costs = kernel.costs
    sq_base = ring + HEADER_SIZE
    cq_base = ring + HEADER_SIZE + sq_cap * SQE_SIZE
    completed = 0
    while completed < pending and task.alive:
        # A deliverable signal stops the drain between entries — the same
        # way it interrupts a blocking syscall — but never before the
        # first entry, so a re-entered ring always makes progress.
        if completed and task.has_deliverable_signal():
            break
        slot = sq_head % sq_cap
        entry_start = kernel.clock
        kernel.charge(task, costs.uring_per_entry)
        try:
            sqe = sq_base + slot * SQE_SIZE
            sysno = to_signed(mem.read_u64(sqe + SQE_SYSNO, check="read"))
            raw_args = tuple(
                mem.read_u64(sqe + SQE_ARGS + 8 * k, check="read")
                for k in range(6)
            )
            user_data = mem.read_u64(sqe + SQE_USER_DATA, check="read")
        except PageFault:
            return -errno.EFAULT if completed == 0 else completed
        res = _execute_entry(kernel, task, sysno, raw_args, cq_base, sq_cap)
        if not task.alive:
            return None
        try:
            cqe = cq_base + slot * CQE_SIZE
            mem.write_u64(cqe + CQE_RES, res & MASK64, check="write")
            mem.write_u64(cqe + CQE_USER_DATA, user_data, check="write")
            sq_head += 1
            cq_tail += 1
            # Publish per entry so a partially drained ring is always
            # observable and resumable by the guest.
            mem.write_u64(ring + HDR_SQ_HEAD, sq_head, check="write")
            mem.write_u64(ring + HDR_CQ_TAIL, cq_tail, check="write")
        except PageFault:
            return -errno.EFAULT if completed == 0 else completed
        completed += 1
        if tracer is not None:
            tracer.ring_entry(
                kernel.clock, task.tid, index=sq_head - 1, sysno=sysno,
                name=syscall_name(sysno), ret=res, user_data=user_data,
                cycles=kernel.clock - entry_start,
            )
        if res == -errno.EINTR and task.has_deliverable_signal():
            break  # the interrupted entry's CQE is posted; handler runs next
    if tracer is not None:
        tracer.ring_enter(
            kernel.clock, task.tid, submitted=pending, completed=completed,
            cycles=kernel.clock - drain_start,
        )
    return completed
