"""io_uring-style syscall aggregation: one crossing, many syscalls.

The paper minimizes the *per-syscall* cost of interposition; *AnyCall*
attacks the complementary axis — amortize many syscalls over a single
kernel crossing.  This module implements that lever for the simulated
kernel: a submission/completion ring living entirely in guest memory.
A guest writes N syscall entries into the SQ ring, then issues **one**
``ring_enter`` syscall; the kernel drains the SQ, executing each entry
through the normal dispatch machinery, and posts results to the CQ ring.

Ring memory layout (all fields u64, little-endian, in guest memory)::

    header (64 bytes):
      +0   sq_head   kernel-advanced: index of the next unconsumed SQE
      +8   sq_tail   guest-advanced: one past the last submitted SQE
      +16  cq_head   guest-advanced consumption cursor (kernel ignores it)
      +24  cq_tail   kernel-advanced: one past the last posted CQE
      +32  sq_capacity
      +40  cq_capacity   (must equal sq_capacity)
      +48.. reserved
    sqes: sq_capacity x 64 bytes   {sysno, arg0..arg5, user_data}
    cqes: sq_capacity x 16 bytes   {res, user_data}

Indices advance monotonically; the slot for index ``i`` is
``i % capacity``.  CQEs are *slot-correlated*: the completion for the SQE
at slot ``j`` lands at CQ slot ``j``, which is what makes result links
(below) resolvable without a search.

Semantics, entry by entry:

* each entry pays :attr:`CostModel.uring_per_entry` plus its own service
  cost, runs every armed **seccomp filter** (the interception gate with
  ``sud=False`` — ring entries never cross via a syscall instruction, so
  the SUD selector read and ptrace stops are skipped: that is the
  amortization), and passes through the **fault injector** and the obs
  dispatch event like any other syscall;
* only :data:`RINGABLE` syscalls may ride the ring (I/O and cheap
  getters); anything else completes with ``-EINVAL``.  Process-control
  syscalls (fork/execve/ring_enter itself) are structurally excluded;
* an argument of the form :func:`ring_result`\\ ``(j)`` is substituted
  with the result already posted at CQ slot ``j`` — io_uring's linked
  SQEs, flattened.  If that result is negative the entry completes with
  ``-ECANCELED``;
* a **blocking** entry parks cooperatively exactly like an
  interposer-issued syscall (:meth:`Kernel.dispatch_blocking`); if a
  signal interrupts it, the entry completes with ``-EINTR``;
* a deliverable **signal** stops the drain after the current entry: the
  kernel publishes ``sq_head``/``cq_tail`` for everything completed (a
  partial CQ), returns the completed count, and the remainder stays in
  the SQ — re-entering after the handler resumes exactly where the drain
  stopped, so no wakeup is ever lost.  The first entry of a drain always
  executes, guaranteeing forward progress even under a signal storm;
* a seccomp ``RET_TRAP`` on an entry delivers SIGSYS as usual but
  completes the entry with ``-EINTR`` so the drain (and the guest's
  re-enter loop) cannot spin on a trapping entry.

``ring_enter(ring_addr, to_submit, min_complete, flags)`` returns the
number of entries completed this call (0 if the SQ was empty), or
``-EINVAL``/``-EFAULT`` for a malformed/unmapped ring.

Asynchronous drain (``flags & RING_ENTER_ASYNC``)
-------------------------------------------------

The synchronous drain above executes entries to completion in order — a
blocking SQE parks the whole guest, so one worker can never overlap two
in-flight I/Os.  With :data:`RING_ENTER_ASYNC` set, submission decouples
from completion, io_uring-style:

* an entry whose dispatch would block is captured on a kernel-side
  :class:`~repro.kernel.waits.RingWaiter` (``task.ring_waiters``) and the
  drain *continues* with the next SQE; ``sq_head`` still advances per
  consumed entry, but the CQE for a parked entry posts later, when its
  wakeup fires;
* an entry whose result link targets a currently *parked* slot parks as a
  dependent: it first executes (gate included) once those slots complete;
* ``cq_tail`` counts posted CQEs, so it advances out of submission order;
  CQEs stay slot-correlated, which is how the guest matches completions;
* parked entries are driven at every safe point — each subsequent
  ``ring_enter``, each scheduler slice boundary, and while the guest
  waits (below) — so no wakeup is ever lost;
* ``min_complete`` (arg 2, async only) turns the call into ``ring_wait``:
  after submitting, the task blocks — interruptibly, exactly like a
  blocking syscall — until the published ``cq_tail`` reaches
  ``min_complete`` or no parked entry remains that could ever post.  A
  signal interrupts the wait (the guest re-enters after the handler); a
  guest may equally poll ``cq_tail`` with ``min_complete == 0``.

Synchronous and asynchronous drains of the same op list are
*result-identical*: every entry runs the same gate/fault/obs machinery
and posts the same result value to the same CQ slot — only the order in
which CQEs appear (and the guest's ability to overlap) differs.

Interposition tools see a *single* ``ring_enter`` crossing — one SUD
selector read, one sled transit, one rewrite, one ptrace stop pair — no
matter how many entries it drains.  Per-entry attribution is preserved in
the obs stream: the tracer gets one ``ring_enter`` event per crossing and
one ``ring_entry`` event per drained entry (plus the usual ``syscall``
dispatch events).
"""

from __future__ import annotations

from repro.arch.registers import MASK64, to_signed
from repro.errors import PageFault
from repro.kernel import errno
from repro.kernel.syscalls.table import NR, syscall, syscall_name
from repro.kernel.waits import RingWaiter, WouldBlock

# ------------------------------------------------------------------ layout
HDR_SQ_HEAD = 0
HDR_SQ_TAIL = 8
HDR_CQ_HEAD = 16
HDR_CQ_TAIL = 24
HDR_SQ_CAP = 32
HDR_CQ_CAP = 40
HEADER_SIZE = 64
SQE_SIZE = 64
CQE_SIZE = 16
SQE_SYSNO = 0
SQE_ARGS = 8
SQE_USER_DATA = 56
CQE_RES = 0
CQE_USER_DATA = 8

#: Largest accepted ring capacity (entries).
MAX_ENTRIES = 1024

#: ``flags`` (arg 3) bit: asynchronous drain — blocking entries park on a
#: kernel-side :class:`~repro.kernel.waits.RingWaiter` instead of stalling
#: the drain, and ``min_complete`` (arg 2) may block until enough CQEs post.
RING_ENTER_ASYNC = 0x1


def ring_size(entries: int) -> int:
    """Bytes of guest memory a ring with ``entries`` slots occupies."""
    return HEADER_SIZE + entries * (SQE_SIZE + CQE_SIZE)


def sqe_offset(slot: int) -> int:
    return HEADER_SIZE + slot * SQE_SIZE


def cqe_offset(capacity: int, slot: int) -> int:
    return HEADER_SIZE + capacity * SQE_SIZE + slot * CQE_SIZE


# ------------------------------------------------------------- result links
#: Tag in the top 16 bits marking an SQE argument as "the result of CQ
#: slot j".  Real pointers live in the canonical lower half of the address
#: space, so the tag can never collide with a legitimate argument the
#: RINGABLE syscalls accept.
RESULT_TAG = 0xF1C0
_RESULT_SHIFT = 48


def ring_result(slot: int) -> int:
    """SQE argument placeholder: substitute the result posted at CQ ``slot``."""
    if not 0 <= slot < MAX_ENTRIES:
        raise ValueError(f"ring_result slot {slot} out of range")
    return (RESULT_TAG << _RESULT_SHIFT) | slot


def is_result_link(value: int) -> bool:
    return (value >> _RESULT_SHIFT) == RESULT_TAG and \
        (value & ((1 << _RESULT_SHIFT) - 1)) < MAX_ENTRIES


# ---------------------------------------------------------------- allowlist
#: Syscalls allowed to ride the ring: file/socket I/O plus cheap getters.
#: Process control (fork/clone/execve/exit), signal-frame machinery
#: (rt_sigreturn), address-space surgery, blocking multiplexers with
#: their own wait semantics (epoll_wait/wait4/futex), and ``ring_enter``
#: itself are excluded — entries completing with -EINVAL.
RINGABLE_NAMES = (
    "read", "write", "pread64", "pwrite64", "readv", "writev",
    "open", "openat", "close", "stat", "fstat", "lseek", "access",
    "getdents64", "dup", "rename", "mkdir", "rmdir", "unlink", "chmod",
    "sendfile", "socket", "connect", "accept", "accept4", "bind",
    "listen", "setsockopt", "shutdown", "epoll_create1", "epoll_ctl",
    "getpid", "gettid", "getppid", "getuid", "getcwd", "uname",
    "sched_yield", "nanosleep", "time", "clock_gettime", "getrandom",
)
RINGABLE = frozenset(NR[name] for name in RINGABLE_NAMES)


# ------------------------------------------------------------------- drain
def _resolve_args(mem, cq_base: int, capacity: int, raw_args) -> tuple | int:
    """Substitute result links; -ECANCELED if a linked result is negative."""
    resolved = []
    for value in raw_args:
        if is_result_link(value):
            slot = value & ((1 << _RESULT_SHIFT) - 1)
            if slot >= capacity:
                return -errno.EINVAL
            prev = to_signed(mem.read_u64(cq_base + slot * CQE_SIZE,
                                          check="read"))
            if prev < 0:
                return -errno.ECANCELED
            resolved.append(prev & MASK64)
        else:
            resolved.append(value)
    return tuple(resolved)


def _execute_entry(kernel, task, sysno: int, raw_args, cq_base: int,
                   capacity: int) -> int:
    """Run one SQE through gate + dispatch; always returns a result."""
    if sysno not in RINGABLE:
        return -errno.EINVAL
    args = _resolve_args(task.mem, cq_base, capacity, raw_args)
    if isinstance(args, int):
        return args
    gate = kernel._interception_gate(task, sysno, args, insn_addr=0,
                                     sud=False)
    if isinstance(gate, tuple):  # seccomp RET_ERRNO / user-notif verdict
        return gate[1]
    if gate == "handled":
        # RET_TRAP delivered SIGSYS (or the task was killed).  Complete
        # the entry with -EINTR so the drain makes forward progress; the
        # pending signal stops the drain at the top of the loop.
        return -errno.EINTR
    ret = kernel.dispatch_blocking(task, sysno, args)
    return 0 if ret is None else ret


# ------------------------------------------------------------- async drain
#: Sentinel: the waiter's dispatch blocked (again); it stays parked.
_STILL_PARKED = object()


def _post_cqe(mem, ring: int, cq_base: int, slot: int, res: int,
              user_data: int) -> None:
    """Post one CQE and advance the published ``cq_tail`` (async mode:
    ``cq_tail`` counts completions, which may land out of slot order)."""
    cqe = cq_base + slot * CQE_SIZE
    mem.write_u64(cqe + CQE_RES, res & MASK64, check="write")
    mem.write_u64(cqe + CQE_USER_DATA, user_data, check="write")
    cq_tail = mem.read_u64(ring + HDR_CQ_TAIL, check="read")
    mem.write_u64(ring + HDR_CQ_TAIL, cq_tail + 1, check="write")


def _link_deps(task, ring: int, raw_args) -> set:
    """CQ slots this entry's result links target that are still parked."""
    deps: set = set()
    parked = None
    for value in raw_args:
        if is_result_link(value):
            if parked is None:
                parked = {w.slot for w in task.ring_waiters
                          if w.ring == ring}
            slot = value & ((1 << _RESULT_SHIFT) - 1)
            if slot in parked:
                deps.add(slot)
    return deps


def _park_entry(kernel, task, *, ring, slot, index, sysno, raw_args,
                user_data, cq_base, capacity, deps, args=None,
                ready=None) -> None:
    deadline = None
    if kernel.ring_park_timeout is not None:
        # Bounded park: arm an absolute deadline and post a (no-op) timer
        # event at it so a wholly idle machine still advances simulated
        # time to the deadline; the expiry itself is observed by
        # complete_ring_waiters at the next drive point.
        deadline = kernel.clock + kernel.ring_park_timeout
        kernel.post_event(deadline, lambda: None)
    waiter = RingWaiter(
        ring=ring, slot=slot, index=index, sysno=sysno, raw_args=raw_args,
        user_data=user_data, cq_base=cq_base, capacity=capacity,
        parked_at=kernel.clock, args=args, ready=ready, deps=deps,
        deadline=deadline,
    )
    task.ring_waiters.append(waiter)
    if len(task.ring_waiters) > task.ring_parked_peak:
        task.ring_parked_peak = len(task.ring_waiters)
    if kernel.tracer is not None:
        kernel.tracer.ring_park(
            kernel.clock, task.tid, index=index, sysno=sysno,
            name=syscall_name(sysno), user_data=user_data,
            deps=sorted(deps),
        )


def _dispatch_waiter(kernel, task, waiter):
    """(Re-)dispatch a waiter's syscall; ``_STILL_PARKED`` if it blocks."""
    try:
        ret = kernel.dispatch(task, waiter.sysno, waiter.args)
    except WouldBlock as block:
        waiter.ready = block.ready
        return _STILL_PARKED
    return 0 if ret is None else ret


def _start_waiter(kernel, task, waiter):
    """First execution of a dependency-parked entry (deps resolved).

    Mirrors :func:`_execute_entry`'s gate sequence, but dispatches
    non-blockingly — a block re-parks the waiter on its own predicate.
    """
    if waiter.sysno not in RINGABLE:
        return -errno.EINVAL
    try:
        args = _resolve_args(task.mem, waiter.cq_base, waiter.capacity,
                             waiter.raw_args)
    except PageFault:
        return -errno.EFAULT
    if isinstance(args, int):
        return args
    gate = kernel._interception_gate(task, waiter.sysno, args, insn_addr=0,
                                     sud=False)
    if isinstance(gate, tuple):
        return gate[1]
    if gate == "handled":
        return -errno.EINTR
    waiter.args = args
    return _dispatch_waiter(kernel, task, waiter)


def _complete_waiter(kernel, task, waiter, res: int) -> None:
    """Post the waiter's CQE and release any entries that depend on it."""
    try:
        _post_cqe(task.mem, waiter.ring, waiter.cq_base, waiter.slot, res,
                  waiter.user_data)
    except PageFault:
        pass  # ring unmapped since parking; the completion is dropped
    task.ring_waiters.remove(waiter)
    for other in task.ring_waiters:
        if other.ring == waiter.ring:
            other.deps.discard(waiter.slot)
    tracer = kernel.tracer
    if tracer is not None:
        tracer.ring_complete(
            kernel.clock, task.tid, index=waiter.index, sysno=waiter.sysno,
            name=syscall_name(waiter.sysno), ret=res,
            user_data=waiter.user_data,
            waited=kernel.clock - waiter.parked_at,
        )


def complete_ring_waiters(kernel, task) -> int:
    """Drive ``task``'s parked ring entries; post CQEs for those that can
    now finish.  Returns the number completed.

    Called from every safe point — the top of each async ``ring_enter``,
    the ``ring_wait`` readiness predicate (so a blocked guest's parked
    I/O still completes while it waits), and the scheduler at slice
    boundaries (so a guest polling ``cq_tail`` observes completions
    without another crossing).  Passes repeat until one makes no
    progress, so a completion that releases a dependent entry settles
    within a single call — no wakeup is ever deferred to a later drive.
    """
    waiters = task.ring_waiters
    if not waiters:
        return 0
    completed = 0
    progress = True
    while progress and task.alive:
        progress = False
        for waiter in list(waiters):
            if waiter not in waiters:
                continue  # released by an earlier completion this pass
            if (waiter.deadline is not None
                    and kernel.clock >= waiter.deadline):
                # Bounded park expired: cancel with -ETIMEDOUT (checked
                # before deps so a dependency chain behind a hung entry
                # unwinds instead of parking forever).
                _complete_waiter(kernel, task, waiter, -errno.ETIMEDOUT)
                completed += 1
                progress = True
                continue
            if waiter.deps:
                continue
            if waiter.args is None:
                res = _start_waiter(kernel, task, waiter)
            elif waiter.ready is not None and waiter.ready():
                res = _dispatch_waiter(kernel, task, waiter)
            else:
                continue
            if res is _STILL_PARKED or not task.alive:
                continue
            _complete_waiter(kernel, task, waiter, res)
            completed += 1
            progress = True
    return completed


def _submit_async(kernel, task, ring, sq_head, pending, sq_cap, sq_base,
                  cq_base):
    """Consume up to ``pending`` SQEs without ever blocking the drain.

    Returns ``(completed, consumed, fault)``; ``fault`` is True when the
    ring itself faulted mid-drain (the caller maps that to ``-EFAULT``
    only if nothing was consumed, mirroring the synchronous drain).
    """
    mem = task.mem
    costs = kernel.costs
    tracer = kernel.tracer
    completed = 0
    consumed = 0
    while consumed < pending and task.alive:
        # Same signal semantics as the synchronous drain: a deliverable
        # signal stops submission between entries, never before the first.
        if consumed and task.has_deliverable_signal():
            break
        slot = sq_head % sq_cap
        entry_start = kernel.clock
        kernel.charge(task, costs.uring_per_entry)
        try:
            sqe = sq_base + slot * SQE_SIZE
            sysno = to_signed(mem.read_u64(sqe + SQE_SYSNO, check="read"))
            raw_args = tuple(
                mem.read_u64(sqe + SQE_ARGS + 8 * k, check="read")
                for k in range(6)
            )
            user_data = mem.read_u64(sqe + SQE_USER_DATA, check="read")
        except PageFault:
            return completed, consumed, True
        parked = False
        res = -errno.EINVAL
        deps = _link_deps(task, ring, raw_args)
        if deps:
            _park_entry(kernel, task, ring=ring, slot=slot, index=sq_head,
                        sysno=sysno, raw_args=raw_args, user_data=user_data,
                        cq_base=cq_base, capacity=sq_cap, deps=deps)
            parked = True
        elif sysno in RINGABLE:
            args = _resolve_args(mem, cq_base, sq_cap, raw_args)
            if isinstance(args, int):
                res = args
            else:
                gate = kernel._interception_gate(task, sysno, args,
                                                 insn_addr=0, sud=False)
                if isinstance(gate, tuple):
                    res = gate[1]
                elif gate == "handled":
                    res = -errno.EINTR
                else:
                    try:
                        ret = kernel.dispatch(task, sysno, args)
                        res = 0 if ret is None else ret
                    except WouldBlock as block:
                        _park_entry(kernel, task, ring=ring, slot=slot,
                                    index=sq_head, sysno=sysno,
                                    raw_args=raw_args, user_data=user_data,
                                    cq_base=cq_base, capacity=sq_cap,
                                    deps=set(), args=args,
                                    ready=block.ready)
                        parked = True
        if not task.alive:
            break
        try:
            if not parked:
                _post_cqe(mem, ring, cq_base, slot, res, user_data)
            sq_head += 1
            mem.write_u64(ring + HDR_SQ_HEAD, sq_head, check="write")
        except PageFault:
            return completed, consumed, True
        consumed += 1
        if not parked:
            completed += 1
            if tracer is not None:
                tracer.ring_entry(
                    kernel.clock, task.tid, index=sq_head - 1, sysno=sysno,
                    name=syscall_name(sysno), ret=res, user_data=user_data,
                    cycles=kernel.clock - entry_start,
                )
            if res == -errno.EINTR and task.has_deliverable_signal():
                break
    return completed, consumed, False


@syscall("ring_enter")
def sys_ring_enter(kernel, task, args):
    ring, to_submit, min_complete, flags = args[0], args[1], args[2], args[3]
    is_async = bool(flags & RING_ENTER_ASYNC)
    mem = task.mem
    # Entering the ring is itself a safe point: finish any parked entries
    # whose wakeups fired while the guest was away.
    drive_completed = 0
    if is_async and task.ring_waiters:
        drive_completed = complete_ring_waiters(kernel, task)
        if not task.alive:
            return None
    try:
        sq_head = mem.read_u64(ring + HDR_SQ_HEAD, check="read")
        sq_tail = mem.read_u64(ring + HDR_SQ_TAIL, check="read")
        cq_tail = mem.read_u64(ring + HDR_CQ_TAIL, check="read")
        sq_cap = mem.read_u64(ring + HDR_SQ_CAP, check="read")
        cq_cap = mem.read_u64(ring + HDR_CQ_CAP, check="read")
    except PageFault:
        return -errno.EFAULT
    if not 0 < sq_cap <= MAX_ENTRIES or cq_cap != sq_cap:
        return -errno.EINVAL
    if sq_tail < sq_head or sq_tail - sq_head > sq_cap:
        return -errno.EINVAL
    pending = sq_tail - sq_head
    if to_submit:
        pending = min(pending, to_submit)

    tracer = kernel.tracer
    drain_start = kernel.clock if tracer is not None else 0
    costs = kernel.costs
    sq_base = ring + HEADER_SIZE
    cq_base = ring + HEADER_SIZE + sq_cap * SQE_SIZE

    if is_async:
        completed = parked = 0
        if pending:
            completed, consumed, faulted = _submit_async(
                kernel, task, ring, sq_head, pending, sq_cap, sq_base,
                cq_base,
            )
            if not task.alive:
                return None
            parked = consumed - completed
            if tracer is not None:
                tracer.ring_enter(
                    kernel.clock, task.tid, submitted=pending,
                    completed=completed, cycles=kernel.clock - drain_start,
                    parked=parked,
                )
            if faulted and consumed == 0:
                return -errno.EFAULT
        if min_complete:
            # ring_wait: block (interruptibly, like any blocking syscall)
            # until the published cq_tail reaches min_complete.  The
            # readiness predicate drives the parked entries itself, so
            # waiting is what makes their wakeups fire.
            def cq_ready():
                complete_ring_waiters(kernel, task)
                try:
                    tail = mem.read_u64(ring + HDR_CQ_TAIL, check="read")
                except PageFault:
                    return True
                if tail >= min_complete:
                    return True
                # Nothing parked can ever post another CQE: waiting more
                # would deadlock, so the call returns short instead.
                return not task.ring_waiters
            if not cq_ready():
                raise WouldBlock(cq_ready)
        return drive_completed + completed

    if pending == 0:
        return 0
    completed = 0
    while completed < pending and task.alive:
        # A deliverable signal stops the drain between entries — the same
        # way it interrupts a blocking syscall — but never before the
        # first entry, so a re-entered ring always makes progress.
        if completed and task.has_deliverable_signal():
            break
        slot = sq_head % sq_cap
        entry_start = kernel.clock
        kernel.charge(task, costs.uring_per_entry)
        try:
            sqe = sq_base + slot * SQE_SIZE
            sysno = to_signed(mem.read_u64(sqe + SQE_SYSNO, check="read"))
            raw_args = tuple(
                mem.read_u64(sqe + SQE_ARGS + 8 * k, check="read")
                for k in range(6)
            )
            user_data = mem.read_u64(sqe + SQE_USER_DATA, check="read")
        except PageFault:
            return -errno.EFAULT if completed == 0 else completed
        res = _execute_entry(kernel, task, sysno, raw_args, cq_base, sq_cap)
        if not task.alive:
            return None
        try:
            cqe = cq_base + slot * CQE_SIZE
            mem.write_u64(cqe + CQE_RES, res & MASK64, check="write")
            mem.write_u64(cqe + CQE_USER_DATA, user_data, check="write")
            sq_head += 1
            # The synchronous drain completes exactly the entries it
            # consumes, so cq_tail is *coupled* to sq_head rather than
            # incremented: a SIGSYS handler that re-arms a trapped entry
            # (rewinding sq_head to retry it) then overwrites the stale
            # -EINTR CQE instead of double-counting it.
            cq_tail = sq_head
            # Publish per entry so a partially drained ring is always
            # observable and resumable by the guest.
            mem.write_u64(ring + HDR_SQ_HEAD, sq_head, check="write")
            mem.write_u64(ring + HDR_CQ_TAIL, cq_tail, check="write")
        except PageFault:
            return -errno.EFAULT if completed == 0 else completed
        completed += 1
        if tracer is not None:
            tracer.ring_entry(
                kernel.clock, task.tid, index=sq_head - 1, sysno=sysno,
                name=syscall_name(sysno), ret=res, user_data=user_data,
                cycles=kernel.clock - entry_start,
            )
        if res == -errno.EINTR and task.has_deliverable_signal():
            break  # the interrupted entry's CQE is posted; handler runs next
    if tracer is not None:
        tracer.ring_enter(
            kernel.clock, task.tid, submitted=pending, completed=completed,
            cycles=kernel.clock - drain_start,
        )
    return completed
