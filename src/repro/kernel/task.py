"""Tasks (threads/processes) and the kernel objects they share.

Terminology follows Linux: a *task* is one schedulable thread; a thread
group shares a pid.  ``fork`` copies the address space and file table;
``clone(CLONE_VM | CLONE_FILES | CLONE_SIGHAND | CLONE_THREAD)`` shares
them.  SUD state is strictly per-task and is *not* inherited across fork,
clone or execve — the property lazypoline must compensate for (§IV-A of the
paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.arch.registers import RegisterFile, XComponent
from repro.kernel.sud import SudState
from repro.mem.address_space import AddressSpace


class TaskState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    ZOMBIE = "zombie"  # exited, not yet reaped
    DEAD = "dead"


# Signal handler sentinels (match Linux).
SIG_DFL = 0
SIG_IGN = 1


@dataclass
class SigAction:
    """One registered signal disposition."""

    handler: int = SIG_DFL  #: guest VA of handler, or SIG_DFL/SIG_IGN
    flags: int = 0
    restorer: int = 0  #: guest VA of the sigreturn restorer (0 = default)
    mask: int = 0  #: additional signals blocked during the handler


class SigHandlers:
    """Signal disposition table, shared between threads of a group."""

    def __init__(self):
        self.actions: dict[int, SigAction] = {}

    def get(self, sig: int) -> SigAction:
        return self.actions.get(sig, SigAction())

    def set(self, sig: int, action: SigAction) -> SigAction:
        old = self.get(sig)
        self.actions[sig] = action
        return old

    def copy(self) -> "SigHandlers":
        clone = SigHandlers()
        clone.actions = {
            sig: SigAction(a.handler, a.flags, a.restorer, a.mask)
            for sig, a in self.actions.items()
        }
        return clone


class FdTable:
    """Open file descriptor table, shared between threads of a group."""

    def __init__(self):
        self.fds: dict[int, object] = {}
        self._next = 3  # 0/1/2 reserved for stdio

    def install(self, desc: object, fd: int | None = None) -> int:
        if fd is None:
            fd = self._next
            while fd in self.fds:
                fd += 1
            self._next = fd + 1
        self.fds[fd] = desc
        return fd

    def get(self, fd: int) -> object | None:
        return self.fds.get(fd)

    def remove(self, fd: int) -> object | None:
        return self.fds.pop(fd, None)

    def copy(self) -> "FdTable":
        clone = FdTable()
        clone.fds = dict(self.fds)
        clone._next = self._next
        return clone


@dataclass
class PendingSignal:
    sig: int
    info: dict = field(default_factory=dict)


class Task:
    """One schedulable thread."""

    def __init__(self, tid: int, pid: int, mem: AddressSpace):
        self.tid = tid
        self.pid = pid  # thread group id
        self.parent: Optional["Task"] = None
        self.comm = "task"
        self.mem = mem
        self.regs = RegisterFile()
        self.xsave_mask = XComponent.all()
        self.state = TaskState.RUNNABLE

        self.fdtable = FdTable()
        self.sighand = SigHandlers()
        self.sigmask = 0  # bitmask of blocked signals
        self.pending: list[PendingSignal] = []

        self.sud: SudState | None = None
        self.seccomp_filters: list = []  # newest last; all run on every syscall
        self.tracer = None  # host-level ptrace tracer, or None

        self.exit_code: int | None = None
        self.term_signal: int | None = None
        self.clear_child_tid = 0
        self.robust_list = 0
        self.brk = 0

        #: Home core (SMP): index of the core whose runqueue holds this
        #: task; updated on idle-steal migration.  Always 0 on 1-core
        #: machines.
        self.core_id = 0
        #: Earliest core-local cycle this task may run at — stamped when it
        #: is created (a forked child cannot start before its parent's
        #: clone returned) and when a cross-core signal wakes it, so an
        #: idle core fast-forwards instead of running the task in the past.
        self.wake_clock = 0

        self.cpu_cycles = 0
        #: Instructions retired by a superblock that faulted mid-run
        #: (faulting instruction included); written by generated block
        #: code just before re-raising, read once by the scheduler.
        self.sb_fault = 0
        self.insn_count = 0
        self.blocked_reason: Callable[[], bool] | None = None
        self.blocked_interruptible = True
        self.in_syscall_restart: tuple[int, tuple[int, ...]] | None = None

        #: Aggregation-ring entries parked by an async ``ring_enter``
        #: (:class:`repro.kernel.waits.RingWaiter`, in park order) and the
        #: high-water mark of simultaneously parked entries — the direct
        #: measure of how much in-flight I/O one task overlaps.
        self.ring_waiters: list = []
        self.ring_parked_peak = 0

        #: Capture buffers for stdio when no real fd is installed.
        self.stdout = bytearray()
        self.stderr = bytearray()

        #: Children (thread-group leaders only track child processes).
        self.children: list[Task] = []

    # ------------------------------------------------------------------ info
    @property
    def xsave_mask(self) -> XComponent:
        return self._xsave_mask

    @xsave_mask.setter
    def xsave_mask(self, mask: XComponent) -> None:
        self._xsave_mask = mask
        #: Component count cached for the CPU's xsave/xrstor cost charge.
        self.xsave_components = bin(mask.value).count("1")

    @property
    def alive(self) -> bool:
        return self.state in (TaskState.RUNNABLE, TaskState.BLOCKED)

    @property
    def is_thread_group_leader(self) -> bool:
        return self.tid == self.pid

    def signal_blocked(self, sig: int) -> bool:
        return bool(self.sigmask & (1 << sig))

    def has_deliverable_signal(self) -> bool:
        return any(not self.signal_blocked(p.sig) for p in self.pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task tid={self.tid} pid={self.pid} {self.comm!r} {self.state.value}>"
