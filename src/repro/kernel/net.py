"""Loopback networking: stream sockets, listeners, epoll.

The network is a localhost-only fabric, which is exactly the paper's
macrobenchmark setup (client and server on one machine, communicating over
localhost, §V-B).  Guest programs use the socket/epoll syscalls; load
generators like the wrk model connect from the host side through
:meth:`Network.connect` and receive data callbacks.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.kernel import errno
from repro.kernel.fs import (
    EPOLLERR,
    EPOLLHUP,
    EPOLLIN,
    EPOLLOUT,
    FileDescription,
)
from repro.kernel.waits import WouldBlock

AF_INET = 2
SOCK_STREAM = 1
SOCK_NONBLOCK = 0o4000

# epoll_ctl ops.
EPOLL_CTL_ADD = 1
EPOLL_CTL_DEL = 2
EPOLL_CTL_MOD = 3


class Endpoint:
    """One side of a stream connection."""

    def __init__(self, name: str):
        self.name = name
        self.inbuf = bytearray()
        self.closed = False
        self.peer: Optional["Endpoint"] = None
        #: host callback fired when data arrives at this endpoint
        self.on_data: Optional[Callable[[bytes], None]] = None
        #: host callback fired when the peer closes
        self.on_close: Optional[Callable[[], None]] = None

    def deliver(self, data: bytes) -> None:
        if self.on_data is not None:
            self.on_data(bytes(data))
        else:
            self.inbuf += data

    def send(self, data: bytes) -> int:
        """Send to the peer endpoint."""
        if self.peer is None or self.peer.closed:
            return -errno.EPIPE
        self.peer.deliver(data)
        return len(data)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self.peer is not None and self.peer.on_close is not None:
            self.peer.on_close()


class Connection:
    """A connected stream pair."""

    _ids = 0

    def __init__(self):
        Connection._ids += 1
        self.id = Connection._ids
        self.client = Endpoint(f"conn{self.id}.client")
        self.server = Endpoint(f"conn{self.id}.server")
        self.client.peer = self.server
        self.server.peer = self.client


class SocketDesc(FileDescription):
    """A guest-visible connected stream socket."""

    def __init__(self, endpoint: Endpoint, flags: int = 0):
        super().__init__()
        self.endpoint = endpoint
        self.flags = flags

    def read(self, task, length: int):
        ep = self.endpoint
        if not ep.inbuf:
            if ep.peer is None or ep.peer.closed:
                return b""  # orderly EOF
            if self.nonblocking:
                return -errno.EAGAIN
            raise WouldBlock(
                lambda: bool(ep.inbuf) or ep.peer is None or ep.peer.closed
            )
        data = bytes(ep.inbuf[:length])
        del ep.inbuf[: len(data)]
        return data

    def write(self, task, data: bytes) -> int:
        return self.endpoint.send(data)

    def poll(self) -> int:
        mask = 0
        ep = self.endpoint
        if ep.inbuf:
            mask |= EPOLLIN
        if ep.peer is not None and ep.peer.closed:
            mask |= EPOLLIN | EPOLLHUP
        if not ep.closed:
            mask |= EPOLLOUT
        return mask

    def close(self) -> None:
        super().close()
        if self.refcount == 0:
            self.endpoint.close()


class ListenSocket(FileDescription):
    """A guest listening socket with an accept backlog."""

    def __init__(self, port: int = 0, flags: int = 0):
        super().__init__()
        self.port = port
        self.flags = flags
        self.backlog: list[Connection] = []
        self.listening = False

    def poll(self) -> int:
        return EPOLLIN if self.backlog else 0

    def accept_one(self) -> Connection | None:
        if self.backlog:
            return self.backlog.pop(0)
        return None


class EpollDesc(FileDescription):
    """An epoll instance."""

    def __init__(self):
        super().__init__()
        self.interest: dict[int, tuple[int, int]] = {}  # fd -> (events, data)

    def ready_events(self, fdtable) -> list[tuple[int, int, int]]:
        """Return (fd, revents, data) for every ready member."""
        out = []
        for fd, (events, data) in self.interest.items():
            desc = fdtable.get(fd)
            if desc is None:
                continue
            revents = desc.poll() & (events | EPOLLERR | EPOLLHUP)
            if revents:
                out.append((fd, revents, data))
        return out

    def poll(self) -> int:
        return 0  # nested epoll unsupported


class Network:
    """The loopback fabric: port bindings and host-side connections."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.listeners: dict[int, ListenSocket] = {}

    def bind(self, sock: ListenSocket, port: int) -> int:
        if port in self.listeners:
            return -errno.EADDRINUSE
        sock.port = port
        self.listeners[port] = sock
        return 0

    def listen(self, sock: ListenSocket) -> int:
        sock.listening = True
        return 0

    def unbind(self, sock: ListenSocket) -> None:
        if self.listeners.get(sock.port) is sock:
            del self.listeners[sock.port]

    def connect(
        self,
        port: int,
        *,
        on_data: Callable[[bytes], None] | None = None,
        on_close: Callable[[], None] | None = None,
    ) -> Connection:
        """Host-side connect (used by load-generator models).

        The returned connection's *client* endpoint belongs to the caller:
        write with ``conn.client.send(...)``, receive through ``on_data``.
        """
        listener = self.listeners.get(port)
        if listener is None or not listener.listening:
            raise ConnectionRefusedError(f"no listener on port {port}")
        conn = Connection()
        conn.client.on_data = on_data
        conn.client.on_close = on_close
        listener.backlog.append(conn)
        return conn

    def guest_connect(self, port: int, flags: int = 0) -> "SocketDesc | int":
        """Guest-side connect to a guest listener on the loopback."""
        listener = self.listeners.get(port)
        if listener is None or not listener.listening:
            return -errno.ECONNREFUSED
        conn = Connection()
        listener.backlog.append(conn)
        return SocketDesc(conn.client, flags)
