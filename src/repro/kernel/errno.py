"""Errno values and the negative-return convention used by the syscall ABI."""

from __future__ import annotations

EPERM = 1
ENOENT = 2
ESRCH = 3
EINTR = 4
EIO = 5
EBADF = 9
ECHILD = 10
EAGAIN = 11
ENOMEM = 12
EACCES = 13
EFAULT = 14
EEXIST = 17
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
ENOSPC = 28
ENFILE = 23
EMFILE = 24
ENOTTY = 25
ESPIPE = 29
EPIPE = 32
ERANGE = 34
ENOSYS = 38
ENOTEMPTY = 39
EWOULDBLOCK = EAGAIN
ENOTSOCK = 88
EOPNOTSUPP = 95
EADDRINUSE = 98
ETIMEDOUT = 110
ECONNREFUSED = 111
EINPROGRESS = 115
ECANCELED = 125

_NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.startswith("E") and isinstance(value, int)
}


def errno_name(err: int) -> str:
    """Human-readable name for a (positive) errno value."""
    return _NAMES.get(err, f"errno{err}")


def is_error(ret: int) -> bool:
    """True if a syscall return value encodes an error (-4095..-1)."""
    return -4095 <= ret < 0
