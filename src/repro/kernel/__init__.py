"""The simulated Linux-like kernel."""

from repro.kernel.kernel import HcallContext, Kernel
from repro.kernel.machine import Machine, Process
from repro.kernel.scheduler import Scheduler
from repro.kernel.task import Task, TaskState
from repro.kernel.waits import DeadlockError, WouldBlock

__all__ = [
    "Kernel",
    "HcallContext",
    "Machine",
    "Process",
    "Scheduler",
    "Task",
    "TaskState",
    "WouldBlock",
    "DeadlockError",
]
