"""Process and thread lifecycle syscalls."""

from __future__ import annotations

from repro.arch.registers import RAX, to_signed
from repro.errors import PageFault
from repro.kernel import errno
from repro.kernel.signals import SIGCHLD
from repro.kernel.syscalls.table import syscall
from repro.kernel.task import SigHandlers, TaskState
from repro.kernel.waits import WouldBlock

# clone flags (Linux values).
CLONE_VM = 0x0000_0100
CLONE_FS = 0x0000_0200
CLONE_FILES = 0x0000_0400
CLONE_SIGHAND = 0x0000_0800
CLONE_THREAD = 0x0001_0000
CLONE_SETTLS = 0x0008_0000
CLONE_PARENT_SETTID = 0x0010_0000
CLONE_CHILD_CLEARTID = 0x0020_0000
CLONE_CHILD_SETTID = 0x0100_0000

#: Canonical thread-creation flag combination (what pthread_create uses).
THREAD_FLAGS = (
    CLONE_VM | CLONE_FS | CLONE_FILES | CLONE_SIGHAND | CLONE_THREAD
)

WNOHANG = 1


@syscall("getpid")
def sys_getpid(kernel, task, args):
    return task.pid


@syscall("gettid")
def sys_gettid(kernel, task, args):
    return task.tid


@syscall("getppid")
def sys_getppid(kernel, task, args):
    return task.parent.pid if task.parent is not None else 0


@syscall("getuid")
def sys_getuid(kernel, task, args):
    return 1000


@syscall("sched_yield")
def sys_sched_yield(kernel, task, args):
    return 0


def _exit_common(kernel, task, code: int, whole_group: bool):
    if whole_group:
        kernel.terminate_group(task, code=code & 0xFF)
    else:
        kernel.terminate_task(task, code=code & 0xFF)
    parent = task.parent
    if parent is not None and parent.alive:
        kernel.post_signal(parent, SIGCHLD, {"code": 1})
    return None


@syscall("exit")
def sys_exit(kernel, task, args):
    return _exit_common(kernel, task, args[0], whole_group=False)


@syscall("exit_group")
def sys_exit_group(kernel, task, args):
    return _exit_common(kernel, task, args[0], whole_group=True)


def _spawn_child(kernel, task, *, share_vm: bool, same_group: bool,
                 share_files: bool, share_sighand: bool):
    """Common child construction for fork/vfork/clone."""
    child_mem = task.mem if share_vm else task.mem.fork_copy()
    child = kernel.new_task(child_mem, comm=task.comm)
    if same_group:
        child.pid = task.pid
    child.parent = task
    task.children.append(child)

    child.regs = task.regs.copy()
    child.regs.write(RAX, 0)
    if share_files:
        child.fdtable = task.fdtable
    else:
        child.fdtable = task.fdtable.copy()
    if share_sighand:
        child.sighand = task.sighand
    else:
        child.sighand = task.sighand.copy()
    child.sigmask = task.sigmask
    child.xsave_mask = task.xsave_mask
    child.cwd = getattr(task, "cwd", "/")
    child.brk = task.brk
    child.brk_base = getattr(task, "brk_base", 0)
    child.vdso_sigreturn = getattr(task, "vdso_sigreturn", 0)
    # seccomp filters are inherited (Linux semantics); SUD is NOT (paper §IV-B).
    child.seccomp_filters = list(task.seccomp_filters)
    child.sud = None
    return child


@syscall("fork")
def sys_fork(kernel, task, args):
    child = _spawn_child(kernel, task, share_vm=False, same_group=False,
                         share_files=False, share_sighand=False)
    return child.tid


@syscall("vfork")
def sys_vfork(kernel, task, args):
    # Suspension of the parent is not modelled; semantics equal fork here.
    child = _spawn_child(kernel, task, share_vm=False, same_group=False,
                         share_files=False, share_sighand=False)
    return child.tid


@syscall("clone")
def sys_clone(kernel, task, args):
    flags, child_stack, ptid, ctid, tls = args[0], args[1], args[2], args[3], args[4]
    if flags & CLONE_THREAD and not flags & CLONE_SIGHAND:
        return -errno.EINVAL
    child = _spawn_child(
        kernel,
        task,
        share_vm=bool(flags & CLONE_VM),
        same_group=bool(flags & CLONE_THREAD),
        share_files=bool(flags & CLONE_FILES),
        share_sighand=bool(flags & CLONE_SIGHAND),
    )
    if child_stack:
        child.regs.write(4, child_stack)  # rsp
    if flags & CLONE_SETTLS:
        child.regs.gs_base = tls
    if flags & CLONE_PARENT_SETTID and ptid:
        try:
            task.mem.write_u32(ptid, child.tid, check="write")
        except PageFault:
            pass
    if flags & CLONE_CHILD_SETTID and ctid:
        try:
            child.mem.write_u32(ctid, child.tid, check=None)
        except PageFault:
            pass
    if flags & CLONE_CHILD_CLEARTID:
        child.clear_child_tid = ctid
    return child.tid


@syscall("execve")
def sys_execve(kernel, task, args):
    from repro.kernel.syscalls.fs_calls import resolve_path
    from repro.loader.loading import load_into

    path = resolve_path(kernel, task, args[0])
    if path is None:
        return -errno.EFAULT
    image = kernel.binaries.get(path)
    if image is None:
        return -errno.ENOENT

    from repro.mem.address_space import AddressSpace
    from repro.arch.registers import RegisterFile

    task.mem = AddressSpace()
    task.regs = RegisterFile()
    task.sighand = SigHandlers()
    task.sud = None  # SUD does not survive execve
    task.brk = 0
    task.comm = image.name
    load_into(kernel, task, image)
    for hook in kernel.exec_hooks:
        hook(task)
    return None  # the new program starts; rax is not meaningful


@syscall("wait4")
def sys_wait4(kernel, task, args):
    pid = to_signed(args[0])
    status_ptr = args[1]
    options = args[2]

    def matching_children():
        return [
            c
            for c in task.children
            if (pid == -1 or c.tid == pid or c.pid == pid)
        ]

    def find_zombie():
        for child in matching_children():
            if child.state == TaskState.ZOMBIE:
                return child
        return None

    if not matching_children():
        return -errno.ECHILD
    child = find_zombie()
    if child is None:
        if options & WNOHANG:
            return 0
        raise WouldBlock(lambda: find_zombie() is not None)
    child.state = TaskState.DEAD
    if status_ptr:
        if child.term_signal is not None:
            status = child.term_signal & 0x7F
        else:
            status = (child.exit_code & 0xFF) << 8
        try:
            task.mem.write_u32(status_ptr, status, check="write")
        except PageFault:
            return -errno.EFAULT
    return child.tid


@syscall("kill")
def sys_kill(kernel, task, args):
    pid, sig = to_signed(args[0]), args[1]
    targets = [t for t in kernel.tasks.values() if t.pid == pid and t.alive]
    if not targets:
        return -errno.ESRCH
    if sig == 0:
        return 0
    kernel.post_signal(targets[0], sig, {})
    return 0


@syscall("tgkill")
def sys_tgkill(kernel, task, args):
    tgid, tid, sig = args[0], args[1], args[2]
    target = kernel.tasks.get(tid)
    if target is None or not target.alive or target.pid != tgid:
        return -errno.ESRCH
    if sig == 0:
        return 0
    kernel.post_signal(target, sig, {})
    return 0
