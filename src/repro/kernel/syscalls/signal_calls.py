"""Signal-related syscalls.

Guest ``struct sigaction`` layout (32 bytes)::

    +0   handler   u64  (0 = SIG_DFL, 1 = SIG_IGN)
    +8   flags     u64
    +16  restorer  u64  (SA_RESTORER)
    +24  mask      u64
"""

from __future__ import annotations

from repro.errors import PageFault
from repro.kernel import errno
from repro.kernel.signals import NSIG, UNCATCHABLE
from repro.kernel.syscalls.table import syscall
from repro.kernel.task import SigAction

SIG_BLOCK = 0
SIG_UNBLOCK = 1
SIG_SETMASK = 2


@syscall("rt_sigaction")
def sys_rt_sigaction(kernel, task, args):
    sig, act_ptr, oldact_ptr = args[0], args[1], args[2]
    if not 1 <= sig < NSIG or sig in UNCATCHABLE:
        return -errno.EINVAL
    old = task.sighand.get(sig)
    if oldact_ptr:
        try:
            task.mem.write_u64(oldact_ptr, old.handler, check="write")
            task.mem.write_u64(oldact_ptr + 8, old.flags, check="write")
            task.mem.write_u64(oldact_ptr + 16, old.restorer, check="write")
            task.mem.write_u64(oldact_ptr + 24, old.mask, check="write")
        except PageFault:
            return -errno.EFAULT
    if act_ptr:
        try:
            action = SigAction(
                handler=task.mem.read_u64(act_ptr, check="read"),
                flags=task.mem.read_u64(act_ptr + 8, check="read"),
                restorer=task.mem.read_u64(act_ptr + 16, check="read"),
                mask=task.mem.read_u64(act_ptr + 24, check="read"),
            )
        except PageFault:
            return -errno.EFAULT
        task.sighand.set(sig, action)
    return 0


@syscall("rt_sigprocmask")
def sys_rt_sigprocmask(kernel, task, args):
    how, set_ptr, oldset_ptr = args[0], args[1], args[2]
    if oldset_ptr:
        try:
            task.mem.write_u64(oldset_ptr, task.sigmask, check="write")
        except PageFault:
            return -errno.EFAULT
    if set_ptr:
        try:
            mask = task.mem.read_u64(set_ptr, check="read")
        except PageFault:
            return -errno.EFAULT
        if how == SIG_BLOCK:
            task.sigmask |= mask
        elif how == SIG_UNBLOCK:
            task.sigmask &= ~mask
        elif how == SIG_SETMASK:
            task.sigmask = mask
        else:
            return -errno.EINVAL
    return 0


@syscall("rt_sigreturn")
def sys_rt_sigreturn(kernel, task, args):
    kernel.signals.sigreturn(task)
    return None  # every register comes from the restored frame


@syscall("sigaltstack")
def sys_sigaltstack(kernel, task, args):
    return 0  # accepted but unused: frames always go on the current stack
