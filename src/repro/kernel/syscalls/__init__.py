"""Syscall implementations and the dispatch registry."""

from repro.kernel.syscalls.table import (
    NR,
    SyscallEntry,
    build_registry,
    syscall_name,
)

__all__ = ["NR", "SyscallEntry", "build_registry", "syscall_name"]
