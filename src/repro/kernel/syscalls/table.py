"""Syscall numbers (x86-64 Linux values) and the dispatch registry.

Implementations register themselves with the :func:`syscall` decorator.
Each entry carries a service cost — the kernel-side work of the call beyond
the mode switch — so syscall-intensive workloads (the paper's web servers)
cost realistic amounts relative to the interposition overhead being
measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

#: x86-64 syscall numbers (subset).
NR = {
    "read": 0,
    "write": 1,
    "open": 2,
    "close": 3,
    "stat": 4,
    "fstat": 5,
    "lseek": 8,
    "readv": 19,
    "writev": 20,
    "mmap": 9,
    "mprotect": 10,
    "munmap": 11,
    "brk": 12,
    "rt_sigaction": 13,
    "rt_sigprocmask": 14,
    "rt_sigreturn": 15,
    "ioctl": 16,
    "pread64": 17,
    "pwrite64": 18,
    "access": 21,
    "pipe": 22,
    "sched_yield": 24,
    "dup": 32,
    "nanosleep": 35,
    "getpid": 39,
    "sendfile": 40,
    "socket": 41,
    "connect": 42,
    "accept": 43,
    "shutdown": 48,
    "bind": 49,
    "listen": 50,
    "setsockopt": 54,
    "clone": 56,
    "fork": 57,
    "vfork": 58,
    "execve": 59,
    "exit": 60,
    "wait4": 61,
    "kill": 62,
    "uname": 63,
    "fcntl": 72,
    "getcwd": 79,
    "chdir": 80,
    "rename": 82,
    "mkdir": 83,
    "rmdir": 84,
    "unlink": 87,
    "chmod": 90,
    "getuid": 102,
    "getppid": 110,
    "sigaltstack": 131,
    "prctl": 157,
    "arch_prctl": 158,
    "gettid": 186,
    "time": 201,
    "futex": 202,
    "getdents64": 217,
    "set_tid_address": 218,
    "clock_gettime": 228,
    "clock_nanosleep": 230,
    "exit_group": 231,
    "epoll_wait": 232,
    "epoll_ctl": 233,
    "tgkill": 234,
    "openat": 257,
    "set_robust_list": 273,
    "accept4": 288,
    "epoll_create1": 291,
    "seccomp": 317,
    "getrandom": 318,
    "pkey_mprotect": 329,
    "pkey_alloc": 330,
    "pkey_free": 331,
    "ring_enter": 426,  # io_uring_enter's number, repurposed for our ring
}

_NAME_BY_NR = {nr: name for name, nr in NR.items()}


def syscall_name(nr: int) -> str:
    return _NAME_BY_NR.get(nr, f"sys_{nr}")


#: Kernel-side service cost per syscall (cycles), beyond the mode switch.
#: Tuned so that a small static HTTP request costs a realistic few tens of
#: thousands of cycles (~60k req/s single worker at 2.1 GHz, Fig. 5 scale).
SERVICE_COSTS = {
    "read": 2800,
    "write": 2800,
    "readv": 3000,
    "writev": 3000,
    "pread64": 2400,
    "pwrite64": 2400,
    "open": 3200,
    "openat": 3200,
    "close": 1400,
    "stat": 1600,
    "fstat": 1100,
    "lseek": 120,
    "mmap": 600,
    "mprotect": 600,
    "munmap": 600,
    "sendfile": 2600,
    "socket": 1800,
    "bind": 700,
    "listen": 700,
    "accept": 3600,
    "accept4": 3600,
    "connect": 3600,
    "shutdown": 600,
    "epoll_create1": 800,
    "epoll_ctl": 900,
    "epoll_wait": 3200,
    "fork": 20000,
    "vfork": 12000,
    "clone": 9000,
    "execve": 60000,
    "wait4": 800,
    "getdents64": 900,
    "futex": 500,
    "rt_sigaction": 300,
    "rt_sigprocmask": 150,
    "getrandom": 700,
    # Fixed cost of a ring_enter crossing (header validation + ring setup);
    # each drained entry additionally pays CostModel.uring_per_entry plus
    # the entry's own service cost.
    "ring_enter": 250,
}

DEFAULT_SERVICE_COST = 60


@dataclass(frozen=True)
class SyscallEntry:
    nr: int
    name: str
    fn: Callable
    service_cost: int


_PENDING: dict[int, SyscallEntry] = {}


def syscall(name: str):
    """Register a syscall implementation under its Linux name."""

    def decorator(fn: Callable) -> Callable:
        nr = NR[name]
        cost = SERVICE_COSTS.get(name, DEFAULT_SERVICE_COST)
        _PENDING[nr] = SyscallEntry(nr, name, fn, cost)
        return fn

    return decorator


def build_registry() -> dict[int, SyscallEntry]:
    """Import all implementation modules and return the dispatch table."""
    # Imports are deferred so the decorator side effects run exactly once
    # per interpreter, after which the table is complete.
    from repro.kernel.syscalls import (  # noqa: F401
        fs_calls,
        misc,
        mm,
        net_calls,
        proc,
        signal_calls,
    )
    from repro.kernel import uring  # noqa: F401

    return dict(_PENDING)
