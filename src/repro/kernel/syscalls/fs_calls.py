"""Filesystem syscalls."""

from __future__ import annotations

import posixpath
import struct

from repro.errors import PageFault
from repro.kernel import errno
from repro.kernel.fs import (
    DT_DIR,
    DT_REG,
    DirFile,
    O_APPEND,
    O_CREAT,
    O_DIRECTORY,
    O_EXCL,
    O_NONBLOCK,
    O_TRUNC,
    O_WRONLY,
    O_RDWR,
    Pipe,
    PipeReadEnd,
    PipeWriteEnd,
    RegularFile,
)
from repro.kernel.syscalls.table import syscall

AT_FDCWD = (1 << 64) - 100  # -100 as an unsigned register value

# Simplified stat buffer layout (see loader docs): size, mode, ino, nlink.
S_IFDIR = 0o040000
S_IFREG = 0o100000
STAT_SIZE = 32

F_DUPFD = 0
F_GETFL = 3
F_SETFL = 4

_U16 = struct.Struct("<H")


def resolve_path(kernel, task, ptr: int) -> str | None:
    """Read a user path string and resolve it against the task cwd."""
    try:
        raw = task.mem.read_cstr(ptr).decode("utf-8", "replace")
    except PageFault:
        return None
    cwd = getattr(task, "cwd", "/")
    if not raw.startswith("/"):
        raw = posixpath.join(cwd, raw)
    return kernel.fs.normalize(raw)


def _open_common(kernel, task, path: str, flags: int, mode: int) -> int:
    inode = kernel.fs.lookup(path)
    if inode is None:
        if not flags & O_CREAT:
            return -errno.ENOENT
        parent = kernel.fs.lookup(posixpath.dirname(path))
        if parent is None or not parent.is_dir:
            return -errno.ENOENT
        inode = kernel.fs.create(path, mode=mode & 0o7777 or 0o644)
    elif flags & O_CREAT and flags & O_EXCL:
        return -errno.EEXIST
    if inode.is_dir:
        if flags & (O_WRONLY | O_RDWR):
            return -errno.EISDIR
        return task.fdtable.install(DirFile(kernel.fs, inode))
    if flags & O_DIRECTORY:
        return -errno.ENOTDIR
    if flags & O_TRUNC and flags & (O_WRONLY | O_RDWR):
        inode.data.clear()
    desc = RegularFile(inode, flags)
    return task.fdtable.install(desc)


@syscall("open")
def sys_open(kernel, task, args):
    path = resolve_path(kernel, task, args[0])
    if path is None:
        return -errno.EFAULT
    return _open_common(kernel, task, path, args[1], args[2])


@syscall("openat")
def sys_openat(kernel, task, args):
    dirfd, path_ptr, flags, mode = args[0], args[1], args[2], args[3]
    path = resolve_path(kernel, task, path_ptr)
    if path is None:
        return -errno.EFAULT
    if dirfd != AT_FDCWD and not path.startswith("/"):
        return -errno.EBADF  # dirfd-relative lookups unsupported
    return _open_common(kernel, task, path, flags, mode)


@syscall("close")
def sys_close(kernel, task, args):
    desc = task.fdtable.remove(args[0])
    if desc is None:
        return -errno.EBADF
    desc.close()
    if hasattr(desc, "port") and getattr(desc, "listening", False):
        kernel.net.unbind(desc)
    return 0


@syscall("read")
def sys_read(kernel, task, args):
    fd, buf, count = args[0], args[1], args[2]
    desc = task.fdtable.get(fd)
    if desc is None:
        return -errno.EBADF
    data = desc.read(task, count)
    if isinstance(data, int):
        return data
    kernel.charge(task, kernel.costs.copy_cost(len(data)))
    try:
        task.mem.write(buf, data, check="write")
    except PageFault:
        return -errno.EFAULT
    return len(data)


@syscall("write")
def sys_write(kernel, task, args):
    fd, buf, count = args[0], args[1], args[2]
    desc = task.fdtable.get(fd)
    if desc is None:
        return -errno.EBADF
    try:
        data = task.mem.read(buf, count, check="read")
    except PageFault:
        return -errno.EFAULT
    kernel.charge(task, kernel.costs.copy_cost(len(data)))
    return desc.write(task, data)


def _read_iovec(task, iov_ptr: int, iovcnt: int) -> list[tuple[int, int]] | None:
    """Read a struct iovec array: (base u64, len u64) per entry."""
    if iovcnt > 1024:
        return None
    vec = []
    try:
        for i in range(iovcnt):
            base = task.mem.read_u64(iov_ptr + 16 * i, check="read")
            length = task.mem.read_u64(iov_ptr + 16 * i + 8, check="read")
            vec.append((base, length))
    except PageFault:
        return None
    return vec


@syscall("writev")
def sys_writev(kernel, task, args):
    fd, iov_ptr, iovcnt = args[0], args[1], args[2]
    desc = task.fdtable.get(fd)
    if desc is None:
        return -errno.EBADF
    vec = _read_iovec(task, iov_ptr, iovcnt)
    if vec is None:
        return -errno.EFAULT
    chunks = []
    try:
        for base, length in vec:
            chunks.append(task.mem.read(base, length, check="read"))
    except PageFault:
        return -errno.EFAULT
    data = b"".join(chunks)
    kernel.charge(task, kernel.costs.copy_cost(len(data)))
    return desc.write(task, data)


@syscall("readv")
def sys_readv(kernel, task, args):
    fd, iov_ptr, iovcnt = args[0], args[1], args[2]
    desc = task.fdtable.get(fd)
    if desc is None:
        return -errno.EBADF
    vec = _read_iovec(task, iov_ptr, iovcnt)
    if vec is None:
        return -errno.EFAULT
    total = sum(length for _base, length in vec)
    data = desc.read(task, total)
    if isinstance(data, int):
        return data
    kernel.charge(task, kernel.costs.copy_cost(len(data)))
    offset = 0
    try:
        for base, length in vec:
            chunk = data[offset : offset + length]
            if not chunk:
                break
            task.mem.write(base, chunk, check="write")
            offset += len(chunk)
    except PageFault:
        return -errno.EFAULT
    return len(data)


@syscall("pread64")
def sys_pread64(kernel, task, args):
    fd, buf, count, offset = args[0], args[1], args[2], args[3]
    desc = task.fdtable.get(fd)
    if not isinstance(desc, RegularFile):
        return -errno.ESPIPE if desc is not None else -errno.EBADF
    data = desc.pread(offset, count)
    kernel.charge(task, kernel.costs.copy_cost(len(data)))
    try:
        task.mem.write(buf, data, check="write")
    except PageFault:
        return -errno.EFAULT
    return len(data)


@syscall("pwrite64")
def sys_pwrite64(kernel, task, args):
    fd, buf, count, offset = args[0], args[1], args[2], args[3]
    desc = task.fdtable.get(fd)
    if not isinstance(desc, RegularFile):
        return -errno.ESPIPE if desc is not None else -errno.EBADF
    try:
        data = task.mem.read(buf, count, check="read")
    except PageFault:
        return -errno.EFAULT
    kernel.charge(task, kernel.costs.copy_cost(len(data)))
    saved = desc.offset
    desc.offset = offset
    ret = desc.write(task, data)
    desc.offset = saved
    return ret


@syscall("lseek")
def sys_lseek(kernel, task, args):
    desc = task.fdtable.get(args[0])
    if desc is None:
        return -errno.EBADF
    if not isinstance(desc, RegularFile):
        return -errno.ESPIPE
    from repro.arch.registers import to_signed

    return desc.seek(to_signed(args[1]), args[2])


def _write_stat(task, buf: int, size: int, mode: int, ino: int, nlink: int) -> int:
    try:
        task.mem.write_u64(buf, size, check="write")
        task.mem.write_u64(buf + 8, mode, check="write")
        task.mem.write_u64(buf + 16, ino, check="write")
        task.mem.write_u64(buf + 24, nlink, check="write")
    except PageFault:
        return -errno.EFAULT
    return 0


@syscall("stat")
def sys_stat(kernel, task, args):
    path = resolve_path(kernel, task, args[0])
    if path is None:
        return -errno.EFAULT
    inode = kernel.fs.lookup(path)
    if inode is None:
        return -errno.ENOENT
    mode = (S_IFDIR if inode.is_dir else S_IFREG) | inode.mode
    return _write_stat(task, args[1], len(inode.data), mode, inode.ino, inode.nlink)


@syscall("fstat")
def sys_fstat(kernel, task, args):
    desc = task.fdtable.get(args[0])
    if desc is None:
        return -errno.EBADF
    if isinstance(desc, (RegularFile, DirFile)):
        inode = desc.inode
        mode = (S_IFDIR if inode.is_dir else S_IFREG) | inode.mode
        return _write_stat(task, args[1], len(inode.data), mode, inode.ino, inode.nlink)
    return _write_stat(task, args[1], 0, 0o020000, 0, 1)  # character device-ish


@syscall("access")
def sys_access(kernel, task, args):
    path = resolve_path(kernel, task, args[0])
    if path is None:
        return -errno.EFAULT
    return 0 if kernel.fs.exists(path) else -errno.ENOENT


@syscall("mkdir")
def sys_mkdir(kernel, task, args):
    path = resolve_path(kernel, task, args[0])
    if path is None:
        return -errno.EFAULT
    return kernel.fs.mkdir(path, args[1] & 0o7777)


@syscall("rmdir")
def sys_rmdir(kernel, task, args):
    path = resolve_path(kernel, task, args[0])
    if path is None:
        return -errno.EFAULT
    return kernel.fs.rmdir(path)


@syscall("unlink")
def sys_unlink(kernel, task, args):
    path = resolve_path(kernel, task, args[0])
    if path is None:
        return -errno.EFAULT
    return kernel.fs.unlink(path)


@syscall("rename")
def sys_rename(kernel, task, args):
    old = resolve_path(kernel, task, args[0])
    new = resolve_path(kernel, task, args[1])
    if old is None or new is None:
        return -errno.EFAULT
    return kernel.fs.rename(old, new)


@syscall("chmod")
def sys_chmod(kernel, task, args):
    path = resolve_path(kernel, task, args[0])
    if path is None:
        return -errno.EFAULT
    return kernel.fs.chmod(path, args[1])


@syscall("getcwd")
def sys_getcwd(kernel, task, args):
    buf, size = args[0], args[1]
    cwd = getattr(task, "cwd", "/").encode() + b"\x00"
    if len(cwd) > size:
        return -errno.ERANGE
    try:
        task.mem.write(buf, cwd, check="write")
    except PageFault:
        return -errno.EFAULT
    return len(cwd)


@syscall("chdir")
def sys_chdir(kernel, task, args):
    path = resolve_path(kernel, task, args[0])
    if path is None:
        return -errno.EFAULT
    inode = kernel.fs.lookup(path)
    if inode is None:
        return -errno.ENOENT
    if not inode.is_dir:
        return -errno.ENOTDIR
    task.cwd = path
    return 0


@syscall("getdents64")
def sys_getdents64(kernel, task, args):
    fd, buf, count = args[0], args[1], args[2]
    desc = task.fdtable.get(fd)
    if desc is None:
        return -errno.EBADF
    if not isinstance(desc, DirFile):
        return -errno.ENOTDIR
    entries = desc.entries()
    written = 0
    while desc.position < len(entries):
        name, inode = entries[desc.position]
        name_bytes = name.encode()
        reclen = (19 + len(name_bytes) + 1 + 7) & ~7
        if written + reclen > count:
            break
        base = buf + written
        try:
            task.mem.write_u64(base, inode.ino, check="write")
            task.mem.write_u64(base + 8, desc.position + 1, check="write")
            task.mem.write(base + 16, _U16.pack(reclen), check="write")
            task.mem.write_u8(base + 18, DT_DIR if inode.is_dir else DT_REG,
                              check="write")
            task.mem.write_cstr(base + 19, name_bytes, check="write")
        except PageFault:
            return -errno.EFAULT
        written += reclen
        desc.position += 1
    kernel.charge(task, kernel.costs.copy_cost(written))
    return written


@syscall("dup")
def sys_dup(kernel, task, args):
    desc = task.fdtable.get(args[0])
    if desc is None:
        return -errno.EBADF
    return task.fdtable.install(desc.dup())


@syscall("pipe")
def sys_pipe(kernel, task, args):
    pipe = Pipe()
    rfd = task.fdtable.install(PipeReadEnd(pipe))
    wfd = task.fdtable.install(PipeWriteEnd(pipe))
    try:
        task.mem.write_u32(args[0], rfd, check="write")
        task.mem.write_u32(args[0] + 4, wfd, check="write")
    except PageFault:
        return -errno.EFAULT
    return 0


@syscall("fcntl")
def sys_fcntl(kernel, task, args):
    fd, cmd, arg = args[0], args[1], args[2]
    desc = task.fdtable.get(fd)
    if desc is None:
        return -errno.EBADF
    if cmd == F_GETFL:
        return desc.flags
    if cmd == F_SETFL:
        desc.flags = (desc.flags & ~O_NONBLOCK) | (arg & O_NONBLOCK)
        return 0
    if cmd == F_DUPFD:
        return task.fdtable.install(desc.dup())
    return -errno.EINVAL


@syscall("ioctl")
def sys_ioctl(kernel, task, args):
    desc = task.fdtable.get(args[0])
    if desc is None:
        return -errno.EBADF
    return -errno.ENOTTY


@syscall("sendfile")
def sys_sendfile(kernel, task, args):
    out_fd, in_fd, offset_ptr, count = args[0], args[1], args[2], args[3]
    out_desc = task.fdtable.get(out_fd)
    in_desc = task.fdtable.get(in_fd)
    if out_desc is None or in_desc is None:
        return -errno.EBADF
    if not isinstance(in_desc, RegularFile):
        return -errno.EINVAL
    if offset_ptr:
        try:
            offset = task.mem.read_u64(offset_ptr, check="read")
        except PageFault:
            return -errno.EFAULT
        data = in_desc.pread(offset, count)
    else:
        data = in_desc.read(task, count)
    if not data:
        return 0
    # sendfile moves data kernel-side: one copy, not two.
    kernel.charge(task, kernel.costs.copy_cost(len(data)))
    ret = out_desc.write(task, bytes(data))
    if isinstance(ret, int) and ret < 0:
        return ret
    if offset_ptr:
        try:
            task.mem.write_u64(offset_ptr, offset + ret, check="write")
        except PageFault:
            return -errno.EFAULT
    return ret
