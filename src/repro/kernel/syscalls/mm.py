"""Memory-management syscalls."""

from __future__ import annotations

from repro.errors import MapError
from repro.kernel import errno
from repro.kernel.fs import RegularFile
from repro.kernel.syscalls.table import syscall
from repro.mem.pages import PAGE_SIZE, Perm, page_align_up

PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4

MAP_SHARED = 0x01
MAP_PRIVATE = 0x02
MAP_FIXED = 0x10
MAP_ANONYMOUS = 0x20


def prot_to_perm(prot: int) -> Perm:
    perm = Perm.NONE
    if prot & PROT_READ:
        perm |= Perm.R
    if prot & PROT_WRITE:
        perm |= Perm.W
    if prot & PROT_EXEC:
        perm |= Perm.X
    return perm


def _charge_pages(kernel, task, length: int) -> None:
    pages = max(1, page_align_up(length) // PAGE_SIZE)
    kernel.charge(task, kernel.costs.page_op + kernel.costs.page_op_per_page * pages)


@syscall("mmap")
def sys_mmap(kernel, task, args):
    addr, length, prot, flags, fd = args[0], args[1], args[2], args[3], args[4]
    offset = args[5]
    if length == 0:
        return -errno.EINVAL
    _charge_pages(kernel, task, length)
    perm = prot_to_perm(prot)
    min_addr = kernel.mmap_min_addr
    try:
        if flags & MAP_FIXED:
            if addr % PAGE_SIZE:
                return -errno.EINVAL
            if addr < min_addr:
                # vm.mmap_min_addr: fixed mappings below the floor are denied
                # outright (CAP_SYS_RAWIO is not modelled).  This is what makes
                # zpoline/lazypoline's VA-0 sled genuinely deniable.
                return -errno.EPERM
            if task.mem.is_mapped(addr, length):
                task.mem.unmap(addr, page_align_up(length))
            result = task.mem.map(addr, length, perm)
        else:
            hint = max(addr or 0x1000_0000, min_addr)
            result = task.mem.map_anywhere(length, perm, hint=hint)
    except MapError:
        return -errno.ENOMEM
    if not flags & MAP_ANONYMOUS:
        desc = task.fdtable.get(fd & 0xFFFFFFFF)
        if not isinstance(desc, RegularFile):
            task.mem.unmap(result, page_align_up(length))
            return -errno.EBADF
        data = desc.pread(offset, length)
        kernel.charge(task, kernel.costs.copy_cost(len(data)))
        task.mem.write(result, data, check=None)
    return result


@syscall("mprotect")
def sys_mprotect(kernel, task, args):
    addr, length, prot = args[0], args[1], args[2]
    if addr % PAGE_SIZE:
        return -errno.EINVAL
    _charge_pages(kernel, task, length)
    try:
        task.mem.protect(addr, length, prot_to_perm(prot))
    except MapError:
        return -errno.ENOMEM
    return 0


@syscall("munmap")
def sys_munmap(kernel, task, args):
    addr, length = args[0], args[1]
    if addr % PAGE_SIZE:
        return -errno.EINVAL
    _charge_pages(kernel, task, length)
    task.mem.unmap(addr, length)
    return 0


@syscall("pkey_alloc")
def sys_pkey_alloc(kernel, task, args):
    key = task.mem.pkey_alloc()
    if key < 0:
        return -errno.ENOSPC  # all 15 keys in use
    return key


@syscall("pkey_free")
def sys_pkey_free(kernel, task, args):
    return 0 if task.mem.pkey_free(args[0]) else -errno.EINVAL


@syscall("pkey_mprotect")
def sys_pkey_mprotect(kernel, task, args):
    addr, length, prot, pkey = args[0], args[1], args[2], args[3]
    if pkey and pkey not in task.mem.allocated_pkeys:
        return -errno.EINVAL
    ret = sys_mprotect(kernel, task, (addr, length, prot))
    if ret != 0:
        return ret
    try:
        task.mem.assign_pkey(addr, length, pkey)
    except MapError:
        return -errno.ENOMEM
    return 0


@syscall("brk")
def sys_brk(kernel, task, args):
    new_brk = args[0]
    if task.brk == 0:
        # First call establishes the heap base lazily above the data segment.
        from repro.mem import layout

        task.brk = getattr(task, "brk_base", layout.DATA_BASE + 0x10_0000)
    if new_brk == 0 or new_brk <= task.brk:
        return task.brk
    start = page_align_up(task.brk)
    end = page_align_up(new_brk)
    if end > start:
        try:
            task.mem.map(start, end - start, Perm.RW)
        except MapError:
            return task.brk
        _charge_pages(kernel, task, end - start)
    task.brk = new_brk
    return task.brk
