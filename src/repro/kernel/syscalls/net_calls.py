"""Socket and epoll syscalls.

Address handling is simplified: a ``struct sockaddr_in`` pointer is read
only for its port (big-endian u16 at offset 2), which is all the loopback
fabric needs.

``struct epoll_event`` uses the packed x86-64 layout: ``events`` u32 at +0,
``data`` u64 at +4, stride 12 bytes.
"""

from __future__ import annotations

from repro.errors import PageFault
from repro.kernel import errno
from repro.kernel.fs import O_NONBLOCK
from repro.kernel.net import (
    EPOLL_CTL_ADD,
    EPOLL_CTL_DEL,
    EPOLL_CTL_MOD,
    EpollDesc,
    ListenSocket,
    SocketDesc,
)
from repro.kernel.syscalls.table import syscall
from repro.kernel.waits import WouldBlock

EPOLL_EVENT_SIZE = 12


def _read_port(task, addr_ptr: int) -> int | None:
    try:
        hi = task.mem.read_u8(addr_ptr + 2)
        lo = task.mem.read_u8(addr_ptr + 3)
    except PageFault:
        return None
    return (hi << 8) | lo


@syscall("socket")
def sys_socket(kernel, task, args):
    domain, sock_type = args[0], args[1]
    flags = O_NONBLOCK if sock_type & 0o4000 else 0
    sock = ListenSocket(flags=flags)  # becomes a listener on bind/listen
    return task.fdtable.install(sock)


@syscall("bind")
def sys_bind(kernel, task, args):
    sock = task.fdtable.get(args[0])
    if not isinstance(sock, ListenSocket):
        return -errno.ENOTSOCK
    port = _read_port(task, args[1])
    if port is None:
        return -errno.EFAULT
    return kernel.net.bind(sock, port)


@syscall("listen")
def sys_listen(kernel, task, args):
    sock = task.fdtable.get(args[0])
    if not isinstance(sock, ListenSocket):
        return -errno.ENOTSOCK
    return kernel.net.listen(sock)


@syscall("setsockopt")
def sys_setsockopt(kernel, task, args):
    sock = task.fdtable.get(args[0])
    if sock is None:
        return -errno.EBADF
    return 0  # options accepted and ignored (SO_REUSEADDR etc.)


@syscall("shutdown")
def sys_shutdown(kernel, task, args):
    sock = task.fdtable.get(args[0])
    if not isinstance(sock, SocketDesc):
        return -errno.ENOTSOCK
    sock.endpoint.close()
    return 0


def _accept_common(kernel, task, args, extra_flags: int):
    sock = task.fdtable.get(args[0])
    if not isinstance(sock, ListenSocket):
        return -errno.ENOTSOCK
    conn = sock.accept_one()
    if conn is None:
        if sock.nonblocking:
            return -errno.EAGAIN
        raise WouldBlock(lambda: bool(sock.backlog))
    flags = O_NONBLOCK if extra_flags & 0o4000 else 0
    desc = SocketDesc(conn.server, flags)
    return task.fdtable.install(desc)


@syscall("accept")
def sys_accept(kernel, task, args):
    return _accept_common(kernel, task, args, 0)


@syscall("accept4")
def sys_accept4(kernel, task, args):
    return _accept_common(kernel, task, args, args[3])


@syscall("connect")
def sys_connect(kernel, task, args):
    old = task.fdtable.get(args[0])
    if not isinstance(old, ListenSocket):
        return -errno.ENOTSOCK
    port = _read_port(task, args[1])
    if port is None:
        return -errno.EFAULT
    result = kernel.net.guest_connect(port, old.flags)
    if isinstance(result, int):
        return result
    task.fdtable.fds[args[0]] = result  # socket fd becomes the connected desc
    return 0


@syscall("epoll_create1")
def sys_epoll_create1(kernel, task, args):
    return task.fdtable.install(EpollDesc())


@syscall("epoll_ctl")
def sys_epoll_ctl(kernel, task, args):
    epfd, op, fd, event_ptr = args[0], args[1], args[2], args[3]
    ep = task.fdtable.get(epfd)
    if not isinstance(ep, EpollDesc):
        return -errno.EINVAL
    if task.fdtable.get(fd) is None:
        return -errno.EBADF
    if op == EPOLL_CTL_DEL:
        if fd not in ep.interest:
            return -errno.ENOENT
        del ep.interest[fd]
        return 0
    try:
        events = task.mem.read_u32(event_ptr, check="read")
        data = task.mem.read_u64(event_ptr + 4, check="read")
    except PageFault:
        return -errno.EFAULT
    if op == EPOLL_CTL_ADD:
        if fd in ep.interest:
            return -errno.EEXIST
        ep.interest[fd] = (events, data)
        return 0
    if op == EPOLL_CTL_MOD:
        if fd not in ep.interest:
            return -errno.ENOENT
        ep.interest[fd] = (events, data)
        return 0
    return -errno.EINVAL


@syscall("epoll_wait")
def sys_epoll_wait(kernel, task, args):
    epfd, events_ptr, maxevents, timeout_ms = args[0], args[1], args[2], args[3]
    from repro.arch.registers import to_signed

    timeout_ms = to_signed(timeout_ms)
    ep = task.fdtable.get(epfd)
    if not isinstance(ep, EpollDesc):
        return -errno.EINVAL
    if maxevents <= 0:
        return -errno.EINVAL

    ready = ep.ready_events(task.fdtable)
    if not ready:
        if timeout_ms == 0:
            return 0
        if timeout_ms > 0:
            # The deadline must survive syscall restarts, so it is stashed
            # on the task until the wait completes one way or the other.
            deadline = getattr(task, "_epoll_deadline", None)
            if deadline is None:
                deadline = kernel.now + int(
                    timeout_ms * kernel.costs.frequency_hz / 1000
                )
                task._epoll_deadline = deadline
                kernel.post_event(deadline, lambda: None)  # let time advance
            elif kernel.now >= deadline:
                task._epoll_deadline = None
                return 0
            raise WouldBlock(
                lambda: bool(ep.ready_events(task.fdtable))
                or kernel.now >= deadline
            )
        raise WouldBlock(lambda: bool(ep.ready_events(task.fdtable)))

    task._epoll_deadline = None
    count = 0
    for fd, revents, data in ready[:maxevents]:
        base = events_ptr + count * EPOLL_EVENT_SIZE
        try:
            task.mem.write_u32(base, revents, check="write")
            task.mem.write_u64(base + 4, data, check="write")
        except PageFault:
            return -errno.EFAULT
        count += 1
    return count
