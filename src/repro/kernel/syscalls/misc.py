"""Miscellaneous syscalls: prctl/SUD, seccomp, futex, time, randomness."""

from __future__ import annotations

import random
import struct

from repro.errors import PageFault
from repro.kernel import errno
from repro.kernel.seccomp.bpf import BpfInsn, BpfProgram
from repro.errors import BpfError
from repro.kernel.sud import (
    PR_SET_SYSCALL_USER_DISPATCH,
    PR_SYS_DISPATCH_OFF,
    PR_SYS_DISPATCH_ON,
    SudState,
)
from repro.kernel.syscalls.table import syscall
from repro.kernel.waits import WouldBlock

SECCOMP_SET_MODE_STRICT = 0
SECCOMP_SET_MODE_FILTER = 1

FUTEX_WAIT = 0
FUTEX_WAKE = 1
FUTEX_PRIVATE_FLAG = 128

ARCH_SET_GS = 0x1001
ARCH_SET_FS = 0x1002

_SOCK_FILTER = struct.Struct("<HBBI")

#: Deterministic entropy source for getrandom (reproducible runs).
_entropy = random.Random(0x5EED)


@syscall("prctl")
def sys_prctl(kernel, task, args):
    option = args[0]
    if option == PR_SET_SYSCALL_USER_DISPATCH:
        mode, offset, length, selector_ptr = args[1], args[2], args[3], args[4]
        if mode == PR_SYS_DISPATCH_OFF:
            task.sud = None
            return 0
        if mode != PR_SYS_DISPATCH_ON:
            return -errno.EINVAL
        if selector_ptr:
            try:
                task.mem.read_u8(selector_ptr, check="read")
            except PageFault:
                return -errno.EFAULT
        task.sud = SudState(
            selector_addr=selector_ptr, allow_start=offset, allow_len=length
        )
        return 0
    return -errno.EINVAL


@syscall("arch_prctl")
def sys_arch_prctl(kernel, task, args):
    code, addr = args[0], args[1]
    if code == ARCH_SET_GS:
        task.regs.gs_base = addr
        return 0
    if code == ARCH_SET_FS:
        return 0  # fs is not modelled; accepted for compatibility
    return -errno.EINVAL


@syscall("seccomp")
def sys_seccomp(kernel, task, args):
    op, flags, prog_ptr = args[0], args[1], args[2]
    if op == SECCOMP_SET_MODE_STRICT:
        from repro.kernel.seccomp.filter import FilterBuilder

        task.seccomp_filters.append(
            FilterBuilder.allowlist_syscalls([0, 1, 60, 15])
        )
        return 0
    if op != SECCOMP_SET_MODE_FILTER:
        return -errno.EINVAL
    try:
        length = task.mem.read_u16(prog_ptr, check="read")
        insns_ptr = task.mem.read_u64(prog_ptr + 8, check="read")
        raw = task.mem.read(insns_ptr, length * 8, check="read")
    except PageFault:
        return -errno.EFAULT
    insns = [
        BpfInsn(*_SOCK_FILTER.unpack_from(raw, i * 8)) for i in range(length)
    ]
    try:
        program = BpfProgram(insns)
    except BpfError:
        return -errno.EINVAL
    task.seccomp_filters.append(program)
    return 0


@syscall("set_tid_address")
def sys_set_tid_address(kernel, task, args):
    task.clear_child_tid = args[0]
    return task.tid


@syscall("set_robust_list")
def sys_set_robust_list(kernel, task, args):
    task.robust_list = args[0]
    return 0


@syscall("futex")
def sys_futex(kernel, task, args):
    uaddr, op, val = args[0], args[1], args[2]
    op &= ~FUTEX_PRIVATE_FLAG
    key = (id(task.mem), uaddr)
    if op == FUTEX_WAIT:
        try:
            current = task.mem.read_u32(uaddr, check="read")
        except PageFault:
            return -errno.EFAULT
        if current != val:
            return -errno.EAGAIN
        waiter = {"woken": False}
        kernel.futex_queues.setdefault(key, []).append(waiter)
        raise WouldBlock(lambda: waiter["woken"])
    if op == FUTEX_WAKE:
        queue = kernel.futex_queues.get(key, [])
        woken = 0
        while queue and woken < val:
            queue.pop(0)["woken"] = True
            woken += 1
        return woken
    return -errno.ENOSYS


@syscall("nanosleep")
def sys_nanosleep(kernel, task, args):
    return _sleep_common(kernel, task, args[0])


@syscall("clock_nanosleep")
def sys_clock_nanosleep(kernel, task, args):
    return _sleep_common(kernel, task, args[2])


def _sleep_common(kernel, task, req_ptr):
    deadline = getattr(task, "_sleep_deadline", None)
    if deadline is not None:
        if kernel.now >= deadline:
            task._sleep_deadline = None
            return 0
    else:
        try:
            sec = task.mem.read_u64(req_ptr, check="read")
            nsec = task.mem.read_u64(req_ptr + 8, check="read")
        except PageFault:
            return -errno.EFAULT
        cycles = int((sec + nsec / 1e9) * kernel.costs.frequency_hz)
        deadline = kernel.now + cycles
        task._sleep_deadline = deadline
        kernel.post_event(deadline, lambda: None)
    raise WouldBlock(lambda: kernel.now >= deadline)


@syscall("clock_gettime")
def sys_clock_gettime(kernel, task, args):
    tp = args[1]
    seconds = kernel.now / kernel.costs.frequency_hz
    sec = int(seconds)
    nsec = int((seconds - sec) * 1e9)
    try:
        task.mem.write_u64(tp, sec, check="write")
        task.mem.write_u64(tp + 8, nsec, check="write")
    except PageFault:
        return -errno.EFAULT
    return 0


@syscall("time")
def sys_time(kernel, task, args):
    seconds = int(kernel.now / kernel.costs.frequency_hz)
    if args[0]:
        try:
            task.mem.write_u64(args[0], seconds, check="write")
        except PageFault:
            return -errno.EFAULT
    return seconds


@syscall("getrandom")
def sys_getrandom(kernel, task, args):
    buf, count = args[0], args[1]
    data = bytes(_entropy.getrandbits(8) for _ in range(count))
    kernel.charge(task, kernel.costs.copy_cost(count))
    try:
        task.mem.write(buf, data, check="write")
    except PageFault:
        return -errno.EFAULT
    return count


@syscall("uname")
def sys_uname(kernel, task, args):
    fields = [b"Linux", b"repro", b"5.15.0-sim", b"#1 SMP repro", b"x86_64", b""]
    try:
        for i, field in enumerate(fields):
            task.mem.write(args[0] + 65 * i, field.ljust(65, b"\x00"),
                           check="write")
    except PageFault:
        return -errno.EFAULT
    return 0
