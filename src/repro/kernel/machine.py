"""The public Machine facade: kernel + CPU + scheduler in one object."""

from __future__ import annotations

from repro.cpu.costs import CostModel
from repro.kernel.kernel import Kernel
from repro.kernel.scheduler import Scheduler
from repro.kernel.task import Task, TaskState
from repro.loader.image import ProgramImage
from repro.loader.loading import load_into
from repro.mem.address_space import AddressSpace


class Process:
    """Handle for a loaded program (its thread-group leader task)."""

    def __init__(self, machine: "Machine", task: Task):
        self.machine = machine
        self.task = task

    @property
    def pid(self) -> int:
        return self.task.pid

    @property
    def alive(self) -> bool:
        return self.task.alive

    @property
    def exit_code(self) -> int | None:
        return self.task.exit_code

    @property
    def term_signal(self) -> int | None:
        return self.task.term_signal

    @property
    def stdout(self) -> bytes:
        return bytes(self.task.stdout)

    @property
    def stderr(self) -> bytes:
        return bytes(self.task.stderr)

    def threads(self) -> list[Task]:
        return [
            t for t in self.machine.kernel.tasks.values() if t.pid == self.task.pid
        ]


class Machine:
    """A complete simulated machine.

    ::

        machine = Machine()
        proc = machine.load(image)
        machine.run()
        print(proc.stdout, proc.exit_code)
    """

    def __init__(
        self,
        costs: CostModel | None = None,
        *,
        quantum: int = 64,
        policy=None,
        translation_cache: bool = True,
        superblocks: bool = True,
        tracer=None,
        cores: int = 1,
        smp_seed: int = 0,
        mmap_min_addr: int = 0,
        ring_park_timeout: int | None = None,
    ):
        self.costs = costs or CostModel()
        self.kernel = Kernel(
            self.costs,
            translation_cache=translation_cache,
            superblocks=superblocks,
        )
        self.kernel.mmap_min_addr = mmap_min_addr
        self.kernel.ring_park_timeout = ring_park_timeout
        self.scheduler = Scheduler(
            self.kernel, quantum=quantum, policy=policy,
            cores=cores, smp_seed=smp_seed,
        )
        self.kernel.scheduler = self.scheduler
        self.tracer = None
        if tracer is not None:
            self.attach_tracer(tracer)

    # ------------------------------------------------------------ observability
    def attach_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) an observability tracer.

        Wires the :class:`repro.obs.Tracer` into every instrumented layer:
        kernel dispatch, scheduler, signal delivery and the CPU translation
        cache.  Interposition tools read ``machine.kernel.tracer`` at their
        own emit sites, so tools installed before or after this call both
        report.  Simulated cycle accounting is identical either way.
        """
        self.tracer = tracer
        self.kernel.tracer = tracer
        self.kernel.cpu.tracer = tracer
        if tracer is not None:
            tracer.bind(self)

    # ------------------------------------------------------------------ time
    @property
    def clock(self) -> int:
        """Simulated elapsed time in CPU cycles.

        On a multi-core machine this is the *frontier* — the maximum over
        all per-core clocks — since cores retire cycles in parallel.  On a
        single-core machine it is exactly the kernel clock, as it always
        was.
        """
        sched = self.scheduler
        if not sched.smp:
            return self.kernel.clock
        return sched.frontier()

    @property
    def seconds(self) -> float:
        return self.costs.cycles_to_seconds(self.clock)

    # ------------------------------------------------------------------- SMP
    @property
    def cores(self) -> list:
        """The per-core execution contexts (one :class:`Core` per core)."""
        return self.scheduler.cores

    @property
    def n_cores(self) -> int:
        return len(self.scheduler.cores)

    def superblock_stats(self) -> dict:
        """Tier-2 interpreter counters (compiles, invalidations, runs)."""
        return self.scheduler.superblock_stats()

    def core_stats(self) -> list[dict]:
        """Per-core utilization and coherence counters.

        ``utilization`` is busy cycles over the machine frontier;
        ``shootdowns`` counts cross-core translation-cache invalidations
        this core *received* from rewrites on other cores.
        """
        sched = self.scheduler
        frontier = self.clock
        stats = []
        for core in sched.cores:
            snap = core.snapshot(frontier)
            if not sched.smp:
                # Legacy loop: core 0's clock is the kernel clock.
                snap["clock"] = self.kernel.clock
                snap["tasks"] = len(self.kernel.live_tasks())
            stats.append(snap)
        return stats

    # ----------------------------------------------------------------- loading
    def load(
        self,
        image: ProgramImage,
        argv: tuple[str, ...] = (),
        *,
        register_binary: bool = True,
    ) -> Process:
        """Create a process from ``image`` (also registering it for execve)."""
        mem = AddressSpace()
        task = self.kernel.new_task(mem, comm=image.name)
        load_into(self.kernel, task, image, argv)
        if register_binary:
            self.kernel.binaries.setdefault("/bin/" + image.name, image)
        return Process(self, task)

    def register_binary(self, path: str, image: ProgramImage) -> None:
        """Make ``image`` reachable by execve at ``path``."""
        self.kernel.binaries[self.kernel.fs.normalize(path)] = image

    # ------------------------------------------------------------------- run
    def run(
        self,
        *,
        max_instructions: int | None = None,
        until=None,
        raise_on_deadlock: bool = True,
    ) -> None:
        """Run the scheduler until everything exits (or a bound is hit)."""
        self.scheduler.run(
            max_instructions=max_instructions,
            until=until,
            raise_on_deadlock=raise_on_deadlock,
        )

    def run_process(self, process: Process, *, max_instructions: int = 50_000_000) -> int:
        """Run until ``process`` exits and return its exit code."""
        from repro.kernel.scheduler import run_to_exit

        return run_to_exit(self, process, max_instructions)

    # ------------------------------------------------------------ conveniences
    @property
    def fs(self):
        return self.kernel.fs

    @property
    def net(self):
        return self.kernel.net

    def zombies(self) -> list[Task]:
        return [
            t for t in self.kernel.tasks.values() if t.state is TaskState.ZOMBIE
        ]
