"""The kernel: clock, tasks, syscall entry path, signals, events.

The syscall entry path follows Fig. 1 of the paper.  On every syscall
instruction:

1. the mode-switch round trip is charged and ``rcx``/``r11`` are clobbered
   (the x86-64 syscall ABI),
2. if Syscall User Dispatch is armed, the entry path is slower
   (``interception_check``); unless the invocation address is allowlisted,
   the user-space selector byte is read (``sud_selector_read``) and a BLOCK
   selector aborts the syscall with a synchronous SIGSYS,
3. installed seccomp filters run (real cBPF, charged per instruction),
4. a ptrace tracer gets syscall-entry and syscall-exit stops (two context
   switches each),
5. the syscall is dispatched.

Interposer tools re-issue syscalls through :meth:`Kernel.do_syscall`, which
walks the same gate — so an interposer running under SUD pays the
SUD-enabled entry cost on every re-issued syscall, exactly the effect
Table II isolates with its "baseline with SUD enabled" row.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.arch.registers import (
    MASK64,
    RAX,
    RCX,
    R11,
    SYSCALL_ARG_REGS,
    to_signed,
)
from repro.cpu.core import CPU
from repro.cpu.costs import CostModel
from repro.errors import BreakpointTrap, InvalidOpcode, PageFault
from repro.kernel import errno
from repro.kernel.ptrace import TraceeControl
from repro.kernel.fs import SimFS, StdStream
from repro.kernel.net import Network
from repro.kernel.seccomp.core import (
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_KILL_THREAD,
    SECCOMP_RET_LOG,
    SECCOMP_RET_TRACE,
    SECCOMP_RET_TRAP,
    SECCOMP_RET_USER_NOTIF,
    SeccompData,
    evaluate_filters,
)
from repro.kernel.signals import (
    AUDIT_ARCH_X86_64,
    SIGILL,
    SIGSEGV,
    SIGSYS,
    SIGTRAP,
    SYS_SECCOMP,
    SYS_USER_DISPATCH,
    SignalDelivery,
)
from repro.kernel.sud import SELECTOR_ALLOW
from repro.kernel.task import Task, TaskState
from repro.kernel.waits import DeadlockError, WouldBlock
from repro.errors import KernelError


class HcallContext:
    """Passed to host-call handlers: the bridge between guest and host code."""

    def __init__(self, kernel: "Kernel", task: Task):
        self.kernel = kernel
        self.task = task

    @property
    def regs(self):
        return self.task.regs

    @property
    def mem(self):
        return self.task.mem

    def charge(self, cycles: int) -> None:
        """Account simulated work done by the host-side handler."""
        self.kernel.charge(self.task, cycles)

    def do_syscall(
        self, sysno: int, args: tuple[int, ...] = (), *, insn_addr: int = 0
    ) -> int | None:
        """Issue a syscall on behalf of the task (full entry path)."""
        return self.kernel.do_syscall(
            self.task, sysno, tuple(args), insn_addr=insn_addr
        )

    def defer(self, predicate: Callable[[], bool]) -> None:
        """Park the task and re-execute the current host call later.

        The guest rip is rewound over the hcall instruction and the task
        blocks until ``predicate`` holds; the scheduler then re-runs the
        hcall (the handler sees the same event again).  Unlike
        ``Kernel.wait_until`` this never nests scheduler invocations on the
        Python stack, so any number of tasks may be parked simultaneously —
        the primitive lockstep monitors need.
        """
        from repro.arch.isa import EXT, Mnemonic
        from repro.kernel.task import TaskState

        hcall_len = EXT[0x40][1]
        assert EXT[0x40][0] is Mnemonic.HCALL
        self.task.regs.rip -= hcall_len
        self.task.state = TaskState.BLOCKED
        self.task.blocked_reason = predicate
        self.task.blocked_interruptible = False
        self.task.in_syscall_restart = None


class Kernel:
    """The simulated OS kernel."""

    def __init__(
        self,
        costs: CostModel | None = None,
        *,
        translation_cache: bool = True,
        superblocks: bool = True,
    ):
        self.costs = costs or CostModel()
        self.clock = 0
        self.cpu = CPU(
            self, self.costs,
            translation_cache=translation_cache,
            superblocks=superblocks,
        )
        self.tasks: dict[int, Task] = {}
        #: Tasks currently alive (RUNNABLE/BLOCKED), maintained on the only
        #: alive -> not-alive transition (:meth:`terminate_task`) so the
        #: scheduler never rescans the full task table per round.
        self._live: dict[int, Task] = {}
        self._next_tid = 1000
        self.fs = SimFS()
        self.net = Network(self)
        self.signals = SignalDelivery(self)

        self._events: list[tuple[int, int, Callable[[], None]]] = []
        self._event_seq = 0

        self._hcalls: list[Callable[[HcallContext], None]] = []
        self.exec_hooks: list[Callable[[Task], None]] = []

        #: "filesystem image" of loadable programs: path -> ProgramImage
        self.binaries: dict[str, object] = {}

        #: futex wait queues: (address-space id, addr) -> list of waiter dicts
        self.futex_queues: dict[tuple[int, int], list[dict]] = {}

        #: host supervisor for SECCOMP_RET_USER_NOTIF, or None
        self.usernotif_supervisor = None

        #: fault-injection hook consulted by :meth:`dispatch`, or None.
        #: See :class:`repro.faults.injector.FaultInjector`.
        self.fault_injector = None

        #: deadline (cycles) for async-parked ring entries, or None for
        #: unbounded parks.  When set, a :class:`RingWaiter` that stays
        #: parked this long completes with ``-ETIMEDOUT`` instead of
        #: waiting forever (the fleet hang-recovery path; PR 10).
        self.ring_park_timeout: int | None = None

        #: optional global syscall trace: (tid, sysno, args, ret)
        self.trace_syscalls = False
        self.syscall_log: list[tuple[int, int, tuple[int, ...], int | None]] = []

        #: observability tracer (:class:`repro.obs.Tracer`), attached via
        #: ``Machine.attach_tracer``; every emit site is ``if tracer``-guarded.
        self.tracer = None

        from repro.kernel.syscalls import build_registry

        self.syscall_registry = build_registry()
        self.scheduler = None  # attached by the Machine

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> int:
        return self.clock

    @property
    def current_core_id(self) -> int:
        """Id of the core whose slice is currently executing (0 if 1-core)."""
        sched = self.scheduler
        return sched._current_core.id if sched is not None else 0

    def charge(self, task: Task | None, cycles: int) -> None:
        self.clock += cycles
        if task is not None:
            task.cpu_cycles += cycles

    def post_event(self, at: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at absolute cycle time ``at``."""
        self._event_seq += 1
        heapq.heappush(self._events, (at, self._event_seq, callback))

    def post_event_in(self, delta: int, callback: Callable[[], None]) -> None:
        self.post_event(self.clock + delta, callback)

    def next_event_time(self) -> int | None:
        return self._events[0][0] if self._events else None

    def fire_due_events(self) -> bool:
        """Run all events due at or before the current clock."""
        fired = False
        while self._events and self._events[0][0] <= self.clock:
            _at, _seq, callback = heapq.heappop(self._events)
            callback()
            fired = True
        return fired

    def advance_time(self) -> bool:
        """Jump the clock to the next pending event and fire it.

        Returns False when no event exists (nothing can ever happen).
        """
        if not self._events:
            return False
        at, _seq, callback = heapq.heappop(self._events)
        if at > self.clock:
            self.clock = at
        callback()
        return True

    # ----------------------------------------------------------------- tasks
    def allocate_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def new_task(self, mem, *, pid: int | None = None, comm: str = "task") -> Task:
        tid = self.allocate_tid()
        task = Task(tid, pid if pid is not None else tid, mem)
        task.comm = comm
        task.fdtable.fds[1] = StdStream("stdout")
        task.fdtable.fds[2] = StdStream("stderr")
        self.tasks[tid] = task
        self._live[tid] = task
        if self.scheduler is not None:
            self.scheduler.on_task_created(task)
        return task

    def live_tasks(self) -> list[Task]:
        live = self._live
        stale = [tid for tid, t in live.items() if not t.alive]
        for tid in stale:  # self-heal if a task died outside terminate_task
            del live[tid]
        return list(live.values())

    def terminate_task(self, task: Task, *, code: int = 0, signal: int | None = None) -> None:
        if not task.alive:
            return
        task.exit_code = code
        task.term_signal = signal
        task.state = TaskState.ZOMBIE
        self._live.pop(task.tid, None)
        if task.clear_child_tid:
            try:
                task.mem.write_u32(task.clear_child_tid, 0, check=None)
            except PageFault:
                pass
        # Wake parents waiting in wait4 via the generic blocking machinery.

    def terminate_group(self, task: Task, *, code: int = 0, signal: int | None = None) -> None:
        for other in list(self.tasks.values()):
            if other.pid == task.pid and other.alive:
                self.terminate_task(other, code=code, signal=signal)

    # ----------------------------------------------------------------- hcalls
    def register_hcall(self, fn: Callable[[HcallContext], None]) -> int:
        self._hcalls.append(fn)
        return len(self._hcalls) - 1

    # -------------------------------------------------- CPU environment hooks
    def on_hcall(self, task: Task, hook_id: int) -> None:
        if not 0 <= hook_id < len(self._hcalls):
            raise InvalidOpcode(task.regs.rip, None)
        self._hcalls[hook_id](HcallContext(self, task))

    def on_hlt(self, task: Task) -> None:
        # hlt is privileged in user mode: #GP -> SIGSEGV on Linux.
        self.force_signal(task, SIGSEGV, {"addr": task.regs.rip})

    # ------------------------------------------------------- syscall entry path
    def on_syscall(self, task: Task) -> None:
        """A syscall instruction retired in ``task`` (rip already past it)."""
        regs = task.regs
        sysno = to_signed(regs.read(RAX))
        insn_addr = regs.rip - 2
        self.charge(task, self.costs.syscall_entry_exit)
        # The syscall instruction architecture clobbers rcx and r11.
        regs.write(RCX, regs.rip)
        regs.write(R11, 0x246)

        args = tuple(regs.read(r) for r in SYSCALL_ARG_REGS)

        gate = self._interception_gate(task, sysno, args, insn_addr)
        if gate is not None:
            if isinstance(gate, tuple):  # ("ret", value): errno / notif verdict
                regs.write(RAX, gate[1] & MASK64)
                return
            if gate != "allow":
                return  # handled (signal delivered / killed)

        skip_exit_stop = False
        if task.tracer is not None:
            self.charge(task, 2 * self.costs.context_switch)
            ctl = TraceeControl(self, task)
            task.tracer.on_syscall_enter(ctl)
            if ctl._skip_retval is not None:
                regs.write(RAX, ctl._skip_retval & MASK64)
                skip_exit_stop = True
            else:
                sysno = to_signed(regs.read(RAX))
                args = tuple(regs.read(r) for r in SYSCALL_ARG_REGS)

        if not skip_exit_stop:
            try:
                ret = self.dispatch(task, sysno, args)
            except WouldBlock as block:
                # Park the task; the scheduler restarts the syscall later.
                task.state = TaskState.BLOCKED
                task.blocked_reason = block.ready
                task.blocked_interruptible = block.interruptible
                task.in_syscall_restart = (sysno, args)
                return
            if ret is not None:
                regs.write(RAX, ret & MASK64)

        if task.tracer is not None and task.alive:
            self.charge(task, 2 * self.costs.context_switch)
            task.tracer.on_syscall_exit(TraceeControl(self, task))

    def _interception_gate(
        self, task: Task, sysno: int, args: tuple[int, ...], insn_addr: int,
        *, sud: bool = True,
    ) -> str | tuple | None:
        """SUD + seccomp checks.  Returns:

        * ``None`` — nothing armed, proceed on the fast kernel entry,
        * ``"allow"`` — armed but permitted, proceed,
        * ``"handled"`` — syscall aborted (signal delivered / task killed),
        * ``("ret", value)`` — syscall aborted with a result the caller
          must surface (seccomp RET_ERRNO, user-notif verdict).

        ``sud=False`` skips the syscall-instruction-boundary mechanisms
        (SUD selector, ptrace arming) — used for ring entries, which never
        cross via a syscall instruction of their own but still pass every
        seccomp filter per entry.
        """
        regs = task.regs
        if sud:
            armed = task.sud is not None or task.seccomp_filters or task.tracer
        else:
            armed = bool(task.seccomp_filters)
        if not armed:
            return None
        self.charge(task, self.costs.interception_check)

        if sud and task.sud is not None and not task.sud.allows_address(insn_addr):
            self.charge(task, self.costs.sud_selector_read)
            try:
                selector = task.mem.read_u8(task.sud.selector_addr, check="read")
            except PageFault:
                self.force_signal(task, SIGSEGV, {"addr": task.sud.selector_addr})
                return "handled"
            if selector != SELECTOR_ALLOW:
                info = {
                    "code": SYS_USER_DISPATCH,
                    "addr": regs.rip,  # si_call_addr: return address of the syscall
                    "syscall": sysno & 0xFFFFFFFF,
                }
                self.signals.deliver_now(task, SIGSYS, info)
                return "handled"

        if task.seccomp_filters:
            data = SeccompData(
                sysno & 0xFFFFFFFF, AUDIT_ARCH_X86_64, insn_addr, args
            )
            result = evaluate_filters(task.seccomp_filters, data)
            self.charge(
                task,
                self.costs.seccomp_fixed
                + self.costs.seccomp_per_insn * result.insns_executed,
            )
            action = result.action
            if action in (SECCOMP_RET_ALLOW, SECCOMP_RET_LOG):
                return "allow"
            if action == SECCOMP_RET_ERRNO:
                return ("ret", -result.data)
            if action == SECCOMP_RET_TRAP:
                info = {
                    "code": SYS_SECCOMP,
                    "addr": regs.rip,
                    "syscall": sysno & 0xFFFFFFFF,
                    "errno": result.data,
                }
                self.signals.deliver_now(task, SIGSYS, info)
                return "handled"
            if action == SECCOMP_RET_USER_NOTIF:
                return self._user_notif(task, sysno, args)
            if action == SECCOMP_RET_TRACE:
                return "allow"  # tracer stop follows in on_syscall
            if action == SECCOMP_RET_KILL_THREAD:
                self.terminate_task(task, signal=SIGSYS)
                return "handled"
            if action == SECCOMP_RET_KILL_PROCESS:
                self.terminate_group(task, signal=SIGSYS)
                return "handled"
        return "allow"

    def _user_notif(
        self, task: Task, sysno: int, args: tuple[int, ...]
    ) -> str | tuple:
        """SECCOMP_RET_USER_NOTIF: wake a host-level supervisor.

        Charged as two context switches each way, like the real notifier
        fd ping-pong.
        """
        if self.usernotif_supervisor is None:
            return ("ret", -errno.ENOSYS)
        self.charge(task, 2 * self.costs.context_switch)
        verdict = self.usernotif_supervisor(self, task, sysno, args)
        self.charge(task, 2 * self.costs.context_switch)
        if verdict is None:
            return "allow"  # supervisor says: let the kernel execute it
        return ("ret", verdict)

    # ------------------------------------------------------------- dispatching
    def dispatch(self, task: Task, sysno: int, args: tuple[int, ...]) -> int | None:
        """Run the syscall implementation (no interception).

        A blocking syscall raises WouldBlock out of here and is re-dispatched
        later, so the tracer sees exactly one ``syscall`` event per
        *completed* dispatch, stamped at completion with the dispatch's
        cycle cost.
        """
        tracer = self.tracer
        start = self.clock if tracer is not None else 0
        if self.fault_injector is not None:
            injected = self.fault_injector.intercept(self, task, sysno, args)
            if injected is not None:
                if self.trace_syscalls:
                    self.syscall_log.append((task.tid, sysno, args, injected))
                if tracer is not None:
                    tracer.syscall(self.clock, task.tid, sysno, args, injected,
                                   self.clock - start, injected=True)
                return injected
        entry = self.syscall_registry.get(sysno)
        if entry is None:
            self.charge(task, self.costs.nosys_penalty)
            ret: int | None = -errno.ENOSYS
        else:
            self.charge(task, entry.service_cost)
            ret = entry.fn(self, task, args)
        if self.trace_syscalls:
            self.syscall_log.append((task.tid, sysno, args, ret))
        if tracer is not None:
            tracer.syscall(self.clock, task.tid, sysno, args, ret,
                           self.clock - start)
        return ret

    def do_syscall(
        self, task: Task, sysno: int, args: tuple[int, ...] = (), *, insn_addr: int = 0
    ) -> int | None:
        """Issue a syscall on behalf of ``task`` through the full entry path.

        This is what interposer tools use to re-issue the original syscall:
        it pays the mode switch and any armed interception-check costs, and
        it *blocks cooperatively* (scheduling other tasks / advancing time)
        instead of raising WouldBlock.
        """
        args = tuple(args) + (0,) * (6 - len(args))
        self.charge(task, self.costs.syscall_entry_exit)
        gate = self._interception_gate(task, sysno, args, insn_addr=insn_addr)
        if gate == "handled" or isinstance(gate, tuple):
            raise KernelError(
                "interposer-issued syscall was itself intercepted "
                "(selector not ALLOW, or a seccomp filter fired)"
            )
        return self.dispatch_blocking(task, sysno, args)

    def dispatch_blocking(
        self, task: Task, sysno: int, args: tuple[int, ...]
    ) -> int | None:
        """Dispatch ``sysno``, blocking *cooperatively* instead of raising.

        Shared by interposer-issued syscalls (:meth:`do_syscall`) and the
        ring drain (``repro.kernel.uring``), both of which run inside a
        host-side frame that cannot be parked by the scheduler.
        """
        while True:
            try:
                return self.dispatch(task, sysno, args)
            except WouldBlock as block:
                if not block.interruptible:
                    self.wait_until(task, block.ready)
                    continue
                # Same contract as the scheduler's parked-task path: a
                # deliverable signal aborts the wait and the syscall
                # returns -EINTR (the handler runs at the task's next
                # instruction boundary).  Without this, an interposed
                # blocking syscall could never be interrupted.
                self.wait_until(
                    task,
                    lambda: block.ready() or task.has_deliverable_signal(),
                )
                if not block.ready():
                    return -errno.EINTR

    def complete_ring_waiters(self, task: Task) -> int:
        """Drive ``task``'s parked aggregation-ring entries (async drain);
        posts CQEs for any whose wakeup has fired.  Thin delegate so the
        scheduler can drive waiters without importing the ring module."""
        from repro.kernel import uring

        return uring.complete_ring_waiters(self, task)

    # ------------------------------------------------------- cooperative waits
    def wait_until(self, task: Task, predicate: Callable[[], bool]) -> None:
        """Block ``task`` until ``predicate``, running others / advancing time."""
        guard = 0
        while not predicate():
            guard += 1
            if guard > 10_000_000:  # pragma: no cover - safety net
                raise DeadlockError("wait_until spun without progress")
            progressed = False
            if self.scheduler is not None:
                progressed = self.scheduler.run_others_once(task)
            if self.fire_due_events():
                progressed = True
            if not progressed and not self.advance_time():
                raise DeadlockError(
                    f"task {task.tid} waits forever: no runnable tasks or events"
                )
            # Nested slices may have run a sibling thread sharing this
            # address space; restore this task's protection-key rights
            # before its host-side caller touches user memory again.
            task.mem.active_pkru = task.regs.pkru

    # ----------------------------------------------------------------- faults
    def force_signal(self, task: Task, sig: int, info: dict | None = None) -> None:
        """Deliver a synchronous fault signal (SIGSEGV/SIGILL/SIGTRAP)."""
        self.signals.deliver_now(task, sig, info or {})

    def handle_fault(self, task: Task, exc: Exception, insn_addr: int) -> None:
        """Convert a CPU-raised fault into the architectural signal."""
        task.regs.rip = insn_addr  # re-execute after a handler fixes things
        if isinstance(exc, PageFault):
            self.force_signal(task, SIGSEGV, {"addr": exc.address})
        elif isinstance(exc, BreakpointTrap):
            task.regs.rip = insn_addr + 1  # int3 traps after execution
            self.force_signal(task, SIGTRAP, {"addr": exc.address})
        elif isinstance(exc, InvalidOpcode):
            self.force_signal(task, SIGILL, {"addr": exc.address})
        else:  # pragma: no cover - programming error
            raise exc

    # ------------------------------------------------------------- conveniences
    def default_restorer(self, task: Task) -> int:
        """The vdso-style default sigreturn restorer for the task's image."""
        addr = getattr(task, "vdso_sigreturn", 0)
        if not addr:
            raise KernelError(
                "no default restorer mapped; register handlers with "
                "an explicit sa_restorer or load programs via the loader"
            )
        return addr

    def post_signal(self, task: Task, sig: int, info: dict | None = None) -> None:
        self.signals.post(task, sig, info)
        if (
            task.state == TaskState.BLOCKED
            and task.blocked_interruptible
            and self.signals.would_act(task, sig)
            and not task.signal_blocked(sig)
        ):
            # Interruptible sleep: wake; the interrupted syscall returns EINTR.
            task.state = TaskState.RUNNABLE
            task.blocked_reason = None
            # SMP: the wake happens at the *sender's* clock; the sleeper's
            # (possibly idle, hence lagging) core must not run it earlier.
            if task.wake_clock < self.clock:
                task.wake_clock = self.clock
            if task.in_syscall_restart is not None:
                task.in_syscall_restart = None
                task.regs.write(RAX, (-errno.EINTR) & MASK64)
