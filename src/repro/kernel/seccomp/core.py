"""seccomp actions and per-task filter evaluation."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.kernel.seccomp.bpf import BpfProgram, run_bpf

# Action values (match Linux uapi).
SECCOMP_RET_KILL_PROCESS = 0x80000000
SECCOMP_RET_KILL_THREAD = 0x00000000
SECCOMP_RET_TRAP = 0x00030000
SECCOMP_RET_ERRNO = 0x00050000
SECCOMP_RET_USER_NOTIF = 0x7FC00000
SECCOMP_RET_TRACE = 0x7FF00000
SECCOMP_RET_LOG = 0x7FFC0000
SECCOMP_RET_ALLOW = 0x7FFF0000

SECCOMP_RET_ACTION_FULL = 0xFFFF0000
SECCOMP_RET_DATA = 0x0000FFFF

#: Action precedence, strongest first (Linux semantics: with multiple
#: filters installed, the most restrictive result wins).
_PRECEDENCE = (
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_KILL_THREAD,
    SECCOMP_RET_TRAP,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_USER_NOTIF,
    SECCOMP_RET_TRACE,
    SECCOMP_RET_LOG,
    SECCOMP_RET_ALLOW,
)
_RANK = {action: i for i, action in enumerate(_PRECEDENCE)}

_DATA_STRUCT = struct.Struct("<II Q 6Q")


@dataclass(frozen=True)
class SeccompData:
    """The ``struct seccomp_data`` a filter sees."""

    nr: int
    arch: int
    instruction_pointer: int
    args: tuple[int, int, int, int, int, int]

    def pack(self) -> bytes:
        return _DATA_STRUCT.pack(
            self.nr & 0xFFFFFFFF,
            self.arch & 0xFFFFFFFF,
            self.instruction_pointer,
            *self.args,
        )


# Offsets within seccomp_data, for building filters.
SECCOMP_DATA_NR = 0
SECCOMP_DATA_ARCH = 4
SECCOMP_DATA_IP_LO = 8
SECCOMP_DATA_IP_HI = 12


def seccomp_data_arg(index: int, high: bool = False) -> int:
    """Byte offset of the low/high 32 bits of syscall argument ``index``."""
    return 16 + 8 * index + (4 if high else 0)


@dataclass(frozen=True)
class SeccompResult:
    """Combined verdict of all installed filters."""

    action: int  # masked action value
    data: int  # SECCOMP_RET_DATA bits of the winning verdict
    insns_executed: int  # total BPF instructions run (for the cost model)


def evaluate_filters(filters: list[BpfProgram], data: SeccompData) -> SeccompResult:
    """Run every installed filter; the most restrictive action wins."""
    packed = data.pack()
    best_action = SECCOMP_RET_ALLOW
    best_data = 0
    total_insns = 0
    for program in filters:
        ret, executed = run_bpf(program, packed)
        total_insns += executed
        action = ret & SECCOMP_RET_ACTION_FULL
        rank = _RANK.get(action)
        if rank is None:
            # Unknown action: the kernel treats it as KILL_PROCESS.
            action, rank = SECCOMP_RET_KILL_PROCESS, 0
        if rank < _RANK[best_action]:
            best_action = action
            best_data = ret & SECCOMP_RET_DATA
    return SeccompResult(best_action, best_data, total_insns)
