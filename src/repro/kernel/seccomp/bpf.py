"""A classic (cBPF) Berkeley Packet Filter interpreter.

This is the filter machine seccomp runs in kernel space.  Its deliberate
restrictions — 32-bit loads from a fixed-size data area, no pointer
dereferencing, bounded forward-only jumps — are exactly why the paper
classifies seccomp-bpf as *not expressive* (§II-A): a filter can read the
raw argument registers but can never follow an argument pointer into user
memory.

The instruction format and opcode values match Linux's
``struct sock_filter`` so real filter constants would assemble unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BpfError

# Instruction classes.
BPF_LD = 0x00
BPF_LDX = 0x01
BPF_ST = 0x02
BPF_STX = 0x03
BPF_ALU = 0x04
BPF_JMP = 0x05
BPF_RET = 0x06
BPF_MISC = 0x07

# Width / addressing mode.
BPF_W = 0x00
BPF_ABS = 0x20
BPF_IND = 0x40
BPF_MEM = 0x60
BPF_IMM = 0x00
BPF_LEN = 0x80

# Sources.
BPF_K = 0x00
BPF_X = 0x08
BPF_A = 0x10

# ALU/JMP ops.
BPF_ADD = 0x00
BPF_SUB = 0x10
BPF_MUL = 0x20
BPF_DIV = 0x30
BPF_OR = 0x40
BPF_AND = 0x50
BPF_LSH = 0x60
BPF_RSH = 0x70
BPF_NEG = 0x80
BPF_MOD = 0x90
BPF_XOR = 0xA0

BPF_JA = 0x00
BPF_JEQ = 0x10
BPF_JGT = 0x20
BPF_JGE = 0x30
BPF_JSET = 0x40

# MISC ops.
BPF_TAX = 0x00
BPF_TXA = 0x80

BPF_MAXINSNS = 4096
_SCRATCH_SLOTS = 16
_U32 = 0xFFFFFFFF


@dataclass(frozen=True)
class BpfInsn:
    """One ``sock_filter`` instruction."""

    code: int
    jt: int = 0
    jf: int = 0
    k: int = 0


def stmt(code: int, k: int) -> BpfInsn:
    """Non-branching instruction (Linux's BPF_STMT macro)."""
    return BpfInsn(code, 0, 0, k)


def jump(code: int, k: int, jt: int, jf: int) -> BpfInsn:
    """Branching instruction (Linux's BPF_JUMP macro)."""
    return BpfInsn(code, jt, jf, k)


class BpfProgram:
    """A validated cBPF program."""

    def __init__(self, insns: list[BpfInsn]):
        if not insns:
            raise BpfError("empty BPF program")
        if len(insns) > BPF_MAXINSNS:
            raise BpfError("BPF program too long")
        self.insns = list(insns)
        self._validate()

    def _validate(self) -> None:
        """Static checks mirroring the kernel verifier: all jumps must land
        inside the program, and every path must end in a RET."""
        n = len(self.insns)
        for pc, insn in enumerate(self.insns):
            cls = insn.code & 0x07
            if cls == BPF_JMP:
                if insn.code == BPF_JMP | BPF_JA:
                    target = pc + 1 + insn.k
                    if not 0 <= target < n:
                        raise BpfError(f"jump out of range at pc={pc}")
                else:
                    for offset in (insn.jt, insn.jf):
                        target = pc + 1 + offset
                        if not 0 <= target < n:
                            raise BpfError(f"branch out of range at pc={pc}")
        last = self.insns[-1]
        if last.code & 0x07 not in (BPF_RET, BPF_JMP):
            raise BpfError("program can fall off the end")

    def __len__(self) -> int:
        return len(self.insns)


def run_bpf(program: BpfProgram, data: bytes) -> tuple[int, int]:
    """Run ``program`` against the packed data area.

    Returns ``(return_value, instructions_executed)``.  The instruction
    count feeds the cost model (seccomp charges per BPF instruction).
    """
    A = 0
    X = 0
    scratch = [0] * _SCRATCH_SLOTS
    pc = 0
    executed = 0
    insns = program.insns
    fuel = BPF_MAXINSNS * 4  # hard bound; validated programs cannot loop

    while fuel:
        fuel -= 1
        if pc >= len(insns):
            raise BpfError("BPF fell off the end")
        insn = insns[pc]
        executed += 1
        code = insn.code
        cls = code & 0x07
        pc += 1

        if cls == BPF_RET:
            src = code & 0x18
            if src == BPF_K:
                return insn.k & _U32, executed
            if src == BPF_A:
                return A & _U32, executed
            raise BpfError(f"bad RET source {code:#x}")

        if cls == BPF_LD:
            mode = code & 0xE0
            if mode == BPF_ABS:
                if insn.k + 4 > len(data) or insn.k < 0:
                    return 0, executed  # out-of-bounds load: reject (kernel kills)
                A = int.from_bytes(data[insn.k : insn.k + 4], "little")
            elif mode == BPF_IMM:
                A = insn.k & _U32
            elif mode == BPF_MEM:
                A = scratch[insn.k % _SCRATCH_SLOTS]
            else:
                raise BpfError(f"unsupported LD mode {code:#x}")
            continue

        if cls == BPF_LDX:
            mode = code & 0xE0
            if mode == BPF_IMM:
                X = insn.k & _U32
            elif mode == BPF_MEM:
                X = scratch[insn.k % _SCRATCH_SLOTS]
            else:
                raise BpfError(f"unsupported LDX mode {code:#x}")
            continue

        if cls == BPF_ST:
            scratch[insn.k % _SCRATCH_SLOTS] = A
            continue
        if cls == BPF_STX:
            scratch[insn.k % _SCRATCH_SLOTS] = X
            continue

        if cls == BPF_ALU:
            op = code & 0xF0
            operand = X if code & BPF_X else insn.k & _U32
            if op == BPF_ADD:
                A = (A + operand) & _U32
            elif op == BPF_SUB:
                A = (A - operand) & _U32
            elif op == BPF_MUL:
                A = (A * operand) & _U32
            elif op == BPF_DIV:
                if operand == 0:
                    return 0, executed
                A = (A // operand) & _U32
            elif op == BPF_MOD:
                if operand == 0:
                    return 0, executed
                A = (A % operand) & _U32
            elif op == BPF_OR:
                A = (A | operand) & _U32
            elif op == BPF_AND:
                A = (A & operand) & _U32
            elif op == BPF_XOR:
                A = (A ^ operand) & _U32
            elif op == BPF_LSH:
                A = (A << (operand & 31)) & _U32
            elif op == BPF_RSH:
                A = (A >> (operand & 31)) & _U32
            elif op == BPF_NEG:
                A = (-A) & _U32
            else:
                raise BpfError(f"unsupported ALU op {code:#x}")
            continue

        if cls == BPF_JMP:
            op = code & 0xF0
            if op == BPF_JA:
                pc += insn.k
                continue
            operand = X if code & BPF_X else insn.k & _U32
            if op == BPF_JEQ:
                taken = A == operand
            elif op == BPF_JGT:
                taken = A > operand
            elif op == BPF_JGE:
                taken = A >= operand
            elif op == BPF_JSET:
                taken = bool(A & operand)
            else:
                raise BpfError(f"unsupported JMP op {code:#x}")
            pc += insn.jt if taken else insn.jf
            continue

        if cls == BPF_MISC:
            op = code & 0xF8
            if op == BPF_TAX:
                X = A
            elif op == BPF_TXA:
                A = X
            else:
                raise BpfError(f"unsupported MISC op {code:#x}")
            continue

        raise BpfError(f"unsupported instruction class {code:#x}")

    raise BpfError("BPF fuel exhausted")
