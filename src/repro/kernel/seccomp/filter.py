"""High-level builder for common seccomp filter shapes.

The builder emits real cBPF that the interpreter in :mod:`bpf` executes —
filters constructed here pay per-instruction costs exactly like the kernel's
filter machine does, which is what makes the seccomp rows of the paper's
benchmarks meaningful.
"""

from __future__ import annotations

from repro.kernel.seccomp.bpf import (
    BPF_ABS,
    BPF_JEQ,
    BPF_JGE,
    BPF_JMP,
    BPF_K,
    BPF_LD,
    BPF_RET,
    BPF_W,
    BpfInsn,
    BpfProgram,
    jump,
    stmt,
)
from repro.kernel.seccomp.core import (
    SECCOMP_DATA_ARCH,
    SECCOMP_DATA_IP_HI,
    SECCOMP_DATA_IP_LO,
    SECCOMP_DATA_NR,
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL_PROCESS,
    SECCOMP_RET_TRAP,
)

_LD_W_ABS = BPF_LD | BPF_W | BPF_ABS
_JEQ_K = BPF_JMP | BPF_JEQ | BPF_K
_JGE_K = BPF_JMP | BPF_JGE | BPF_K
_RET_K = BPF_RET | BPF_K


class FilterBuilder:
    """Composable construction of common filter programs."""

    @staticmethod
    def allow_all() -> BpfProgram:
        return BpfProgram([stmt(_RET_K, SECCOMP_RET_ALLOW)])

    @staticmethod
    def deny_syscalls(
        sysnos: list[int],
        action: int = SECCOMP_RET_ERRNO | 1,
        *,
        check_arch: int | None = None,
    ) -> BpfProgram:
        """Allow everything except ``sysnos``, which get ``action``.

        With ``check_arch``, a mismatching audit-arch value is killed — the
        standard hardening prologue of real seccomp policies.
        """
        insns: list[BpfInsn] = []
        if check_arch is not None:
            insns.append(stmt(_LD_W_ABS, SECCOMP_DATA_ARCH))
            insns.append(jump(_JEQ_K, check_arch, 0, 0))  # jf patched below
        insns.append(stmt(_LD_W_ABS, SECCOMP_DATA_NR))
        # One JEQ per denied syscall; each jumps to the final "deny" slot.
        n = len(sysnos)
        for i, nr in enumerate(sysnos):
            insns.append(jump(_JEQ_K, nr, n - i, 0))
        insns.append(stmt(_RET_K, SECCOMP_RET_ALLOW))
        insns.append(stmt(_RET_K, action))
        if check_arch is not None:
            kill_pc = len(insns)
            insns.append(stmt(_RET_K, SECCOMP_RET_KILL_PROCESS))
            insns[1] = jump(_JEQ_K, check_arch, 0, kill_pc - 2)
        return BpfProgram(insns)

    @staticmethod
    def trap_all_except_ip_range(start: int, length: int) -> BpfProgram:
        """TRAP every syscall unless the invocation IP is inside the range.

        This is the seccomp analogue of SUD's allowlisted code range that
        prior interposers (e.g. the Endokernel, §IV-A) used.  Only the low
        32 IP bits are range-checked after verifying the high bits match,
        which is sufficient for our < 4 GiB layouts; ranges that would wrap
        the low 32 bits are rejected.
        """
        end_lo = (start & 0xFFFFFFFF) + length
        if end_lo > 1 << 32:
            raise ValueError("ip range wraps the low 32 bits")
        hi = (start >> 32) & 0xFFFFFFFF
        # A range ending exactly at 2^32 has no representable upper bound
        # in a 32-bit JGE; no IP can exceed it, so fall through to ALLOW.
        upper = (
            jump(_JGE_K, end_lo, 1, 0)
            if end_lo < 1 << 32
            else jump(_JGE_K, 0, 0, 0)
        )
        insns = [
            stmt(_LD_W_ABS, SECCOMP_DATA_IP_HI),
            jump(_JEQ_K, hi, 0, 4),  # wrong high word -> trap
            stmt(_LD_W_ABS, SECCOMP_DATA_IP_LO),
            jump(_JGE_K, start & 0xFFFFFFFF, 0, 2),
            upper,
            stmt(_RET_K, SECCOMP_RET_ALLOW),
            stmt(_RET_K, SECCOMP_RET_TRAP),
        ]
        return BpfProgram(insns)

    @staticmethod
    def trap_all() -> BpfProgram:
        return BpfProgram([stmt(_RET_K, SECCOMP_RET_TRAP)])

    @staticmethod
    def allowlist_syscalls(
        sysnos: list[int], default_action: int = SECCOMP_RET_ERRNO | 1
    ) -> BpfProgram:
        """Allow only ``sysnos``; everything else gets ``default_action``."""
        insns = [stmt(_LD_W_ABS, SECCOMP_DATA_NR)]
        n = len(sysnos)
        for i, nr in enumerate(sysnos):
            insns.append(jump(_JEQ_K, nr, n - i, 0))
        insns.append(stmt(_RET_K, default_action))
        insns.append(stmt(_RET_K, SECCOMP_RET_ALLOW))
        return BpfProgram(insns)
