"""ptrace syscall-stop tracing.

The tracer is a host-level object rather than a second simulated process
(DESIGN.md §6); the *costs* of the real mechanism are charged faithfully:
every syscall-stop costs two context switches (tracee → tracer, tracer →
tracee), and every operation the tracer performs on the stopped tracee
(register or memory access) costs one ptrace request — the "many additional
syscalls required to perform even basic operations" the paper blames for
ptrace's slowness (§II-A).
"""

from __future__ import annotations

from repro.arch.registers import RegisterFile


class TraceeControl:
    """Handed to tracer callbacks during a syscall stop.

    Every accessor charges the tracer's ptrace-request cost to the global
    clock, mirroring PTRACE_GETREGS / PTRACE_SETREGS / PTRACE_PEEKDATA /
    PTRACE_POKEDATA round trips.
    """

    def __init__(self, kernel, task):
        self.kernel = kernel
        self.task = task
        self._skip_retval: int | None = None

    def _charge(self) -> None:
        self.kernel.charge(self.task, self.kernel.costs.ptrace_request)

    # --------------------------------------------------------------- registers
    def getregs(self) -> RegisterFile:
        self._charge()
        return self.task.regs.copy()

    def setregs(self, regs: RegisterFile) -> None:
        self._charge()
        self.task.regs.gpr[:] = regs.gpr
        self.task.regs.rip = regs.rip

    def get_syscall_args(self) -> tuple[int, tuple[int, ...]]:
        """Syscall number and the six argument registers (one GETREGS)."""
        from repro.arch.registers import SYSCALL_ARG_REGS

        self._charge()
        regs = self.task.regs
        return regs.read(0), tuple(regs.read(r) for r in SYSCALL_ARG_REGS)

    def set_syscall(self, nr: int) -> None:
        self._charge()
        self.task.regs.write(0, nr)

    def set_retval(self, value: int) -> None:
        self._charge()
        self.task.regs.write(0, value & (1 << 64) - 1)

    def skip_syscall(self, retval: int = 0) -> None:
        """Suppress execution of the stopped syscall (like setting nr=-1)."""
        self._charge()
        self._skip_retval = retval

    # ------------------------------------------------------------------ memory
    def peekdata(self, addr: int, length: int) -> bytes:
        # One ptrace request per word, like the real API.
        words = (length + 7) // 8
        for _ in range(max(words, 1)):
            self._charge()
        return self.task.mem.read(addr, length, check=None)

    def pokedata(self, addr: int, data: bytes) -> None:
        words = (len(data) + 7) // 8
        for _ in range(max(words, 1)):
            self._charge()
        self.task.mem.write(addr, data, check=None)


class PtraceTracer:
    """Base class for host-level tracers.  Subclass and override callbacks."""

    def on_attach(self, ctl: TraceeControl) -> None:
        """Called when the tracer attaches to a task."""

    def on_syscall_enter(self, ctl: TraceeControl) -> None:
        """Syscall-entry stop: inspect/modify number and arguments."""

    def on_syscall_exit(self, ctl: TraceeControl) -> None:
        """Syscall-exit stop: inspect/modify the return value."""


def attach(kernel, task, tracer: PtraceTracer) -> None:
    """PTRACE_ATTACH + PTRACE_SYSCALL equivalent."""
    task.tracer = tracer
    tracer.on_attach(TraceeControl(kernel, task))


def detach(task) -> None:
    task.tracer = None
