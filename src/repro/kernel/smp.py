"""Per-core execution contexts for the SMP machine.

A :class:`Core` is pure bookkeeping — the simulated CPU itself
(:class:`repro.cpu.core.CPU`) stays a single stateless interpreter that any
core can drive.  What makes a core a core is the state that real SMP makes
per-package:

* a **local clock**: cycles retire independently per core; the machine's
  elapsed time is the *frontier* (the maximum over all core clocks),
* a **runqueue**: tasks are pinned to a home core and migrate only through
  idle-steal load balancing,
* **private translation caches**: decoded-instruction caches keyed by
  address-space id, so a lazypoline rewrite on one core must shoot down
  stale entries on every other core that has executed the patched page
  (the cross-core analogue of the icache/TLB flush the paper's §IV-A(b)
  spinlock protects).

Determinism: the scheduler interleaves cores round-by-round in an order
drawn from a seeded RNG, every slice runs to completion in host order, and
no host-time source is consulted — the same ``(image, cores, smp_seed,
policy)`` tuple always yields the same execution.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.task import Task


class Core:
    """One simulated CPU core: local clock, runqueue and private caches."""

    __slots__ = (
        "id",
        "clock",
        "runqueue",
        "caches",
        "block_caches",
        "busy_cycles",
        "slices",
        "steals",
        "shootdowns",
        "block_shootdowns",
        "_depth",
    )

    def __init__(self, core_id: int):
        self.id = core_id
        #: Local cycle clock.  While a slice runs on this core the kernel's
        #: global ``clock`` attribute is swapped to this value, so every
        #: charge in the slice (instructions, hcalls, re-issued syscalls)
        #: lands on this core's timeline without any hot-path indirection.
        self.clock = 0
        #: Tasks homed on this core (FIFO; blocked tasks stay queued and
        #: are offered unblock checks each round, like the 1-core loop).
        self.runqueue: list["Task"] = []
        #: Private decoded-insn caches: AddressSpace.asid -> cache dict.
        #: Bound to ``mem.insn_cache`` at slice start so the CPU hot path
        #: is unchanged; invalidated remotely by cross-core shootdowns.
        self.caches: dict[int, dict] = {}
        #: Private tier-2 superblock caches: asid -> BlockCache, swapped
        #: onto ``mem.block_cache`` alongside ``insn_cache`` at slice
        #: start.  Created lazily by the scheduler's ``_bind_core``.
        self.block_caches: dict[int, object] = {}
        #: Cycles this core spent executing slices (outermost frames only).
        self.busy_cycles = 0
        #: Slices run on this core.
        self.slices = 0
        #: Tasks this core stole from another core's runqueue.
        self.steals = 0
        #: Cross-core shootdown IPIs *received* by this core (stale
        #: translation-cache entries dropped because another core patched
        #: an executable page this core had decoded).
        self.shootdowns = 0
        #: Compiled superblocks dropped from this core's private caches by
        #: remote rewrites (rides the same IPI as ``shootdowns``; never
        #: charged separately, so cycle accounting matches tiering off).
        self.block_shootdowns = 0
        #: Slice nesting depth (Kernel.wait_until re-enters the scheduler);
        #: busy accounting only counts outermost frames.
        self._depth = 0

    def alive_tasks(self) -> list["Task"]:
        """Queued tasks that are still alive (dead ones are dropped)."""
        queue = self.runqueue
        if any(not t.alive for t in queue):
            queue[:] = [t for t in queue if t.alive]
        return list(queue)

    def snapshot(self, frontier: int) -> dict:
        """Aggregate counters for ``Machine.core_stats()``."""
        return {
            "core": self.id,
            "clock": self.clock,
            "busy_cycles": self.busy_cycles,
            "utilization": self.busy_cycles / frontier if frontier else 0.0,
            "slices": self.slices,
            "steals": self.steals,
            "shootdowns": self.shootdowns,
            "block_shootdowns": self.block_shootdowns,
            "tasks": len(self.runqueue),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Core {self.id} clock={self.clock} "
            f"tasks={len(self.runqueue)} busy={self.busy_cycles}>"
        )
