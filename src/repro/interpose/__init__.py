"""Syscall interposition tools.

Every tool attaches through the same entry point —
``attach(machine, process, tool="lazypoline", interposer=...)`` — and drives
the same user-facing interposer callable (see :mod:`repro.interpose.api`),
so the paper's comparisons run the *identical* "dummy interposition
function" under every mechanism:

* :mod:`repro.interpose.ptrace_tool` — tracer-process syscall stops,
* :mod:`repro.interpose.seccomp_bpf_tool` — in-kernel cBPF filtering,
* :mod:`repro.interpose.seccomp_user_tool` — SECCOMP_RET_TRAP to user space,
* :mod:`repro.interpose.sud_tool` — the typical Syscall User Dispatch setup,
* :mod:`repro.interpose.zpoline` — pure static binary rewriting,
* :mod:`repro.interpose.lazypoline` — the paper's hybrid contribution.
"""

from repro.interpose.api import (
    Interposer,
    SyscallContext,
    TraceInterposer,
    passthrough_interposer,
)
from repro.interpose.registry import attach, available_tools, register_tool

__all__ = [
    "Interposer",
    "SyscallContext",
    "TraceInterposer",
    "attach",
    "available_tools",
    "passthrough_interposer",
    "register_tool",
]
