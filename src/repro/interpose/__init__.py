"""Syscall interposition tools.

Every tool attaches through the same entry point —
``attach(machine, process, tool="lazypoline", interposer=...)`` — and drives
the same user-facing interposer callable (see :mod:`repro.interpose.api`),
so the paper's comparisons run the *identical* "dummy interposition
function" under every mechanism:

* :mod:`repro.interpose.ptrace_tool` — tracer-process syscall stops,
* :mod:`repro.interpose.seccomp_bpf_tool` — in-kernel cBPF filtering,
* :mod:`repro.interpose.seccomp_user_tool` — SECCOMP_RET_TRAP to user space,
* :mod:`repro.interpose.sud_tool` — the typical Syscall User Dispatch setup,
* :mod:`repro.interpose.zpoline` — pure static binary rewriting,
* :mod:`repro.interpose.lazypoline` — the paper's hybrid contribution.

Graceful degradation (hostile environments, resource exhaustion) is
configured per-attach with ``attach(..., degrade_policy=...)``; the policy
types :class:`DegradePolicy` and :class:`Mode` are re-exported here lazily
from :mod:`repro.interpose.lazypoline.degrade` so importing this package
stays cheap.
"""

from repro.errors import AttachError
from repro.interpose.api import (
    Interposer,
    SyscallContext,
    TraceInterposer,
    passthrough_interposer,
)
from repro.interpose.registry import attach, available_tools, register_tool

__all__ = [
    "AttachError",
    "DegradePolicy",
    "Interposer",
    "Mode",
    "SyscallContext",
    "TraceInterposer",
    "attach",
    "available_tools",
    "passthrough_interposer",
    "register_tool",
]


def __getattr__(name: str):
    # Lazy re-export: pulling in the degrade types must not import the
    # whole lazypoline tool at ``import repro.interpose`` time.
    if name in ("DegradePolicy", "Mode"):
        from repro.interpose.lazypoline import degrade

        return getattr(degrade, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
