"""seccomp USER_NOTIF interposition: a supervisor process model.

``SECCOMP_RET_USER_NOTIF`` (the newer seccomp action §II-A mentions for
deferring handling to user space) parks the tracee while a *supervisor* —
here a host-level model, like the ptrace tracer — decides the syscall's
fate through the notification fd.  Each notification costs two context
switches each way, which is why this is grouped with the "Moderate"
efficiency mechanisms despite its in-kernel filter.

The supervisor can answer a notification three ways, mirroring the real
API:

* return an integer — the syscall is *not* executed; that value (or
  negative errno) goes back to the tracee,
* return ``None`` — the kernel "continues" the syscall
  (``SECCOMP_USER_NOTIF_FLAG_CONTINUE``) and executes it normally,
* re-issue it itself via ``ctx.do_syscall()`` — the addfd/emulation style,
  charged as supervisor work.
"""

from __future__ import annotations

from repro.interpose.api import (
    Interposer,
    SyscallContext,
    passthrough_interposer,
    removed_install,
)
from repro.kernel.seccomp.bpf import BpfProgram
from repro.kernel.seccomp.core import SECCOMP_RET_USER_NOTIF
from repro.kernel.seccomp.filter import FilterBuilder
from repro.kernel.seccomp.bpf import BPF_K, BPF_RET, stmt


def _notify_all_filter() -> BpfProgram:
    return BpfProgram([stmt(BPF_RET | BPF_K, SECCOMP_RET_USER_NOTIF)])


class UserNotifTool:
    """Interposition through a user-notification supervisor."""

    tool_name = "seccomp_unotify"

    def __init__(self, machine, interposer: Interposer):
        self.machine = machine
        self.interposer = interposer
        self.notifications = 0

    @classmethod
    def install(cls, machine, process, interposer=None, **kw) -> "UserNotifTool":
        """Removed — raises :class:`~repro.errors.AttachError`."""
        removed_install(cls)

    @classmethod
    def _install(
        cls,
        machine,
        process,
        interposer: Interposer | None = None,
        *,
        filter_program: BpfProgram | None = None,
    ) -> "UserNotifTool":
        """Install the notify-filter and register the supervisor."""
        tool = cls(machine, interposer or passthrough_interposer)
        process.task.seccomp_filters.append(
            filter_program or _notify_all_filter()
        )
        machine.kernel.usernotif_supervisor = tool._on_notification
        return tool

    @classmethod
    def install_for_syscalls(cls, machine, process, sysnos,
                             interposer=None) -> "UserNotifTool":
        """Removed — raises :class:`~repro.errors.AttachError`."""
        removed_install(
            cls, "install_for_syscalls",
            hint="repro.interpose.attach(machine, process, "
                 "tool='seccomp_unotify', sysnos=[...])",
        )

    @classmethod
    def _install_for_syscalls(
        cls, machine, process, sysnos: list[int],
        interposer: Interposer | None = None,
    ) -> "UserNotifTool":
        """Notify only for ``sysnos``; everything else runs natively."""
        program = FilterBuilder.deny_syscalls(sysnos, SECCOMP_RET_USER_NOTIF)
        return cls._install(machine, process, interposer,
                            filter_program=program)

    # ------------------------------------------------------------- supervisor
    def _on_notification(self, kernel, task, sysno, args) -> int | None:
        self.notifications += 1

        def supervisor_do(nr, a):
            # The supervisor executes the call on the tracee's behalf; the
            # notifying filter does not re-run (the call is attributed to
            # the supervisor's context, like addfd/continue semantics).
            from repro.kernel.waits import WouldBlock

            while True:
                try:
                    return kernel.dispatch(task, nr, a)
                except WouldBlock as block:
                    kernel.wait_until(task, block.ready)

        ctx = SyscallContext(
            kernel,
            task,
            sysno,
            args,
            mechanism="seccomp-unotify",
            do_syscall=supervisor_do,
        )
        return self.interposer(ctx)
