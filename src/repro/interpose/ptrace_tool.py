"""ptrace-based interposition.

The tracer stops the tracee at syscall entry and exit; each stop costs two
context switches and every inspection another ptrace request — which is why
Table I rates ptrace's efficiency "Low" despite full expressiveness.

The user interposer runs at the *exit* stop with the entry arguments and the
kernel's result already available; ``ctx.do_syscall()`` simply yields that
result.  Deep memory access goes through PTRACE_PEEKDATA/POKEDATA and is
charged accordingly.  Argument/number rewriting is available to advanced
tracers via the ``ctl`` attribute at the entry stop (`on_enter` hook).
"""

from __future__ import annotations

from typing import Callable

from repro.arch.registers import RAX, SYSCALL_ARG_REGS, to_signed
from repro.interpose.api import (
    Interposer,
    SyscallContext,
    passthrough_interposer,
    removed_install,
)
from repro.kernel.ptrace import PtraceTracer, TraceeControl, attach, detach


class PtraceSyscallContext(SyscallContext):
    """Syscall context whose memory accessors pay ptrace-request costs."""

    def __init__(self, ctl: TraceeControl, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.ctl = ctl

    def read_mem(self, addr: int, length: int) -> bytes:
        return self.ctl.peekdata(addr, length)

    def write_mem(self, addr: int, data: bytes) -> None:
        self.ctl.pokedata(addr, data)

    def read_cstr(self, addr: int, maxlen: int = 4096) -> bytes:
        data = self.ctl.peekdata(addr, maxlen)
        end = data.find(b"\x00")
        return data[:end] if end >= 0 else data


class PtraceTool(PtraceTracer):
    """Syscall interposition through a (host-modelled) tracer process."""

    tool_name = "ptrace"

    def __init__(self, machine, interposer: Interposer,
                 on_enter: Callable[[TraceeControl], None] | None = None):
        self.machine = machine
        self.interposer = interposer
        self.on_enter = on_enter
        self._pending: dict[int, tuple[int, tuple[int, ...]]] = {}

    @classmethod
    def install(cls, machine, process, interposer=None, **kw) -> "PtraceTool":
        """Removed — raises :class:`~repro.errors.AttachError`."""
        removed_install(cls)

    @classmethod
    def _install(
        cls,
        machine,
        process,
        interposer: Interposer | None = None,
        *,
        on_enter: Callable[[TraceeControl], None] | None = None,
    ) -> "PtraceTool":
        tool = cls(machine, interposer or passthrough_interposer, on_enter)
        attach(machine.kernel, process.task, tool)
        return tool

    def detach(self, process) -> None:
        detach(process.task)

    # ------------------------------------------------------------- callbacks
    def on_syscall_enter(self, ctl: TraceeControl) -> None:
        sysno, args = ctl.get_syscall_args()
        self._pending[ctl.task.tid] = (to_signed(sysno), args)
        if self.on_enter is not None:
            self.on_enter(ctl)

    def on_syscall_exit(self, ctl: TraceeControl) -> None:
        regs = ctl.getregs()
        kernel_ret = to_signed(regs.read(RAX))
        sysno, args = self._pending.pop(
            ctl.task.tid, (to_signed(regs.read(RAX)), tuple(
                regs.read(r) for r in SYSCALL_ARG_REGS))
        )
        ctx = PtraceSyscallContext(
            ctl,
            self.machine.kernel,
            ctl.task,
            sysno,
            args,
            mechanism="ptrace",
            do_syscall=lambda nr, a: kernel_ret,
        )
        ret = self.interposer(ctx)
        if ret is not None and ret != kernel_ret:
            ctl.set_retval(ret)
