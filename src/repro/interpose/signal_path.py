"""Shared machinery for SIGSYS-based interposition (SUD and seccomp-user).

Both mechanisms deliver a SIGSYS to the application whenever it makes a
syscall; a handler interposes the call *from within the signal handler* and
patches the saved context's ``rax`` with the result — the "typical
deployment" described in §II-A of the paper.  The handler's own sigreturn
executes a real syscall instruction from a page that must be exempted from
interception: an allowlisted address range for SUD, an IP-range filter
clause for seccomp.

One genuinely tricky case is an application's *own* ``rt_sigreturn``
arriving as a SIGSYS: the requested sigreturn targets the frame *below* the
SIGSYS frame.  It is emulated by copying the inner frame's saved ucontext
over the SIGSYS frame's ucontext, so returning from the handler restores the
pre-signal application context directly — the kind of complexity
lazypoline's "selector-only" design (§IV-A) exists to avoid.
"""

from __future__ import annotations

from repro.arch.encode import Assembler
from repro.arch.registers import R8, R9, R10, RAX, RDI, RDX, RSI, RSP
from repro.interpose.api import (
    Interposer,
    SyscallContext,
    passthrough_interposer,
    removed_install,
)
from repro.kernel.signals import (
    FRAME_SIGINFO,
    FRAME_UCONTEXT,
    SA_RESTORER,
    SA_SIGINFO,
    SI_ADDR,
    SI_SYSCALL,
    SIGSYS,
    UC_GPRS,
    UC_RIP,
    UCONTEXT_SIZE,
)
from repro.kernel.syscalls.table import NR
from repro.kernel.task import SigAction
from repro.mem.pages import PAGE_SIZE, Perm

_NR_RT_SIGRETURN = NR["rt_sigreturn"]
_NR_FORK = NR["fork"]
_NR_VFORK = NR["vfork"]
_NR_CLONE = NR["clone"]

#: ucontext offsets of the syscall argument registers, in ABI order.
_ARG_REG_OFFSETS = tuple(UC_GPRS + 8 * r for r in (RDI, RSI, RDX, R10, R8, R9))


class SignalPathTool:
    """Base class: SIGSYS handler + restorer page, handler-side interposition."""

    mechanism = "signal-path"
    tool_name = "signal-path"

    def __init__(self, machine, process, interposer: Interposer):
        self.machine = machine
        self.process = process
        self.interposer = interposer
        self.code_base = 0
        self.data_base = 0
        self.handler_addr = 0
        self.restorer_addr = 0
        self.reissue_addr = 0  # IP the re-issued syscalls appear to come from
        self.sigsys_count = 0

    # ------------------------------------------------------------------ install
    @classmethod
    def install(cls, machine, process, interposer=None, **kw):
        """Removed — raises :class:`~repro.errors.AttachError`."""
        removed_install(cls)

    @classmethod
    def _install(cls, machine, process, interposer: Interposer | None = None, **kw):
        tool = cls(machine, process, interposer or passthrough_interposer, **kw)
        tool._setup_pages(process.task)
        tool._arm(process.task)
        return tool

    def _setup_pages(self, task) -> None:
        kernel = self.machine.kernel
        self.data_base = task.mem.map_anywhere(PAGE_SIZE, Perm.RW, hint=0x2000_0000)
        hcall_id = kernel.register_hcall(self._on_sigsys)

        self.code_base = task.mem.map_anywhere(PAGE_SIZE, Perm.RW, hint=0x2010_0000)
        asm = Assembler(base=self.code_base)
        asm.label("sigsys_handler")
        asm.hcall(hcall_id)
        asm.ret()
        asm.label("restorer")
        asm.mov_imm("rax", _NR_RT_SIGRETURN)
        asm.label("restorer_syscall")
        asm.syscall()
        code = asm.assemble()
        task.mem.write(self.code_base, code, check=None)
        task.mem.protect(self.code_base, PAGE_SIZE, Perm.RX)

        self.handler_addr = asm.address_of("sigsys_handler")
        self.restorer_addr = asm.address_of("restorer")
        self.reissue_addr = asm.address_of("restorer_syscall")

        task.sighand.set(
            SIGSYS,
            SigAction(
                handler=self.handler_addr,
                flags=SA_SIGINFO | SA_RESTORER,
                restorer=self.restorer_addr,
            ),
        )

    def _arm(self, task) -> None:
        raise NotImplementedError

    # ----------------------------------------------------- mechanism-specific
    def _pre_interpose(self, hctx) -> None:
        """Called at handler start (e.g. SUD sets the selector to ALLOW)."""

    def _post_interpose(self, hctx) -> None:
        """Called at handler end (e.g. SUD resets the selector to BLOCK)."""

    def _after_spawn(self, hctx, child_task) -> None:
        """Fix up a freshly created child process/thread, if needed."""

    # ------------------------------------------------------------------ handler
    def _on_sigsys(self, hctx) -> None:
        task = hctx.task
        regs = task.regs
        self.sigsys_count += 1

        siginfo = regs.read(RSI)
        uc = regs.read(RDX)
        frame_base = siginfo - FRAME_SIGINFO
        tracer = hctx.kernel.tracer
        if tracer is not None:
            call_addr = task.mem.read_u64(frame_base + SI_ADDR, check=None)
            tracer.sigsys_trap(
                hctx.kernel.clock, task.tid, call_addr - 2, self.mechanism
            )
        sysno = task.mem.read_u32(frame_base + SI_SYSCALL, check=None)
        args = tuple(
            task.mem.read_u64(uc + off, check=None) for off in _ARG_REG_OFFSETS
        )

        self._pre_interpose(hctx)

        if sysno == _NR_RT_SIGRETURN:
            do = lambda nr, a: self._emulate_nested_sigreturn(hctx, uc)  # noqa: E731
        else:
            do = lambda nr, a: hctx.do_syscall(  # noqa: E731
                nr, a, insn_addr=self.reissue_addr
            )
        ctx = SyscallContext(
            hctx.kernel, task, sysno, args, mechanism=self.mechanism, do_syscall=do
        )
        mem_before = task.mem
        ret = self.interposer(ctx)
        if task.mem is not mem_before:
            # A successful execve replaced the address space: on Linux the
            # syscall never returns into the handler, the handler pages and
            # the signal frame are gone, and SUD/our sighand entry died with
            # the old image.  Touching the (old) selector/frame addresses
            # now would fault the *new* program, so stop here.
            return
        if ret is not None and sysno != _NR_RT_SIGRETURN:
            task.mem.write_u64(uc + UC_GPRS + 8 * RAX, ret, check=None)
        if sysno in (_NR_FORK, _NR_VFORK, _NR_CLONE) and ret is not None and ret > 0:
            child = hctx.kernel.tasks.get(ret)
            if child is not None:
                self._fix_spawned_child(hctx, child, uc, sysno, args)
                self._after_spawn(hctx, child)

        self._post_interpose(hctx)

    def _fix_spawned_child(self, hctx, child, uc: int, sysno: int,
                           args: tuple[int, ...]) -> None:
        """Make a child created *from inside the SIGSYS handler* resume in
        the application correctly.

        * fork/vfork: the child restarts mid-handler on its own copy of the
          signal frame and sigreturns through it; the frame's saved ``rax``
          (still the syscall number) must become the child's return value 0.
        * clone with a caller-provided stack: the fresh stack holds no
          handler frame at all, so the child's registers are rebuilt from
          the interrupted context saved in the (shared) outer frame and it
          is sent straight back to application code.
        """
        task = hctx.task
        if sysno == _NR_CLONE and args[1]:
            for i in range(16):
                child.regs.gpr[i] = task.mem.read_u64(
                    uc + UC_GPRS + 8 * i, check=None
                )
            child.regs.write(RAX, 0)
            child.regs.write(RSP, args[1])
            child.regs.rip = task.mem.read_u64(uc + UC_RIP, check=None)
        elif child.mem is not task.mem:
            child.mem.write_u64(uc + UC_GPRS + 8 * RAX, 0, check=None)

    def _emulate_nested_sigreturn(self, hctx, uc_outer: int) -> None:
        """Apply the application's sigreturn to the *outer* SIGSYS frame."""
        task = hctx.task
        mem = task.mem
        # The interrupted context sat in the app's restorer with rsp just
        # past the inner frame's return-address slot.
        app_rsp = mem.read_u64(uc_outer + UC_GPRS + 8 * RSP, check=None)
        inner_uc = (app_rsp - 8) + FRAME_UCONTEXT
        blob = mem.read(inner_uc, UCONTEXT_SIZE, check=None)
        mem.write(uc_outer, blob, check=None)
        hctx.charge(hctx.kernel.costs.copy_cost(UCONTEXT_SIZE) + 20)
        return None

    # ------------------------------------------------------------- diagnostics
    def saved_rip(self, hctx) -> int:
        uc = hctx.task.regs.read(RDX)
        return hctx.task.mem.read_u64(uc + UC_RIP, check=None)
