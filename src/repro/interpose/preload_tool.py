"""Function-level interposition (LD_PRELOAD-style, §VII).

Interposes libc *wrapper functions* by name: each known wrapper's entry is
overwritten with a host-call + return, so calls to the wrapper divert into
the interposer, which performs the (possibly modified) syscall and places
the result in ``rax``.

The paper's verdict on this family (§VII): minimal performance impact, but
it "comes at the cost of exhaustiveness, since syscall instructions can
also appear outside of wrapper functions" — and identifying every wrapper
does not scale.  Both properties are visible here: unknown wrappers and raw
inline syscall instructions sail straight past this tool.
"""

from __future__ import annotations

from repro.arch.registers import MASK64, RAX, SYSCALL_ARG_REGS
from repro.interpose.api import (
    Interposer,
    SyscallContext,
    passthrough_interposer,
    removed_install,
)
from repro.kernel.syscalls.table import NR
from repro.libc.wrappers import wrapper_symbol
from repro.mem.pages import PAGE_SIZE, Perm, page_align_down, page_align_up


class PreloadTool:
    """LD_PRELOAD-style wrapper-function interposition."""

    tool_name = "preload"

    def __init__(self, machine, process, interposer: Interposer):
        self.machine = machine
        self.process = process
        self.interposer = interposer
        self.patched: dict[str, int] = {}  # wrapper name -> address

    @classmethod
    def install(cls, machine, process, interposer=None, **kw) -> "PreloadTool":
        """Removed — raises :class:`~repro.errors.AttachError`."""
        removed_install(cls)

    @classmethod
    def _install(
        cls,
        machine,
        process,
        interposer: Interposer | None = None,
        *,
        wrappers: list[str] | None = None,
    ) -> "PreloadTool":
        """Patch every resolvable wrapper symbol in the loaded image."""
        tool = cls(machine, process, interposer or passthrough_interposer)
        image = machine.kernel.binaries.get("/bin/" + process.task.comm)
        symbols = image.symbols if image is not None else {}

        names = wrappers if wrappers is not None else [
            name for name in NR if wrapper_symbol(name) in symbols
        ]
        for name in names:
            symbol = wrapper_symbol(name)
            if symbol not in symbols:
                continue  # does not scale in practice — and doesn't here
            tool._patch_wrapper(process.task, name, symbols[symbol])
        return tool

    def _patch_wrapper(self, task, name: str, addr: int) -> None:
        hcall_id = self.machine.kernel.register_hcall(
            lambda hctx, sysno=NR[name]: self._on_wrapper(hctx, sysno)
        )
        from repro.arch.encode import Assembler

        stub = Assembler()
        stub.hcall(hcall_id)
        stub.ret()
        code = stub.assemble()

        start = page_align_down(addr)
        end = page_align_up(addr + len(code))
        saved = task.mem.perm_at(start)
        task.mem.protect(start, end - start, Perm.RW)
        task.mem.write(addr, code, check=None)
        task.mem.protect(start, end - start, saved)
        self.patched[name] = addr

    def _on_wrapper(self, hctx, sysno: int) -> None:
        regs = hctx.task.regs
        args = tuple(regs.read(r) for r in SYSCALL_ARG_REGS)
        ctx = SyscallContext(
            hctx.kernel,
            hctx.task,
            sysno,
            args,
            mechanism="preload",
            do_syscall=lambda nr, a: hctx.do_syscall(nr, a),
        )
        ret = self.interposer(ctx)
        if ret is not None:
            regs.write(RAX, ret & MASK64)
