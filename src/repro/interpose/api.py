"""The user-facing interposer API.

An *interposer* is a callable ``interposer(ctx) -> int | None`` invoked for
every intercepted syscall.  It may inspect and rewrite arguments, read and
write tracee memory, suppress the syscall, or re-issue it (possibly
modified) with :meth:`SyscallContext.do_syscall`.  Returning an integer sets
the application-visible return value; returning ``None`` leaves registers
untouched (required for context-replacing calls like ``rt_sigreturn``).

The paper's "dummy interposition function" — execute the syscall with its
original arguments and return the result — is :func:`passthrough_interposer`.

Interposers are mechanism-agnostic; *how well the mechanism survives a
hostile environment* is configured separately at attach time with
``attach(..., degrade_policy=...)`` (see
:mod:`repro.interpose.lazypoline.degrade` — a ``DegradePolicy``, a floor
``Mode``/mode name, or a dict of policy fields).  The interposer callable
itself never changes: under ``SUD_ONLY`` it simply sees every call arrive
via the slow path, and under ``PASSTHROUGH`` it is not invoked at all.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.kernel.syscalls.table import syscall_name
from repro.obs import events as _K
from repro.obs.format import format_call
from repro.obs.tracer import Tracer


def removed_install(cls, method: str = "install", hint: str = "") -> None:
    """Shared raiser for the removed ``*Tool.install`` entry points.

    The per-class constructors were deprecated (warn-but-work shims) when
    the unified registry landed; they now fail loudly so the last
    out-of-tree callers migrate.  The error names the exact replacement
    call and raises *before* any machine state is touched, so a failed
    ``install`` never leaves a half-attached tool behind.
    """
    from repro.errors import AttachError

    replacement = hint or (
        f"repro.interpose.attach(machine, process, "
        f"tool={getattr(cls, 'tool_name', cls.__name__)!r}, ...)"
    )
    raise AttachError(
        f"{cls.__name__}.{method}() was removed; use {replacement} "
        f"(the unified tool registry — mechanism-specific options pass "
        f"through **opts, see repro.interpose.registry)"
    )


class SyscallContext:
    """Everything an interposer can see and touch for one syscall."""

    def __init__(
        self,
        kernel,
        task,
        sysno: int,
        args: tuple[int, ...],
        *,
        mechanism: str = "",
        do_syscall: Optional[Callable] = None,
        defer: Optional[Callable] = None,
        insn_addr: int = 0,
    ):
        self.kernel = kernel
        self.task = task
        self.sysno = sysno
        self.args = tuple(args) + (0,) * (6 - len(args))
        self.mechanism = mechanism
        self.insn_addr = insn_addr
        self._do_syscall = do_syscall
        self._defer = defer

    # ------------------------------------------------------------- identity
    @property
    def name(self) -> str:
        return syscall_name(self.sysno)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<syscall {format_call(self.name, self.args)} via {self.mechanism}>"

    # ------------------------------------------------------------------ memory
    def read_mem(self, addr: int, length: int) -> bytes:
        """Read tracee memory (deep argument inspection)."""
        return self.task.mem.read(addr, length, check=None)

    def write_mem(self, addr: int, data: bytes) -> None:
        """Write tracee memory (deep argument modification)."""
        self.task.mem.write(addr, data, check=None)

    def read_cstr(self, addr: int, maxlen: int = 4096) -> bytes:
        return self.task.mem.read_cstr(addr, maxlen, check=None)

    # ------------------------------------------------------------------ defer
    @property
    def can_defer(self) -> bool:
        return self._defer is not None

    def defer(self, predicate) -> None:
        """Park the task; this interposition re-runs when ``predicate``
        holds.  Return ``None`` from the interposer immediately afterwards
        (nothing must execute the syscall on this visit).  Supported by the
        rewriting-based mechanisms (zpoline, lazypoline); lockstep monitors
        build their barriers on this."""
        if self._defer is None:
            raise RuntimeError(
                f"mechanism {self.mechanism!r} cannot defer interpositions"
            )
        self._defer(predicate)

    # ---------------------------------------------------------------- execute
    def do_syscall(
        self, sysno: int | None = None, args: tuple[int, ...] | None = None
    ) -> int | None:
        """Execute the (possibly modified) syscall and return its result."""
        if self._do_syscall is None:
            raise RuntimeError("this mechanism cannot re-issue syscalls")
        use_sysno = self.sysno if sysno is None else sysno
        use_args = self.args if args is None else tuple(args) + (0,) * (6 - len(args))
        return self._do_syscall(use_sysno, use_args)


class Interposer(Protocol):
    def __call__(self, ctx: SyscallContext) -> int | None: ...


def passthrough_interposer(ctx: SyscallContext) -> int | None:
    """The paper's dummy interposition function: re-issue unchanged."""
    return ctx.do_syscall()


class TraceInterposer:
    """Records every intercepted syscall, then passes it through.

    Backed by an observability tracer (:class:`repro.obs.Tracer`) instead of
    a private list: each interception becomes an ``interposition`` event and
    ``names``/``count`` delegate to the tracer's counters.  Pass a shared
    ``tracer`` to merge the tool-level view into a machine-wide stream.

    ``events`` still yields the legacy ``(name, sysno, args)`` tuples — the
    strace-style output the exhaustiveness experiment (§V-A) compares across
    tools.
    """

    def __init__(self, *, capture_results: bool = False, tracer: Tracer | None = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self.results: list[int | None] = []
        self.capture_results = capture_results

    def __call__(self, ctx: SyscallContext) -> int | None:
        self.tracer.interposition(
            ctx.kernel.clock, ctx.task.tid, ctx.sysno, ctx.args, ctx.mechanism
        )
        ret = ctx.do_syscall()
        if self.capture_results:
            self.results.append(ret)
        return ret

    @property
    def events(self) -> list[tuple[str, int, tuple[int, ...]]]:
        return [
            (e.data["name"], e.data["sysno"], tuple(e.data["args"]))
            for e in self.tracer.events
            if e.kind == _K.INTERPOSITION
        ]

    @property
    def names(self) -> list[str]:
        return [
            e.data["name"]
            for e in self.tracer.events
            if e.kind == _K.INTERPOSITION
        ]

    def count(self, name: str) -> int:
        return self.tracer.interposition_counts.get(name, 0)


class DenyListInterposer:
    """Sandbox-style interposer: deny selected syscalls with an errno."""

    def __init__(self, denied: dict[int, int], fallback: Interposer | None = None):
        self.denied = dict(denied)  # sysno -> errno (positive)
        self.fallback = fallback or passthrough_interposer
        self.blocked: list[tuple[str, tuple[int, ...]]] = []

    def __call__(self, ctx: SyscallContext) -> int | None:
        if ctx.sysno in self.denied:
            self.blocked.append((ctx.name, ctx.args))
            return -self.denied[ctx.sysno]
        return self.fallback(ctx)
