"""The user-facing interposer API.

An *interposer* is a callable ``interposer(ctx) -> int | None`` invoked for
every intercepted syscall.  It may inspect and rewrite arguments, read and
write tracee memory, suppress the syscall, or re-issue it (possibly
modified) with :meth:`SyscallContext.do_syscall`.  Returning an integer sets
the application-visible return value; returning ``None`` leaves registers
untouched (required for context-replacing calls like ``rt_sigreturn``).

The paper's "dummy interposition function" — execute the syscall with its
original arguments and return the result — is :func:`passthrough_interposer`.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro.kernel.syscalls.table import syscall_name


class SyscallContext:
    """Everything an interposer can see and touch for one syscall."""

    def __init__(
        self,
        kernel,
        task,
        sysno: int,
        args: tuple[int, ...],
        *,
        mechanism: str = "",
        do_syscall: Optional[Callable] = None,
        defer: Optional[Callable] = None,
        insn_addr: int = 0,
    ):
        self.kernel = kernel
        self.task = task
        self.sysno = sysno
        self.args = tuple(args) + (0,) * (6 - len(args))
        self.mechanism = mechanism
        self.insn_addr = insn_addr
        self._do_syscall = do_syscall
        self._defer = defer

    # ------------------------------------------------------------- identity
    @property
    def name(self) -> str:
        return syscall_name(self.sysno)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"{a:#x}" for a in self.args)
        return f"<syscall {self.name}({args}) via {self.mechanism}>"

    # ------------------------------------------------------------------ memory
    def read_mem(self, addr: int, length: int) -> bytes:
        """Read tracee memory (deep argument inspection)."""
        return self.task.mem.read(addr, length, check=None)

    def write_mem(self, addr: int, data: bytes) -> None:
        """Write tracee memory (deep argument modification)."""
        self.task.mem.write(addr, data, check=None)

    def read_cstr(self, addr: int, maxlen: int = 4096) -> bytes:
        return self.task.mem.read_cstr(addr, maxlen, check=None)

    # ------------------------------------------------------------------ defer
    @property
    def can_defer(self) -> bool:
        return self._defer is not None

    def defer(self, predicate) -> None:
        """Park the task; this interposition re-runs when ``predicate``
        holds.  Return ``None`` from the interposer immediately afterwards
        (nothing must execute the syscall on this visit).  Supported by the
        rewriting-based mechanisms (zpoline, lazypoline); lockstep monitors
        build their barriers on this."""
        if self._defer is None:
            raise RuntimeError(
                f"mechanism {self.mechanism!r} cannot defer interpositions"
            )
        self._defer(predicate)

    # ---------------------------------------------------------------- execute
    def do_syscall(
        self, sysno: int | None = None, args: tuple[int, ...] | None = None
    ) -> int | None:
        """Execute the (possibly modified) syscall and return its result."""
        if self._do_syscall is None:
            raise RuntimeError("this mechanism cannot re-issue syscalls")
        use_sysno = self.sysno if sysno is None else sysno
        use_args = self.args if args is None else tuple(args) + (0,) * (6 - len(args))
        return self._do_syscall(use_sysno, use_args)


class Interposer(Protocol):
    def __call__(self, ctx: SyscallContext) -> int | None: ...


def passthrough_interposer(ctx: SyscallContext) -> int | None:
    """The paper's dummy interposition function: re-issue unchanged."""
    return ctx.do_syscall()


class TraceInterposer:
    """Records every intercepted syscall, then passes it through.

    ``events`` holds ``(name, sysno, args)`` tuples — the strace-style
    output the exhaustiveness experiment (§V-A) compares across tools.
    """

    def __init__(self, *, capture_results: bool = False):
        self.events: list[tuple[str, int, tuple[int, ...]]] = []
        self.results: list[int | None] = []
        self.capture_results = capture_results

    def __call__(self, ctx: SyscallContext) -> int | None:
        self.events.append((ctx.name, ctx.sysno, ctx.args))
        ret = ctx.do_syscall()
        if self.capture_results:
            self.results.append(ret)
        return ret

    @property
    def names(self) -> list[str]:
        return [name for name, _nr, _args in self.events]

    def count(self, name: str) -> int:
        return sum(1 for n in self.names if n == name)


class DenyListInterposer:
    """Sandbox-style interposer: deny selected syscalls with an errno."""

    def __init__(self, denied: dict[int, int], fallback: Interposer | None = None):
        self.denied = dict(denied)  # sysno -> errno (positive)
        self.fallback = fallback or passthrough_interposer
        self.blocked: list[tuple[str, tuple[int, ...]]] = []

    def __call__(self, ctx: SyscallContext) -> int | None:
        if ctx.sysno in self.denied:
            self.blocked.append((ctx.name, ctx.args))
            return -self.denied[ctx.sysno]
        return self.fallback(ctx)
