"""seccomp-bpf interposition: filters run entirely in kernel space.

High efficiency, limited expressiveness (§II-A): the filter sees only the
syscall number, audit arch, instruction pointer and raw argument registers —
it can never dereference an argument pointer, so "interposition" is limited
to allow / errno / kill / trap verdicts.  There is deliberately no user
interposer callback here; that's the point of Table I's seccomp-bpf row.
"""

from __future__ import annotations

from repro.interpose.api import removed_install
from repro.kernel.seccomp.bpf import BpfProgram
from repro.kernel.seccomp.filter import FilterBuilder


class SeccompBpfTool:
    """Installs cBPF filters on a process (inherited by its children)."""

    tool_name = "seccomp_bpf"

    def __init__(self, process, programs: list[BpfProgram]):
        self.process = process
        self.programs = programs

    @classmethod
    def install(cls, machine, process, program=None) -> "SeccompBpfTool":
        """Removed — raises :class:`~repro.errors.AttachError`."""
        removed_install(cls)

    @classmethod
    def _install(
        cls, machine, process, program: BpfProgram | None = None
    ) -> "SeccompBpfTool":
        """Install ``program`` (default: allow-all, the pure-overhead probe)."""
        prog = program or FilterBuilder.allow_all()
        process.task.seccomp_filters.append(prog)
        return cls(process, [prog])

    @classmethod
    def install_denylist(cls, machine, process, sysnos, *,
                         errno_value: int = 1) -> "SeccompBpfTool":
        """Removed — raises :class:`~repro.errors.AttachError`."""
        removed_install(
            cls, "install_denylist",
            hint="repro.interpose.attach(machine, process, "
                 "tool='seccomp_bpf', denylist=[...], errno_value=...)",
        )

    @classmethod
    def _install_denylist(
        cls, machine, process, sysnos: list[int], *, errno_value: int = 1
    ) -> "SeccompBpfTool":
        from repro.kernel.seccomp.core import SECCOMP_RET_ERRNO

        prog = FilterBuilder.deny_syscalls(
            sysnos, SECCOMP_RET_ERRNO | (errno_value & 0xFFFF)
        )
        process.task.seccomp_filters.append(prog)
        return cls(process, [prog])

    def add_filter(self, program: BpfProgram) -> None:
        """Stack another filter (filters can never be removed — §IV-A)."""
        self.process.task.seccomp_filters.append(program)
        self.programs.append(program)
