"""The typical Syscall User Dispatch deployment (§II-A of the paper).

The selector byte lives in a tool-owned data page; the SIGSYS handler sets
it to ALLOW on entry, interposes the syscall, resets it to BLOCK, and
sigreturns through a restorer inside the allowlisted code range so the
sigreturn syscall itself is never dispatched.

This is the configuration the paper benchmarks as "SUD": fully exhaustive
and expressive, but paying a signal delivery + sigreturn round trip on
every application syscall (Table II: ~20x a raw syscall).
"""

from __future__ import annotations

from repro.interpose.signal_path import SignalPathTool
from repro.kernel.sud import SELECTOR_ALLOW, SELECTOR_BLOCK, SudState
from repro.mem.pages import PAGE_SIZE

#: Cycles for the handler's selector stores (one byte store each way).
_SELECTOR_TOGGLE_COST = 3


class SudTool(SignalPathTool):
    mechanism = "sud"
    tool_name = "sud"

    @property
    def selector_addr(self) -> int:
        return self.data_base  # byte 0 of the tool data page

    def _arm(self, task) -> None:
        task.mem.write_u8(self.selector_addr, SELECTOR_BLOCK, check=None)
        # prctl(PR_SET_SYSCALL_USER_DISPATCH, ON, code_base, PAGE_SIZE, &sel)
        task.sud = SudState(
            selector_addr=self.selector_addr,
            allow_start=self.code_base,
            allow_len=PAGE_SIZE,
        )

    def _pre_interpose(self, hctx) -> None:
        hctx.task.mem.write_u8(self.selector_addr, SELECTOR_ALLOW, check=None)
        hctx.charge(_SELECTOR_TOGGLE_COST)

    def _post_interpose(self, hctx) -> None:
        hctx.task.mem.write_u8(self.selector_addr, SELECTOR_BLOCK, check=None)
        hctx.charge(_SELECTOR_TOGGLE_COST)

    def _after_spawn(self, hctx, child_task) -> None:
        """SUD does not survive fork/clone: re-arm the child.

        The child's copy of the selector page currently reads ALLOW (the
        parent was mid-handler), so reset it to BLOCK.  For CLONE_VM
        children the selector page is *shared* — correct per-thread
        selectors are exactly what lazypoline's %gs scheme provides and
        this plain deployment does not.
        """
        if child_task.mem is not hctx.task.mem:
            child_task.mem.write_u8(self.selector_addr, SELECTOR_BLOCK, check=None)
        child_task.sud = SudState(
            selector_addr=self.selector_addr,
            allow_start=self.code_base,
            allow_len=PAGE_SIZE,
        )
