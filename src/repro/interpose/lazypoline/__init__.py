"""lazypoline — the paper's contribution.

A hybrid interposer (§III–§IV):

* **slow path**: Syscall User Dispatch traps every not-yet-seen syscall
  invocation site with a SIGSYS; the handler rewrites the two-byte syscall
  instruction to ``call rax`` under a spinlock (flipping page permissions
  around the write) and redirects the interrupted context to the fast-path
  entry, sigreturning with the selector left at ALLOW (selector-only SUD —
  no allowlisted address range at all),
* **fast path**: the zpoline trampoline at VA 0; every subsequent execution
  of a rewritten site calls straight into the interposer stub,
* per-task ``%gs`` storage for the selector byte, an xstate save stack and
  a sigreturn selector stack,
* full signal wrapping: application sigactions are shadowed behind a
  wrapper handler, and ``rt_sigreturn`` is interposed and completed through
  a register-transparent *sigreturn trampoline* that restores the selector,
* fork/clone/execve re-arming, with fresh %gs regions for CLONE_VM threads.
"""

from repro.interpose.lazypoline.config import LazypolineConfig
from repro.interpose.lazypoline.core import Lazypoline
from repro.interpose.lazypoline import gsrel

__all__ = ["Lazypoline", "LazypolineConfig", "gsrel"]
