"""The per-task %gs-relative memory region (§IV-B of the paper).

Layout (offsets from the task's gs base)::

    +0     selector byte          (SUD reads this on every syscall entry)
    +8     trampoline selector    (selector value the sigreturn trampoline
                                   restores; byte, stored in a u64 slot)
    +16    trampoline resume rip  (where the trampoline jumps)
    +24    xstate stack pointer   (absolute address, grows up)
    +32    sigreturn stack pointer(absolute address, grows up)
    +64    scratch                (shadow structs for rewritten syscalls)
    +128   sigreturn stack        (64 u64 slots: saved selector per signal)
    +1024  xstate stack           (XSTACK_DEPTH xsave areas)

Every task gets its own region, mapped by the tool and addressed through
``%gs`` — which is what lets threads sharing an address space have private
selectors, the property plain SUD deployments lack.
"""

from __future__ import annotations

from repro.cpu.core import XSAVE_AREA_SIZE
from repro.kernel.sud import SELECTOR_BLOCK
from repro.mem.pages import PAGE_SIZE, Perm, page_align_up

GS_SELECTOR = 0
GS_XSP = 24
GS_SIGRET_SP = 32
GS_SIGRET_DEPTH = 40  #: live entries on the sigreturn stack (u64 counter)
GS_SIGRET_SPARE = 48  #: one cached overflow page for spill mode (0 = none)
GS_SCRATCH = 64
GS_SIGRET_STACK = 128
SIGRET_STACK_SLOTS = 64
GS_XSTACK = 1024
XSTACK_DEPTH = 8

#: Size of the *protected* part (what the optional MPK domain covers).
GS_PROTECTED_SIZE = page_align_up(GS_XSTACK + XSTACK_DEPTH * XSAVE_AREA_SIZE)

# The trampoline slots live on a trailing page outside the protected
# domain: the sigreturn trampoline must read them *after* it has re-closed
# the domain (see asmblobs.py).  Under the default (non-MPK) configuration
# the split is invisible.
GS_UNPROT = GS_PROTECTED_SIZE
GS_TRAMP_SEL = GS_UNPROT + 0
GS_TRAMP_RIP = GS_UNPROT + 8
GS_APP_PKRU = GS_UNPROT + 16  #: PKRU value application code runs with
GS_TRAMP_PKRU = GS_UNPROT + 24  #: PKRU of the signal-interrupted context

GS_SIZE = GS_PROTECTED_SIZE + PAGE_SIZE


def map_gs_region(mem, *, hint: int = 0x3000_0000) -> int:
    """Allocate and zero a fresh gs region; returns its base address."""
    return mem.map_anywhere(GS_SIZE, Perm.RW, hint=hint)


def init_gs_region(mem, base: int, *, selector: int = SELECTOR_BLOCK) -> None:
    mem.write_u8(base + GS_SELECTOR, selector, check=None)
    mem.write_u64(base + GS_XSP, base + GS_XSTACK, check=None)
    mem.write_u64(base + GS_SIGRET_SP, base + GS_SIGRET_STACK, check=None)
    mem.write_u64(base + GS_SIGRET_DEPTH, 0, check=None)
    mem.write_u64(base + GS_SIGRET_SPARE, 0, check=None)


# ----------------------------------------------------------- host accessors
def read_selector(mem, gs_base: int) -> int:
    return mem.read_u8(gs_base + GS_SELECTOR, check=None)


def write_selector(mem, gs_base: int, value: int) -> None:
    mem.write_u8(gs_base + GS_SELECTOR, value, check=None)


def push_sigret_selector(mem, gs_base: int, value: int, *,
                         spill: bool = False, force: bool = False) -> bool:
    """Push one saved selector.  Returns True if an overflow page was
    chained (only possible with ``spill=True``).

    Spill layout: when the inline slots fill up, a fresh RW page is
    chained; its slot 0 holds the previous stack pointer (the back link)
    and slots 1.. hold values, so the first value on every overflow page
    sits at page offset 8 — which the inline stack (page offset 128+,
    since the gs base is page-aligned) can never alias.  One drained page
    is cached in ``GS_SIGRET_SPARE`` so a signal depth oscillating around
    the boundary does not leak a page per crossing.

    ``force`` chains an overflow page even before the inline stack is
    physically full — how ``DegradePolicy.signal_depth_limit`` caps inline
    usage below the 64 physical slots (it only applies while the pointer
    is still in the inline stack; pushes on an already-chained page keep
    filling that page).

    Without ``spill`` a full stack still raises (the historical guard);
    lazypoline itself never lets that happen — it either spills or
    delivers a clean guest fault first, per its ``DegradePolicy``.
    """
    sp = mem.read_u64(gs_base + GS_SIGRET_SP, check=None)
    main_limit = gs_base + GS_SIGRET_STACK + 8 * SIGRET_STACK_SLOTS
    in_main = gs_base + GS_SIGRET_STACK <= sp <= main_limit
    full = (
        (sp >= main_limit or (force and spill))
        if in_main
        else sp % PAGE_SIZE == 0
    )
    spilled = False
    if full:
        if not spill:
            raise OverflowError("lazypoline sigreturn stack overflow")
        page = mem.read_u64(gs_base + GS_SIGRET_SPARE, check=None)
        if page:
            mem.write_u64(gs_base + GS_SIGRET_SPARE, 0, check=None)
        else:
            page = mem.map_anywhere(PAGE_SIZE, Perm.RW, hint=0x3400_0000)
        mem.write_u64(page, sp, check=None)  # back link
        sp = page + 8
        spilled = True
    mem.write_u64(sp, value, check=None)
    mem.write_u64(gs_base + GS_SIGRET_SP, sp + 8, check=None)
    depth = mem.read_u64(gs_base + GS_SIGRET_DEPTH, check=None)
    mem.write_u64(gs_base + GS_SIGRET_DEPTH, depth + 1, check=None)
    return spilled


def pop_sigret_selector(mem, gs_base: int) -> int:
    sp = mem.read_u64(gs_base + GS_SIGRET_SP, check=None)
    if sp <= gs_base + GS_SIGRET_STACK:
        return SELECTOR_BLOCK  # empty: conservative default
    sp -= 8
    value = mem.read_u64(sp, check=None) & 0xFF
    if sp % PAGE_SIZE == 8:
        # First value slot of an overflow page (the inline stack lives at
        # page offset >= 128): follow the back link and recycle the page.
        page = sp - 8
        sp = mem.read_u64(page, check=None)
        if mem.read_u64(gs_base + GS_SIGRET_SPARE, check=None) == 0:
            mem.write_u64(gs_base + GS_SIGRET_SPARE, page, check=None)
        else:
            mem.unmap(page, PAGE_SIZE)
    mem.write_u64(gs_base + GS_SIGRET_SP, sp, check=None)
    depth = mem.read_u64(gs_base + GS_SIGRET_DEPTH, check=None)
    if depth:
        mem.write_u64(gs_base + GS_SIGRET_DEPTH, depth - 1, check=None)
    return value


def sigret_depth(mem, gs_base: int) -> int:
    """Live saved-selector count (== current wrapped-signal nesting depth)."""
    return mem.read_u64(gs_base + GS_SIGRET_DEPTH, check=None)


def unwind_xstate_entry(mem, gs_base: int) -> None:
    """Drop the top xsave area (used when sigreturn skips the stub epilogue)."""
    xsp = mem.read_u64(gs_base + GS_XSP, check=None)
    if xsp > gs_base + GS_XSTACK:
        mem.write_u64(gs_base + GS_XSP, xsp - XSAVE_AREA_SIZE, check=None)


def xstack_depth(mem, gs_base: int) -> int:
    xsp = mem.read_u64(gs_base + GS_XSP, check=None)
    return (xsp - (gs_base + GS_XSTACK)) // XSAVE_AREA_SIZE
