"""The per-task %gs-relative memory region (§IV-B of the paper).

Layout (offsets from the task's gs base)::

    +0     selector byte          (SUD reads this on every syscall entry)
    +8     trampoline selector    (selector value the sigreturn trampoline
                                   restores; byte, stored in a u64 slot)
    +16    trampoline resume rip  (where the trampoline jumps)
    +24    xstate stack pointer   (absolute address, grows up)
    +32    sigreturn stack pointer(absolute address, grows up)
    +64    scratch                (shadow structs for rewritten syscalls)
    +128   sigreturn stack        (64 u64 slots: saved selector per signal)
    +1024  xstate stack           (XSTACK_DEPTH xsave areas)

Every task gets its own region, mapped by the tool and addressed through
``%gs`` — which is what lets threads sharing an address space have private
selectors, the property plain SUD deployments lack.
"""

from __future__ import annotations

from repro.cpu.core import XSAVE_AREA_SIZE
from repro.kernel.sud import SELECTOR_BLOCK
from repro.mem.pages import PAGE_SIZE, Perm, page_align_up

GS_SELECTOR = 0
GS_XSP = 24
GS_SIGRET_SP = 32
GS_SCRATCH = 64
GS_SIGRET_STACK = 128
SIGRET_STACK_SLOTS = 64
GS_XSTACK = 1024
XSTACK_DEPTH = 8

#: Size of the *protected* part (what the optional MPK domain covers).
GS_PROTECTED_SIZE = page_align_up(GS_XSTACK + XSTACK_DEPTH * XSAVE_AREA_SIZE)

# The trampoline slots live on a trailing page outside the protected
# domain: the sigreturn trampoline must read them *after* it has re-closed
# the domain (see asmblobs.py).  Under the default (non-MPK) configuration
# the split is invisible.
GS_UNPROT = GS_PROTECTED_SIZE
GS_TRAMP_SEL = GS_UNPROT + 0
GS_TRAMP_RIP = GS_UNPROT + 8
GS_APP_PKRU = GS_UNPROT + 16  #: PKRU value application code runs with
GS_TRAMP_PKRU = GS_UNPROT + 24  #: PKRU of the signal-interrupted context

GS_SIZE = GS_PROTECTED_SIZE + PAGE_SIZE


def map_gs_region(mem, *, hint: int = 0x3000_0000) -> int:
    """Allocate and zero a fresh gs region; returns its base address."""
    return mem.map_anywhere(GS_SIZE, Perm.RW, hint=hint)


def init_gs_region(mem, base: int, *, selector: int = SELECTOR_BLOCK) -> None:
    mem.write_u8(base + GS_SELECTOR, selector, check=None)
    mem.write_u64(base + GS_XSP, base + GS_XSTACK, check=None)
    mem.write_u64(base + GS_SIGRET_SP, base + GS_SIGRET_STACK, check=None)


# ----------------------------------------------------------- host accessors
def read_selector(mem, gs_base: int) -> int:
    return mem.read_u8(gs_base + GS_SELECTOR, check=None)


def write_selector(mem, gs_base: int, value: int) -> None:
    mem.write_u8(gs_base + GS_SELECTOR, value, check=None)


def push_sigret_selector(mem, gs_base: int, value: int) -> None:
    sp = mem.read_u64(gs_base + GS_SIGRET_SP, check=None)
    limit = gs_base + GS_SIGRET_STACK + 8 * SIGRET_STACK_SLOTS
    if sp >= limit:
        raise OverflowError("lazypoline sigreturn stack overflow")
    mem.write_u64(sp, value, check=None)
    mem.write_u64(gs_base + GS_SIGRET_SP, sp + 8, check=None)


def pop_sigret_selector(mem, gs_base: int) -> int:
    sp = mem.read_u64(gs_base + GS_SIGRET_SP, check=None)
    if sp <= gs_base + GS_SIGRET_STACK:
        return SELECTOR_BLOCK  # empty: conservative default
    sp -= 8
    mem.write_u64(gs_base + GS_SIGRET_SP, sp, check=None)
    return mem.read_u64(sp, check=None) & 0xFF


def unwind_xstate_entry(mem, gs_base: int) -> None:
    """Drop the top xsave area (used when sigreturn skips the stub epilogue)."""
    xsp = mem.read_u64(gs_base + GS_XSP, check=None)
    if xsp > gs_base + GS_XSTACK:
        mem.write_u64(gs_base + GS_XSP, xsp - XSAVE_AREA_SIZE, check=None)


def xstack_depth(mem, gs_base: int) -> int:
    xsp = mem.read_u64(gs_base + GS_XSP, check=None)
    return (xsp - (gs_base + GS_XSTACK)) // XSAVE_AREA_SIZE
