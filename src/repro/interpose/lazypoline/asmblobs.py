"""lazypoline's assembly: the VA-0 page and its entry points.

One page holds everything (the paper's is 200 lines of hand-written
assembly):

* the zpoline nop sled (offsets 0..511),
* ``fastpath_entry`` — the generic interposer entry reached by ``call rax``
  (or by the slow path's REG_RIP redirect): sets the selector to ALLOW,
  preserves the argument registers, optionally xsaves extended state to the
  per-task %gs xstate stack, host-calls the generic handler, and undoes it
  all with the selector left at BLOCK,
* ``sigsys_handler`` — the SUD SIGSYS handler body (slow path),
* ``internal_restorer`` — sigreturn restorer for lazypoline's own SIGSYS
  frames; always executed with selector ALLOW, hence never rewritten,
* ``wrapper_handler`` — the shim registered in place of application signal
  handlers (Fig. 3 ①),
* ``app_restorer`` — restorer for wrapped application handlers; its syscall
  instruction runs with selector BLOCK and is therefore lazily rewritten
  and interposed like any application syscall (Fig. 3 ③),
* ``sigreturn_trampoline`` — restores the saved selector and jumps to the
  original signal-delivery context without touching a single register or
  flag (Fig. 3 ④).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.encode import Assembler
from repro.cpu.core import XSAVE_AREA_SIZE
from repro.interpose.lazypoline import gsrel
from repro.interpose.zpoline.trampoline import SLED_SIZE
from repro.kernel.sud import SELECTOR_ALLOW, SELECTOR_BLOCK
from repro.kernel.syscalls.table import NR

_ARG_REGS = ("rdi", "rsi", "rdx", "r10", "r8", "r9")


@dataclass(frozen=True)
class LazypolineBlobs:
    """Addresses of every entry point inside the VA-0 page."""

    code: bytes
    fastpath_entry: int
    sigsys_handler: int
    internal_restorer: int
    wrapper_handler: int
    app_restorer: int
    sigreturn_trampoline: int
    noop_ret: int


def build_blobs(
    *,
    generic_hcall: int,
    sigsys_hcall: int,
    wrap_pre_hcall: int,
    preserve_xstate: bool,
    pkey_protected: bool = False,
    base: int = 0,
) -> LazypolineBlobs:
    """Assemble the blob page at ``base`` (0 for the paper's VA-0 page).

    A non-zero base is the SUD_ONLY degradation layout: every entry point
    (SIGSYS handler, wrapper, restorers, trampoline) works anywhere, but
    ``call rax`` can only land in the sled when it sits at address 0 — so
    a relocated page means no rewriting, only the selector slow path.
    """
    asm = Assembler(base=base)

    # ---- the zpoline sled: `call rax` lands at offset <sysno> ------------
    for _ in range(SLED_SIZE):
        asm.nop()

    # ---- fast path --------------------------------------------------------
    asm.label("fastpath_entry")
    if pkey_protected:
        # Open the gs protection domain (r11 is a legal clobber).
        asm.mov_imm("r11", 0)
        asm.wrpkru("r11")
    asm.mov_imm("r11", SELECTOR_ALLOW)
    asm.gsstore8(gsrel.GS_SELECTOR, "r11")
    for reg in _ARG_REGS:
        asm.push(reg)
    if preserve_xstate:
        asm.gsload("r11", gsrel.GS_XSP)
        asm.xsave("r11", 0)
        asm.addi("r11", XSAVE_AREA_SIZE)
        asm.gsstore(gsrel.GS_XSP, "r11")
    asm.hcall(generic_hcall)
    if preserve_xstate:
        asm.gsload("r11", gsrel.GS_XSP)
        asm.subi("r11", XSAVE_AREA_SIZE)
        asm.gsstore(gsrel.GS_XSP, "r11")
        asm.xrstor("r11", 0)
    for reg in reversed(_ARG_REGS):
        asm.pop(reg)
    asm.mov_imm("r11", SELECTOR_BLOCK)
    asm.gsstore8(gsrel.GS_SELECTOR, "r11")
    if pkey_protected:
        asm.gswrpkru(gsrel.GS_APP_PKRU)  # close the domain again
    asm.ret()

    # ---- slow path: the SUD SIGSYS handler -------------------------------
    asm.label("sigsys_handler")
    asm.hcall(sigsys_hcall)
    asm.ret()

    asm.label("internal_restorer")
    asm.mov_imm("rax", NR["rt_sigreturn"])
    asm.syscall()  # always reached with selector == ALLOW: never dispatched

    # ---- signal wrapping (Fig. 3) -----------------------------------------
    asm.label("wrapper_handler")
    asm.hcall(wrap_pre_hcall)  # saves selector, sets BLOCK, rax := app handler
    asm.call_reg("rax")
    asm.ret()

    asm.label("app_restorer")
    asm.mov_imm("rax", NR["rt_sigreturn"])
    asm.syscall()  # runs with selector BLOCK: lazily rewritten + interposed

    asm.label("sigreturn_trampoline")
    # Entered via sigreturn with the frame's PKRU patched open, so the
    # selector write is permitted; the interrupted context's own PKRU —
    # saved next to the selector, since a signal may interrupt the open
    # interposer as well as closed application code — is then restored
    # from the unprotected slot.  No register or flag is touched at any
    # point (Fig. 3 ④).
    asm.gscopy8(gsrel.GS_SELECTOR, gsrel.GS_TRAMP_SEL)
    if pkey_protected:
        asm.gswrpkru(gsrel.GS_TRAMP_PKRU)
    asm.gsjmp(gsrel.GS_TRAMP_RIP)

    asm.label("noop_ret")
    asm.ret()

    code = asm.assemble()
    return LazypolineBlobs(
        code=code,
        fastpath_entry=asm.address_of("fastpath_entry"),
        sigsys_handler=asm.address_of("sigsys_handler"),
        internal_restorer=asm.address_of("internal_restorer"),
        wrapper_handler=asm.address_of("wrapper_handler"),
        app_restorer=asm.address_of("app_restorer"),
        sigreturn_trampoline=asm.address_of("sigreturn_trampoline"),
        noop_ret=asm.address_of("noop_ret"),
    )
