"""The lazypoline tool: hybrid slow-path/fast-path interposition."""

from __future__ import annotations

from repro.arch.isa import CALL_RAX_BYTES, SYSCALL_BYTES, SYSENTER_BYTES
from repro.arch.registers import MASK64, RAX, RDI, RDX, RSI, RSP, SYSCALL_ARG_REGS
from repro.errors import AttachError
from repro.interpose.api import (
    Interposer,
    SyscallContext,
    passthrough_interposer,
    removed_install,
)
from repro.interpose.lazypoline import gsrel
from repro.interpose.lazypoline.asmblobs import LazypolineBlobs, build_blobs
from repro.interpose.lazypoline.config import LazypolineConfig
from repro.interpose.lazypoline.degrade import (
    DegradeController,
    DegradePolicy,
    Mode,
    as_degrade_policy,
)
from repro.kernel import errno
from repro.kernel.signals import (
    FRAME_SIGINFO,
    SA_RESTORER,
    SA_SIGINFO,
    SI_ADDR,
    SIGSEGV,
    SIGSYS,
    UC_GPRS,
    UC_RIP,
)
from repro.kernel.sud import SELECTOR_ALLOW, SudState
from repro.kernel.syscalls.mm import (
    MAP_ANONYMOUS,
    MAP_FIXED,
    MAP_PRIVATE,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)
from repro.kernel.syscalls.table import NR
from repro.kernel.task import SIG_DFL, SIG_IGN, SigAction
from repro.mem.pages import PAGE_SIZE, Perm, page_align_down, page_align_up

_NR_MMAP = NR["mmap"]
_NR_MUNMAP = NR["munmap"]
_NR_MPROTECT = NR["mprotect"]

#: mprotect failures worth retrying during a rewrite (anything else —
#: e.g. EPERM/EACCES from a W^X policy — is permanent for that attempt).
_TRANSIENT_ERRNOS = frozenset({errno.EINTR, errno.EAGAIN, errno.ENOMEM})

#: CAS attempts before a contended rewrite-lock loser stops spinning and
#: backs off for the remainder of the owner's hold window.
SPIN_RETRY_BOUND = 64
_NR_RT_SIGACTION = NR["rt_sigaction"]
_NR_RT_SIGRETURN = NR["rt_sigreturn"]
_NR_CLONE = NR["clone"]
_NR_FORK = NR["fork"]
_NR_VFORK = NR["vfork"]
_NR_EXECVE = NR["execve"]

#: Stack bytes the fast-path prologue occupies above the caller's rsp:
#: the call-rax return address plus six pushed argument registers.
_STUB_STACK_BYTES = 8 + 6 * 8

_PERM_TO_PROT = {
    Perm.R: PROT_READ,
    Perm.RW: PROT_READ | PROT_WRITE,
    Perm.RX: PROT_READ | PROT_EXEC,
    Perm.RWX: PROT_READ | PROT_WRITE | PROT_EXEC,
}


class Lazypoline:
    """Exhaustive, expressive, efficient syscall interposition (§III)."""

    tool_name = "lazypoline"

    def __init__(self, machine, process, interposer: Interposer,
                 config: LazypolineConfig,
                 degrade_policy: DegradePolicy | None = None):
        self.machine = machine
        self.process = process
        self.interposer = interposer
        self.config = config
        self.blobs: LazypolineBlobs | None = None
        #: graceful-degradation state machine (see lazypoline/degrade.py)
        self.degrade = DegradeController(
            machine.kernel, degrade_policy or DegradePolicy(),
            mechanism=self.tool_name,
        )
        #: where the blob page actually landed (0 unless degraded)
        self._blob_base = 0
        self._hcall_ids: tuple[int, int, int] | None = None

        #: application signal handlers we shadow: sig -> SigAction
        self.app_handlers: dict[int, SigAction] = {}

        #: rewritten syscall sites (addresses), per address space: patches
        #: live in the pages of one address space, so a site rewritten in
        #: the parent after a fork is *not* rewritten in the child's copy
        #: (and vice versa) — tracking them in one shared set would make
        #: the other process skip the patch and slow-path that site forever.
        self._rewritten_by_space: dict[int, set[int]] = {}
        #: The spinlock of §IV-A(b), modelled as the *hold window* of the
        #: most recent critical section: (owner core, acquire clock,
        #: release clock), keyed by address space — the lock is process
        #: state, so forked processes contend only among their own threads.
        #: Slices are serialised in host order, so two cores contend
        #: exactly when the later (host-order) rewriter's core-local clock
        #: still falls inside the earlier one's window — it must then spin
        #: until the owner's release time.  On one core time only moves
        #: forward between syscalls, so the lock is always free: the
        #: uncontended acquire cost is all that is charged.
        self._lock_windows: dict[int, tuple[int, int, int]] = {}

        # statistics
        self.slowpath_hits = 0
        self.fastpath_hits = 0
        #: contended rewrite-lock acquisitions / cycles burnt spinning
        self.lock_contentions = 0
        self.lock_spin_cycles = 0

    @property
    def rewritten(self) -> set[int]:
        """Rewritten sites in the main process's current address space."""
        return self._rewritten_for(self.process.task.mem)

    def _rewritten_for(self, mem) -> set[int]:
        sites = self._rewritten_by_space.get(mem.asid)
        if sites is None:
            sites = self._rewritten_by_space[mem.asid] = set()
        return sites

    # ------------------------------------------------------------------ install
    @classmethod
    def install(cls, machine, process, interposer=None,
                config=None) -> "Lazypoline":
        """Removed — raises :class:`~repro.errors.AttachError`."""
        removed_install(cls)

    @classmethod
    def _install(
        cls,
        machine,
        process,
        interposer: Interposer | None = None,
        config: LazypolineConfig | None = None,
        degrade_policy=None,
    ) -> "Lazypoline":
        config = config or LazypolineConfig()
        tool = cls(
            machine, process, interposer or passthrough_interposer, config,
            as_degrade_policy(degrade_policy),
        )
        kernel = machine.kernel
        task = process.task

        tool._hcall_ids = (
            kernel.register_hcall(tool._on_generic),
            kernel.register_hcall(tool._on_sigsys),
            kernel.register_hcall(tool._on_wrap_pre),
        )
        tool._build_blobs(base=0)
        # The blob page (sled + every entry point) is mapped through the
        # real syscall path: setup-time mmap/mprotect failures (injected
        # ENOMEM, mmap_min_addr's EPERM) become visible, degradable events
        # instead of host exceptions.
        tool._map_blobs(kernel, task)
        if tool.degrade.mode is Mode.PASSTHROUGH:
            return tool  # nothing armed: the guest runs bare but runs
        tool._setup_task(task, fresh_gs=True)
        if config.reinstall_on_exec:
            kernel.exec_hooks.append(tool._on_exec)
        return tool

    def _build_blobs(self, *, base: int) -> None:
        generic, sigsys, wrap_pre = self._hcall_ids
        self.blobs = build_blobs(
            generic_hcall=generic,
            sigsys_hcall=sigsys,
            wrap_pre_hcall=wrap_pre,
            preserve_xstate=self.config.preserves_any_xstate,
            pkey_protected=self.config.protect_gs_with_pkey,
            base=base,
        )

    def _map_blobs(self, kernel, task) -> None:
        """Map the blob page, walking the degradation ladder on failure.

        FULL_HYBRID needs the page at VA 0: ``call rax`` on a rewritten
        site lands at address == sysno, inside the sled.  If the fixed
        VA-0 mapping is denied (``mmap_min_addr``, injected ENOMEM) the
        blobs are rebuilt at whatever base the kernel grants — every entry
        point still works, only the sled (and hence rewriting) is lost —
        and the tool attaches in SUD_ONLY.  If even that allocation fails
        and the policy floor allows, it attaches armed with nothing
        (PASSTHROUGH).  A floor above the required mode raises
        :class:`AttachError` instead.
        """
        degrade = self.degrade
        size = page_align_up(len(self.blobs.code))
        rw = PROT_READ | PROT_WRITE

        ret = kernel.do_syscall(
            task, _NR_MMAP,
            (0, size, rw, MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, 0, 0),
        )
        err = self._finish_blob_page(kernel, task, 0, size) if ret == 0 else -ret
        if err is None:
            self._blob_base = 0
            return
        if not degrade.degrade_to(
            Mode.SUD_ONLY,
            f"VA-0 blob page unavailable ({errno.errno_name(err)})",
            tid=task.tid,
        ):
            raise AttachError(
                f"lazypoline: cannot map the VA-0 sled page "
                f"({errno.errno_name(err)}) and the degrade floor is "
                f"{degrade.policy.floor.value}"
            )

        ret = kernel.do_syscall(
            task, _NR_MMAP, (0, size, rw, MAP_PRIVATE | MAP_ANONYMOUS, 0, 0)
        )
        if ret > 0:
            self._build_blobs(base=ret)
            err = self._finish_blob_page(kernel, task, ret, size)
            if err is None:
                self._blob_base = ret
                return
        else:
            err = -ret
        if not degrade.degrade_to(
            Mode.PASSTHROUGH,
            f"blob page unmappable anywhere ({errno.errno_name(err)})",
            tid=task.tid,
        ):
            raise AttachError(
                f"lazypoline: cannot map the blob page anywhere "
                f"({errno.errno_name(err)}) and the degrade floor is "
                f"{degrade.policy.floor.value}"
            )

    def _finish_blob_page(self, kernel, task, base: int, size: int) -> int | None:
        """Write the code and flip the page executable.  Returns None on
        success, the positive errno on failure (page unmapped again)."""
        task.mem.write(base, self.blobs.code, check=None)
        ret = kernel.do_syscall(
            task, _NR_MPROTECT, (base, size, PROT_READ | PROT_EXEC)
        )
        if ret == 0:
            return None
        kernel.do_syscall(task, _NR_MUNMAP, (base, size))
        return -ret

    def _setup_task(self, task, *, fresh_gs: bool) -> None:
        """Arm one task: gs region, xsave mask, SIGSYS handler, SUD."""
        if fresh_gs:
            base = gsrel.map_gs_region(task.mem)
            gsrel.init_gs_region(task.mem, base)
            task.regs.gs_base = base
        if self.config.protect_gs_with_pkey:
            self._arm_pkey(task)
        task.xsave_mask = self.config.preserve_xstate
        task.sighand.set(
            SIGSYS,
            SigAction(
                handler=self.blobs.sigsys_handler,
                flags=SA_SIGINFO | SA_RESTORER,
                restorer=self.blobs.internal_restorer,
            ),
        )
        if self.config.enable_sud:
            # Selector-only SUD: no allowlisted range whatsoever (§IV-A c).
            task.sud = SudState(
                selector_addr=task.regs.gs_base + gsrel.GS_SELECTOR,
                allow_start=0,
                allow_len=0,
            )

    def _arm_pkey(self, task) -> None:
        """§VI extension: put the protected part of the gs region behind a
        memory protection key, write-disabled for application code.

        Write-disable (not access-disable) is deliberate: the kernel's SUD
        entry path *reads* the selector byte through the user mapping on
        every syscall, and PKU applies to those reads too — so the selector
        must stay readable.  Blocking writes is exactly what defeats the
        selector-overwrite bypass.
        """
        mem = task.mem
        key = getattr(self, "_pkey", 0)
        if not key:
            key = mem.pkey_alloc()
            if key < 0:
                raise AttachError(
                    "no free protection keys (pkey_alloc would return ENOSPC)"
                )
            self._pkey = key
        mem.assign_pkey(task.regs.gs_base, gsrel.GS_PROTECTED_SIZE, key)
        closed = 2 << (2 * key)  # write-disable for the gs key
        mem.write_u32(task.regs.gs_base + gsrel.GS_APP_PKRU, closed, check=None)
        task.regs.pkru = closed
        mem.active_pkru = closed

    # ---------------------------------------------------------------- fast path
    def _on_generic(self, hctx) -> None:
        """The generic syscall handler, shared by fast and slow paths."""
        task = hctx.task
        regs = task.regs
        self.fastpath_hits += 1
        sysno = regs.read(RAX)
        tracer = hctx.kernel.tracer
        if tracer is not None:
            tracer.sled_enter(hctx.kernel.clock, task.tid, sysno, "lazypoline")
        args = tuple(regs.read(r) for r in SYSCALL_ARG_REGS)
        ctx = SyscallContext(
            hctx.kernel,
            task,
            sysno,
            args,
            mechanism="lazypoline",
            do_syscall=lambda nr, a: self._do_syscall(hctx, nr, a),
            defer=hctx.defer,
        )
        ret = self.interposer(ctx)
        if ret is not None:
            regs.write(RAX, ret & MASK64)

    def _do_syscall(self, hctx, sysno: int, args: tuple[int, ...]) -> int | None:
        """Re-issue a syscall, with tool cooperation for the complex ones.

        This is the "single syscall handling implementation shared between
        the fast and slow path" of §IV-A: rt_sigreturn, rt_sigaction and the
        spawn family need lazypoline's help to keep its own state coherent.
        """
        if sysno == _NR_RT_SIGRETURN:
            return self._do_rt_sigreturn(hctx)
        if sysno == _NR_RT_SIGACTION and self.config.wrap_signals:
            return self._do_rt_sigaction(hctx, args)
        if sysno in (_NR_CLONE, _NR_FORK, _NR_VFORK):
            return self._do_spawn(hctx, sysno, args)
        return hctx.do_syscall(sysno, args)

    # -------------------------------------------------------------- rt_sigreturn
    def _do_rt_sigreturn(self, hctx) -> None:
        """Interposed sigreturn: restore through the sigreturn trampoline.

        The frame being returned from sits just above the fast-path stub's
        stack usage.  The saved selector (pushed by the wrapper at delivery,
        Fig. 3 ①) must be restored *after* the kernel sigreturn — doing it
        before would re-trigger dispatch on the sigreturn itself — so the
        restored context detours through the trampoline (Fig. 3 ④).
        """
        task = hctx.task
        mem = task.mem
        regs = task.regs
        gs = regs.gs_base
        tracer = hctx.kernel.tracer
        if tracer is not None:
            tracer.sigreturn_tramp(hctx.kernel.clock, task.tid)

        frame_base = regs.read(RSP) + _STUB_STACK_BYTES - 8
        uc = frame_base + 48  # FRAME_UCONTEXT

        saved_selector = gsrel.pop_sigret_selector(mem, gs)
        if self.config.preserves_any_xstate:
            # The stub epilogue will never run for this invocation.
            gsrel.unwind_xstate_entry(mem, gs)

        original_rip = mem.read_u64(uc + UC_RIP, check=None)
        if self.blobs.sigreturn_trampoline <= original_rip < self.blobs.noop_ret:
            # INVARIANT (nested trampoline): a signal that lands *between*
            # the trampoline's gscopy8 and gsjmp belongs to an outer
            # restore whose GS_TRAMP_SEL/GS_TRAMP_RIP slots are still live.
            # Overwriting them here would make the outer gsjmp target the
            # trampoline address itself — an infinite self-jump.  Instead
            # leave the slots untouched and resume at the trampoline *top*:
            # every trampoline instruction is an idempotent read of those
            # slots, so re-running it completes the outer restore.  The
            # selector the nested wrapper pushed is discarded (popped
            # above) — gscopy8 re-derives the definitive value from the
            # outer GS_TRAMP_SEL.  In the pkey configuration the nested
            # frame's saved PKRU is already the patched-open value the
            # trampoline was interrupted with, so no UC_FLAGS surgery and
            # no touching the outer GS_TRAMP_PKRU stash.
            mem.write_u64(uc + UC_RIP, self.blobs.sigreturn_trampoline, check=None)
        else:
            mem.write_u64(gs + gsrel.GS_TRAMP_SEL, saved_selector, check=None)
            mem.write_u64(gs + gsrel.GS_TRAMP_RIP, original_rip, check=None)
            mem.write_u64(uc + UC_RIP, self.blobs.sigreturn_trampoline, check=None)
            if self.config.protect_gs_with_pkey:
                # The trampoline must write the selector: patch the frame's
                # saved PKRU open, stashing the interrupted context's real
                # PKRU for the trampoline to restore on its way out.
                from repro.kernel.signals import UC_FLAGS

                flags = mem.read_u64(uc + UC_FLAGS, check=None)
                mem.write_u64(gs + gsrel.GS_TRAMP_PKRU, flags >> 32, check=None)
                mem.write_u64(uc + UC_FLAGS, flags & 0xFFFFFFFF, check=None)
        hctx.charge(12)

        # Hand the kernel the rsp it expects for this frame, then sigreturn
        # with the selector (still) ALLOW.
        regs.write(RSP, frame_base + 8)
        hctx.do_syscall(_NR_RT_SIGRETURN, ())
        return None

    # -------------------------------------------------------------- rt_sigaction
    def _do_rt_sigaction(self, hctx, args: tuple[int, ...]) -> int:
        """Shadow application handler registrations behind the wrapper."""
        task = hctx.task
        mem = task.mem
        sig, act_ptr, oldact_ptr = args[0], args[1], args[2]
        if not 1 <= sig < 32:
            return -errno.EINVAL

        old = self.app_handlers.get(sig, SigAction())
        if oldact_ptr:
            mem.write_u64(oldact_ptr, old.handler, check=None)
            mem.write_u64(oldact_ptr + 8, old.flags, check=None)
            mem.write_u64(oldact_ptr + 16, old.restorer, check=None)
            mem.write_u64(oldact_ptr + 24, old.mask, check=None)
        if not act_ptr:
            return 0

        handler = mem.read_u64(act_ptr, check=None)
        flags = mem.read_u64(act_ptr + 8, check=None)
        mask = mem.read_u64(act_ptr + 24, check=None)

        if sig == SIGSYS:
            # SIGSYS belongs to lazypoline's slow path; virtualise the
            # registration so the application believes it succeeded.
            self.app_handlers[sig] = SigAction(handler, flags, 0, mask)
            return 0

        if handler in (SIG_DFL, SIG_IGN):
            self.app_handlers.pop(sig, None)
            return hctx.do_syscall(_NR_RT_SIGACTION, (sig, act_ptr, 0, 8)) or 0

        self.app_handlers[sig] = SigAction(handler, flags, 0, mask)
        # Build the shadow registration in per-task scratch space.
        scratch = task.regs.gs_base + gsrel.GS_SCRATCH
        mem.write_u64(scratch, self.blobs.wrapper_handler, check=None)
        mem.write_u64(scratch + 8, flags | SA_SIGINFO | SA_RESTORER, check=None)
        mem.write_u64(scratch + 16, self.blobs.app_restorer, check=None)
        mem.write_u64(scratch + 24, mask, check=None)
        hctx.charge(10)
        ret = hctx.do_syscall(_NR_RT_SIGACTION, (sig, scratch, 0, 8))
        return 0 if ret is None else ret

    def _on_wrap_pre(self, hctx) -> None:
        """Wrapper-handler prologue (Fig. 3 ①): save the selector on the
        %gs sigreturn stack, set BLOCK, and resolve the app handler.

        This is the only place nested-signal state grows, so it is also
        where resource exhaustion of the per-task %gs stacks is handled:
        by policy, an over-deep nest either spills onto chained overflow
        pages or takes a clean guest fault — never a host exception.
        """
        task = hctx.task
        regs = task.regs
        mem = task.mem
        gs = regs.gs_base
        sig = regs.read(RDI)
        policy = self.degrade.policy

        spill = policy.depth_overflow == "spill"
        depth = gsrel.sigret_depth(mem, gs)
        over_limit = depth >= min(
            policy.signal_depth_limit, gsrel.SIGRET_STACK_SLOTS
        )
        exhausted = over_limit and not spill
        if not exhausted and self.config.preserves_any_xstate:
            # The xstate stack cannot spill (the fast-path asm indexes it
            # directly); one slot is kept in reserve for the handler's own
            # syscalls.
            if gsrel.xstack_depth(mem, gs) >= gsrel.XSTACK_DEPTH - 1:
                exhausted = True
                spill = False
        if exhausted:
            # The real kernel's analogue of an unpushable signal frame is
            # force_sigsegv(): reset the disposition to SIG_DFL and kill.
            self.degrade.note_depth_overflow(tid=task.tid, depth=depth)
            task.sighand.set(SIGSEGV, SigAction())
            self.app_handlers.pop(SIGSEGV, None)
            regs.write(RAX, self.blobs.noop_ret)
            hctx.kernel.force_signal(
                task, SIGSEGV, {"addr": gs + gsrel.GS_SIGRET_SP}
            )
            return

        current = gsrel.read_selector(mem, gs)
        spilled = gsrel.push_sigret_selector(
            mem, gs, current, spill=spill, force=over_limit
        )
        if spilled:
            self.degrade.note_spill(tid=task.tid, depth=depth)
            hctx.charge(hctx.kernel.costs.page_op)
        gsrel.write_selector(mem, gs, 1)  # SELECTOR_BLOCK
        hctx.charge(8)

        action = self.app_handlers.get(sig)
        target = action.handler if action is not None else self.blobs.noop_ret
        regs.write(RAX, target)

    # -------------------------------------------------------------------- spawn
    def _do_spawn(self, hctx, sysno: int, args: tuple[int, ...]) -> int | None:
        """fork/vfork/clone: re-arm lazypoline in the child (§IV-B a).

        Two child shapes exist:

        * **fork-like** (own address space, inherited stack): the child
          resumes inside the fast-path stub on its *copy* of the parent's
          stack and unwinds through the normal epilogue; its gs pages came
          along with the address-space copy.
        * **thread-like** (``clone`` with a caller-provided stack): the new
          stack contains no stub frame to return through, so the child is
          redirected straight to the application return address — the slot
          the ``call rax`` pushed, read from the parent's stack — with a
          fresh, empty %gs region and the selector at BLOCK.  This is the
          clone complexity §IV-A's shared-handler design talks about.
        """
        parent = hctx.task
        new_stack = sysno == _NR_CLONE and args[1] != 0
        ret = hctx.do_syscall(sysno, args)
        if ret is None or ret <= 0:
            return ret
        child = hctx.kernel.tasks.get(ret)
        if child is None:
            return ret
        if new_stack:
            app_return = parent.mem.read_u64(
                parent.regs.read(RSP) + 6 * 8, check=None
            )
            child.regs.rip = app_return
            base = gsrel.map_gs_region(child.mem)
            gsrel.init_gs_region(child.mem, base)  # selector = BLOCK
            child.regs.gs_base = base
            self._setup_task(child, fresh_gs=False)
            if self.config.protect_gs_with_pkey:
                # The child starts directly in application code: closed.
                child.regs.pkru = child.mem.read_u32(
                    base + gsrel.GS_APP_PKRU, check=None
                )
        elif child.mem is parent.mem:
            # CLONE_VM without a new stack: the child shares the parent's
            # stack and resumes mid-stub; give it a private gs region with
            # the in-flight xstate frame replayed so its epilogue balances.
            base = gsrel.map_gs_region(child.mem)
            gsrel.init_gs_region(child.mem, base, selector=SELECTOR_ALLOW)
            parent_gs = parent.regs.gs_base
            depth_bytes = (
                child.mem.read_u64(parent_gs + gsrel.GS_XSP, check=None)
                - (parent_gs + gsrel.GS_XSTACK)
            )
            if depth_bytes > 0:
                blob = child.mem.read(
                    parent_gs + gsrel.GS_XSTACK, depth_bytes, check=None
                )
                child.mem.write(base + gsrel.GS_XSTACK, blob, check=None)
            child.mem.write_u64(
                base + gsrel.GS_XSP, base + gsrel.GS_XSTACK + max(depth_bytes, 0),
                check=None,
            )
            child.regs.gs_base = base
            self._setup_task(child, fresh_gs=False)
        else:
            # fork: the gs pages were copied with the address space and the
            # gs base register came along in the register copy.
            self._setup_task(child, fresh_gs=False)
        return ret

    def _on_exec(self, task) -> None:
        """execve wipes every mapping and SUD itself; re-install from scratch."""
        if task.pid != self.process.task.pid:
            return
        base = self._blob_base
        size = page_align_up(len(self.blobs.code))
        if not task.mem.is_mapped(base, size):
            task.mem.map(base, size, Perm.RW)
            task.mem.write(base, self.blobs.code, check=None)
            task.mem.protect(base, size, Perm.RX)
        self.rewritten.clear()
        self.app_handlers.clear()
        self._setup_task(task, fresh_gs=True)

    # ---------------------------------------------------------------- slow path
    def _on_sigsys(self, hctx) -> None:
        """The SUD SIGSYS handler (slow path, §IV-A).

        Sets the selector to ALLOW, rewrites the trapping syscall site, and
        redirects the interrupted context to the fast-path entry — emulating
        the ``call rax`` push so both entry paths look identical to the
        generic handler.  Sigreturns with the selector still ALLOW; the
        fast-path epilogue restores BLOCK.
        """
        task = hctx.task
        regs = task.regs
        mem = task.mem
        self.slowpath_hits += 1

        gsrel.write_selector(mem, regs.gs_base, SELECTOR_ALLOW)
        hctx.charge(3)

        siginfo = regs.read(RSI)
        uc = regs.read(RDX)
        frame_base = siginfo - FRAME_SIGINFO
        call_addr = mem.read_u64(frame_base + SI_ADDR, check=None)
        site = call_addr - 2  # si_call_addr points past the syscall insn
        tracer = hctx.kernel.tracer
        if tracer is not None:
            tracer.sigsys_trap(hctx.kernel.clock, task.tid, site, "lazypoline")

        if (
            self.config.rewrite
            and self.degrade.allows_rewrite
            and site not in self.degrade.blacklist
        ):
            self._rewrite_site(hctx, site)

        # REG_RIP redirection (§IV-A c), with an emulated call-rax push.
        saved_rsp = mem.read_u64(uc + UC_GPRS + 8 * RSP, check=None)
        new_rsp = saved_rsp - 8
        mem.write_u64(new_rsp, call_addr, check=None)
        mem.write_u64(uc + UC_GPRS + 8 * RSP, new_rsp, check=None)
        mem.write_u64(uc + UC_RIP, self.blobs.fastpath_entry, check=None)
        hctx.charge(10)

    def _spin_for_lock(self, hctx, release: int) -> None:
        """Spin (bounded retries, then yield) until the owner releases.

        Models a PAUSE-loop CAS retry: each iteration burns
        ``smp_spin_retry`` cycles; after ``SPIN_RETRY_BOUND`` failed
        attempts the loser stops hammering the line and sleeps out the
        remainder of the hold window (sched_yield-style backoff).
        """
        self.lock_contentions += 1
        kernel = hctx.kernel
        retry = kernel.costs.smp_spin_retry
        start = kernel.clock
        spins = 0
        while kernel.clock < release and spins < SPIN_RETRY_BOUND:
            hctx.charge(retry)
            spins += 1
        if kernel.clock < release:
            hctx.charge(release - kernel.clock)
        self.lock_spin_cycles += kernel.clock - start

    def _mprotect_retry(self, hctx, addr: int, length: int, prot: int) -> int:
        """mprotect with bounded, charged, exponential backoff on transient
        failure.  The §IV-A(b) lock stays held the whole time, so the
        backoff cycles are honestly burnt inside the critical section."""
        policy = self.degrade.policy
        ret = hctx.do_syscall(_NR_MPROTECT, (addr, length, prot))
        attempt = 0
        while (
            isinstance(ret, int)
            and ret < 0
            and -ret in _TRANSIENT_ERRNOS
            and attempt < policy.rewrite_retries
        ):
            hctx.charge(policy.retry_backoff << attempt)
            attempt += 1
            ret = hctx.do_syscall(_NR_MPROTECT, (addr, length, prot))
        return 0 if ret is None else ret

    def _rewrite_site(self, hctx, site: int) -> None:
        """Patch one verified syscall instruction to ``call rax``.

        Failure handling (all under the lock): a transient opening-mprotect
        failure is retried with backoff; an exhausted attempt leaves the
        site on the slow path and counts toward its blacklist budget; a
        failed *restore* rolls the patch back completely — original bytes,
        original protections — so no concurrent core can ever fetch a torn
        site, and no page is left writable-but-not-executable.
        """
        task = hctx.task
        mem = task.mem
        kernel = hctx.kernel
        degrade = self.degrade
        core_id = kernel.current_core_id
        # The spinlock of §IV-A(b): prevents one thread from revoking write
        # permission while another is mid-rewrite.  The uncontended acquire
        # (CAS + fences) always costs; under SMP a second core trapping on
        # the same window must additionally spin until the owner releases.
        hctx.charge(20)
        rewritten = self._rewritten_for(mem)
        owner, _acquired_at, release = self._lock_windows.get(
            mem.asid, (-1, 0, 0)
        )
        if owner not in (-1, core_id) and kernel.clock < release:
            self._spin_for_lock(hctx, release)
        acquired = kernel.clock
        try:
            if site in rewritten:
                # The lock holder beat us to this site: nothing to patch —
                # the sigreturn re-enters through the already-patched fast
                # path, which is exactly the loser's correct retry.
                return
            if site in degrade.blacklist:
                return
            insn = mem.read(site, 2, check=None)
            if insn not in (SYSCALL_BYTES, SYSENTER_BYTES):
                # The kernel guarantees a real syscall trapped here, so this
                # indicates concurrent self-modification; skip.
                return
            start = page_align_down(site)
            end = page_align_up(site + 2)
            pages = list(range(start, end, PAGE_SIZE))
            saved_perms = [mem.perm_at(p) for p in pages]
            saved = [
                _PERM_TO_PROT.get(perm, PROT_READ) for perm in saved_perms
            ]
            ret = self._mprotect_retry(
                hctx, start, end - start, PROT_READ | PROT_WRITE
            )
            if ret < 0:
                # Retries exhausted (or a permanent refusal, e.g. a W^X
                # policy's EPERM).  The site stays on the slow path —
                # correct, merely slower; writing anyway would fault on the
                # still read-only page and SIGSEGV the guest.  Repeated
                # failure blacklists just this site; other sites are
                # unaffected.
                degrade.note_rewrite_failure(site, -ret, tid=task.tid)
                return
            mem.write(site, CALL_RAX_BYTES, check="write")
            hctx.charge(3 + kernel.costs.code_patch_flush)
            restore_err = 0
            for page, prot in zip(pages, saved):
                ret = self._mprotect_retry(hctx, page, PAGE_SIZE, prot)
                if ret < 0:
                    restore_err = -ret
            if restore_err:
                # Roll back under the lock.  Order matters: first drop X
                # from every touched page (direct protect — restoring or
                # narrowing an existing VMA's protections needs no split
                # and cannot fail the way the syscall just did), so no
                # other core can fetch from the window; then put the
                # original bytes back; then force the saved protections.
                # Net effect: the site is byte-identical to before the
                # attempt and never observable in a torn state.
                for page in pages:
                    mem.protect(page, PAGE_SIZE, Perm.RW)
                mem.write(site, insn, check="write")
                hctx.charge(3 + kernel.costs.code_patch_flush)
                for page, perm in zip(pages, saved_perms):
                    mem.protect(page, PAGE_SIZE, perm)
                degrade.note_rewrite_failure(site, restore_err, tid=task.tid)
                return
            rewritten.add(site)
            tracer = kernel.tracer
            if tracer is not None:
                tracer.rewrite(
                    kernel.clock, task.tid, site, "lazypoline", origin="trap"
                )
        finally:
            self._lock_windows[mem.asid] = (core_id, acquired, kernel.clock)

    # ----------------------------------------------------------- degradation
    @property
    def mode(self) -> Mode:
        """Current degradation mode (FULL_HYBRID unless something failed)."""
        return self.degrade.mode

    def health(self) -> dict:
        """Degradation summary for this tool instance."""
        return self.degrade.health()

    # ------------------------------------------------------- manual rewriting
    def rewrite_site_now(self, site: int) -> None:
        """Host-side up-front rewrite (the microbenchmark's steady-state
        setup: "we manually rewrote the syscall instruction up front")."""
        if not self.degrade.allows_rewrite:
            raise AttachError(
                f"lazypoline: rewriting unavailable in "
                f"{self.degrade.mode.value} mode (no VA-0 sled)"
            )
        task = self.process.task
        insn = task.mem.read(site, 2, check=None)
        if insn not in (SYSCALL_BYTES, SYSENTER_BYTES):
            raise ValueError(f"no syscall instruction at {site:#x}")
        from repro.interpose.zpoline.rewriter import patch_site

        patch_site(task, site)
        self._rewritten_for(task.mem).add(site)
        tracer = self.machine.kernel.tracer
        if tracer is not None:
            tracer.rewrite(
                self.machine.kernel.clock, task.tid, site, "lazypoline",
                origin="manual",
            )
