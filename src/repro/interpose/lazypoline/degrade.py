"""Graceful degradation: keep interposing when the environment is hostile.

The paper assumes its best case: ``mmap_min_addr = 0`` (the VA-0 nop sled
is mappable), every setup ``mmap``/``mprotect`` succeeds, and signal
nesting never exhausts the per-task %gs stacks.  Real deployments violate
all three — nexpoline exists largely because page-0 mapping is often
forbidden — so lazypoline here carries a :class:`DegradeController` with
three explicit modes, strictly ordered by capability:

``FULL_HYBRID``
    The paper's design: SUD slow path + lazy binary rewriting through the
    VA-0 sled.  Requires the fixed VA-0 mapping.
``SUD_ONLY``
    Selector-only interposition: every syscall takes the SIGSYS slow path
    and is redirected into the (relocated) generic handler; no rewriting,
    no sled.  Still exhaustive and expressive — merely slower.  This is
    what lazypoline degrades to when VA 0 is denied (``-EPERM`` from
    ``mmap_min_addr``, or injected ``-ENOMEM``), or at runtime when enough
    rewrite sites have been blacklisted that patching is evidently futile.
``PASSTHROUGH``
    Nothing armed; the guest runs bare.  Interposition is lost but the
    workload survives.  Only reachable when the policy floor explicitly
    allows it — by default attach fails with ``AttachError`` instead.

Transitions are one-way (degrade only), recorded on the controller, and
emitted as obs ``degrade`` events when a tracer is attached;
``rewrite_blacklist`` and ``fallback`` events make the smaller absorbed
faults (retry-then-give-up rewrites, sigreturn-stack spills) visible the
same way.  ``Tracer.health()`` summarises all of it for a run.

Guest-visible behaviour must be identical in every mode — that is exactly
what the ``repro.faults`` differential scenarios assert.

Known bound: the %gs *xstate* stack (``gsrel.XSTACK_DEPTH`` xsave areas)
cannot spill — the fast-path assembly indexes it directly — so exhaustion
there is always converted to a clean guest ``SIGSEGV`` (the real kernel's
``force_sigsegv`` on an unpushable signal frame), never a host exception,
regardless of ``depth_overflow``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.interpose.lazypoline.gsrel import SIGRET_STACK_SLOTS


class Mode(Enum):
    """Capability modes, best to worst; see the module docstring."""

    FULL_HYBRID = "full_hybrid"
    SUD_ONLY = "sud_only"
    PASSTHROUGH = "passthrough"

    @property
    def rank(self) -> int:
        """Position on the degradation ladder (0 = most capable)."""
        return _ORDER.index(self)


_ORDER = (Mode.FULL_HYBRID, Mode.SUD_ONLY, Mode.PASSTHROUGH)


def _as_mode(value) -> Mode:
    if isinstance(value, Mode):
        return value
    return Mode(str(value).lower())


@dataclass(frozen=True)
class DegradePolicy:
    """How far and how eagerly a tool may degrade.

    The defaults match the paper's availability stance: losing the fast
    path is acceptable (``floor=SUD_ONLY``), losing interposition is not.
    """

    #: Worst mode the controller may fall to.  ``FULL_HYBRID`` restores the
    #: historical fail-hard behaviour; ``PASSTHROUGH`` prefers a running
    #: guest over interposition.
    floor: Mode = Mode.SUD_ONLY

    #: Transient (EINTR/EAGAIN/ENOMEM) mprotect failures retried per
    #: rewrite attempt before the attempt counts as failed.
    rewrite_retries: int = 2

    #: Simulated cycles charged for the first retry backoff; doubles per
    #: retry (so attempt ``n`` burns ``retry_backoff << n`` cycles).
    retry_backoff: int = 40

    #: Failed rewrite *attempts* (post-retry) before a site is pinned to
    #: the slow path forever.
    site_blacklist_after: int = 3

    #: Blacklisted sites before the controller concludes rewriting is
    #: futile process-wide and demotes FULL_HYBRID -> SUD_ONLY at runtime.
    demote_after_blacklisted: int = 8

    #: Nested-signal depth at which the sigreturn selector stack is
    #: considered exhausted.
    signal_depth_limit: int = SIGRET_STACK_SLOTS

    #: What exhaustion does: ``"fault"`` delivers a clean SIGSEGV-style
    #: guest fault (the kernel's force_sigsegv analogue); ``"spill"``
    #: chains overflow pages and keeps going.
    depth_overflow: str = "fault"

    def __post_init__(self):
        object.__setattr__(self, "floor", _as_mode(self.floor))
        if self.depth_overflow not in ("fault", "spill"):
            raise ValueError(
                f"depth_overflow must be 'fault' or 'spill', "
                f"got {self.depth_overflow!r}"
            )


def as_degrade_policy(value) -> DegradePolicy:
    """Coerce the ``attach(degrade_policy=...)`` argument.

    Accepts ``None`` (defaults), a :class:`DegradePolicy`, a
    :class:`Mode`/string naming just the floor, or a dict of field
    overrides.
    """
    if value is None:
        return DegradePolicy()
    if isinstance(value, DegradePolicy):
        return value
    if isinstance(value, (Mode, str)):
        return DegradePolicy(floor=_as_mode(value))
    if isinstance(value, dict):
        return DegradePolicy(**value)
    raise TypeError(f"cannot interpret degrade_policy={value!r}")


class DegradeController:
    """Tracks the current mode and every absorbed fault for one tool."""

    def __init__(self, kernel, policy: DegradePolicy, *, mechanism: str):
        self.kernel = kernel
        self.policy = policy
        self.mechanism = mechanism
        self.mode = Mode.FULL_HYBRID
        #: (clock, old Mode, new Mode, reason) per transition
        self.transitions: list[tuple[int, Mode, Mode, str]] = []
        #: failed rewrite attempts per site
        self.site_failures: dict[int, int] = {}
        #: sites pinned to the slow path
        self.blacklist: set[int] = set()
        self.rewrite_failures = 0
        self.depth_overflows = 0
        self.spills = 0

    # ------------------------------------------------------------- queries
    @property
    def allows_rewrite(self) -> bool:
        return self.mode is Mode.FULL_HYBRID

    @property
    def armed(self) -> bool:
        return self.mode is not Mode.PASSTHROUGH

    # -------------------------------------------------------- transitions
    def degrade_to(self, mode: Mode, reason: str, *, tid: int = -1) -> bool:
        """Move down the ladder.  Returns False if the policy floor forbids
        it (the caller must then fail the operation instead)."""
        if mode.rank <= self.mode.rank:
            return True  # already there or better
        if mode.rank > self.policy.floor.rank:
            return False
        old, self.mode = self.mode, mode
        self.transitions.append((self.kernel.clock, old, mode, reason))
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.degrade(
                self.kernel.clock, tid, self.mechanism,
                old.value, mode.value, reason,
            )
        return True

    # ----------------------------------------------------- absorbed faults
    def note_fallback(self, stage: str, *, tid: int = -1, **detail) -> None:
        """A recoverable fault was absorbed without a mode change."""
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.fallback(self.kernel.clock, tid, stage, detail)

    def note_rewrite_failure(self, site: int, err: int, *, tid: int = -1) -> bool:
        """One failed (post-retry) rewrite attempt.  Returns True when the
        site just crossed into the blacklist."""
        from repro.kernel.errno import errno_name

        self.rewrite_failures += 1
        count = self.site_failures.get(site, 0) + 1
        self.site_failures[site] = count
        self.note_fallback(
            "rewrite", tid=tid, site=site, errno=err, attempt=count
        )
        if count < self.policy.site_blacklist_after or site in self.blacklist:
            return False
        self.blacklist.add(site)
        tracer = self.kernel.tracer
        if tracer is not None:
            tracer.rewrite_blacklist(
                self.kernel.clock, tid, site, self.mechanism, errno_name(err)
            )
        if len(self.blacklist) >= self.policy.demote_after_blacklisted:
            self.degrade_to(
                Mode.SUD_ONLY,
                f"{len(self.blacklist)} sites blacklisted: rewriting is futile",
                tid=tid,
            )
        return True

    def note_spill(self, *, tid: int = -1, depth: int = 0) -> None:
        self.spills += 1
        self.note_fallback("sigret_spill", tid=tid, depth=depth)

    def note_depth_overflow(self, *, tid: int = -1, depth: int = 0,
                            stack: str = "sigreturn") -> None:
        self.depth_overflows += 1
        self.note_fallback("depth_overflow", tid=tid, depth=depth, stack=stack)

    # ------------------------------------------------------------- summary
    def health(self) -> dict:
        """Controller-side degradation summary (tracer-independent)."""
        return {
            "mode": self.mode.value,
            "transitions": [
                {"ts": ts, "old": old.value, "new": new.value, "reason": r}
                for ts, old, new, r in self.transitions
            ],
            "rewrite_failures": self.rewrite_failures,
            "blacklisted_sites": sorted(self.blacklist),
            "depth_overflows": self.depth_overflows,
            "spills": self.spills,
        }
