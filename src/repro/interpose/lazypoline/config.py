"""lazypoline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.registers import XComponent


@dataclass
class LazypolineConfig:
    """Install-time options.

    ``preserve_xstate`` mirrors the paper's configurable option (§IV-B):
    which extended-state components the fast path saves/restores around the
    interposer.  The default preserves everything; users who know their
    interposer never clobbers vector state can trade compatibility for
    speed (Table III tells them when that is safe).
    """

    #: Extended-state components preserved by the fast path.
    preserve_xstate: XComponent = field(default_factory=XComponent.all)

    #: Arm SUD (the slow path).  Disabled only for the Fig. 4 breakdown
    #: experiment, which measures the pure fast path.
    enable_sud: bool = True

    #: Rewrite syscall sites on first trap.  Disabling this degrades
    #: lazypoline to a plain (selector-only) SUD interposer.
    rewrite: bool = True

    #: Wrap application signal handlers (Fig. 3 machinery).
    wrap_signals: bool = True

    #: Re-install lazypoline automatically after a successful execve.
    reinstall_on_exec: bool = False

    #: §VI security extension: isolate the per-task %gs region (selector
    #: byte, sigreturn/xstate stacks) behind a memory protection key.
    #: Application code runs with the key write-disabled, so a malicious
    #: overwrite of the selector faults instead of silencing interposition;
    #: kernel-side selector reads (and the interposer itself) still work.
    protect_gs_with_pkey: bool = False

    @property
    def xstate_components(self) -> int:
        return bin(self.preserve_xstate.value).count("1")

    @property
    def preserves_any_xstate(self) -> bool:
        return self.preserve_xstate.value != 0
