"""The unified tool-attach API: one entry point for every mechanism.

``attach(machine, process, tool="lazypoline", interposer=..., **opts)``
replaces the per-class ``*Tool.install`` constructors (now deprecated
shims).  Tools are looked up in a registry keyed by ``tool_name``; entries
are imported lazily so importing :mod:`repro.interpose` stays cheap and no
tool module is loaded until it is actually attached.

Mechanism-specific options pass through ``**opts`` (e.g. ``mode="bytescan"``
for zpoline, ``config=LazypolineConfig(...)`` for lazypoline).  Two tools
have adapter quirks mirroring their real-world APIs:

* ``seccomp_bpf`` takes **no interposer** — the filter runs in kernel space
  and can only allow/deny (Table I); passing one raises ``ValueError``.
  Convenience opts: ``program=`` (a raw cBPF program) or ``denylist=`` (a
  list of syscall numbers to fail with ``errno_value=``).
* ``seccomp_unotify`` accepts ``sysnos=[...]`` to notify only for selected
  syscalls.
"""

from __future__ import annotations

import warnings
from importlib import import_module
from typing import Any, Callable

#: tool name -> (module, class name); resolved lazily on first attach.
_LAZY: dict[str, tuple[str, str]] = {
    "lazypoline": ("repro.interpose.lazypoline", "Lazypoline"),
    "zpoline": ("repro.interpose.zpoline", "Zpoline"),
    "sud": ("repro.interpose.sud_tool", "SudTool"),
    "seccomp_user": ("repro.interpose.seccomp_user_tool", "SeccompUserTool"),
    "seccomp_bpf": ("repro.interpose.seccomp_bpf_tool", "SeccompBpfTool"),
    "seccomp_unotify": ("repro.interpose.usernotif_tool", "UserNotifTool"),
    "ptrace": ("repro.interpose.ptrace_tool", "PtraceTool"),
    "preload": ("repro.interpose.preload_tool", "PreloadTool"),
}

#: tool name -> attach callable; populated lazily and by register_tool().
_REGISTRY: dict[str, Callable[..., Any]] = {}

#: tools whose ``_install`` understands ``degrade_policy=`` (see
#: :mod:`repro.interpose.lazypoline.degrade`).  Extended via
#: ``register_tool(..., degrade_aware=True)``.
_DEGRADE_AWARE: set[str] = {"lazypoline"}


def _attach_seccomp_bpf(machine, process, interposer=None, **opts):
    if interposer is not None:
        raise ValueError(
            "seccomp_bpf cannot run an interposer: cBPF filters execute in "
            "kernel space and only return allow/errno/kill/trap verdicts "
            "(Table I). Use tool='seccomp_unotify' or a SIGSYS-based tool "
            "for user-space interposition."
        )
    from repro.interpose.seccomp_bpf_tool import SeccompBpfTool

    denylist = opts.pop("denylist", None)
    if denylist is not None:
        return SeccompBpfTool._install_denylist(
            machine, process, denylist, **opts
        )
    return SeccompBpfTool._install(machine, process, **opts)


def _attach_seccomp_unotify(machine, process, interposer=None, **opts):
    from repro.interpose.usernotif_tool import UserNotifTool

    sysnos = opts.pop("sysnos", None)
    if sysnos is not None:
        if opts:
            raise TypeError(f"unexpected options with sysnos: {sorted(opts)}")
        return UserNotifTool._install_for_syscalls(
            machine, process, sysnos, interposer
        )
    return UserNotifTool._install(machine, process, interposer, **opts)


_ADAPTERS: dict[str, Callable[..., Any]] = {
    "seccomp_bpf": _attach_seccomp_bpf,
    "seccomp_unotify": _attach_seccomp_unotify,
}


def register_tool(
    name: str, attach_fn: Callable[..., Any], *, degrade_aware: bool = False
) -> None:
    """Register (or replace) an attachable tool.

    ``attach_fn(machine, process, interposer=None, **opts)`` must return the
    tool object.  Third-party tool classes typically pass ``cls._install``.
    ``degrade_aware`` declares that the tool accepts ``degrade_policy=``
    (see :mod:`repro.interpose.lazypoline.degrade`); for other tools the
    option warns and is dropped instead of breaking the attach.
    """
    _REGISTRY[name] = attach_fn
    if degrade_aware:
        _DEGRADE_AWARE.add(name)
    else:
        _DEGRADE_AWARE.discard(name)


def available_tools() -> list[str]:
    """Names accepted by :func:`attach`, sorted."""
    return sorted(set(_LAZY) | set(_REGISTRY))


def _resolve(name: str) -> Callable[..., Any]:
    fn = _REGISTRY.get(name)
    if fn is not None:
        return fn
    adapter = _ADAPTERS.get(name)
    if adapter is not None:
        _REGISTRY[name] = adapter
        return adapter
    try:
        module, cls_name = _LAZY[name]
    except KeyError:
        raise ValueError(
            f"unknown interposition tool {name!r}; "
            f"available: {', '.join(available_tools())}"
        ) from None
    cls = getattr(import_module(module), cls_name)
    fn = cls._install
    _REGISTRY[name] = fn
    return fn


def attach(
    machine,
    process,
    tool: str = "lazypoline",
    *,
    interposer=None,
    degrade_policy=None,
    **opts,
):
    """Attach an interposition tool to ``process`` on ``machine``.

    Returns the tool object (same as the old ``*Tool.install`` calls).
    ``interposer`` defaults to the passthrough interposer for tools that
    take one; mechanism-specific options go in ``**opts``.

    ``degrade_policy`` configures graceful degradation for tools that
    support it (currently lazypoline): a
    :class:`~repro.interpose.lazypoline.degrade.DegradePolicy`, a mode
    name/:class:`Mode` giving just the floor, or a dict of policy fields.
    Tools without degradation support warn and ignore it — existing
    callers keep working unchanged.
    """
    fn = _resolve(tool)
    if degrade_policy is not None:
        if tool in _DEGRADE_AWARE:
            opts["degrade_policy"] = degrade_policy
        else:
            warnings.warn(
                f"tool {tool!r} has no graceful-degradation support; "
                f"degrade_policy is ignored",
                RuntimeWarning,
                stacklevel=2,
            )
    if interposer is None:
        return fn(machine, process, **opts)
    return fn(machine, process, interposer, **opts)
