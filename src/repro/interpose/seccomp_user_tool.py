"""seccomp-user: SECCOMP_RET_TRAP-based interposition (§II-A, Table I).

A cBPF filter traps every syscall whose invocation IP is outside the tool's
code page; the SIGSYS handler interposes like the SUD deployment but without
a selector byte — permission to re-issue syscalls is purely address-based,
so every syscall (including the tool's own) still runs the BPF filter.
That extra filter execution is why the paper reports seccomp-user slower
than SUD's "more direct" selector check.

Filters also can never be uninstalled, even across execve — the
inflexibility §IV-A cites as Wine's motivation for creating SUD.
"""

from __future__ import annotations

from repro.interpose.signal_path import SignalPathTool
from repro.kernel.seccomp.filter import FilterBuilder
from repro.mem.pages import PAGE_SIZE


class SeccompUserTool(SignalPathTool):
    mechanism = "seccomp-user"
    tool_name = "seccomp_user"

    def _arm(self, task) -> None:
        self.filter = FilterBuilder.trap_all_except_ip_range(
            self.code_base, PAGE_SIZE
        )
        task.seccomp_filters.append(self.filter)

    # Children inherit seccomp filters automatically (Linux semantics), and
    # there is no selector to re-arm, so no _after_spawn fixup is needed.
