"""The zpoline tool object."""

from __future__ import annotations

from repro.arch.registers import MASK64, RAX, RSP, SYSCALL_ARG_REGS
from repro.interpose.api import (
    Interposer,
    SyscallContext,
    passthrough_interposer,
    removed_install,
)
from repro.interpose.zpoline.rewriter import discover_sites, rewrite_sites
from repro.interpose.zpoline.trampoline import build_trampoline_code, map_trampoline
from repro.kernel.syscalls.table import NR

_NR_RT_SIGRETURN = NR["rt_sigreturn"]
_NR_CLONE = NR["clone"]

#: Stack bytes between the stub's hcall and the signal frame: the
#: call-rax return address plus six pushed registers.
_STUB_STACK_BYTES = 8 + 6 * 8


class Zpoline:
    """Pure-rewriting interposition (no kernel interface armed).

    ``mode`` selects syscall discovery: ``"sweep"`` (disassembly) or
    ``"bytescan"`` (raw byte search) — see
    :mod:`repro.interpose.zpoline.rewriter` for the trade-off.
    """

    tool_name = "zpoline"

    def __init__(self, machine, process, interposer: Interposer, mode: str):
        self.machine = machine
        self.process = process
        self.interposer = interposer
        self.mode = mode
        self.rewritten_sites: list[int] = []
        self.entry_addr = 0
        self._hcall_id: int | None = None

    # ------------------------------------------------------------------ install
    @classmethod
    def install(cls, machine, process, interposer=None, **kw) -> "Zpoline":
        """Removed — raises :class:`~repro.errors.AttachError`."""
        removed_install(cls)

    @classmethod
    def _install(
        cls,
        machine,
        process,
        interposer: Interposer | None = None,
        *,
        mode: str = "sweep",
        rewrite: bool = True,
    ) -> "Zpoline":
        """Map the trampoline, scan the loaded image, rewrite in place."""
        tool = cls(machine, process, interposer or passthrough_interposer, mode)
        kernel = machine.kernel
        task = process.task

        tool._hcall_id = kernel.register_hcall(tool._on_trampoline_entry)
        code, entry = build_trampoline_code(tool._hcall_id)
        map_trampoline(task, code, kernel=kernel)
        tool.entry_addr = entry

        if rewrite:
            skip = {0}  # never rewrite the trampoline page itself
            sites = discover_sites(task, mode, skip_pages=skip)
            tool.rewritten_sites = rewrite_sites(task, sites)
            tool._trace_rewrites(tool.rewritten_sites)
        return tool

    def _trace_rewrites(self, sites) -> None:
        tracer = self.machine.kernel.tracer
        if tracer is None:
            return
        kernel = self.machine.kernel
        tid = self.process.task.tid
        for site in sites:
            tracer.rewrite(kernel.clock, tid, site, "zpoline", origin="static")

    def rewrite_now(self) -> list[int]:
        """Re-scan and rewrite (e.g. after loading more code)."""
        skip = {0}
        sites = [
            s
            for s in discover_sites(self.process.task, self.mode, skip_pages=skip)
            if s not in self.rewritten_sites
        ]
        new_sites = rewrite_sites(self.process.task, sites)
        self.rewritten_sites.extend(new_sites)
        self._trace_rewrites(new_sites)
        return sites

    # ---------------------------------------------------------------- handler
    def _on_trampoline_entry(self, hctx) -> None:
        task = hctx.task
        regs = task.regs
        sysno = regs.read(RAX)
        tracer = hctx.kernel.tracer
        if tracer is not None:
            tracer.sled_enter(hctx.kernel.clock, task.tid, sysno, "zpoline")
        args = tuple(regs.read(r) for r in SYSCALL_ARG_REGS)

        ctx = SyscallContext(
            hctx.kernel,
            task,
            sysno,
            args,
            mechanism="zpoline",
            do_syscall=lambda nr, a: self._do_syscall(hctx, nr, a),
            defer=hctx.defer,
        )
        ret = self.interposer(ctx)
        if ret is not None and sysno != _NR_RT_SIGRETURN:
            regs.write(RAX, ret & MASK64)

    def _do_syscall(self, hctx, sysno: int, args: tuple[int, ...]) -> int | None:
        if sysno == _NR_RT_SIGRETURN:
            return self._handle_sigreturn(hctx)
        ret = hctx.do_syscall(sysno, args)
        if sysno == _NR_CLONE and args[1] and isinstance(ret, int) and ret > 0:
            # A clone child on a fresh stack cannot return through this
            # stub (no frame there); send it straight to the application
            # return address the call-rax pushed on the parent's stack.
            child = hctx.kernel.tasks.get(ret)
            if child is not None:
                child.regs.rip = hctx.task.mem.read_u64(
                    hctx.task.regs.read(RSP) + 6 * 8, check=None
                )
        return ret

    def _handle_sigreturn(self, hctx) -> None:
        """rt_sigreturn replaces the whole context: undo the stub's stack
        usage so the kernel finds the signal frame where it expects it."""
        regs = hctx.task.regs
        regs.write(RSP, regs.read(RSP) + _STUB_STACK_BYTES)
        hctx.do_syscall(_NR_RT_SIGRETURN, ())
        # Registers (including rip/rsp) now come from the restored frame;
        # the abandoned stub continuation is unreachable by design.
