"""Static discovery and rewriting of syscall instructions.

Two discovery modes, reproducing §II-B's discussion:

* ``"sweep"`` (default): linear-sweep disassembly of each executable
  region.  Accurate on well-formed code, but data interleaved with text
  desynchronises the sweep — real syscall instructions can be missed.
* ``"bytescan"``: raw byte search for ``0F 05``/``0F 34``.  Never misses an
  aligned real syscall instruction, but happily "finds" syscalls inside the
  immediates of other instructions and rewrites them — destroying code.

Neither mode can see code created after the scan.  That is the paper's
central criticism and the reason lazypoline exists.
"""

from __future__ import annotations

from repro.arch.disasm import find_syscall_sites, sweep_syscall_addresses
from repro.arch.isa import CALL_RAX_BYTES, SYSCALL_BYTES, SYSENTER_BYTES
from repro.mem.pages import PAGE_SIZE, Perm, page_align_down, page_align_up


def discover_sites(task, mode: str = "sweep", *, skip_pages: set[int] = frozenset()) -> list[int]:
    """Find candidate syscall-instruction addresses in executable memory."""
    sites: list[int] = []
    for region in task.mem.executable_regions():
        if page_align_down(region.start) >> 12 in skip_pages:
            continue
        code = task.mem.read(region.start, region.size, check=None)
        if mode == "sweep":
            found = sweep_syscall_addresses(code, region.start)
        elif mode == "bytescan":
            found = find_syscall_sites(code, region.start)
        else:
            raise ValueError(f"unknown discovery mode {mode!r}")
        sites.extend(
            addr for addr in found if (addr >> 12) not in skip_pages
        )
    return sites


def patch_site(task, addr: int) -> None:
    """Replace the two bytes at ``addr`` with ``call rax``, flipping page
    permissions around the write like a real rewriter must."""
    start = page_align_down(addr)
    end = page_align_up(addr + 2)
    saved = [task.mem.perm_at(p) for p in range(start, end, PAGE_SIZE)]
    task.mem.protect(start, end - start, Perm.RW)
    task.mem.write(addr, CALL_RAX_BYTES, check="write")
    for i, perm in enumerate(saved):
        task.mem.protect(start + i * PAGE_SIZE, PAGE_SIZE, perm)


def site_intact(task, addr: int) -> bool:
    """True iff the site at ``addr`` is in a complete, executable state.

    A site is *intact* when its two bytes are a whole ``syscall``/
    ``sysenter`` or a whole ``call rax`` patch **and** every covering page
    is executable again.  A rewriter interrupted mid-patch (first byte
    written, or write permission still open) leaves the site non-intact —
    exactly what the fault-injection scenarios assert can never be
    observed, since lazypoline rolls partial rewrites back under its lock.
    """
    insn = bytes(task.mem.read(addr, 2, check=None))
    if insn not in (SYSCALL_BYTES, SYSENTER_BYTES, CALL_RAX_BYTES):
        return False
    start = page_align_down(addr)
    end = page_align_up(addr + 2)
    return all(
        task.mem.perm_at(page) & Perm.X
        for page in range(start, end, PAGE_SIZE)
    )


def rewrite_sites(task, sites: list[int]) -> list[int]:
    """Patch every site; returns the list actually rewritten."""
    done = []
    for addr in sites:
        patch_site(task, addr)
        done.append(addr)
    return done
