"""The virtual-address-0 trampoline: nop sled + interposer stub."""

from __future__ import annotations

from repro.arch.encode import Assembler
from repro.errors import AttachError
from repro.mem import layout
from repro.mem.pages import PAGE_SIZE, Perm

#: One nop per possible syscall number; ``call rax`` lands at offset
#: ``rax`` and slides to the stub that follows the sled.
SLED_SIZE = layout.MAX_SYSCALL_NO


def build_trampoline_code(hcall_id: int) -> tuple[bytes, int]:
    """Build the trampoline page content.

    Returns ``(code, entry_offset)`` where ``entry_offset`` is the stub
    address (== SLED_SIZE, the sled's fall-through target).

    The stub preserves the syscall argument registers around the host-call
    into the interposer; ``rax``/``rcx``/``r11`` are legal clobbers per the
    syscall ABI.  Note this stub — like the upstream zpoline prototype —
    does **not** preserve any extended state (§IV-B of the paper).
    """
    asm = Assembler(base=0)
    for _ in range(SLED_SIZE):
        asm.nop()
    asm.label("entry")
    for reg in ("rdi", "rsi", "rdx", "r10", "r8", "r9"):
        asm.push(reg)
    asm.hcall(hcall_id)
    for reg in ("r9", "r8", "r10", "rdx", "rsi", "rdi"):
        asm.pop(reg)
    asm.ret()
    code = asm.assemble()
    return code, asm.address_of("entry")


def map_trampoline(task, code: bytes, *, kernel=None) -> None:
    """Map the trampoline at VA 0 (the paper assumes ``mmap_min_addr = 0``).

    Mirrors zpoline's real sequence: mmap RW at 0, write, mprotect to R-X so
    the sled cannot be tampered with afterwards.  When ``kernel`` is given,
    its ``mmap_min_addr`` sysctl is honoured: a non-zero floor makes the
    VA-0 mapping impossible, and — unlike lazypoline, whose SUD slow path
    works from any base — zpoline has nothing to degrade to, so attach
    fails with :class:`AttachError` (this is nexpoline's raison d'être).
    """
    if kernel is not None and kernel.mmap_min_addr > layout.TRAMPOLINE_BASE:
        raise AttachError(
            f"zpoline: mmap_min_addr={kernel.mmap_min_addr:#x} forbids the "
            f"VA-0 trampoline and zpoline has no fallback mechanism "
            f"(use lazypoline, which degrades to SUD_ONLY)"
        )
    size = (len(code) + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)
    task.mem.map(layout.TRAMPOLINE_BASE, size, Perm.RW)
    task.mem.write(layout.TRAMPOLINE_BASE, code, check=None)
    task.mem.protect(layout.TRAMPOLINE_BASE, size, Perm.RX)
