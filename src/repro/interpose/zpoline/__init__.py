"""zpoline: syscall interposition by pure static binary rewriting.

Reimplementation of Yasukata et al. (USENIX ATC'23) on the simulated
substrate, as the paper's §IV-B does in C.  The two-byte ``syscall``
instruction is replaced in place by the two-byte ``call rax``; because the
syscall number is in ``rax`` (< 512), the call lands in a nop sled mapped at
virtual address 0 and slides into the interposer stub.

By construction the *replacement* can never fail — but the *discovery* is a
static scan, so syscall instructions materialising after install (JIT code,
self-modifying code) are silently missed, and byte-level scanning can
corrupt data that merely looks like a syscall.  Those are exactly the
failure modes lazypoline's slow path eliminates.
"""

from repro.interpose.zpoline.tool import Zpoline
from repro.interpose.zpoline.trampoline import SLED_SIZE, build_trampoline_code
from repro.interpose.zpoline.rewriter import (
    discover_sites,
    rewrite_sites,
)

__all__ = [
    "Zpoline",
    "SLED_SIZE",
    "build_trampoline_code",
    "discover_sites",
    "rewrite_sites",
]
