"""The CPU interpreter.

``CPU.step(task)`` fetches, decodes, charges and executes exactly one
instruction of ``task``.  The CPU itself is environment-agnostic: anything
that needs an OS (syscalls, host calls, halts) is delegated to the
``Environment`` the CPU was constructed with — normally the kernel, or a
:class:`NullEnvironment` in bare-metal unit tests.

Architectural faults (:class:`~repro.errors.PageFault`,
:class:`~repro.errors.InvalidOpcode`) propagate out of :meth:`CPU.step`; the
scheduler converts them into signals.

Translation cache
=================

With ``translation_cache=True`` (the default) the CPU memoises decoded
instructions per address space: ``AddressSpace.insn_cache`` maps instruction
address -> ``(insn, handler, cost, page, gen, page2, gen2)``.  An entry is
valid only while the per-page generation counters in
``AddressSpace.exec_gen`` still match the generations recorded at decode
time; the address space bumps a page's counter on any ``write``, ``protect``
or ``unmap`` touching an executable page.  That is exactly the set of
operations lazypoline's SIGSYS slow path performs when it rewrites
``syscall`` -> ``call rax`` in place (mprotect RW, write, mprotect back), so
self-modifying code invalidates precisely the stale entries.  A cached entry
records generations only for the page(s) the instruction's own bytes occupy
(one or two, since MAX_INSN_LEN < PAGE_SIZE): a decode depends on nothing
else.  Removing execute permission or unmapping also bumps, which forces the
next step through a real ``fetch`` and re-raises the page fault the uncached
interpreter would have raised.  Failed decodes are never cached.

Execution itself dispatches through :data:`DISPATCH`, a dense list of
per-mnemonic handler functions indexed by ``Mnemonic.op_index``; each cache
entry carries its ``(handler, cost)`` pair so the steady-state step is
fetch-check-generation -> charge -> call.  ``cost`` is ``None`` for
xsave/xrstor, whose cost depends on the task's xstate component count.
"""

from __future__ import annotations

import struct
from typing import Protocol

from repro.arch.decode import decode_one
from repro.arch.isa import MAX_INSN_LEN, N_MNEMONICS, Instruction, Mnemonic
from repro.arch.registers import (
    MASK64,
    MASK128,
    RSP,
    XComponent,
    to_signed,
)
from repro.cpu.costs import CostModel
from repro.errors import BreakpointTrap, InvalidOpcode
from repro.mem.pages import PAGE_SHIFT

_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")

#: Serialized xsave area layout (offsets within the area).
XSAVE_MASK_OFF = 0
XSAVE_XMM_OFF = 8
XSAVE_YMM_OFF = XSAVE_XMM_OFF + 16 * 16
XSAVE_X87_OFF = XSAVE_YMM_OFF + 16 * 16
XSAVE_TOP_OFF = XSAVE_X87_OFF + 8 * 8
XSAVE_AREA_SIZE = 1024

_COMPONENT_BITS = ((XComponent.X87, 1), (XComponent.SSE, 2), (XComponent.AVX, 4))

#: Entries per address-space insn cache before a wholesale clear.  Generous:
#: guest images are a few pages of code, so this only trips on pathological
#: self-modifying loops, where clearing is the honest answer anyway.
_CACHE_CAPACITY = 65536


class Environment(Protocol):
    """What the CPU needs from its surroundings."""

    def charge(self, task, cycles: int) -> None:
        """Account ``cycles`` of work performed by ``task``."""

    def on_syscall(self, task) -> None:
        """A syscall instruction retired; rip already points past it."""

    def on_hlt(self, task) -> None:
        """A hlt instruction retired."""

    def on_hcall(self, task, hook_id: int) -> None:
        """A host-call instruction retired."""


class NullEnvironment:
    """Bare-metal environment for CPU unit tests: counts cycles, logs events."""

    def __init__(self):
        self.cycles = 0
        self.syscalls: list[tuple[int, tuple[int, ...]]] = []
        self.halted: list[object] = []
        self.hcalls: list[int] = []

    def charge(self, task, cycles: int) -> None:
        self.cycles += cycles

    def on_syscall(self, task) -> None:
        from repro.arch.registers import SYSCALL_ARG_REGS

        args = tuple(task.regs.read(r) for r in SYSCALL_ARG_REGS)
        self.syscalls.append((task.regs.read(0), args))
        task.regs.write(0, 0)

    def on_hlt(self, task) -> None:
        self.halted.append(task)

    def on_hcall(self, task, hook_id: int) -> None:
        self.hcalls.append(hook_id)


class BareTask:
    """Minimal task for bare-metal CPU tests: registers + memory, no kernel."""

    def __init__(self, mem, regs=None, xsave_mask: XComponent | None = None):
        from repro.arch.registers import RegisterFile

        self.mem = mem
        self.regs = regs or RegisterFile()
        self.xsave_mask = XComponent.all() if xsave_mask is None else xsave_mask

    @property
    def xsave_mask(self) -> XComponent:
        return self._xsave_mask

    @xsave_mask.setter
    def xsave_mask(self, mask: XComponent) -> None:
        self._xsave_mask = mask
        self.xsave_components = bin(mask.value).count("1")


# ------------------------------------------------------------------ handlers
# One module-level function per mnemonic, uniform signature
# ``handler(cpu, task, insn, next_rip)``.  ``regs.rip`` is already
# ``next_rip`` when the handler runs; control-flow handlers overwrite it.


def _op_nop(cpu, task, insn, next_rip):
    pass


def _op_syscall(cpu, task, insn, next_rip):
    cpu.env.on_syscall(task)


def _op_hlt(cpu, task, insn, next_rip):
    cpu.env.on_hlt(task)


def _op_hcall(cpu, task, insn, next_rip):
    cpu.env.on_hcall(task, insn.operands[0])


def _op_int3(cpu, task, insn, next_rip):
    raise BreakpointTrap(next_rip - insn.length)


def _op_ud2(cpu, task, insn, next_rip):
    raise InvalidOpcode(next_rip - insn.length, 0x0F)


# control flow ----------------------------------------------------------------
def _op_ret(cpu, task, insn, next_rip):
    task.regs.rip = cpu._pop(task)


def _op_push(cpu, task, insn, next_rip):
    cpu._push(task, task.regs.read(insn.operands[0]))


def _op_pop(cpu, task, insn, next_rip):
    task.regs.write(insn.operands[0], cpu._pop(task))


def _op_call_reg(cpu, task, insn, next_rip):
    cpu._push(task, next_rip)
    task.regs.rip = task.regs.read(insn.operands[0])


def _op_jmp_reg(cpu, task, insn, next_rip):
    task.regs.rip = task.regs.read(insn.operands[0])


def _op_call_rel(cpu, task, insn, next_rip):
    cpu._push(task, next_rip)
    task.regs.rip = (next_rip + insn.operands[0]) & MASK64


def _op_jmp_rel(cpu, task, insn, next_rip):
    task.regs.rip = (next_rip + insn.operands[0]) & MASK64


def _op_jz(cpu, task, insn, next_rip):
    regs = task.regs
    if regs.zf:
        regs.rip = (next_rip + insn.operands[0]) & MASK64


def _op_jnz(cpu, task, insn, next_rip):
    regs = task.regs
    if not regs.zf:
        regs.rip = (next_rip + insn.operands[0]) & MASK64


def _op_jl(cpu, task, insn, next_rip):
    regs = task.regs
    if regs.lt:
        regs.rip = (next_rip + insn.operands[0]) & MASK64


def _op_jg(cpu, task, insn, next_rip):
    regs = task.regs
    if not regs.lt and not regs.zf:
        regs.rip = (next_rip + insn.operands[0]) & MASK64


def _op_jge(cpu, task, insn, next_rip):
    regs = task.regs
    if not regs.lt:
        regs.rip = (next_rip + insn.operands[0]) & MASK64


def _op_jle(cpu, task, insn, next_rip):
    regs = task.regs
    if regs.lt or regs.zf:
        regs.rip = (next_rip + insn.operands[0]) & MASK64


# data movement ---------------------------------------------------------------
def _op_mov_imm64(cpu, task, insn, next_rip):
    ops = insn.operands
    task.regs.write(ops[0], ops[1])


def _op_mov(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    regs.write(ops[0], regs.read(ops[1]))


def _op_load(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    regs.write(ops[0], task.mem.read_u64((regs.read(ops[1]) + ops[2]) & MASK64))


def _op_store(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    task.mem.write_u64((regs.read(ops[0]) + ops[1]) & MASK64, regs.read(ops[2]))


def _op_load8(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    regs.write(ops[0], task.mem.read_u8((regs.read(ops[1]) + ops[2]) & MASK64))


def _op_store8(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    task.mem.write_u8((regs.read(ops[0]) + ops[1]) & MASK64, regs.read(ops[2]) & 0xFF)


def _op_lea(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    regs.write(ops[0], (regs.read(ops[1]) + ops[2]) & MASK64)


# ALU -------------------------------------------------------------------------
def _set_flags(regs, result: int) -> None:
    regs.zf = result == 0
    regs.lt = bool(result >> 63)


def _op_add(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = (regs.read(ops[0]) + regs.read(ops[1])) & MASK64
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_sub(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = (regs.read(ops[0]) - regs.read(ops[1])) & MASK64
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_and(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = regs.read(ops[0]) & regs.read(ops[1])
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_or(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = regs.read(ops[0]) | regs.read(ops[1])
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_xor(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = regs.read(ops[0]) ^ regs.read(ops[1])
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_imul(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = (to_signed(regs.read(ops[0])) * to_signed(regs.read(ops[1]))) & MASK64
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_cmp(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    a = to_signed(regs.read(ops[0]))
    b = to_signed(regs.read(ops[1]))
    regs.zf = a == b
    regs.lt = a < b


def _op_addi(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = (regs.read(ops[0]) + (ops[1] & MASK64)) & MASK64
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_subi(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = (regs.read(ops[0]) - (ops[1] & MASK64)) & MASK64
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_andi(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = regs.read(ops[0]) & (ops[1] & MASK64)
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_ori(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = regs.read(ops[0]) | (ops[1] & MASK64)
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_xori(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = regs.read(ops[0]) ^ (ops[1] & MASK64)
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_cmpi(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    a = to_signed(regs.read(ops[0]))
    regs.zf = a == ops[1]
    regs.lt = a < ops[1]


def _op_shl(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = (regs.read(ops[0]) << (ops[1] & 63)) & MASK64
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_shr(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = regs.read(ops[0]) >> (ops[1] & 63)
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_inc(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = (regs.read(ops[0]) + 1) & MASK64
    regs.write(ops[0], result)
    _set_flags(regs, result)


def _op_dec(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    result = (regs.read(ops[0]) - 1) & MASK64
    regs.write(ops[0], result)
    _set_flags(regs, result)


# vector ----------------------------------------------------------------------
def _op_movq_xg(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    regs.write_xmm(ops[0], regs.read(ops[1]))


def _op_movq_gx(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    regs.write(ops[0], regs.read_xmm(ops[1]) & MASK64)


def _op_movups_load(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    addr = (regs.read(ops[1]) + ops[2]) & MASK64
    regs.write_xmm(ops[0], int.from_bytes(task.mem.read(addr, 16), "little"))


def _op_movups_store(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    addr = (regs.read(ops[0]) + ops[1]) & MASK64
    task.mem.write(addr, regs.read_xmm(ops[2]).to_bytes(16, "little"))


def _op_movaps(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    regs.write_xmm(ops[0], regs.read_xmm(ops[1]))


def _op_punpcklqdq(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    low = regs.read_xmm(ops[0]) & MASK64
    src_low = regs.read_xmm(ops[1]) & MASK64
    regs.write_xmm(ops[0], low | (src_low << 64))


def _op_xorps(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    regs.write_xmm(ops[0], regs.read_xmm(ops[0]) ^ regs.read_xmm(ops[1]))


def _op_vaddpd(cpu, task, insn, next_rip):
    # Lane-wise 64-bit add; also touches the AVX high halves.
    ops = insn.operands
    regs = task.regs
    d = regs.read_xmm(ops[0])
    s = regs.read_xmm(ops[1])
    low = ((d & MASK64) + (s & MASK64)) & MASK64
    high = (((d >> 64) & MASK64) + ((s >> 64) & MASK64)) & MASK64
    regs.write_xmm(ops[0], low | (high << 64))
    regs.ymm_high[ops[0]] = (regs.ymm_high[ops[0]] + regs.ymm_high[ops[1]]) & MASK128


# x87 -------------------------------------------------------------------------
def _op_fld1(cpu, task, insn, next_rip):
    task.regs.x87_push(_U64.unpack(_F64.pack(1.0))[0])


def _op_faddp(cpu, task, insn, next_rip):
    regs = task.regs
    a = _F64.unpack(_U64.pack(regs.x87_pop()))[0]
    b = _F64.unpack(_U64.pack(regs.x87_pop()))[0]
    regs.x87_push(_U64.unpack(_F64.pack(a + b))[0])


def _op_fld_mem(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    addr = (regs.read(ops[0]) + ops[1]) & MASK64
    regs.x87_push(task.mem.read_u64(addr))


def _op_fstp_mem(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    addr = (regs.read(ops[0]) + ops[1]) & MASK64
    task.mem.write_u64(addr, regs.x87_pop())


# xstate ----------------------------------------------------------------------
def _op_xsave(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    addr = (regs.read(ops[0]) + ops[1]) & MASK64
    task.mem.write(addr, xsave_serialize(regs, task.xsave_mask))


def _op_xrstor(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    addr = (regs.read(ops[0]) + ops[1]) & MASK64
    xrstor_apply(regs, task.mem.read(addr, XSAVE_AREA_SIZE))


# gs-relative -----------------------------------------------------------------
def _op_rdgsbase(cpu, task, insn, next_rip):
    regs = task.regs
    regs.write(insn.operands[0], regs.gs_base)


def _op_wrgsbase(cpu, task, insn, next_rip):
    regs = task.regs
    regs.gs_base = regs.read(insn.operands[0])


def _op_gsload(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    regs.write(ops[0], task.mem.read_u64((regs.gs_base + ops[1]) & MASK64))


def _op_gsstore(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    task.mem.write_u64((regs.gs_base + ops[0]) & MASK64, regs.read(ops[1]))


def _op_gsload8(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    regs.write(ops[0], task.mem.read_u8((regs.gs_base + ops[1]) & MASK64))


def _op_gsstore8(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    task.mem.write_u8((regs.gs_base + ops[0]) & MASK64, regs.read(ops[1]) & 0xFF)


def _op_rdpkru(cpu, task, insn, next_rip):
    regs = task.regs
    regs.write(insn.operands[0], regs.pkru)


def _op_wrpkru(cpu, task, insn, next_rip):
    regs = task.regs
    regs.pkru = regs.read(insn.operands[0]) & 0xFFFFFFFF
    task.mem.active_pkru = regs.pkru


def _op_gswrpkru(cpu, task, insn, next_rip):
    regs = task.regs
    regs.pkru = task.mem.read_u32((regs.gs_base + insn.operands[0]) & MASK64)
    task.mem.active_pkru = regs.pkru


def _op_gsjmp(cpu, task, insn, next_rip):
    regs = task.regs
    regs.rip = task.mem.read_u64((regs.gs_base + insn.operands[0]) & MASK64)


def _op_gscopy8(cpu, task, insn, next_rip):
    ops = insn.operands
    regs = task.regs
    value = task.mem.read_u8((regs.gs_base + ops[1]) & MASK64)
    task.mem.write_u8((regs.gs_base + ops[0]) & MASK64, value)


#: Dense dispatch table: ``DISPATCH[mnemonic.op_index] -> handler``.
DISPATCH: list = [None] * N_MNEMONICS
for _m, _fn in {
    Mnemonic.NOP: _op_nop,
    Mnemonic.RET: _op_ret,
    Mnemonic.HLT: _op_hlt,
    Mnemonic.INT3: _op_int3,
    Mnemonic.SYSCALL: _op_syscall,
    Mnemonic.SYSENTER: _op_syscall,
    Mnemonic.UD2: _op_ud2,
    Mnemonic.PUSH: _op_push,
    Mnemonic.POP: _op_pop,
    Mnemonic.CALL_REG: _op_call_reg,
    Mnemonic.JMP_REG: _op_jmp_reg,
    Mnemonic.CALL_REL: _op_call_rel,
    Mnemonic.JMP_REL: _op_jmp_rel,
    Mnemonic.JZ: _op_jz,
    Mnemonic.JNZ: _op_jnz,
    Mnemonic.JL: _op_jl,
    Mnemonic.JG: _op_jg,
    Mnemonic.JGE: _op_jge,
    Mnemonic.JLE: _op_jle,
    Mnemonic.MOV_IMM64: _op_mov_imm64,
    Mnemonic.MOV: _op_mov,
    Mnemonic.LOAD: _op_load,
    Mnemonic.STORE: _op_store,
    Mnemonic.LOAD8: _op_load8,
    Mnemonic.STORE8: _op_store8,
    Mnemonic.ADD: _op_add,
    Mnemonic.SUB: _op_sub,
    Mnemonic.CMP: _op_cmp,
    Mnemonic.AND: _op_and,
    Mnemonic.OR: _op_or,
    Mnemonic.XOR: _op_xor,
    Mnemonic.IMUL: _op_imul,
    Mnemonic.SHL: _op_shl,
    Mnemonic.SHR: _op_shr,
    Mnemonic.ADDI: _op_addi,
    Mnemonic.SUBI: _op_subi,
    Mnemonic.CMPI: _op_cmpi,
    Mnemonic.ANDI: _op_andi,
    Mnemonic.ORI: _op_ori,
    Mnemonic.XORI: _op_xori,
    Mnemonic.INC: _op_inc,
    Mnemonic.DEC: _op_dec,
    Mnemonic.LEA: _op_lea,
    Mnemonic.MOVQ_XG: _op_movq_xg,
    Mnemonic.MOVQ_GX: _op_movq_gx,
    Mnemonic.MOVUPS_LOAD: _op_movups_load,
    Mnemonic.MOVUPS_STORE: _op_movups_store,
    Mnemonic.MOVAPS: _op_movaps,
    Mnemonic.PUNPCKLQDQ: _op_punpcklqdq,
    Mnemonic.XORPS: _op_xorps,
    Mnemonic.VADDPD: _op_vaddpd,
    Mnemonic.FLD1: _op_fld1,
    Mnemonic.FADDP: _op_faddp,
    Mnemonic.FLD_MEM: _op_fld_mem,
    Mnemonic.FSTP_MEM: _op_fstp_mem,
    Mnemonic.XSAVE: _op_xsave,
    Mnemonic.XRSTOR: _op_xrstor,
    Mnemonic.RDGSBASE: _op_rdgsbase,
    Mnemonic.WRGSBASE: _op_wrgsbase,
    Mnemonic.GSLOAD: _op_gsload,
    Mnemonic.GSSTORE: _op_gsstore,
    Mnemonic.GSLOAD8: _op_gsload8,
    Mnemonic.GSSTORE8: _op_gsstore8,
    Mnemonic.GSJMP: _op_gsjmp,
    Mnemonic.GSCOPY8: _op_gscopy8,
    Mnemonic.RDPKRU: _op_rdpkru,
    Mnemonic.WRPKRU: _op_wrpkru,
    Mnemonic.GSWRPKRU: _op_gswrpkru,
    Mnemonic.HCALL: _op_hcall,
}.items():
    DISPATCH[_m.op_index] = _fn
del _m, _fn
assert all(fn is not None for fn in DISPATCH), "mnemonic without handler"


class CPU:
    """Interprets simulated machine code, one task at a time."""

    def __init__(
        self,
        env: Environment,
        cost_model: CostModel | None = None,
        translation_cache: bool = True,
        superblocks: bool = True,
    ):
        self.env = env
        self.costs = cost_model or CostModel()
        self.hooks: list = []
        self.translation_cache = translation_cache
        #: Tier 2: compile hot straight-line runs into superblocks (see
        #: :mod:`repro.cpu.superblock`; the scheduler owns the dispatch).
        #: Tied to the translation cache — the uncached configuration is
        #: the pure reference interpreter and stays single-step.
        self.superblocks = superblocks and translation_cache
        self.cache_hits = 0
        self.cache_misses = 0
        #: Superblock counters (compiles/invalidations are rare; per-run
        #: counts live on the blocks themselves to keep the hot path lean).
        self.blocks_compiled = 0
        self.blocks_invalidated = 0
        #: Bumped by :meth:`refresh_cost_table`.  Compiled blocks bake
        #: their cycle costs in, so every BlockCache snapshots this and
        #: the scheduler drops stale caches at slice granularity.
        self.cost_epoch = 0
        #: observability tracer; only consulted on the (rare) generation-
        #: mismatch branch, never on the per-instruction hit path.
        self.tracer = None
        self.refresh_cost_table()

    def refresh_cost_table(self) -> None:
        """(Re)build the dense op_index -> cost table from ``self.costs``.

        ``None`` marks xsave/xrstor, whose cost depends on the task's xstate
        component count and is computed at charge time.  Call again after
        swapping or recalibrating ``self.costs``.
        """
        table: list = []
        for m in Mnemonic:
            if m is Mnemonic.XSAVE or m is Mnemonic.XRSTOR:
                table.append(None)
            else:
                table.append(self.costs.insn_cost(m))
        self._cost_table = table
        self.cost_epoch += 1

    # ------------------------------------------------------------ superblocks
    def compile_superblock(self, mem, head: int, tid: int = -1,
                           max_len: int | None = None):
        """Compile the run at ``head`` into ``mem``'s bound block cache.

        With ``max_len`` the block is truncated to the remaining slice
        budget and cached under the ``(head, max_len)`` key — a *tail*
        variant the scheduler reuses every time a quantum cuts the full
        block at the same point.  Tail keys ride the same per-page index,
        so generation bumps flush them with everything else.
        """
        from repro.cpu.superblock import compile_block

        block = compile_block(mem, head, self._cost_table, max_len)
        key = head if max_len is None else (head, max_len)
        bc = mem.block_cache
        bc.blocks[key] = block
        index = bc.index
        index.setdefault(block.p0, set()).add(key)
        if block.p1 != block.p0:
            index.setdefault(block.p1, set()).add(key)
        if block.fn is not None:
            self.blocks_compiled += 1
            if self.tracer is not None:
                self.tracer.block_compile(
                    getattr(self.env, "clock", 0), tid, head, block.n
                )
        return block

    def note_block_invalidate(self, head: int, tid: int = -1,
                              reason: str = "stale") -> None:
        """Account one compiled block discarded for stale generations."""
        self.blocks_invalidated += 1
        if self.tracer is not None:
            self.tracer.block_invalidate(
                getattr(self.env, "clock", 0), tid, head, reason
            )

    def add_hook(self, hook) -> None:
        self.hooks.append(hook)

    def remove_hook(self, hook) -> None:
        self.hooks.remove(hook)

    # ------------------------------------------------------------------ step
    def step(self, task) -> Instruction:
        """Execute one instruction of ``task`` and return it."""
        regs = task.regs
        mem = task.mem
        addr = regs.rip

        if self.translation_cache:
            entry = mem.insn_cache.get(addr)
            if entry is not None:
                gens = mem.exec_gen
                if gens.get(entry[3], 0) == entry[4] and gens.get(entry[5], 0) == entry[6]:
                    self.cache_hits += 1
                else:
                    if self.tracer is not None:
                        self.tracer.cache_invalidate(
                            getattr(self.env, "clock", 0),
                            getattr(task, "tid", -1), addr,
                        )
                    entry = self._translate(mem, addr)
            else:
                entry = self._translate(mem, addr)
            insn = entry[0]
            if self.hooks:
                for hook in self.hooks:
                    hook.on_insn(task, insn, addr)
            cost = entry[2]
            if cost is None:
                cost = self.costs.xsave_cost(task.xsave_components)
            self.env.charge(task, cost)
            next_rip = addr + insn.length
            regs.rip = next_rip
            entry[1](self, task, insn, next_rip)
            return insn

        # Uncached reference path: fetch + decode every step.
        window = mem.fetch(addr, MAX_INSN_LEN)
        insn = decode_one(window, 0, addr)
        for hook in self.hooks:
            hook.on_insn(task, insn, addr)
        cost = self._cost_table[insn.mnemonic.op_index]
        if cost is None:
            cost = self.costs.xsave_cost(task.xsave_components)
        self.env.charge(task, cost)
        next_rip = addr + insn.length
        regs.rip = next_rip
        DISPATCH[insn.mnemonic.op_index](self, task, insn, next_rip)
        return insn

    def _translate(self, mem, addr: int):
        """Fetch + decode at ``addr`` and install a cache entry for it.

        Raises the same PageFault/InvalidOpcode the uncached path would;
        failed decodes are never cached.
        """
        self.cache_misses += 1
        window = mem.fetch(addr, MAX_INSN_LEN)
        insn = decode_one(window, 0, addr)
        op = insn.mnemonic.op_index
        handler = DISPATCH[op]
        cost = self._cost_table[op]
        object.__setattr__(insn, "handler", handler)
        object.__setattr__(insn, "cost", cost)
        gens = mem.exec_gen
        first = addr >> PAGE_SHIFT
        last = (addr + insn.length - 1) >> PAGE_SHIFT
        entry = (insn, handler, cost, first, gens.get(first, 0), last, gens.get(last, 0))
        cache = mem.insn_cache
        if len(cache) >= _CACHE_CAPACITY:
            cache.clear()
        cache[addr] = entry
        return entry

    # ----------------------------------------------------------- stack utils
    def _push(self, task, value: int) -> None:
        regs = task.regs
        rsp = (regs.read(RSP) - 8) & MASK64
        task.mem.write_u64(rsp, value)
        regs.write(RSP, rsp)

    def _pop(self, task) -> int:
        regs = task.regs
        rsp = regs.read(RSP)
        value = task.mem.read_u64(rsp)
        regs.write(RSP, (rsp + 8) & MASK64)
        return value

    @staticmethod
    def _set_flags(regs, result: int) -> None:
        result &= MASK64
        _set_flags(regs, result)

    # --------------------------------------------------------------- execute
    def _execute(self, task, insn: Instruction, next_rip: int) -> None:
        DISPATCH[insn.mnemonic.op_index](self, task, insn, next_rip)


# ----------------------------------------------------------------- xsave glue
def xsave_serialize(regs, mask: XComponent) -> bytes:
    """Serialize the selected xstate components into the xsave area format."""
    area = bytearray(XSAVE_AREA_SIZE)
    bits = 0
    for component, bit in _COMPONENT_BITS:
        if mask & component:
            bits |= bit
    _U64.pack_into(area, XSAVE_MASK_OFF, bits)
    if mask & XComponent.SSE:
        for i, value in enumerate(regs.xmm):
            area[XSAVE_XMM_OFF + 16 * i : XSAVE_XMM_OFF + 16 * (i + 1)] = (
                value.to_bytes(16, "little")
            )
    if mask & XComponent.AVX:
        for i, value in enumerate(regs.ymm_high):
            area[XSAVE_YMM_OFF + 16 * i : XSAVE_YMM_OFF + 16 * (i + 1)] = (
                value.to_bytes(16, "little")
            )
    if mask & XComponent.X87:
        for i, value in enumerate(regs.x87):
            _U64.pack_into(area, XSAVE_X87_OFF + 8 * i, value)
        area[XSAVE_TOP_OFF] = regs.x87_top
    return bytes(area)


def xrstor_apply(regs, area: bytes) -> None:
    """Restore xstate components from an xsave area."""
    (bits,) = _U64.unpack_from(area, XSAVE_MASK_OFF)
    if bits & 2:
        for i in range(16):
            regs.xmm[i] = int.from_bytes(
                area[XSAVE_XMM_OFF + 16 * i : XSAVE_XMM_OFF + 16 * (i + 1)], "little"
            )
    if bits & 4:
        for i in range(16):
            regs.ymm_high[i] = int.from_bytes(
                area[XSAVE_YMM_OFF + 16 * i : XSAVE_YMM_OFF + 16 * (i + 1)], "little"
            )
    if bits & 1:
        for i in range(8):
            (regs.x87[i],) = _U64.unpack_from(area, XSAVE_X87_OFF + 8 * i)
        regs.x87_top = area[XSAVE_TOP_OFF]
