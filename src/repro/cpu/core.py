"""The CPU interpreter.

``CPU.step(task)`` fetches, decodes, charges and executes exactly one
instruction of ``task``.  The CPU itself is environment-agnostic: anything
that needs an OS (syscalls, host calls, halts) is delegated to the
``Environment`` the CPU was constructed with — normally the kernel, or a
:class:`NullEnvironment` in bare-metal unit tests.

Architectural faults (:class:`~repro.errors.PageFault`,
:class:`~repro.errors.InvalidOpcode`) propagate out of :meth:`CPU.step`; the
scheduler converts them into signals.
"""

from __future__ import annotations

import struct
from typing import Protocol

from repro.arch.decode import decode_one
from repro.arch.isa import MAX_INSN_LEN, Instruction, Mnemonic
from repro.arch.registers import (
    MASK64,
    MASK128,
    RSP,
    XComponent,
    to_signed,
)
from repro.cpu.costs import CostModel
from repro.errors import BreakpointTrap, InvalidOpcode

_F64 = struct.Struct("<d")
_U64 = struct.Struct("<Q")

#: Serialized xsave area layout (offsets within the area).
XSAVE_MASK_OFF = 0
XSAVE_XMM_OFF = 8
XSAVE_YMM_OFF = XSAVE_XMM_OFF + 16 * 16
XSAVE_X87_OFF = XSAVE_YMM_OFF + 16 * 16
XSAVE_TOP_OFF = XSAVE_X87_OFF + 8 * 8
XSAVE_AREA_SIZE = 1024

_COMPONENT_BITS = ((XComponent.X87, 1), (XComponent.SSE, 2), (XComponent.AVX, 4))


class Environment(Protocol):
    """What the CPU needs from its surroundings."""

    def charge(self, task, cycles: int) -> None:
        """Account ``cycles`` of work performed by ``task``."""

    def on_syscall(self, task) -> None:
        """A syscall instruction retired; rip already points past it."""

    def on_hlt(self, task) -> None:
        """A hlt instruction retired."""

    def on_hcall(self, task, hook_id: int) -> None:
        """A host-call instruction retired."""


class NullEnvironment:
    """Bare-metal environment for CPU unit tests: counts cycles, logs events."""

    def __init__(self):
        self.cycles = 0
        self.syscalls: list[tuple[int, tuple[int, ...]]] = []
        self.halted: list[object] = []
        self.hcalls: list[int] = []

    def charge(self, task, cycles: int) -> None:
        self.cycles += cycles

    def on_syscall(self, task) -> None:
        from repro.arch.registers import SYSCALL_ARG_REGS

        args = tuple(task.regs.read(r) for r in SYSCALL_ARG_REGS)
        self.syscalls.append((task.regs.read(0), args))
        task.regs.write(0, 0)

    def on_hlt(self, task) -> None:
        self.halted.append(task)

    def on_hcall(self, task, hook_id: int) -> None:
        self.hcalls.append(hook_id)


class BareTask:
    """Minimal task for bare-metal CPU tests: registers + memory, no kernel."""

    def __init__(self, mem, regs=None, xsave_mask: XComponent | None = None):
        from repro.arch.registers import RegisterFile

        self.mem = mem
        self.regs = regs or RegisterFile()
        self.xsave_mask = XComponent.all() if xsave_mask is None else xsave_mask


class CPU:
    """Interprets simulated machine code, one task at a time."""

    def __init__(self, env: Environment, cost_model: CostModel | None = None):
        self.env = env
        self.costs = cost_model or CostModel()
        self.hooks: list = []

    def add_hook(self, hook) -> None:
        self.hooks.append(hook)

    def remove_hook(self, hook) -> None:
        self.hooks.remove(hook)

    # ------------------------------------------------------------------ step
    def step(self, task) -> Instruction:
        """Execute one instruction of ``task`` and return it."""
        regs = task.regs
        addr = regs.rip
        window = task.mem.fetch(addr, MAX_INSN_LEN)
        insn = decode_one(window, 0, addr)

        for hook in self.hooks:
            hook.on_insn(task, insn, addr)

        m = insn.mnemonic
        if m in (Mnemonic.XSAVE, Mnemonic.XRSTOR):
            count = bin(task.xsave_mask.value).count("1")
            self.env.charge(task, self.costs.xsave_cost(count))
        else:
            self.env.charge(task, self.costs.insn_cost(m))

        next_rip = addr + insn.length
        regs.rip = next_rip
        self._execute(task, insn, next_rip)
        return insn

    # ----------------------------------------------------------- stack utils
    def _push(self, task, value: int) -> None:
        regs = task.regs
        rsp = (regs.read(RSP) - 8) & MASK64
        task.mem.write_u64(rsp, value)
        regs.write(RSP, rsp)

    def _pop(self, task) -> int:
        regs = task.regs
        rsp = regs.read(RSP)
        value = task.mem.read_u64(rsp)
        regs.write(RSP, (rsp + 8) & MASK64)
        return value

    @staticmethod
    def _set_flags(regs, result: int) -> None:
        result &= MASK64
        regs.zf = result == 0
        regs.lt = bool(result >> 63)

    # --------------------------------------------------------------- execute
    def _execute(self, task, insn: Instruction, next_rip: int) -> None:
        regs = task.regs
        mem = task.mem
        m = insn.mnemonic
        ops = insn.operands
        M = Mnemonic

        if m is M.NOP:
            return
        if m is M.SYSCALL or m is M.SYSENTER:
            self.env.on_syscall(task)
            return
        if m is M.HLT:
            self.env.on_hlt(task)
            return
        if m is M.HCALL:
            self.env.on_hcall(task, ops[0])
            return
        if m is M.INT3:
            raise BreakpointTrap(next_rip - insn.length)
        if m is M.UD2:
            raise InvalidOpcode(next_rip - insn.length, 0x0F)

        # control flow ------------------------------------------------------
        if m is M.RET:
            regs.rip = self._pop(task)
            return
        if m is M.PUSH:
            self._push(task, regs.read(ops[0]))
            return
        if m is M.POP:
            regs.write(ops[0], self._pop(task))
            return
        if m is M.CALL_REG:
            self._push(task, next_rip)
            regs.rip = regs.read(ops[0])
            return
        if m is M.JMP_REG:
            regs.rip = regs.read(ops[0])
            return
        if m is M.CALL_REL:
            self._push(task, next_rip)
            regs.rip = (next_rip + ops[0]) & MASK64
            return
        if m is M.JMP_REL:
            regs.rip = (next_rip + ops[0]) & MASK64
            return
        if m in (M.JZ, M.JNZ, M.JL, M.JG, M.JGE, M.JLE):
            taken = {
                M.JZ: regs.zf,
                M.JNZ: not regs.zf,
                M.JL: regs.lt,
                M.JG: not regs.lt and not regs.zf,
                M.JGE: not regs.lt,
                M.JLE: regs.lt or regs.zf,
            }[m]
            if taken:
                regs.rip = (next_rip + ops[0]) & MASK64
            return

        # data movement ------------------------------------------------------
        if m is M.MOV_IMM64:
            regs.write(ops[0], ops[1])
            return
        if m is M.MOV:
            regs.write(ops[0], regs.read(ops[1]))
            return
        if m is M.LOAD:
            regs.write(ops[0], mem.read_u64((regs.read(ops[1]) + ops[2]) & MASK64))
            return
        if m is M.STORE:
            mem.write_u64((regs.read(ops[0]) + ops[1]) & MASK64, regs.read(ops[2]))
            return
        if m is M.LOAD8:
            regs.write(ops[0], mem.read_u8((regs.read(ops[1]) + ops[2]) & MASK64))
            return
        if m is M.STORE8:
            mem.write_u8((regs.read(ops[0]) + ops[1]) & MASK64, regs.read(ops[2]) & 0xFF)
            return
        if m is M.LEA:
            regs.write(ops[0], (regs.read(ops[1]) + ops[2]) & MASK64)
            return

        # ALU -----------------------------------------------------------------
        if m in (M.ADD, M.SUB, M.AND, M.OR, M.XOR, M.IMUL):
            a = regs.read(ops[0])
            b = regs.read(ops[1])
            result = {
                M.ADD: a + b,
                M.SUB: a - b,
                M.AND: a & b,
                M.OR: a | b,
                M.XOR: a ^ b,
                M.IMUL: to_signed(a) * to_signed(b),
            }[m] & MASK64
            regs.write(ops[0], result)
            self._set_flags(regs, result)
            return
        if m is M.CMP:
            a = to_signed(regs.read(ops[0]))
            b = to_signed(regs.read(ops[1]))
            regs.zf = a == b
            regs.lt = a < b
            return
        if m in (M.ADDI, M.SUBI, M.ANDI, M.ORI, M.XORI):
            a = regs.read(ops[0])
            imm = ops[1] & MASK64  # sign-extended by decode
            result = {
                M.ADDI: a + imm,
                M.SUBI: a - imm,
                M.ANDI: a & imm,
                M.ORI: a | imm,
                M.XORI: a ^ imm,
            }[m] & MASK64
            regs.write(ops[0], result)
            self._set_flags(regs, result)
            return
        if m is M.CMPI:
            a = to_signed(regs.read(ops[0]))
            regs.zf = a == ops[1]
            regs.lt = a < ops[1]
            return
        if m in (M.SHL, M.SHR):
            a = regs.read(ops[0])
            count = ops[1] & 63
            result = (a << count) & MASK64 if m is M.SHL else a >> count
            regs.write(ops[0], result)
            self._set_flags(regs, result)
            return
        if m in (M.INC, M.DEC):
            delta = 1 if m is M.INC else -1
            result = (regs.read(ops[0]) + delta) & MASK64
            regs.write(ops[0], result)
            self._set_flags(regs, result)
            return

        # vector ---------------------------------------------------------------
        if m is M.MOVQ_XG:
            regs.write_xmm(ops[0], regs.read(ops[1]))
            return
        if m is M.MOVQ_GX:
            regs.write(ops[0], regs.read_xmm(ops[1]) & MASK64)
            return
        if m is M.MOVUPS_LOAD:
            addr = (regs.read(ops[1]) + ops[2]) & MASK64
            value = int.from_bytes(mem.read(addr, 16), "little")
            regs.write_xmm(ops[0], value)
            return
        if m is M.MOVUPS_STORE:
            addr = (regs.read(ops[0]) + ops[1]) & MASK64
            mem.write(addr, regs.read_xmm(ops[2]).to_bytes(16, "little"))
            return
        if m is M.MOVAPS:
            regs.write_xmm(ops[0], regs.read_xmm(ops[1]))
            return
        if m is M.PUNPCKLQDQ:
            low = regs.read_xmm(ops[0]) & MASK64
            src_low = regs.read_xmm(ops[1]) & MASK64
            regs.write_xmm(ops[0], low | (src_low << 64))
            return
        if m is M.XORPS:
            regs.write_xmm(ops[0], regs.read_xmm(ops[0]) ^ regs.read_xmm(ops[1]))
            return
        if m is M.VADDPD:
            # Lane-wise 64-bit add; also touches the AVX high halves.
            d = regs.read_xmm(ops[0])
            s = regs.read_xmm(ops[1])
            low = ((d & MASK64) + (s & MASK64)) & MASK64
            high = (((d >> 64) & MASK64) + ((s >> 64) & MASK64)) & MASK64
            regs.write_xmm(ops[0], low | (high << 64))
            regs.ymm_high[ops[0]] = (
                regs.ymm_high[ops[0]] + regs.ymm_high[ops[1]]
            ) & MASK128
            return

        # x87 -------------------------------------------------------------------
        if m is M.FLD1:
            regs.x87_push(_U64.unpack(_F64.pack(1.0))[0])
            return
        if m is M.FADDP:
            a = _F64.unpack(_U64.pack(regs.x87_pop()))[0]
            b = _F64.unpack(_U64.pack(regs.x87_pop()))[0]
            regs.x87_push(_U64.unpack(_F64.pack(a + b))[0])
            return
        if m is M.FLD_MEM:
            addr = (regs.read(ops[0]) + ops[1]) & MASK64
            regs.x87_push(mem.read_u64(addr))
            return
        if m is M.FSTP_MEM:
            addr = (regs.read(ops[0]) + ops[1]) & MASK64
            mem.write_u64(addr, regs.x87_pop())
            return

        # xstate ---------------------------------------------------------------
        if m is M.XSAVE:
            addr = (regs.read(ops[0]) + ops[1]) & MASK64
            mem.write(addr, xsave_serialize(regs, task.xsave_mask))
            return
        if m is M.XRSTOR:
            addr = (regs.read(ops[0]) + ops[1]) & MASK64
            xrstor_apply(regs, mem.read(addr, XSAVE_AREA_SIZE))
            return

        # gs-relative -------------------------------------------------------------
        if m is M.RDGSBASE:
            regs.write(ops[0], regs.gs_base)
            return
        if m is M.WRGSBASE:
            regs.gs_base = regs.read(ops[0])
            return
        if m is M.GSLOAD:
            regs.write(ops[0], mem.read_u64((regs.gs_base + ops[1]) & MASK64))
            return
        if m is M.GSSTORE:
            mem.write_u64((regs.gs_base + ops[0]) & MASK64, regs.read(ops[1]))
            return
        if m is M.GSLOAD8:
            regs.write(ops[0], mem.read_u8((regs.gs_base + ops[1]) & MASK64))
            return
        if m is M.GSSTORE8:
            mem.write_u8((regs.gs_base + ops[0]) & MASK64, regs.read(ops[1]) & 0xFF)
            return
        if m is M.RDPKRU:
            regs.write(ops[0], regs.pkru)
            return
        if m is M.WRPKRU:
            regs.pkru = regs.read(ops[0]) & 0xFFFFFFFF
            mem.active_pkru = regs.pkru
            return
        if m is M.GSWRPKRU:
            regs.pkru = mem.read_u32((regs.gs_base + ops[0]) & MASK64)
            mem.active_pkru = regs.pkru
            return
        if m is M.GSJMP:
            regs.rip = mem.read_u64((regs.gs_base + ops[0]) & MASK64)
            return
        if m is M.GSCOPY8:
            value = mem.read_u8((regs.gs_base + ops[1]) & MASK64)
            mem.write_u8((regs.gs_base + ops[0]) & MASK64, value)
            return

        raise AssertionError(f"unhandled mnemonic {m}")  # pragma: no cover


# ----------------------------------------------------------------- xsave glue
def xsave_serialize(regs, mask: XComponent) -> bytes:
    """Serialize the selected xstate components into the xsave area format."""
    area = bytearray(XSAVE_AREA_SIZE)
    bits = 0
    for component, bit in _COMPONENT_BITS:
        if mask & component:
            bits |= bit
    _U64.pack_into(area, XSAVE_MASK_OFF, bits)
    if mask & XComponent.SSE:
        for i, value in enumerate(regs.xmm):
            area[XSAVE_XMM_OFF + 16 * i : XSAVE_XMM_OFF + 16 * (i + 1)] = (
                value.to_bytes(16, "little")
            )
    if mask & XComponent.AVX:
        for i, value in enumerate(regs.ymm_high):
            area[XSAVE_YMM_OFF + 16 * i : XSAVE_YMM_OFF + 16 * (i + 1)] = (
                value.to_bytes(16, "little")
            )
    if mask & XComponent.X87:
        for i, value in enumerate(regs.x87):
            _U64.pack_into(area, XSAVE_X87_OFF + 8 * i, value)
        area[XSAVE_TOP_OFF] = regs.x87_top
    return bytes(area)


def xrstor_apply(regs, area: bytes) -> None:
    """Restore xstate components from an xsave area."""
    (bits,) = _U64.unpack_from(area, XSAVE_MASK_OFF)
    if bits & 2:
        for i in range(16):
            regs.xmm[i] = int.from_bytes(
                area[XSAVE_XMM_OFF + 16 * i : XSAVE_XMM_OFF + 16 * (i + 1)], "little"
            )
    if bits & 4:
        for i in range(16):
            regs.ymm_high[i] = int.from_bytes(
                area[XSAVE_YMM_OFF + 16 * i : XSAVE_YMM_OFF + 16 * (i + 1)], "little"
            )
    if bits & 1:
        for i in range(8):
            (regs.x87[i],) = _U64.unpack_from(area, XSAVE_X87_OFF + 8 * i)
        regs.x87_top = area[XSAVE_TOP_OFF]
