"""Tier-2 of the interpreter: superblock compilation.

The PR-2 translation cache (tier 1) made :meth:`repro.cpu.core.CPU.step`
a dict hit plus one handler call, but the scheduler still pays the full
per-instruction boundary protocol — liveness, signal, policy and rebind
checks — around every step.  This module adds the second tier sketched in
ROADMAP item 1, using the dispatch-generation idiom of PyPy's blackhole
interpreter (SNIPPETS.md, Snippets 2-3): once a straight-line run of code
turns hot, its instructions are compiled *together* into one generated
Python function whose body is the fused, specialised sequence of the
handlers that tier 1 would have dispatched one call at a time.

A superblock is a maximal straight-line run starting at a hot *head*:

* registers the block touches are hoisted into Python locals and spilled
  back at every exit,
* the per-instruction cycle charges are folded into one batched
  ``charge`` call per exit (see :func:`repro.cpu.costs.block_batchable`
  for why the batched float sum is bit-identical to per-step charging),
* anything that can observe or change machine state mid-run — syscalls,
  hcalls, hlt, gs/pkru traffic, vector/x87 state — terminates the block:
  those instructions always execute on the tier-1 path, so every syscall,
  signal-delivery point and scheduler boundary stays exactly where the
  single-step interpreter put it,
* a conditional or indirect branch may terminate the block *compiled-in*:
  the generated code computes the successor rip and exits,
* faults inside the block spill, rewind ``rip`` to the faulting
  instruction, charge exactly the instructions retired so far (the
  faulting one included, as ``CPU.step`` does) and re-raise for the
  scheduler's normal ``handle_fault`` path,
* a store that bumps :attr:`AddressSpace.code_epoch` (i.e. hit *any*
  executable page) conservatively side-exits after retiring, so a block
  that overwrites its own upcoming instructions never executes stale
  bytes.

Validity is keyed by the same per-page generation counters that guard the
tier-1 cache: a block records ``(page, gen)`` for the one or two pages its
bytes span, and ``AddressSpace._bump_exec_gen`` — the single choke point
for SMC writes, mprotect, munmap and lazypoline's in-place rewrites —
eagerly flushes every block spanning the bumped page.  Fork isolation is
free (a forked space starts with a fresh :class:`BlockCache`); SMP uses
one ``BlockCache`` per (core, asid) pair so cross-core rewrites shoot
down exactly the remote blocks spanning the patched page.
"""

from __future__ import annotations

from repro.arch.decode import decode_one
from repro.arch.isa import MAX_INSN_LEN, Mnemonic
from repro.errors import InvalidOpcode, PageFault
from repro.mem.pages import PAGE_SHIFT

#: Executions of a head address (observed at taken control transfers and
#: block exits) before the run starting there is compiled.  High enough
#: that short-lived code and most unit-test guests never tier up, so the
#: legacy path keeps covering them byte-for-byte.
HOT_THRESHOLD = 16

#: Longest run compiled into one block.  Also bounded by the two-page
#: span limit below, and by the scheduler to the remaining slice budget
#: at entry (a block never straddles a quantum boundary).
BLOCK_CAP = 32

#: Shortest run worth compiling; a 1-instruction block would just be the
#: tier-1 step with extra spill traffic.
MIN_LEN = 2

_M64 = (1 << 64) - 1
_SBIT = 1 << 63
_2_64 = 1 << 64


class SuperBlock:
    """One compiled straight-line run (or a "don't retry" sentinel).

    ``fn(task, charge) -> int`` (``charge`` is the environment's charge
    method, hoisted by the caller) executes the whole run: it returns the
    number of instructions retired and leaves ``task.regs``/memory/cycle
    state exactly as that many tier-1 steps would have.  On a guest fault it
    sets ``task.sb_fault`` to the retired count (faulting instruction
    included) and re-raises.  ``fn is None`` marks a sentinel: the head's
    run is not compilable (too short, or starts with an excluded opcode);
    keeping the sentinel in the cache stops the scheduler re-counting and
    re-compiling it, and its ``(page, gen)`` keys let SMC retry later.
    """

    __slots__ = ("head", "n", "fn", "p0", "g0", "p1", "g1", "cost", "runs")

    def __init__(self, head, n, fn, p0, g0, p1, g1, cost):
        self.head = head
        self.n = n
        self.fn = fn
        self.p0 = p0
        self.g0 = g0
        self.p1 = p1
        self.g1 = g1
        self.cost = cost
        self.runs = 0


class BlockCache:
    """Superblock state for one address space (or one (core, asid) pair).

    ``blocks`` maps head address -> :class:`SuperBlock`; ``index`` maps
    page number -> set of head addresses whose blocks span that page, so
    a generation bump flushes exactly the stale blocks without a scan;
    ``heads`` holds the pre-compilation hotness counters.  ``cost_epoch``
    snapshots :attr:`CPU.cost_epoch` — blocks bake their cycle costs in,
    so a recalibrated cost model drops the whole cache (checked once per
    slice, never per instruction).
    """

    __slots__ = ("blocks", "index", "heads", "cost_epoch")

    def __init__(self):
        self.blocks: dict[int, SuperBlock] = {}
        self.index: dict[int, set] = {}
        self.heads: dict[int, int] = {}
        self.cost_epoch = -1

    def reset(self, cost_epoch: int) -> None:
        self.blocks.clear()
        self.index.clear()
        self.heads.clear()
        self.cost_epoch = cost_epoch


# --------------------------------------------------------------- classification
# Straight-line instructions the compiler knows how to fuse.  Everything
# else — syscalls, hcalls, hlt, traps, gs/pkru, vector, x87, xsave — ends
# the block *before* it, so it executes on the tier-1 path with the full
# scheduler boundary protocol around it.
_STRAIGHT = frozenset(
    (
        Mnemonic.NOP,
        Mnemonic.MOV_IMM64,
        Mnemonic.MOV,
        Mnemonic.LOAD,
        Mnemonic.STORE,
        Mnemonic.LOAD8,
        Mnemonic.STORE8,
        Mnemonic.LEA,
        Mnemonic.ADD,
        Mnemonic.SUB,
        Mnemonic.CMP,
        Mnemonic.AND,
        Mnemonic.OR,
        Mnemonic.XOR,
        Mnemonic.IMUL,
        Mnemonic.SHL,
        Mnemonic.SHR,
        Mnemonic.ADDI,
        Mnemonic.SUBI,
        Mnemonic.CMPI,
        Mnemonic.ANDI,
        Mnemonic.ORI,
        Mnemonic.XORI,
        Mnemonic.INC,
        Mnemonic.DEC,
        Mnemonic.PUSH,
        Mnemonic.POP,
    )
)

#: Control transfers compiled *into* the block as its final instruction.
_TERMINATORS = frozenset(
    (
        Mnemonic.RET,
        Mnemonic.CALL_REG,
        Mnemonic.JMP_REG,
        Mnemonic.CALL_REL,
        Mnemonic.JMP_REL,
        Mnemonic.JZ,
        Mnemonic.JNZ,
        Mnemonic.JL,
        Mnemonic.JG,
        Mnemonic.JGE,
        Mnemonic.JLE,
    )
)

_JCC_COND = {
    Mnemonic.JZ: "zf",
    Mnemonic.JNZ: "not zf",
    Mnemonic.JL: "lt",
    Mnemonic.JG: "not lt and not zf",
    Mnemonic.JGE: "not lt",
    Mnemonic.JLE: "lt or zf",
}

_RSP = 4


def _decode_run(mem, head):
    """Decode the straight-line run at ``head`` (no caches touched).

    Deliberately bypasses ``mem.insn_cache`` — compilation must not
    perturb tier-1 cache contents, or hit/miss counts and SMP shootdown
    charges would differ between tiering on and off.  Stops at the first
    non-straight-line opcode, at a compiled-in terminator, at the block
    cap, or where decoding itself would fault (execution reaching that
    point side-exits and faults identically on the tier-1 path).
    """
    insns = []
    addr = head
    p0 = head >> PAGE_SHIFT
    while len(insns) < BLOCK_CAP:
        try:
            window = mem.fetch(addr, MAX_INSN_LEN)
            insn = decode_one(window, 0, addr)
        except (PageFault, InvalidOpcode):
            break
        if (addr + insn.length - 1) >> PAGE_SHIFT > p0 + 1:
            break  # keep every block within a two-page span
        m = insn.mnemonic
        if m in _TERMINATORS:
            insns.append((addr, insn))
            break
        if m not in _STRAIGHT:
            break
        insns.append((addr, insn))
        addr += insn.length
    return insns


class _Emitter:
    """Builds the generated function source for one block.

    Flag assignments are *deferred*: an ALU instruction only records the
    two pending ``zf``/``lt`` lines, and they are materialised at the
    first point where the architectural flags are observable — a faulting
    instruction (the fault path spills them), a side exit, a Jcc read, or
    the final spill.  A later flag-setting instruction simply replaces
    the pending pair, which is exactly dead-store elimination: in a run
    of ALU ops only the last one's flags ever reach an observer.  Pending
    lines reference register locals, so any instruction that overwrites a
    referenced register without setting flags itself forces an early
    materialisation first.
    """

    def __init__(self):
        self.lines: list[str] = []
        self.regs: set[int] = set()
        self.written: set[int] = set()
        self.flags_set = False
        self.flags_read = False
        self.load_flags = False
        self.uses_mem = False
        self.consts: dict[str, object] = {}
        self.pending: tuple[list[str], set[int]] | None = None

    def touch(self, *rs):
        self.regs.update(rs)

    def writes(self, *rs):
        self.regs.update(rs)
        self.written.update(rs)

    def emit(self, line):
        self.lines.append("        " + line)

    def set_flags_from(self, lines, refs):
        self.flags_set = True
        self.pending = (lines, set(refs))

    def materialize(self):
        if self.pending is not None:
            for line in self.pending[0]:
                self.emit(line)
            self.pending = None

    def materialize_if_clobbers(self, *written):
        if self.pending is not None and self.pending[1].intersection(written):
            self.materialize()

    def spill(self, indent="        "):
        # Only *written* registers spill; flags spill only if some
        # instruction set them (unwritten state is already architectural).
        out = []
        for r in sorted(self.written):
            out.append(f"{indent}g[{r}] = r{r}")
        if self.flags_set:
            out.append(f"{indent}regs.zf = zf")
            out.append(f"{indent}regs.lt = lt")
        return out


def _flags(e, val):
    e.set_flags_from(
        [f"zf = {val} == 0", f"lt = {val} >= {_SBIT}"],
        [int(val[1:])],
    )


def _signed(expr):
    return f"({expr} if {expr} < {_SBIT} else {expr} - {_2_64})"


def _side_exit(e, charge_expr, next_addr, count):
    """Conservative mid-block exit: state as if the run ended here."""
    e.emit("if mem.code_epoch != _e:")
    for line in e.spill("            "):
        e.lines.append(line)
    e.lines.append(f"            charge(task, {charge_expr})")
    e.lines.append(f"            regs.rip = {next_addr}")
    e.lines.append(f"            return {count}")


def compile_block(mem, head, cost_table, max_len=None):
    """Compile the run at ``head``; always returns a :class:`SuperBlock`.

    A non-compilable head yields a sentinel block (``fn is None``) whose
    generation keys still let SMC invalidate and later retry it.

    ``max_len`` truncates the run to at most that many instructions: the
    scheduler compiles such *tail* variants when a hot block is longer
    than the remaining slice budget, so the quantum remainder runs as one
    compiled call instead of single-stepping.  A truncated run simply
    ends in a fallthrough exit at the cut point — exactly as a run cut by
    :data:`BLOCK_CAP` would.
    """
    insns = _decode_run(mem, head)
    if max_len is not None:
        insns = insns[:max_len]
    gens = mem.exec_gen
    # A tail variant is worth compiling even at one instruction: the full
    # block at this head is already hot, and the single-insn call still
    # replaces a full boundary-protocol interpreter step.
    if len(insns) < (MIN_LEN if max_len is None else 1):
        p0 = head >> PAGE_SHIFT
        return SuperBlock(head, 0, None, p0, gens.get(p0, 0), p0, gens.get(p0, 0), 0)

    last_addr, last_insn = insns[-1]
    p0 = head >> PAGE_SHIFT
    p1 = (last_addr + last_insn.length - 1) >> PAGE_SHIFT
    end_rip = last_addr + last_insn.length

    costs = [cost_table[insn.mnemonic.op_index] for _, insn in insns]
    from repro.cpu.costs import block_batchable

    batch = block_batchable(costs)

    e = _Emitter()
    can_fault = False
    has_store = False

    # Pre-pass: register/flag footprint, so prologue and spills agree.
    # ``written`` drives the spill set (read-only registers never spill);
    # the first-setter / first-fault indices decide whether the entry
    # flags are live anywhere the generated code could observe them —
    # only then does the prologue load ``regs.zf``/``regs.lt``.
    first_set = first_fault = None
    for i, (_, insn) in enumerate(insns):
        m = insn.mnemonic
        ops = insn.operands
        if m in (Mnemonic.MOV_IMM64,):
            e.writes(ops[0])
        elif m in (Mnemonic.MOV,):
            e.writes(ops[0])
            e.touch(ops[1])
        elif m in (Mnemonic.LOAD, Mnemonic.LOAD8, Mnemonic.LEA):
            e.writes(ops[0])
            e.touch(ops[1])
        elif m in (Mnemonic.STORE, Mnemonic.STORE8):
            e.touch(ops[0], ops[2])
        elif m in (Mnemonic.CMP,):
            e.touch(ops[0], ops[1])
            e.flags_set = True
        elif m in (Mnemonic.ADD, Mnemonic.SUB, Mnemonic.AND, Mnemonic.OR,
                   Mnemonic.XOR, Mnemonic.IMUL):
            e.writes(ops[0])
            e.touch(ops[1])
            e.flags_set = True
        elif m in (Mnemonic.CMPI,):
            e.touch(ops[0])
            e.flags_set = True
        elif m in (Mnemonic.ADDI, Mnemonic.SUBI, Mnemonic.ANDI, Mnemonic.ORI,
                   Mnemonic.XORI, Mnemonic.SHL, Mnemonic.SHR,
                   Mnemonic.INC, Mnemonic.DEC):
            e.writes(ops[0])
            e.flags_set = True
        elif m is Mnemonic.PUSH:
            e.touch(ops[0])
            e.writes(_RSP)
        elif m is Mnemonic.POP:
            e.writes(ops[0], _RSP)
        elif m is Mnemonic.RET:
            # The terminator updates g[4] directly after the spill, so
            # rsp is read-only as a local.
            e.touch(_RSP)
        elif m in (Mnemonic.CALL_REG, Mnemonic.JMP_REG):
            e.touch(ops[0])
            if m is Mnemonic.CALL_REG:
                e.touch(_RSP)
        elif m is Mnemonic.CALL_REL:
            e.touch(_RSP)
        elif m in _JCC_COND:
            e.flags_read = True
        if e.flags_set and first_set is None:
            first_set = i
        if m in (Mnemonic.LOAD, Mnemonic.LOAD8, Mnemonic.STORE, Mnemonic.STORE8,
                 Mnemonic.PUSH, Mnemonic.POP, Mnemonic.RET, Mnemonic.CALL_REG,
                 Mnemonic.CALL_REL):
            e.uses_mem = True
            can_fault = True
            if first_fault is None:
                first_fault = i
        if m in (Mnemonic.STORE, Mnemonic.STORE8, Mnemonic.PUSH):
            has_store = True

    # Entry flags must be in locals if a Jcc reads them un-set, or if a
    # fault/side-exit spill can run before the first setter materialises
    # (the shared except-handler spill references the flag locals).
    e.load_flags = (e.flags_read and not e.flags_set) or (
        e.flags_set and first_fault is not None and first_fault < first_set
    )

    # Body.  ``running`` replays the exact cumulative charge the tier-1
    # path would have applied after each instruction (see block_batchable).
    running = 0
    n = len(insns)
    for k, (addr, insn) in enumerate(insns):
        m = insn.mnemonic
        ops = insn.operands
        running = running + costs[k]
        is_term = k == n - 1 and m in _TERMINATORS
        if not batch:
            e.emit(f"charge(task, {costs[k]!r})")
        if m in (Mnemonic.LOAD, Mnemonic.LOAD8, Mnemonic.STORE, Mnemonic.STORE8,
                 Mnemonic.PUSH, Mnemonic.POP, Mnemonic.RET, Mnemonic.CALL_REG,
                 Mnemonic.CALL_REL):
            e.materialize()  # the fault path spills architectural flags
            fk = f"_F{k}"
            # A faulting terminator (ret/call) spills and charges its full
            # batched total *before* touching memory, so its fault tuple
            # must not charge again; a mid-block fault is the only charge.
            e.consts[fk] = (addr, running if batch and not is_term else 0, k + 1)
            e.emit(f"_f = {fk}")
        charge_k = repr(running) if batch else "0"
        exit_cyc = charge_k
        next_addr = addr + insn.length

        if m is Mnemonic.NOP:
            pass
        elif m is Mnemonic.MOV_IMM64:
            e.materialize_if_clobbers(ops[0])
            e.emit(f"r{ops[0]} = {ops[1] & _M64}")
        elif m is Mnemonic.MOV:
            e.materialize_if_clobbers(ops[0])
            e.emit(f"r{ops[0]} = r{ops[1]}")
        elif m is Mnemonic.LEA:
            e.materialize_if_clobbers(ops[0])
            e.emit(f"r{ops[0]} = (r{ops[1]} + {ops[2]}) & {_M64}")
        elif m is Mnemonic.LOAD:
            e.emit(f"r{ops[0]} = mem.read_u64((r{ops[1]} + {ops[2]}) & {_M64})")
        elif m is Mnemonic.LOAD8:
            e.emit(f"r{ops[0]} = mem.read_u8((r{ops[1]} + {ops[2]}) & {_M64})")
        elif m is Mnemonic.STORE:
            e.emit(f"mem.write_u64((r{ops[0]} + {ops[1]}) & {_M64}, r{ops[2]})")
            if k != n - 1:
                _side_exit(e, exit_cyc, next_addr, k + 1)
        elif m is Mnemonic.STORE8:
            e.emit(f"mem.write_u8((r{ops[0]} + {ops[1]}) & {_M64}, r{ops[2]} & 0xFF)")
            if k != n - 1:
                _side_exit(e, exit_cyc, next_addr, k + 1)
        elif m is Mnemonic.PUSH:
            e.emit(f"_v = r{ops[0]}")
            e.emit(f"mem.write_u64((r4 - 8) & {_M64}, _v)")
            e.emit(f"r4 = (r4 - 8) & {_M64}")
            if k != n - 1:
                _side_exit(e, exit_cyc, next_addr, k + 1)
        elif m is Mnemonic.POP:
            e.emit("_v = mem.read_u64(r4)")
            e.emit(f"r4 = (r4 + 8) & {_M64}")
            e.emit(f"r{ops[0]} = _v")
        elif m in (Mnemonic.ADD, Mnemonic.SUB):
            op = "+" if m is Mnemonic.ADD else "-"
            e.emit(f"r{ops[0]} = (r{ops[0]} {op} r{ops[1]}) & {_M64}")
            _flags(e, f"r{ops[0]}")
        elif m in (Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR):
            op = {"AND": "&", "OR": "|", "XOR": "^"}[m.name]
            e.emit(f"r{ops[0]} = r{ops[0]} {op} r{ops[1]}")
            _flags(e, f"r{ops[0]}")
        elif m is Mnemonic.IMUL:
            e.emit(
                f"r{ops[0]} = ({_signed(f'r{ops[0]}')} * "
                f"{_signed(f'r{ops[1]}')}) & {_M64}"
            )
            _flags(e, f"r{ops[0]}")
        elif m is Mnemonic.CMP:
            # a <s b  <=>  (a ^ 2^63) <u (b ^ 2^63); equality is unaffected.
            e.set_flags_from(
                [f"zf = r{ops[0]} == r{ops[1]}",
                 f"lt = (r{ops[0]} ^ {_SBIT}) < (r{ops[1]} ^ {_SBIT})"],
                [ops[0], ops[1]],
            )
        elif m in (Mnemonic.ADDI, Mnemonic.SUBI):
            op = "+" if m is Mnemonic.ADDI else "-"
            e.emit(f"r{ops[0]} = (r{ops[0]} {op} {ops[1] & _M64}) & {_M64}")
            _flags(e, f"r{ops[0]}")
        elif m in (Mnemonic.ANDI, Mnemonic.ORI, Mnemonic.XORI):
            op = {"ANDI": "&", "ORI": "|", "XORI": "^"}[m.name]
            e.emit(f"r{ops[0]} = r{ops[0]} {op} {ops[1] & _M64}")
            _flags(e, f"r{ops[0]}")
        elif m is Mnemonic.CMPI:
            e.set_flags_from(
                [f"zf = r{ops[0]} == {ops[1] & _M64}",
                 f"lt = (r{ops[0]} ^ {_SBIT}) < {(ops[1] & _M64) ^ _SBIT}"],
                [ops[0]],
            )
        elif m is Mnemonic.SHL:
            e.emit(f"r{ops[0]} = (r{ops[0]} << {ops[1] & 63}) & {_M64}")
            _flags(e, f"r{ops[0]}")
        elif m is Mnemonic.SHR:
            e.emit(f"r{ops[0]} = r{ops[0]} >> {ops[1] & 63}")
            _flags(e, f"r{ops[0]}")
        elif m is Mnemonic.INC:
            e.emit(f"r{ops[0]} = (r{ops[0]} + 1) & {_M64}")
            _flags(e, f"r{ops[0]}")
        elif m is Mnemonic.DEC:
            e.emit(f"r{ops[0]} = (r{ops[0]} - 1) & {_M64}")
            _flags(e, f"r{ops[0]}")
        elif is_term:
            e.materialize()
            for line in e.spill():
                e.lines.append(line)
            if batch:
                e.emit(f"charge(task, {running!r})")
            if m is Mnemonic.RET:
                e.emit("_v = mem.read_u64(r4)")
                e.emit(f"g[4] = (r4 + 8) & {_M64}")
                e.emit("regs.rip = _v")
            elif m is Mnemonic.JMP_REG:
                e.emit(f"regs.rip = r{ops[0]}")
            elif m is Mnemonic.CALL_REG:
                e.emit(f"mem.write_u64((r4 - 8) & {_M64}, {next_addr})")
                e.emit(f"g[4] = (r4 - 8) & {_M64}")
                e.emit(f"regs.rip = r{ops[0]}" if ops[0] != _RSP
                       else f"regs.rip = g[4]")
            elif m is Mnemonic.CALL_REL:
                e.emit(f"mem.write_u64((r4 - 8) & {_M64}, {next_addr})")
                e.emit(f"g[4] = (r4 - 8) & {_M64}")
                e.emit(f"regs.rip = {(next_addr + ops[0]) & _M64}")
            elif m is Mnemonic.JMP_REL:
                e.emit(f"regs.rip = {(next_addr + ops[0]) & _M64}")
            else:  # Jcc
                target = (next_addr + ops[0]) & _M64
                e.emit(f"regs.rip = {target} if {_JCC_COND[m]} else {next_addr}")
            e.emit(f"return {n}")
        else:  # pragma: no cover - classification and emitters must agree
            raise AssertionError(f"no emitter for {m.name}")

    if insns[-1][1].mnemonic not in _TERMINATORS:
        # Fallthrough exit: the next instruction is not compilable (or the
        # cap was hit); the tier-1 path picks up at ``end_rip``.
        e.materialize()
        for line in e.spill():
            e.lines.append(line)
        if batch:
            e.emit(f"charge(task, {running!r})")
        e.emit(f"regs.rip = {end_rip}")
        e.emit(f"return {n}")

    # Assemble: prologue, optionally fault-protected body, epilogue.
    src = ["def _sb(task, charge):"]
    src.append("    regs = task.regs")
    if e.regs:
        src.append("    g = regs.gpr")
    if e.uses_mem or has_store:
        src.append("    mem = task.mem")
    for r in sorted(e.regs):
        src.append(f"    r{r} = g[{r}]")
    if e.load_flags:
        src.append("    zf = regs.zf")
        src.append("    lt = regs.lt")
    if has_store:
        src.append("    _e = mem.code_epoch")
    if can_fault:
        src.append("    try:")
        src.extend(e.lines)
        src.append("    except BaseException:")
        for line in e.spill("        "):
            src.append(line)
        src.append("        regs.rip = _f[0]")
        src.append("        charge(task, _f[1])")
        src.append("        task.sb_fault = _f[2]")
        src.append("        raise")
    else:
        src.extend(line[4:] for line in e.lines)

    ns = dict(e.consts)
    exec(compile("\n".join(src), f"<superblock:{head:#x}>", "exec"), ns)
    fn = ns["_sb"]
    total = running
    return SuperBlock(
        head, n, fn, p0, gens.get(p0, 0), p1, gens.get(p1, 0), total
    )
