"""The cycle cost model — every calibrated constant in one place.

The paper measures *ratios* between interposition mechanisms on a 2.10 GHz
Xeon.  We reproduce those ratios with a simple additive cost model: each
instruction class has a cycle cost, and each kernel path (mode switch,
interception check, SUD selector read, seccomp filter run, signal delivery,
sigreturn, context switch) has a constant.  DESIGN.md §5 lists the identities
the defaults satisfy; `tests/test_calibration.py` asserts them and
EXPERIMENTS.md records the resulting paper-vs-measured ratios.

The defaults are calibrated, not magic: e.g. ``xsave``/``xrstor`` at ~55
cycles for the full x87+SSE+AVX state matches the Fig. 4 "xstate
preservation" component (2.38x − 1.66x over a ~164-cycle baseline loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.isa import N_MNEMONICS, Mnemonic

_M = Mnemonic

#: Default per-instruction cycle costs by mnemonic.  Fractional values are
#: allowed: the trampoline sled's nops retire ~4 per cycle on the modelled
#: out-of-order core, which is what keeps the zpoline slide cheap even for
#: low syscall numbers (the paper's microbenchmark picks syscall 500 to
#: enter the sled at its tail and minimise even that).
DEFAULT_INSN_COSTS: dict[Mnemonic, float] = {
    _M.NOP: 0.25,
    _M.RET: 3,
    _M.HLT: 1,
    _M.INT3: 1,
    _M.SYSCALL: 0,  # kernel path costs charged by the kernel
    _M.SYSENTER: 0,
    _M.UD2: 0,
    _M.PUSH: 1,
    _M.POP: 1,
    _M.CALL_REG: 3,
    _M.JMP_REG: 2,
    _M.CALL_REL: 3,
    _M.JMP_REL: 2,
    _M.JZ: 2,
    _M.JNZ: 2,
    _M.JL: 2,
    _M.JG: 2,
    _M.JGE: 2,
    _M.JLE: 2,
    _M.MOV_IMM64: 1,
    _M.MOV: 1,
    _M.LOAD: 3,
    _M.STORE: 3,
    _M.LOAD8: 3,
    _M.STORE8: 3,
    _M.ADD: 1,
    _M.SUB: 1,
    _M.CMP: 1,
    _M.AND: 1,
    _M.OR: 1,
    _M.XOR: 1,
    _M.IMUL: 3,
    _M.SHL: 1,
    _M.SHR: 1,
    _M.ADDI: 1,
    _M.SUBI: 1,
    _M.CMPI: 1,
    _M.ANDI: 1,
    _M.ORI: 1,
    _M.XORI: 1,
    _M.INC: 1,
    _M.DEC: 1,
    _M.LEA: 1,
    _M.MOVQ_XG: 2,
    _M.MOVQ_GX: 2,
    _M.MOVUPS_LOAD: 3,
    _M.MOVUPS_STORE: 3,
    _M.MOVAPS: 2,
    _M.PUNPCKLQDQ: 2,
    _M.XORPS: 2,
    _M.VADDPD: 3,
    _M.FLD1: 3,
    _M.FADDP: 3,
    _M.FLD_MEM: 4,
    _M.FSTP_MEM: 4,
    _M.XSAVE: 0,  # computed from components, see xsave_cost()
    _M.XRSTOR: 0,
    _M.RDGSBASE: 1,
    _M.WRGSBASE: 1,
    _M.GSLOAD: 2,
    _M.GSSTORE: 2,
    _M.GSLOAD8: 2,
    _M.GSSTORE8: 2,
    _M.GSJMP: 3,
    _M.GSCOPY8: 3,
    _M.RDPKRU: 1,
    _M.WRPKRU: 23,  # serialising on real hardware
    _M.GSWRPKRU: 26,  # wrpkru + the protected spill it models
    _M.HCALL: 18,
}


@dataclass
class CostModel:
    """Cycle costs for instructions and kernel paths.

    All times are in CPU cycles at the paper's 2.10 GHz clock; convert with
    :meth:`cycles_to_seconds`.
    """

    #: CPU frequency (Hz) used to convert cycles to time/throughput.
    frequency_hz: float = 2.10e9

    #: Per-mnemonic instruction costs (cycles; fractions allowed).
    insn_costs: dict[Mnemonic, float] = field(
        default_factory=lambda: dict(DEFAULT_INSN_COSTS)
    )

    # ---- kernel syscall path ------------------------------------------------
    #: Round-trip user→kernel→user mode switch for a syscall.
    syscall_entry_exit: int = 150
    #: Extra cost of dispatching an out-of-range syscall number (ENOSYS).
    nosys_penalty: int = 10
    #: Per-syscall service cost floor for real (existing) syscalls.
    syscall_service_floor: int = 60
    #: Kernel-side copy cost per byte moved between user and kernel buffers
    #: (read/write payloads).  Four bytes per cycle models a cache-cold
    #: copy_to_user on payload-sized buffers.
    copy_bytes_per_cycle: int = 4

    # ---- interception machinery ----------------------------------------------
    #: Extra syscall-entry work when *any* interception interface is armed
    #: (the "slower syscall entry path" Table II attributes to enabling SUD).
    interception_check: int = 54
    #: Reading the user-space SUD selector byte from the kernel entry path.
    sud_selector_read: int = 15
    #: Fixed cost of invoking the seccomp machinery on syscall entry.
    seccomp_fixed: int = 45
    #: Cost per executed classic-BPF instruction.
    seccomp_per_insn: int = 3

    # ---- syscall aggregation (repro.kernel.uring) ----------------------------
    #: Per-entry bookkeeping while draining a submission ring: SQE fetch,
    #: CQE store, head/tail publication.  Ring entries deliberately do NOT
    #: pay ``syscall_entry_exit`` or ``sud_selector_read`` — amortizing the
    #: crossing is the whole point — but armed seccomp filters, fault
    #: injection, and the entry's own service cost still apply per entry.
    uring_per_entry: int = 30

    # ---- signals -------------------------------------------------------------
    #: Kernel cost of setting up a signal frame (includes xstate spill) and
    #: transferring to the handler.
    signal_delivery: int = 1640
    #: Kernel cost of rt_sigreturn (frame teardown + xstate reload).
    sigreturn_work: int = 1050

    # ---- scheduling / ptrace ---------------------------------------------------
    #: One full context switch between tasks (ptrace tracer/tracee ping-pong).
    context_switch: int = 1500
    #: Cost of one ptrace() request made by the tracer (PTRACE_GETREGS, ...).
    ptrace_request: int = 400

    # ---- SMP ----------------------------------------------------------------
    #: One PAUSE-loop iteration while spinning on a contended spinlock
    #: (the §IV-A(b) rewrite lock under SMP).
    smp_spin_retry: int = 40
    #: IPI + remote decoded-insn flush when a code patch on one core
    #: invalidates a page another core has cached (charged to the writer,
    #: once per victim core).
    smp_shootdown_ipi: int = 800
    #: Migrating a task to an idle core (runqueue locking + the cold-cache
    #: penalty of the first slice on the new core), charged to the thief.
    smp_steal_cost: int = 2000

    # ---- memory management -------------------------------------------------
    #: mmap/mprotect/munmap fixed kernel cost per call.
    page_op: int = 600
    #: Additional cost per page affected by an mmap/mprotect.
    page_op_per_page: int = 30
    #: TLB shootdown / icache flush after writing code (per rewrite).
    code_patch_flush: int = 120

    # ---- xstate ---------------------------------------------------------------
    #: Fixed cost of an xsave/xrstor instruction.
    xsave_base: int = 10
    #: Additional cost per extended-state component saved/restored.
    xsave_per_component: int = 15

    def __post_init__(self) -> None:
        self.refresh_tables()

    def refresh_tables(self) -> None:
        """Rebuild the precomputed lookup tables.

        Call after mutating ``insn_costs`` / ``xsave_base`` /
        ``xsave_per_component`` in place (tests do this to recalibrate).
        """
        # Dense per-mnemonic cost list indexed by op_index; None marks
        # mnemonics absent from insn_costs so lookups still raise KeyError.
        table: list[float | None] = [None] * N_MNEMONICS
        for m, cost in self.insn_costs.items():
            table[m.op_index] = cost
        self._insn_cost_table = table
        # xsave/xrstor cost for the common component counts (0..3).
        self._xsave_cost_table = tuple(
            self._xsave_cost_uncached(n) for n in range(4)
        )

    # ------------------------------------------------------------------ helpers
    def insn_cost(self, mnemonic: Mnemonic) -> float:
        cost = self._insn_cost_table[mnemonic.op_index]
        if cost is None:
            raise KeyError(mnemonic)
        return cost

    def _xsave_cost_uncached(self, component_count: int) -> int:
        if component_count == 0:
            return 2  # mask read, nothing to move
        return self.xsave_base + self.xsave_per_component * component_count

    def xsave_cost(self, component_count: int) -> int:
        """Cost of xsave or xrstor covering ``component_count`` components."""
        if component_count < 4:
            return self._xsave_cost_table[component_count]
        return self._xsave_cost_uncached(component_count)

    def copy_cost(self, nbytes: int) -> int:
        """Kernel copy cost for an n-byte user/kernel data transfer."""
        return nbytes // self.copy_bytes_per_cycle

    def cycles_to_seconds(self, cycles: int | float) -> float:
        return cycles / self.frequency_hz


def block_batchable(costs) -> bool:
    """May a superblock fold these per-insn charges into one batched sum?

    The tier-1 path charges each instruction separately, so the running
    clock is the *sequential* float sum of the costs; a compiled block
    charges one precomputed total per exit.  The two are bit-identical
    when every cost is a non-negative multiple of 0.25 below 2**40: each
    partial sum is then an exact dyadic rational K/4 with K < 2**52, every
    float addition along the way is exact, and the batched total equals
    the sequential sum exactly.  All DEFAULT_INSN_COSTS qualify (integers
    plus the 0.25-cycle NOP).  Anything else — e.g. a calibrated model
    with arbitrary float costs — fails the gate and the block compiler
    falls back to per-instruction charges, trading speed for identity.
    """
    return all(0 <= c < 1 << 40 and (c * 4) % 1 == 0 for c in costs)
