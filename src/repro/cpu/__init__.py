"""CPU interpreter and cycle cost model."""

from repro.cpu.costs import CostModel
from repro.cpu.core import CPU, BareTask, NullEnvironment, XSAVE_AREA_SIZE
from repro.cpu.hooks import CpuHook, reg_effects

__all__ = [
    "CostModel",
    "CPU",
    "BareTask",
    "NullEnvironment",
    "XSAVE_AREA_SIZE",
    "CpuHook",
    "reg_effects",
]
