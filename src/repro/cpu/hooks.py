"""CPU instrumentation hooks and static per-instruction register effects.

``reg_effects`` computes which registers an instruction reads and writes,
used by the Pin-style analysis tool (§IV-B of the paper) to detect programs
that expect register contents to survive a syscall.

Register identifiers:

* ``("g", i)``  — general purpose register ``i``,
* ``("x", i)``  — xmm register ``i`` (SSE component),
* ``("y", i)``  — the high ymm half of register ``i`` (AVX component),
* ``("st",)``   — the x87 stack, tracked as a unit (X87 component).
"""

from __future__ import annotations

from typing import Protocol

from repro.arch.isa import Instruction, Mnemonic
from repro.arch.registers import RSP, SYSCALL_ARG_REGS, SYSCALL_CLOBBERS

RegId = tuple


class CpuHook(Protocol):
    """Observer invoked before each instruction executes."""

    def on_insn(self, task, insn: Instruction, addr: int) -> None:
        """Called with the decoded instruction about to run at ``addr``."""


class WindowWatch:
    """CpuHook recording executed instructions inside watched address ranges.

    The fault harness uses this to assert *coverage*: that a schedule
    exploration actually drove execution through every instruction boundary
    of a critical window (e.g. the lazypoline fast-path stub), instead of
    trusting that it did.  ``covered`` holds the executed addresses per
    window; ``hits`` the full (tid, addr) sequence in execution order.
    """

    def __init__(self, windows):
        #: half-open (start, end) address ranges, in priority order
        self.windows = tuple(tuple(w) for w in windows)
        self.covered: set[int] = set()
        self.hits: list[tuple[int, int]] = []

    def on_insn(self, task, insn: Instruction, addr: int) -> None:
        for start, end in self.windows:
            if start <= addr < end:
                self.covered.add(addr)
                self.hits.append((getattr(task, "tid", -1), addr))
                return

    def covered_in(self, start: int, end: int) -> set[int]:
        return {a for a in self.covered if start <= a < end}


_G = lambda i: ("g", i)  # noqa: E731 - tiny constructors keep tables readable
_X = lambda i: ("x", i)  # noqa: E731
_Y = lambda i: ("y", i)  # noqa: E731
_ST = ("st",)

_ALL_XSTATE = frozenset(
    [_X(i) for i in range(16)] + [_Y(i) for i in range(16)] + [_ST]
)


def reg_effects(insn: Instruction) -> tuple[frozenset, frozenset]:
    """Return ``(reads, writes)`` register-id sets for ``insn``."""
    m = insn.mnemonic
    ops = insn.operands
    M = Mnemonic

    if m in (M.NOP, M.HLT, M.INT3, M.UD2, M.JMP_REL, M.JZ, M.JNZ,
             M.JL, M.JG, M.JGE, M.JLE, M.HCALL, M.GSJMP, M.GSCOPY8,
             M.GSWRPKRU):
        return frozenset(), frozenset()
    if m in (M.SYSCALL, M.SYSENTER):
        reads = frozenset({_G(0)} | {_G(r) for r in SYSCALL_ARG_REGS})
        writes = frozenset(_G(r) for r in SYSCALL_CLOBBERS)
        return reads, writes
    if m is M.RET:
        return frozenset({_G(RSP)}), frozenset({_G(RSP)})
    if m is M.PUSH:
        return frozenset({_G(ops[0]), _G(RSP)}), frozenset({_G(RSP)})
    if m is M.POP:
        return frozenset({_G(RSP)}), frozenset({_G(ops[0]), _G(RSP)})
    if m is M.CALL_REG:
        return frozenset({_G(ops[0]), _G(RSP)}), frozenset({_G(RSP)})
    if m is M.JMP_REG:
        return frozenset({_G(ops[0])}), frozenset()
    if m is M.CALL_REL:
        return frozenset({_G(RSP)}), frozenset({_G(RSP)})
    if m is M.MOV_IMM64:
        return frozenset(), frozenset({_G(ops[0])})
    if m is M.MOV:
        return frozenset({_G(ops[1])}), frozenset({_G(ops[0])})
    if m in (M.LOAD, M.LOAD8):
        return frozenset({_G(ops[1])}), frozenset({_G(ops[0])})
    if m in (M.STORE, M.STORE8):
        return frozenset({_G(ops[0]), _G(ops[2])}), frozenset()
    if m is M.LEA:
        return frozenset({_G(ops[1])}), frozenset({_G(ops[0])})
    if m in (M.ADD, M.SUB, M.AND, M.OR, M.IMUL):
        return frozenset({_G(ops[0]), _G(ops[1])}), frozenset({_G(ops[0])})
    if m is M.XOR:
        if ops[0] == ops[1]:  # zeroing idiom: no true read
            return frozenset(), frozenset({_G(ops[0])})
        return frozenset({_G(ops[0]), _G(ops[1])}), frozenset({_G(ops[0])})
    if m is M.CMP:
        return frozenset({_G(ops[0]), _G(ops[1])}), frozenset()
    if m in (M.SHL, M.SHR, M.ADDI, M.SUBI, M.ANDI, M.ORI, M.XORI):
        return frozenset({_G(ops[0])}), frozenset({_G(ops[0])})
    if m is M.CMPI:
        return frozenset({_G(ops[0])}), frozenset()
    if m in (M.INC, M.DEC):
        return frozenset({_G(ops[0])}), frozenset({_G(ops[0])})
    if m is M.MOVQ_XG:
        return frozenset({_G(ops[1])}), frozenset({_X(ops[0])})
    if m is M.MOVQ_GX:
        return frozenset({_X(ops[1])}), frozenset({_G(ops[0])})
    if m is M.MOVUPS_LOAD:
        return frozenset({_G(ops[1])}), frozenset({_X(ops[0])})
    if m is M.MOVUPS_STORE:
        return frozenset({_G(ops[0]), _X(ops[2])}), frozenset()
    if m is M.MOVAPS:
        return frozenset({_X(ops[1])}), frozenset({_X(ops[0])})
    if m is M.PUNPCKLQDQ:
        return frozenset({_X(ops[0]), _X(ops[1])}), frozenset({_X(ops[0])})
    if m is M.XORPS:
        if ops[0] == ops[1]:
            return frozenset(), frozenset({_X(ops[0])})
        return frozenset({_X(ops[0]), _X(ops[1])}), frozenset({_X(ops[0])})
    if m is M.VADDPD:
        reads = frozenset({_X(ops[0]), _X(ops[1]), _Y(ops[0]), _Y(ops[1])})
        return reads, frozenset({_X(ops[0]), _Y(ops[0])})
    if m is M.FLD1:
        return frozenset(), frozenset({_ST})
    if m in (M.FADDP,):
        return frozenset({_ST}), frozenset({_ST})
    if m is M.FLD_MEM:
        return frozenset({_G(ops[0])}), frozenset({_ST})
    if m is M.FSTP_MEM:
        return frozenset({_G(ops[0]), _ST}), frozenset({_ST})
    if m is M.XSAVE:
        return frozenset({_G(ops[0])}) | _ALL_XSTATE, frozenset()
    if m is M.XRSTOR:
        return frozenset({_G(ops[0])}), frozenset(_ALL_XSTATE)
    if m in (M.RDGSBASE, M.RDPKRU):
        return frozenset(), frozenset({_G(ops[0])})
    if m in (M.WRGSBASE, M.WRPKRU):
        return frozenset({_G(ops[0])}), frozenset()
    if m in (M.GSLOAD, M.GSLOAD8):
        return frozenset(), frozenset({_G(ops[0])})
    if m in (M.GSSTORE, M.GSSTORE8):
        return frozenset({_G(ops[1])}), frozenset()
    raise AssertionError(f"reg_effects: unhandled mnemonic {m}")
