"""Record/replay of syscall behaviour — deterministic re-execution.

The paper's first motivating use case is "tracing and debugging" [1–3];
record/replay debuggers are the strongest form: capture every syscall's
effects once, then re-run the program with the kernel *out of the loop*,
reproducing the original execution bit-for-bit (even across sources of
non-determinism like ``getrandom`` or timers).

``Recorder`` captures, for every syscall, the return value plus whatever
the kernel wrote into user memory (the out-buffers of ``read``,
``getrandom``, ``clock_gettime``, …).  ``Replayer`` then services each
syscall from the recording instead of executing it.  Both are ordinary
interposition functions — record/replay needs *exhaustive* interception
(one missed syscall breaks determinism) which is exactly what lazypoline
provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interpose.api import SyscallContext
from repro.kernel.syscalls.table import NR, syscall_name


class ReplayDivergence(Exception):
    """The replayed program issued a different syscall than was recorded."""


#: For syscalls whose kernel writes into user memory: which argument holds
#: the buffer pointer, and how to compute the number of bytes written from
#: (args, ret).
_OUT_BUFFERS = {
    NR["read"]: (1, lambda args, ret: max(ret, 0)),
    NR["pread64"]: (1, lambda args, ret: max(ret, 0)),
    NR["getrandom"]: (0, lambda args, ret: max(ret, 0)),
    NR["getdents64"]: (1, lambda args, ret: max(ret, 0)),
    NR["getcwd"]: (0, lambda args, ret: max(ret, 0)),
    NR["fstat"]: (1, lambda args, ret: 32 if ret == 0 else 0),
    NR["stat"]: (1, lambda args, ret: 32 if ret == 0 else 0),
    NR["clock_gettime"]: (1, lambda args, ret: 16 if ret == 0 else 0),
    NR["uname"]: (0, lambda args, ret: 65 * 6 if ret == 0 else 0),
}

#: Syscalls that must really execute even during replay (they change the
#: process's own control/memory state rather than touching the world).
_ALWAYS_EXECUTE = {
    NR["mmap"], NR["munmap"], NR["mprotect"], NR["brk"],
    NR["rt_sigaction"], NR["rt_sigprocmask"], NR["rt_sigreturn"],
    NR["exit"], NR["exit_group"], NR["arch_prctl"], NR["prctl"],
    NR["pkey_alloc"], NR["pkey_free"], NR["pkey_mprotect"],
}


@dataclass
class RecordedCall:
    sysno: int
    args: tuple[int, ...]
    ret: int | None
    out_data: bytes | None = None
    out_addr: int = 0

    @property
    def name(self) -> str:
        return syscall_name(self.sysno)


@dataclass
class Recording:
    calls: list[RecordedCall] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.calls)


class Recorder:
    """Interposer that captures syscall effects into a :class:`Recording`."""

    def __init__(self):
        self.recording = Recording()

    def __call__(self, ctx: SyscallContext):
        ret = ctx.do_syscall()
        call = RecordedCall(ctx.sysno, ctx.args, ret)
        spec = _OUT_BUFFERS.get(ctx.sysno)
        if spec is not None and isinstance(ret, int):
            arg_index, length_fn = spec
            length = length_fn(ctx.args, ret)
            if length > 0:
                call.out_addr = ctx.args[arg_index]
                call.out_data = ctx.read_mem(call.out_addr, length)
        self.recording.calls.append(call)
        return ret


class Replayer:
    """Interposer that services syscalls from a :class:`Recording`."""

    def __init__(self, recording: Recording, *, strict: bool = True):
        self.recording = recording
        self.strict = strict
        self.position = 0
        self.replayed = 0
        self.executed = 0

    def __call__(self, ctx: SyscallContext):
        if self.position >= len(self.recording.calls):
            raise ReplayDivergence(
                f"recording exhausted at {ctx.name}{ctx.args[:3]}"
            )
        call = self.recording.calls[self.position]
        self.position += 1
        if call.sysno != ctx.sysno or (self.strict and call.args != ctx.args):
            raise ReplayDivergence(
                f"#{self.position - 1}: recorded {call.name}{call.args[:3]} "
                f"but program issued {ctx.name}{ctx.args[:3]}"
            )
        if ctx.sysno in _ALWAYS_EXECUTE:
            self.executed += 1
            return ctx.do_syscall()
        # Serve from the recording: inject out-buffers, skip the kernel.
        if call.out_data is not None:
            ctx.write_mem(call.out_addr, call.out_data)
        self.replayed += 1
        return call.ret
