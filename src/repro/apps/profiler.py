"""A syscall profiler (``strace -c`` style) on top of any interposition tool.

Counts per-syscall invocations, errors, and *simulated cycles spent inside
the kernel* for each syscall — the accounting view performance engineers
use to decide whether a workload is syscall-bound (and therefore how much
interposition will cost it, per Fig. 5's file-size sweep).

Built on the observability layer: each interposed call is recorded as a
``syscall`` event in a :class:`repro.obs.Tracer` (pass ``tracer=`` to merge
into a machine-wide stream), and :attr:`SyscallProfiler.report` renders the
tracer's per-syscall aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interpose.api import SyscallContext
from repro.obs.tracer import Tracer


@dataclass
class SyscallStats:
    name: str
    calls: int = 0
    errors: int = 0
    cycles: float = 0.0

    @property
    def cycles_per_call(self) -> float:
        return self.cycles / self.calls if self.calls else 0.0


@dataclass
class ProfileReport:
    stats: dict[int, SyscallStats] = field(default_factory=dict)
    total_cycles: float = 0.0

    def sorted_by_cycles(self) -> list[SyscallStats]:
        return sorted(self.stats.values(), key=lambda s: -s.cycles)

    def format(self) -> str:
        lines = [
            f"{'% time':>7s} {'cycles':>12s} {'cyc/call':>10s} "
            f"{'calls':>7s} {'errors':>7s} syscall",
            "-" * 60,
        ]
        for stat in self.sorted_by_cycles():
            share = 100 * stat.cycles / self.total_cycles if self.total_cycles else 0
            lines.append(
                f"{share:6.2f}% {stat.cycles:12.0f} {stat.cycles_per_call:10.1f} "
                f"{stat.calls:7d} {stat.errors:7d} {stat.name}"
            )
        lines.append("-" * 60)
        lines.append(f"{'100.00%':>7s} {self.total_cycles:12.0f} total")
        return "\n".join(lines)


class SyscallProfiler:
    """The interposition function: attach to any tool's ``interposer=``."""

    def __init__(self, tracer: Tracer | None = None):
        self.tracer = tracer if tracer is not None else Tracer()

    def __call__(self, ctx: SyscallContext):
        before = ctx.kernel.clock
        ret = ctx.do_syscall()
        after = ctx.kernel.clock
        self.tracer.syscall(
            after, ctx.task.tid, ctx.sysno, ctx.args, ret, after - before
        )
        return ret

    @property
    def report(self) -> ProfileReport:
        report = ProfileReport()
        for sysno, agg in self.tracer.syscalls.items():
            report.stats[sysno] = SyscallStats(
                agg.name, agg.calls, agg.errors, float(agg.cycles)
            )
            report.total_cycles += agg.cycles
        return report
