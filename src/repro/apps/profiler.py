"""A syscall profiler (``strace -c`` style) on top of any interposition tool.

Counts per-syscall invocations, errors, and *simulated cycles spent inside
the kernel* for each syscall — the accounting view performance engineers
use to decide whether a workload is syscall-bound (and therefore how much
interposition will cost it, per Fig. 5's file-size sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interpose.api import SyscallContext
from repro.kernel.errno import is_error
from repro.kernel.syscalls.table import syscall_name


@dataclass
class SyscallStats:
    name: str
    calls: int = 0
    errors: int = 0
    cycles: float = 0.0

    @property
    def cycles_per_call(self) -> float:
        return self.cycles / self.calls if self.calls else 0.0


@dataclass
class ProfileReport:
    stats: dict[int, SyscallStats] = field(default_factory=dict)
    total_cycles: float = 0.0

    def sorted_by_cycles(self) -> list[SyscallStats]:
        return sorted(self.stats.values(), key=lambda s: -s.cycles)

    def format(self) -> str:
        lines = [
            f"{'% time':>7s} {'cycles':>12s} {'cyc/call':>10s} "
            f"{'calls':>7s} {'errors':>7s} syscall",
            "-" * 60,
        ]
        for stat in self.sorted_by_cycles():
            share = 100 * stat.cycles / self.total_cycles if self.total_cycles else 0
            lines.append(
                f"{share:6.2f}% {stat.cycles:12.0f} {stat.cycles_per_call:10.1f} "
                f"{stat.calls:7d} {stat.errors:7d} {stat.name}"
            )
        lines.append("-" * 60)
        lines.append(f"{'100.00%':>7s} {self.total_cycles:12.0f} total")
        return "\n".join(lines)


class SyscallProfiler:
    """The interposition function: attach to any tool's ``interposer=``."""

    def __init__(self):
        self.report = ProfileReport()

    def __call__(self, ctx: SyscallContext):
        before = ctx.kernel.clock
        ret = ctx.do_syscall()
        spent = ctx.kernel.clock - before
        stat = self.report.stats.get(ctx.sysno)
        if stat is None:
            stat = SyscallStats(syscall_name(ctx.sysno))
            self.report.stats[ctx.sysno] = stat
        stat.calls += 1
        stat.cycles += spent
        self.report.total_cycles += spent
        if isinstance(ret, int) and is_error(ret):
            stat.errors += 1
        return ret
