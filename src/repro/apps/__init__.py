"""Applications built on the interposition library.

These are downstream consumers of the public API — the kinds of tools the
paper's introduction motivates: multi-variant execution monitors
(reliability/security refs [4–13]), sandboxes, tracers.
"""

from repro.apps.mvee import MveeMonitor, MveeReport
from repro.apps.profiler import ProfileReport, SyscallProfiler
from repro.apps.replay import Recorder, Recording, Replayer, ReplayDivergence

__all__ = [
    "MveeMonitor",
    "MveeReport",
    "SyscallProfiler",
    "ProfileReport",
    "Recorder",
    "Recording",
    "Replayer",
    "ReplayDivergence",
]
