"""A multi-variant execution (MVEE) monitor on top of lazypoline.

The paper's introduction lists MVEEs — systems that run multiple replicas
of a program in lockstep and compare their syscall streams to detect
divergence (memory-error exploits, races, non-determinism) — as a prime
consumer of fast, exhaustive syscall interposition (refs [4–13]).  They
need *exhaustive* interception (a missed syscall in one replica
desynchronises the whole system) and *efficient* interception (every
replica pays the cost on every syscall).

This monitor runs N replicas of one image, each under its own lazypoline
instance, and enforces **lockstep at the syscall layer**: a replica
reaching syscall index ``k`` blocks (cooperatively — the kernel schedules
the other replicas) until everyone has reached ``k``, then the monitor
compares ``(sysno, args)`` across replicas.  A mismatch is a divergence:
the monitor records it and terminates the replicas, like GHUMVEE-style
monitors do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interpose.api import SyscallContext
from repro.interpose.lazypoline import Lazypoline, LazypolineConfig
from repro.kernel.syscalls.table import syscall_name


@dataclass
class Divergence:
    index: int
    entries: dict[int, tuple[int, tuple[int, ...]]]  # variant -> (nr, args)

    def __str__(self) -> str:
        parts = [
            f"variant {variant}: {syscall_name(nr)}{args[:3]}"
            for variant, (nr, args) in sorted(self.entries.items())
        ]
        return f"divergence at syscall #{self.index}: " + " vs ".join(parts)


@dataclass
class MveeReport:
    variants: int
    syscalls_compared: int
    divergence: Divergence | None = None
    exit_codes: list[int | None] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return self.divergence is not None


class MveeMonitor:
    """Run N replicas in syscall lockstep and compare their streams."""

    def __init__(self, machine, image, *, variants: int = 2,
                 lockstep: bool = True, compare_args: bool = True):
        if variants < 2:
            raise ValueError("an MVEE needs at least two variants")
        self.machine = machine
        self.variants = variants
        self.lockstep = lockstep
        self.compare_args = compare_args

        self.processes = []
        self.tools = []
        #: per-variant syscall streams: variant -> list[(nr, args)]
        self.streams: list[list[tuple[int, tuple[int, ...]]]] = []
        self.divergence: Divergence | None = None
        self._aborted = False

        #: per-variant index of an announced-but-not-yet-released syscall
        self._pending: list[int | None] = [None] * variants

        for variant in range(variants):
            process = machine.load(image, register_binary=variant == 0)
            self.processes.append(process)
            self.streams.append([])
            tool = Lazypoline._install(
                machine,
                process,
                self._make_interposer(variant),
                LazypolineConfig(),
            )
            self.tools.append(tool)

    # ------------------------------------------------------------- interposer
    def _make_interposer(self, variant: int):
        def interposer(ctx: SyscallContext):
            if self._aborted:
                return None  # replicas are being torn down
            # Announce this syscall (once — deferred interpositions re-run).
            if self._pending[variant] is None:
                index = len(self.streams[variant])
                self.streams[variant].append((ctx.sysno, ctx.args))
                self._pending[variant] = index
            else:
                index = self._pending[variant]
            # Barrier: park until every live replica announced index k.
            if self.lockstep and not self._everyone_arrived(variant, index):
                ctx.defer(
                    lambda: self._aborted
                    or self._everyone_arrived(variant, index)
                )
                return None
            self._pending[variant] = None
            self._compare(index)
            if self._aborted:
                return None
            return ctx.do_syscall()

        return interposer

    def _everyone_arrived(self, variant: int, index: int) -> bool:
        for other in range(self.variants):
            if other == variant:
                continue
            if len(self.streams[other]) <= index and self.processes[other].alive:
                return False
        return True

    def _compare(self, index: int) -> None:
        if self.divergence is not None:
            return
        entries = {
            variant: stream[index]
            for variant, stream in enumerate(self.streams)
            if len(stream) > index
        }
        if len(entries) < 2:
            return
        projected = {
            variant: (nr, args if self.compare_args else ())
            for variant, (nr, args) in entries.items()
        }
        if len(set(projected.values())) > 1:
            self.divergence = Divergence(index, entries)
            self._abort()

    def _abort(self) -> None:
        self._aborted = True
        for process in self.processes:
            if process.alive:
                self.machine.kernel.terminate_group(process.task, code=0xED)

    # ------------------------------------------------------------------- run
    def run(self, *, max_instructions: int = 50_000_000) -> MveeReport:
        self.machine.run(
            until=lambda: all(not p.alive for p in self.processes)
            or self.divergence is not None,
            max_instructions=max_instructions,
        )
        if self.divergence is not None:
            self._abort()
            self.machine.run(
                until=lambda: all(not p.alive for p in self.processes),
                max_instructions=1_000_000,
                raise_on_deadlock=False,
            )
        compared = min(len(s) for s in self.streams)
        return MveeReport(
            variants=self.variants,
            syscalls_compared=compared,
            divergence=self.divergence,
            exit_codes=[p.exit_code for p in self.processes],
        )
