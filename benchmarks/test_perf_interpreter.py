"""Interpreter performance baseline: guest MIPS per workload.

Measures how fast the interpreter retires *guest* instructions in host
wall-clock terms (MIPS = executed guest instructions / host seconds / 1e6)
on three workloads — the steady-state microbench loop, the tcc-style JIT
workload, and the nginx-style webserver — and writes ``BENCH_interp.json``
at the repo root so every future PR is measured against this baseline
(``benchmarks/check_regression.py`` enforces the tolerance band; see
``make perf``).

The microbench is measured three times in the same run: full tiering
(translation cache + superblocks, the default), tier 1 only (translation
cache, superblocks off) and the uncached reference interpreter.  Two
floors are enforced same-run: tier 1 must be >= 3x uncached (the PR-2
translation-cache claim) and the superblock tier must be >= 5x tier 1
(the tier-2 claim).  Simulated results (cycle counts, traces) are
identical every way; only host wall-clock changes.  These are
host-machine-dependent numbers: regenerate the baseline when moving
hardware.

Run via ``make perf`` or ``pytest benchmarks/test_perf_interpreter.py -m perf``.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.arch.encode import Assembler
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR
from repro.loader.image import image_from_assembler
from repro.mem import layout
from repro.workloads import tcc
from repro.workloads.microbench import build_syscall_loop
from repro.workloads.webserver import SERVERS, ServerWorkload

from benchmarks.conftest import save_report

pytestmark = pytest.mark.perf

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_interp.json"

#: Steady-state loop iterations (5 instructions per iteration).
MICRO_ITERS = 100_000
#: Syscall-loop iterations for the paper's microbenchmark shape.
SYSCALL_ITERS = 20_000
#: Webserver request count (plus warmup).
WEB_REQUESTS = 400
#: tcc is a short program (a few dozen guest insns); amortize over many runs.
TCC_RUNS = 200
#: Wall-clock measurements are best-of-N to shrug off host noise.
REPEATS = 5


def _compute_loop_image(iters: int):
    """A tight ALU loop: the interpreter's steady state, no kernel entries."""
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    a.mov_imm("rbx", iters)
    a.mov_imm("rax", 0)
    a.label("loop")
    a.addi("rax", 3)
    a.xori("rax", 0x55)
    a.inc("rcx")
    a.dec("rbx")
    a.jnz("loop")
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    return image_from_assembler("microbench-steady", a, entry="_start")


def _measure_once(setup) -> dict:
    """``setup()`` -> (count, run); ``count()`` is the retired-insn total."""
    count, run = setup()
    before = count()
    t0 = time.perf_counter()
    run()
    seconds = time.perf_counter() - t0
    instructions = count() - before
    return {
        "instructions": instructions,
        "seconds": round(seconds, 6),
        "mips": round(instructions / seconds / 1e6, 6),
    }


def _measure(setup, repeats: int = REPEATS) -> dict:
    """Best-of-``repeats`` sample (highest MIPS: least host interference)."""
    return max((_measure_once(setup) for _ in range(repeats)),
               key=lambda s: s["mips"])


def _microbench(translation_cache: bool, superblocks: bool = True) -> dict:
    def setup():
        machine = Machine(
            translation_cache=translation_cache, superblocks=superblocks
        )
        proc = machine.load(_compute_loop_image(MICRO_ITERS))
        run = lambda: machine.run_process(proc, max_instructions=20_000_000)
        return (lambda: machine.scheduler.total_instructions), run

    return _measure(setup)


def _microbench_syscall() -> dict:
    def setup():
        machine = Machine()
        proc = machine.load(build_syscall_loop(SYSCALL_ITERS))
        run = lambda: machine.run_process(proc, max_instructions=20_000_000)
        return (lambda: machine.scheduler.total_instructions), run

    return _measure(setup)


def _tcc() -> dict:
    def setup():
        machines = []
        for _ in range(TCC_RUNS):
            machine = Machine()
            tcc.setup_fs(machine)
            machine.load(tcc.build_tcc_image())
            machines.append(machine)

        def run():
            for m in machines:
                m.run()

        count = lambda: sum(m.scheduler.total_instructions for m in machines)
        return count, run

    return _measure(setup)


def _webserver() -> dict:
    def setup():
        machine = Machine()
        workload = ServerWorkload(machine, SERVERS["nginx"], file_size=4096)
        run = lambda: workload.benchmark(requests=WEB_REQUESTS, warmup=10)
        return (lambda: machine.scheduler.total_instructions), run

    return _measure(setup)


def test_perf_interpreter_baseline():
    workloads = {
        "microbench": _microbench(True),
        "microbench_tier1": _microbench(True, superblocks=False),
        "microbench_uncached": _microbench(False),
        "microbench_syscall": _microbench_syscall(),
        "tcc": _tcc(),
        "webserver": _webserver(),
    }
    speedup = (
        workloads["microbench_tier1"]["mips"]
        / workloads["microbench_uncached"]["mips"]
    )
    tier2_speedup = (
        workloads["microbench"]["mips"] / workloads["microbench_tier1"]["mips"]
    )
    result = {
        "schema": 1,
        "metric": "guest MIPS = executed guest instructions / host seconds / 1e6",
        "regression_metric": "mips",
        "lower_is_better": False,
        "workloads": workloads,
        "speedup_microbench_vs_uncached": round(speedup, 3),
        "speedup_superblocks_vs_tier1": round(tier2_speedup, 3),
        "floors": {
            "speedup_microbench_vs_uncached": 3.0,
            "speedup_superblocks_vs_tier1": 5.0,
        },
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    lines = ["interpreter performance (guest MIPS)", ""]
    for name, w in workloads.items():
        lines.append(
            f"{name:22s} {w['mips']:8.3f} MIPS "
            f"({w['instructions']} insns / {w['seconds']:.3f}s)"
        )
    lines.append("")
    lines.append(f"translation-cache speedup on microbench: {speedup:.2f}x")
    lines.append(f"superblock-tier speedup over tier 1:     {tier2_speedup:.2f}x")
    save_report("perf_interpreter", "\n".join(lines))

    # The PR-2 target: >= 3x steady-state MIPS, same-run comparison.
    assert speedup >= 3.0, f"translation cache speedup only {speedup:.2f}x"
    # The tier-2 target: superblocks >= 5x over the tier-1 interpreter.
    assert tier2_speedup >= 5.0, (
        f"superblock tier speedup only {tier2_speedup:.2f}x"
    )
