"""Ablation benchmarks: xstate granularity and MPK selector isolation."""

from repro.bench import ablation

from benchmarks.conftest import save_report


def test_ablation_xstate_and_pkey(benchmark):
    result = benchmark.pedantic(
        ablation.run, kwargs={"iterations": 300}, rounds=1, iterations=1
    )
    save_report("ablation", ablation.format_report(result))

    # Cost grows monotonically with the preserved component set.
    none = result.xstate["none"]
    one = result.xstate["SSE only"]
    two = result.xstate["SSE+AVX"]
    full = result.xstate["x87+SSE+AVX (default)"]
    assert none < one < two < full
    # Per-component scaling: each additional component costs about the same
    # (the xsave model is linear in components).
    step1 = two - one
    step2 = full - two
    assert abs(step1 - step2) <= 0.5 * max(step1, step2)
    # The paper's Fig. 4 point: full preservation dominates lazypoline's
    # own overhead.
    assert full - none > none - result.baseline

    # MPK isolation costs a bounded premium (two PKRU switches, tens of
    # cycles) — far cheaper than falling back to SUD-only interception.
    assert 0 < result.pkey_extra_cycles < 150
    sud_cycles = 20.8 * result.baseline
    assert result.pkey_protected < 0.25 * sud_cycles
