"""Table II: microbenchmark overheads (the paper's headline ratios)."""

from repro.bench import table2
from repro.bench.runner import within_band

from benchmarks.conftest import save_report


def test_table2_microbenchmark(benchmark):
    result = benchmark.pedantic(
        table2.run, kwargs={"iterations": 300, "repeats": 3}, rounds=1,
        iterations=1,
    )
    save_report("table2_micro", table2.format_report(result))

    measured = result.overheads
    # Every row within +-25% of the paper's value.
    for mech, paper in table2.PAPER.items():
        assert within_band(measured[mech], paper), (
            f"{mech}: measured {measured[mech]:.2f}x vs paper {paper}x"
        )
    # Strict ordering the paper's Table II implies.
    assert (
        1.0
        < measured["zpoline"]
        < measured["sud_enabled_allow"] + 0.1
        and measured["zpoline"] < measured["lazypoline_noxstate"]
        < measured["lazypoline"]
        < measured["sud"]
    )
    # Determinism: the simulated deviation is far below the paper's 0.19%.
    assert result.max_rel_deviation < 0.002
