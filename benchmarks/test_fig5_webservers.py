"""Fig. 5: nginx and lighttpd macrobenchmarks under every mechanism."""

import pytest

from repro.bench import fig5

from benchmarks.conftest import save_report

_RESULT = {}


def _get_result():
    if "r" not in _RESULT:
        _RESULT["r"] = fig5.run(requests=200, warmup=20)
    return _RESULT["r"]


def test_fig5_webservers(benchmark):
    result = benchmark.pedantic(_get_result, rounds=1, iterations=1)
    save_report("fig5_webservers", fig5.format_report(result))


@pytest.mark.parametrize("server", ("nginx", "lighttpd"))
def test_fig5_single_worker_claims(benchmark, server):
    result = _get_result()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    smallest = min(fig5.SIZES)
    largest = max(fig5.SIZES)

    for size in fig5.SIZES:
        zp = result.retention(server, size, "zpoline")
        nox = result.retention(server, size, "lazypoline_noxstate")
        full = result.retention(server, size, "lazypoline")
        sud = result.retention(server, size, "sud")

        # Worst case: lazypoline-noxstate keeps ~95% of baseline
        # (paper: 94.72% nginx / 94.81% lighttpd at the worst point).
        assert nox >= 0.93, f"{server}/{size}: noxstate retention {nox:.3f}"
        # ... and is at most ~3.6pp behind zpoline.
        assert zp - nox <= 0.04
        # xstate preservation costs at most ~4.7pp.
        assert nox - full <= 0.05
        # Ordering: baseline > zpoline > lazypoline-nox > lazypoline > SUD.
        assert 1.0 > zp > nox > full > sud

    # SUD roughly halves throughput on the most syscall-intensive config.
    assert result.retention(server, smallest, "sud") < 0.62
    # lazypoline delivers ~ twice SUD's throughput at small sizes.
    assert (
        result.retention(server, smallest, "lazypoline")
        / result.retention(server, smallest, "sud")
        > 1.6
    )
    # From 64 KB on, the zpoline/lazypoline gap practically vanishes.
    assert (
        result.retention(server, largest, "zpoline")
        - result.retention(server, largest, "lazypoline")
        <= 0.025
    )
    # ... but SUD's slowdown remains noticeable even at 256 KB.
    assert result.retention(server, largest, "sud") < 0.9


@pytest.mark.parametrize("server", ("nginx", "lighttpd"))
def test_fig5_multi_worker_claims(benchmark, server):
    result = _get_result()
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for size in fig5.SIZES:
        # With 12 workers the client saturates: the rewriting-based
        # mechanisms all reach the baseline's (capped) throughput.
        for mech in ("zpoline", "lazypoline", "lazypoline_noxstate"):
            assert result.retention(server, size, mech, workers=12) >= 0.99
    # SUD's slowdown remains visible in the multi-worker deployment on the
    # syscall-intensive (small-file) configurations.
    smallest = min(fig5.SIZES)
    assert result.retention(server, smallest, "sud", workers=12) < 0.99
