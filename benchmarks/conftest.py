"""Benchmark-suite helpers: every harness also persists its report."""

from __future__ import annotations

import pathlib

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


def save_report(name: str, text: str) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    (REPORT_DIR / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
