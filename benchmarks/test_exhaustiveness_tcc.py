"""§V-A: exhaustiveness on JIT-generated code (tcc -run)."""

from repro.bench import exhaustiveness

from benchmarks.conftest import save_report


def test_exhaustiveness_tcc(benchmark):
    result = benchmark.pedantic(exhaustiveness.run, rounds=1, iterations=1)
    save_report("exhaustiveness_tcc", exhaustiveness.format_report(result))

    # lazypoline and SUD print the exact same syscalls, in the same order,
    # including the introduced getpid (the paper's exact claim).
    assert result.lazypoline_matches_sud
    assert "getpid" in result.traces["lazypoline"]
    # zpoline's trace does not include the relevant getpid.
    assert result.zpoline_missed_jit
    # lazypoline discovered every site lazily, none up front.
    assert result.rewritten_sites == result.slowpath_hits > 0
