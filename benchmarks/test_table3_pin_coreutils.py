"""Table III: coreutils xstate-preservation expectations."""

from repro.bench import table3

from benchmarks.conftest import save_report


def test_table3_pin_coreutils(benchmark):
    result = benchmark.pedantic(table3.run, rounds=1, iterations=1)
    save_report("table3_pin_coreutils", table3.format_report(result))

    assert result.matches_paper()
    # 40% of the Ubuntu 20.04 coreutils are affected (paper, §V-B a) ...
    ubuntu = result.verdicts["Ubuntu 20.04"]
    assert sum(ubuntu.values()) / len(ubuntu) == 0.4
    # ... all of them by the same pthread-init pattern on xmm0 ...
    for name, affected in ubuntu.items():
        if affected:
            details = result.details["Ubuntu 20.04"][name]
            assert any("xmm0" in d for d in details)
    # ... while on Clear Linux every program hits the ptmalloc_init
    # getrandom pattern.
    clear = result.verdicts["Clear Linux"]
    assert all(clear.values())
    for name in clear:
        details = result.details["Clear Linux"][name]
        assert any("getrandom" in d for d in details)
