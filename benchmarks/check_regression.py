"""Guard against performance regressions in a ``BENCH_*.json`` pair.

Compares two benchmark result files (previous run vs current run) and
fails — exit status 1 — if any workload's metric regressed by more than
the tolerance band (15% by default).

The comparison is schema-driven by the *new* file:

* ``regression_metric`` — the per-workload key to compare (default
  ``"mips"``, the legacy BENCH_interp schema),
* ``lower_is_better`` — direction (default ``false``: higher is better),
* ``floors`` — ``{key: floor}`` absolute same-run floors on top-level
  scalars of the new file (hard limits, not subject to tolerance; the
  legacy BENCH_interp speedup floors apply when the file carries no
  ``floors`` of its own).

Usage::

    python benchmarks/check_regression.py [OLD] [NEW] [--tolerance FRAC]

Defaults: OLD = BENCH_interp.prev.json, NEW = BENCH_interp.json (repo
root).  A missing OLD is not an error — the first measured run simply
becomes the baseline (``make perf`` snapshots NEW to OLD before each run).
``make perf`` runs this once per BENCH pair (interp, uring).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OLD = ROOT / "BENCH_interp.prev.json"
DEFAULT_NEW = ROOT / "BENCH_interp.json"
TOLERANCE = 0.15


#: Legacy same-run floors for result files that predate the embedded
#: ``floors`` dict (BENCH_interp schema 1).  Ratios are host-noise-
#: resistant (both sides measured in the same process), so unlike the
#: tolerance band these are hard floors.
SPEEDUP_FLOORS = {
    "speedup_microbench_vs_uncached": 3.0,
    "speedup_superblocks_vs_tier1": 5.0,
}


def check_floors(new: dict) -> list[str]:
    """Absolute floors on the current run, independent of any baseline."""
    failures = []
    floors = new.get("floors") or SPEEDUP_FLOORS
    for key, floor in floors.items():
        value = new.get(key)
        if value is None:
            continue  # older-schema result file
        marker = "BELOW FLOOR" if value < floor else "ok"
        print(f"{key:42s} {value:8.2f} (floor {floor:.1f})  {marker}")
        if value < floor:
            failures.append(f"{key}: {value:.2f} below the {floor:.1f} floor")
    return failures


def compare(old: dict, new: dict, tolerance: float) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    failures = []
    metric = new.get("regression_metric", "mips")
    lower_is_better = bool(new.get("lower_is_better", False))
    old_workloads = old.get("workloads", {})
    new_workloads = new.get("workloads", {})
    for name, prev in sorted(old_workloads.items()):
        cur = new_workloads.get(name)
        if cur is None:
            failures.append(f"{name}: workload disappeared from the new run")
            continue
        prev_val, cur_val = prev[metric], cur[metric]
        if prev_val <= 0:
            continue
        change = (cur_val - prev_val) / prev_val
        # `change` is signed so that negative == worse.
        if lower_is_better:
            change = -change
        marker = "REGRESSION" if change < -tolerance else "ok"
        print(
            f"{name:22s} {prev_val:10.3f} -> {cur_val:10.3f} {metric} "
            f"({change:+.1%})  {marker}"
        )
        if change < -tolerance:
            failures.append(
                f"{name}: {prev_val:.3f} -> {cur_val:.3f} {metric} "
                f"({change:+.1%}, tolerance -{tolerance:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", nargs="?", default=str(DEFAULT_OLD))
    parser.add_argument("new", nargs="?", default=str(DEFAULT_NEW))
    parser.add_argument("--tolerance", type=float, default=TOLERANCE)
    args = parser.parse_args(argv)

    old_path = pathlib.Path(args.old)
    new_path = pathlib.Path(args.new)
    if not new_path.exists():
        print(f"no current run at {new_path}; run `make perf` first")
        return 1
    new = json.loads(new_path.read_text())
    print(f"== {new_path.name} ==")
    failures = check_floors(new)
    if not old_path.exists():
        print(f"no previous run at {old_path}; current run becomes the baseline")
    else:
        old = json.loads(old_path.read_text())
        failures += compare(old, new, args.tolerance)
    if failures:
        print("\nperformance failures:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall floors cleared, no regression beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
