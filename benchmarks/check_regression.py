"""Guard against interpreter performance regressions.

Compares two ``BENCH_interp.json`` files (previous run vs current run) and
fails — exit status 1 — if any workload's guest-MIPS number regressed by
more than the tolerance band (15% by default, generous because these are
wall-clock numbers on shared hardware).

Usage::

    python benchmarks/check_regression.py [OLD] [NEW] [--tolerance FRAC]

Defaults: OLD = BENCH_interp.prev.json, NEW = BENCH_interp.json (repo
root).  A missing OLD is not an error — the first measured run simply
becomes the baseline (``make perf`` snapshots NEW to OLD before each run).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_OLD = ROOT / "BENCH_interp.prev.json"
DEFAULT_NEW = ROOT / "BENCH_interp.json"
TOLERANCE = 0.15


#: Same-run speedup ratios recorded in BENCH_interp.json and the floor each
#: must clear.  Ratios are host-noise-resistant (both sides measured in the
#: same process), so unlike the MIPS band these are hard floors.
SPEEDUP_FLOORS = {
    "speedup_microbench_vs_uncached": 3.0,
    "speedup_superblocks_vs_tier1": 5.0,
}


def check_floors(new: dict) -> list[str]:
    """Absolute floors on the current run, independent of any baseline."""
    failures = []
    for key, floor in SPEEDUP_FLOORS.items():
        value = new.get(key)
        if value is None:
            continue  # older-schema result file
        marker = "BELOW FLOOR" if value < floor else "ok"
        print(f"{key:34s} {value:6.2f}x (floor {floor:.1f}x)  {marker}")
        if value < floor:
            failures.append(f"{key}: {value:.2f}x below the {floor:.1f}x floor")
    return failures


def compare(old: dict, new: dict, tolerance: float) -> list[str]:
    """Return a list of human-readable regression messages (empty = pass)."""
    failures = []
    old_workloads = old.get("workloads", {})
    new_workloads = new.get("workloads", {})
    for name, prev in sorted(old_workloads.items()):
        cur = new_workloads.get(name)
        if cur is None:
            failures.append(f"{name}: workload disappeared from the new run")
            continue
        prev_mips, cur_mips = prev["mips"], cur["mips"]
        if prev_mips <= 0:
            continue
        change = (cur_mips - prev_mips) / prev_mips
        marker = "REGRESSION" if change < -tolerance else "ok"
        print(
            f"{name:22s} {prev_mips:8.3f} -> {cur_mips:8.3f} MIPS "
            f"({change:+.1%})  {marker}"
        )
        if change < -tolerance:
            failures.append(
                f"{name}: {prev_mips:.3f} -> {cur_mips:.3f} MIPS "
                f"({change:+.1%}, tolerance -{tolerance:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", nargs="?", default=str(DEFAULT_OLD))
    parser.add_argument("new", nargs="?", default=str(DEFAULT_NEW))
    parser.add_argument("--tolerance", type=float, default=TOLERANCE)
    args = parser.parse_args(argv)

    old_path = pathlib.Path(args.old)
    new_path = pathlib.Path(args.new)
    if not new_path.exists():
        print(f"no current run at {new_path}; run `make perf` first")
        return 1
    new = json.loads(new_path.read_text())
    failures = check_floors(new)
    if not old_path.exists():
        print(f"no previous run at {old_path}; current run becomes the baseline")
    else:
        old = json.loads(old_path.read_text())
        failures += compare(old, new, args.tolerance)
    if failures:
        print("\nperformance failures:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall floors cleared, no regression beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
