"""Fig. 4: lazypoline's overhead breakdown into additive components."""

from repro.bench import fig4

from benchmarks.conftest import save_report


def test_fig4_overhead_breakdown(benchmark):
    result = benchmark.pedantic(
        fig4.run, kwargs={"iterations": 300}, rounds=1, iterations=1
    )
    save_report("fig4_breakdown", fig4.format_report(result))

    components = result.components
    for name, paper in fig4.PAPER_COMPONENTS.items():
        measured = components[name]
        assert abs(measured - paper) <= 0.25 * paper + 0.05, (
            f"{name}: {measured:+.2f}x vs paper {paper:+.2f}x"
        )
    # "Without the SUD overhead, lazypoline's fast path matches zpoline."
    assert abs(result.fastpath_only / result.zpoline - 1) < 0.05
    # The xstate component dominates lazypoline's own overhead (the paper's
    # "this preservation is responsible for the majority of lazypoline's
    # overhead over baseline" reading of Fig. 4).
    assert components["xstate preservation"] > components["enabling SUD"]
    assert (
        components["xstate preservation"]
        > components["fast path (zpoline-equivalent)"]
    )
