"""Syscall-aggregation trajectory: interposition overhead vs batch size.

Measures cycles-per-syscall and crossings-per-syscall for the tool x
batch matrix {none, lazypoline, zpoline, ptrace} x {1, 4, 16, 64} on the
steady-state ring loop (``repro.workloads.ringbench``) and writes
``BENCH_uring.json`` at the repo root.

Unlike ``BENCH_interp.json`` (host wall-clock MIPS), every number here is
*simulated* cycles — fully deterministic — so the regression tolerance
catches any cost-model or drain-path change, not host noise.  The
headline claim is asserted same-run: lazypoline's interposition overhead
per syscall (its cycles-per-syscall minus bare's at the same batch size)
must drop by >= 3x at batch >= 16 relative to batch 1, the batched
webserver must not serve fewer requests per second than the unbatched
one under lazypoline, and the asynchronous-drain event-loop webserver
must not serve fewer than the synchronous batched one.

Run via ``make perf`` or ``pytest benchmarks/test_perf_uring.py -m perf``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.workloads.ringbench import RING_BATCHES, RING_TOOLS, ring_trajectory
from repro.workloads.webserver import SERVERS, run_scaled

from benchmarks.conftest import save_report

pytestmark = pytest.mark.perf

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_uring.json"

#: ring_enter crossings per measured run (differenced against 2x).
ENTERS = 64

#: Same-run floors, also embedded in the JSON for check_regression.py.
FLOORS = {
    "overhead_reduction_lazypoline_b16": 3.0,
    "overhead_reduction_lazypoline_b64": 3.0,
    "overhead_reduction_zpoline_b16": 3.0,
    "overhead_reduction_ptrace_b16": 3.0,
    "webserver_batched_rps_ratio_lazypoline": 1.0,
    "webserver_async_rps_ratio_lazypoline": 1.0,
}


def _reductions(rows: dict) -> dict:
    """overhead(batch 1) / overhead(batch B) per tool — the amortization."""
    out = {}
    for tool in RING_TOOLS:
        if tool is None:
            continue
        base = rows[f"{tool}_b1"]["overhead_per_syscall"]
        for batch in RING_BATCHES[1:]:
            amortized = rows[f"{tool}_b{batch}"]["overhead_per_syscall"]
            if amortized > 0:
                out[f"overhead_reduction_{tool}_b{batch}"] = round(
                    base / amortized, 3
                )
    return out


_WEB_LEGS = {False: "direct", True: "batched", "async": "async"}


def _webserver_ratio() -> dict:
    """Batched/async vs direct webserver rps under lazypoline (and bare).

    The ``async`` leg is the event-loop worker overlapping 4 in-flight
    requests through the asynchronous ring drain; its floor says
    overlapping must never serve fewer requests than the synchronous
    batched drain under lazypoline.
    """
    out = {}
    for tool in (None, "lazypoline"):
        rps = {}
        for batched, leg in _WEB_LEGS.items():
            row = run_scaled(
                SERVERS["nginx"], cores=1, tool=tool, batched=batched,
                requests=120, warmup=20, file_size=4096,
            )
            rps[leg] = round(row["requests_per_sec"], 3)
        key = tool or "none"
        out[f"webserver_rps_{key}_direct"] = rps["direct"]
        out[f"webserver_rps_{key}_batched"] = rps["batched"]
        out[f"webserver_rps_{key}_async"] = rps["async"]
        out[f"webserver_batched_rps_ratio_{key}"] = round(
            rps["batched"] / rps["direct"], 4
        )
        out[f"webserver_async_rps_ratio_{key}"] = round(
            rps["async"] / rps["batched"], 4
        )
    return out


def test_perf_uring_trajectory():
    rows = ring_trajectory(enters=ENTERS)
    reductions = _reductions(rows)
    web = _webserver_ratio()

    result = {
        "schema": 1,
        "metric": ("simulated cycles per syscall on the steady-state ring "
                   "loop (deterministic; lower is better)"),
        "regression_metric": "cycles_per_syscall",
        "lower_is_better": True,
        "workloads": rows,
        **reductions,
        **web,
        "floors": FLOORS,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    lines = ["syscall aggregation (simulated cycles per syscall)", ""]
    lines.append(f"{'tool x batch':18s} {'cyc/sys':>10s} {'cross/sys':>10s} "
                 f"{'overhead':>10s}")
    for key, row in rows.items():
        lines.append(
            f"{key:18s} {row['cycles_per_syscall']:10.2f} "
            f"{row['crossings_per_syscall']:10.4f} "
            f"{row['overhead_per_syscall']:10.2f}"
        )
    lines.append("")
    for key, value in sorted(reductions.items()):
        lines.append(f"{key:40s} {value:8.2f}x")
    lines.append("")
    for key, value in sorted(web.items()):
        lines.append(f"{key:40s} {value:10.3f}")
    save_report("perf_uring", "\n".join(lines))

    # Crossings amortize exactly: one ring_enter per B syscalls.
    for tool in ("none", "lazypoline", "zpoline", "ptrace"):
        for batch in RING_BATCHES:
            assert rows[f"{tool}_b{batch}"]["crossings_per_syscall"] == \
                pytest.approx(1 / batch)

    # The headline: lazypoline overhead per syscall >= 3x lower at batch 16.
    for key, floor in FLOORS.items():
        value = result.get(key)
        assert value is not None, f"{key} missing from the run"
        assert value >= floor, f"{key} = {value} below the {floor}x floor"
