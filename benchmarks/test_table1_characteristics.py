"""Table I: the characteristics matrix, reproduced by probing."""

from repro.bench import table1

from benchmarks.conftest import save_report


def test_table1_characteristics(benchmark):
    result = benchmark.pedantic(
        table1.run, kwargs={"iterations": 200}, rounds=1, iterations=1
    )
    save_report("table1_characteristics", table1.format_report(result))

    assert result.matches_paper(), "probed matrix diverges from Table I"
    # The paper's punchline: only lazypoline combines all three.
    full_exhaustive_high = [
        m
        for m in table1.MECHANISMS
        if result.expressiveness[m] == "Full"
        and result.exhaustiveness[m]
        and result.efficiency[m] == "High"
    ]
    assert full_exhaustive_high == ["lazypoline"]
