"""Fleet-scale serving trajectory: cluster rps/latency vs shard count.

Runs the shards x tool x batched matrix {1, 2, 4} x {none, lazypoline} x
{direct, batched} through :class:`repro.cluster.Cluster` (round-robin
balancing, one host process per shard) and writes ``BENCH_cluster.json``
at the repo root: aggregate requests/sec and p50/p95/p99 latency per
cell, plus per-shard guest-MIPS.

Every number is *simulated* (cycles, simulated seconds) — fully
deterministic — so ``check_regression.py`` catches any cost-model,
balancer or aggregation change exactly, host noise excluded.  The
headline claims are asserted same-run:

* sharding scales: >= 3x aggregate rps at 4 shards bare (and under
  lazypoline) vs 1 shard,
* PR 7's batching survives the cluster layer: the batched leg serves at
  least as many rps as the direct leg under lazypoline at 4 shards.

Run via ``make perf`` or ``pytest benchmarks/test_perf_cluster.py -m perf``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cluster import Cluster

from benchmarks.conftest import save_report

pytestmark = [pytest.mark.perf, pytest.mark.cluster]

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_cluster.json"

SHARDS = (1, 2, 4)
TOOLS = (None, "lazypoline")
#: cluster-wide request total and per-shard warmup, sized so the 4-shard
#: cells still give every shard a steady measurement window
REQUESTS = 96
WARMUP = 12

#: Same-run floors, also embedded in the JSON for check_regression.py.
FLOORS = {
    "scaling_rps_4shards_none_b0": 3.0,
    "scaling_rps_4shards_lazypoline_b0": 3.0,
    "batched_rps_ratio_lazypoline_4shards": 1.0,
}


def _cell(shards: int, tool: str | None, batched: bool) -> dict:
    report = Cluster(shards=shards, tool=tool, batched=batched).serve(
        requests=REQUESTS, warmup=WARMUP
    )
    return {
        "shards": shards,
        "tool": tool or "none",
        "batched": int(batched),
        "requests_per_sec": round(report["requests_per_sec"], 3),
        "latency_p50_cycles": report["latency_p50_cycles"],
        "latency_p95_cycles": report["latency_p95_cycles"],
        "latency_p99_cycles": report["latency_p99_cycles"],
        "measured_seconds": report["measured_seconds"],
        "guest_mips_per_shard": [
            round(m, 3) for m in report["guest_mips_per_shard"]
        ],
        "ring_enters": report["obs"]["ring_enters"],
    }


def test_perf_cluster_scaling():
    rows = {}
    for shards in SHARDS:
        for tool in TOOLS:
            for batched in (False, True):
                key = f"s{shards}_{tool or 'none'}_b{int(batched)}"
                rows[key] = _cell(shards, tool, batched)

    scaling = {}
    for tool in TOOLS:
        name = tool or "none"
        for batched in (0, 1):
            base = rows[f"s1_{name}_b{batched}"]["requests_per_sec"]
            scaling[f"scaling_rps_4shards_{name}_b{batched}"] = round(
                rows[f"s4_{name}_b{batched}"]["requests_per_sec"] / base, 3
            )
    scaling["batched_rps_ratio_lazypoline_4shards"] = round(
        rows["s4_lazypoline_b1"]["requests_per_sec"]
        / rows["s4_lazypoline_b0"]["requests_per_sec"],
        4,
    )

    result = {
        "schema": 1,
        "metric": ("aggregate cluster requests/sec, simulated "
                   "(deterministic; higher is better)"),
        "regression_metric": "requests_per_sec",
        "lower_is_better": False,
        "workloads": rows,
        **scaling,
        "floors": FLOORS,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    lines = ["fleet-scale serving (simulated aggregate rps / p99 cycles)",
             ""]
    lines.append(f"{'cell':24s} {'rps':>12s} {'p99 cyc':>10s} "
                 f"{'ring_enters':>12s}")
    for key, row in rows.items():
        lines.append(
            f"{key:24s} {row['requests_per_sec']:12.1f} "
            f"{row['latency_p99_cycles']:10.0f} {row['ring_enters']:12d}"
        )
    lines.append("")
    for key, value in sorted(scaling.items()):
        lines.append(f"{key:44s} {value:8.2f}x")
    save_report("perf_cluster", "\n".join(lines))

    # Sharding must actually shard: every 4-shard cell beats its 1-shard
    # cell, and the headline floors hold in the same run that wrote them.
    for key, floor in FLOORS.items():
        value = result.get(key)
        assert value is not None, f"{key} missing from the run"
        assert value >= floor, f"{key} = {value} below the {floor}x floor"

    # The batched legs really went through the ring.
    for key, row in rows.items():
        assert (row["ring_enters"] > 0) == bool(row["batched"]), key
