"""Fleet-scale serving trajectory: cluster rps/latency vs shard count.

Runs the shards x tool x batched matrix {1, 2, 4} x {none, lazypoline} x
{direct, batched, async} through :class:`repro.cluster.Cluster`
(round-robin balancing, one host process per shard) and writes
``BENCH_cluster.json`` at the repo root: aggregate requests/sec and
p50/p95/p99 latency per cell, plus per-shard guest-MIPS.  Three extra
``sessions_*`` cells run the session-coupled async leg once per
balancing policy (2 shards, lazypoline, slow clients) so the sticky-vs-
sprayed divergence is part of the tracked trajectory, and two
``chaos_*`` cells run the 4-shard fleet under a seeded shard crash and
a hung async shard (PR 10) so availability under failure is tracked —
and floored at 99% — alongside throughput.

Every number is *simulated* (cycles, simulated seconds) — fully
deterministic — so ``check_regression.py`` catches any cost-model,
balancer or aggregation change exactly, host noise excluded.  The
headline claims are asserted same-run:

* sharding scales: >= 3x aggregate rps at 4 shards bare (and under
  lazypoline) vs 1 shard,
* PR 7's batching survives the cluster layer: the batched leg serves at
  least as many rps as the direct leg under lazypoline at 4 shards,
* PR 9's asynchronous drain survives it too: the async leg serves at
  least as many rps as the synchronous batched leg at 4 shards, and
  sticky session routing's p95 is never worse than round_robin's.

Run via ``make perf`` or ``pytest benchmarks/test_perf_cluster.py -m perf``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cluster import ChaosPlan, Cluster, ShardFault

from benchmarks.conftest import save_report

pytestmark = [pytest.mark.perf, pytest.mark.cluster]

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_PATH = ROOT / "BENCH_cluster.json"

SHARDS = (1, 2, 4)
TOOLS = (None, "lazypoline")
#: cluster-wide request total and per-shard warmup, sized so the 4-shard
#: cells still give every shard a steady measurement window
REQUESTS = 96
WARMUP = 12

#: batched=... legs per cell; "async" is the event-loop worker on the
#: asynchronous ring drain (PR 9)
LEGS = (False, True, "async")

#: session model for the policy-divergence cells: few hot sessions and an
#: expensive state fetch, so spraying them hurts and stickiness shows
SESSIONS = 6
SESSION_MISS_CYCLES = 80_000
#: client think time long enough that steady-state reads park (the async
#: leg's overlap window; see tests/test_uring_async.py)
SESSION_CLIENT_CYCLES = 120_000

#: Same-run floors, also embedded in the JSON for check_regression.py.
#: The availability floors are the PR 10 fault-tolerance contract: a
#: seeded 1-of-4 shard crash (and a hung async shard) must still serve
#: >= 99% of the requests through health-checked failover and retry.
FLOORS = {
    "scaling_rps_4shards_none_b0": 3.0,
    "scaling_rps_4shards_lazypoline_b0": 3.0,
    "batched_rps_ratio_lazypoline_4shards": 1.0,
    "async_rps_ratio_lazypoline_4shards": 1.0,
    "session_sticky_p95_ratio": 1.0,
    "session_sticky_rps_ratio": 1.0,
    "availability_crash_1of4": 0.99,
    "availability_hang_async": 0.99,
}


def _leg_tag(batched) -> str:
    return "async" if batched == "async" else f"{int(batched)}"


def _summarize(report: dict, shards: int, tool: str | None, batched) -> dict:
    row = {
        "shards": shards,
        "tool": tool or "none",
        "batched": "async" if batched == "async" else int(batched),
        "requests_per_sec": round(report["requests_per_sec"], 3),
        "latency_p50_cycles": report["latency_p50_cycles"],
        "latency_p95_cycles": report["latency_p95_cycles"],
        "latency_p99_cycles": report["latency_p99_cycles"],
        "measured_seconds": report["measured_seconds"],
        "guest_mips_per_shard": [
            round(m, 3) for m in report["guest_mips_per_shard"]
        ],
        "ring_enters": report["obs"]["ring_enters"],
        "ring_parks": report["obs"]["ring_parks"],
    }
    if "session_stats" in report:
        row["policy"] = report["policy"]
        row["session_stats"] = report["session_stats"]
    return row


def _cell(shards: int, tool: str | None, batched) -> dict:
    report = Cluster(shards=shards, tool=tool, batched=batched).serve(
        requests=REQUESTS, warmup=WARMUP
    )
    return _summarize(report, shards, tool, batched)


def _session_cell(policy: str) -> dict:
    report = Cluster(
        shards=2, tool="lazypoline", batched="async", policy=policy,
        sessions=SESSIONS, session_miss_cycles=SESSION_MISS_CYCLES,
    ).serve(
        requests=48, warmup=6, connections=4,
        client_cycles_per_request=SESSION_CLIENT_CYCLES,
    )
    return _summarize(report, 2, "lazypoline", "async")


def _chaos_cell(batched, plan: ChaosPlan) -> dict:
    """One fault-injected cell: the 4-shard fleet under a chaos plan."""
    report = Cluster(shards=4, batched=batched, chaos=plan).serve(
        requests=REQUESTS, warmup=WARMUP
    )
    row = _summarize(report, 4, None, batched)
    av = report["availability"]
    row["availability"] = {
        key: av[key] for key in
        ("completed", "failed", "success_rate", "rounds", "retries",
         "failovers", "timeouts", "ring_timeouts", "shards_down",
         "latency_p99_cycles_incl_failures")
    }
    return row


def test_perf_cluster_scaling():
    rows = {}
    for shards in SHARDS:
        for tool in TOOLS:
            for batched in LEGS:
                key = f"s{shards}_{tool or 'none'}_b{_leg_tag(batched)}"
                rows[key] = _cell(shards, tool, batched)
    for policy in ("round_robin", "least_conn", "consistent_hash"):
        rows[f"sessions_{policy}"] = _session_cell(policy)
    rows["chaos_crash_1of4"] = _chaos_cell(False, ChaosPlan([
        ShardFault(shard=2, kind="crash", at_request=8),
    ]))
    rows["chaos_hang_async"] = _chaos_cell("async", ChaosPlan([
        ShardFault(shard=1, kind="hang", at_request=4,
                   deadline_cycles=3_000_000),
    ]))

    scaling = {}
    for tool in TOOLS:
        name = tool or "none"
        for batched in (0, 1):
            base = rows[f"s1_{name}_b{batched}"]["requests_per_sec"]
            scaling[f"scaling_rps_4shards_{name}_b{batched}"] = round(
                rows[f"s4_{name}_b{batched}"]["requests_per_sec"] / base, 3
            )
    scaling["batched_rps_ratio_lazypoline_4shards"] = round(
        rows["s4_lazypoline_b1"]["requests_per_sec"]
        / rows["s4_lazypoline_b0"]["requests_per_sec"],
        4,
    )
    # overlapping must never serve fewer rps than the synchronous drain
    scaling["async_rps_ratio_lazypoline_4shards"] = round(
        rows["s4_lazypoline_basync"]["requests_per_sec"]
        / rows["s4_lazypoline_b1"]["requests_per_sec"],
        4,
    )
    # sticky routing dodges the migration surcharge: round_robin must not
    # beat consistent_hash on tail latency or throughput under sessions
    scaling["session_sticky_p95_ratio"] = round(
        rows["sessions_round_robin"]["latency_p95_cycles"]
        / rows["sessions_consistent_hash"]["latency_p95_cycles"],
        4,
    )
    scaling["session_sticky_rps_ratio"] = round(
        rows["sessions_consistent_hash"]["requests_per_sec"]
        / rows["sessions_round_robin"]["requests_per_sec"],
        4,
    )
    # fault tolerance: success rate under a 1-of-4 crash / a hung shard
    scaling["availability_crash_1of4"] = \
        rows["chaos_crash_1of4"]["availability"]["success_rate"]
    scaling["availability_hang_async"] = \
        rows["chaos_hang_async"]["availability"]["success_rate"]

    result = {
        "schema": 1,
        "metric": ("aggregate cluster requests/sec, simulated "
                   "(deterministic; higher is better)"),
        "regression_metric": "requests_per_sec",
        "lower_is_better": False,
        "workloads": rows,
        **scaling,
        "floors": FLOORS,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    lines = ["fleet-scale serving (simulated aggregate rps / p99 cycles)",
             ""]
    lines.append(f"{'cell':24s} {'rps':>12s} {'p99 cyc':>10s} "
                 f"{'ring_enters':>12s}")
    for key, row in rows.items():
        lines.append(
            f"{key:24s} {row['requests_per_sec']:12.1f} "
            f"{row['latency_p99_cycles']:10.0f} {row['ring_enters']:12d}"
        )
    lines.append("")
    for key, value in sorted(scaling.items()):
        lines.append(f"{key:44s} {value:8.2f}x")
    save_report("perf_cluster", "\n".join(lines))

    # Sharding must actually shard: every 4-shard cell beats its 1-shard
    # cell, and the headline floors hold in the same run that wrote them.
    for key, floor in FLOORS.items():
        value = result.get(key)
        assert value is not None, f"{key} missing from the run"
        assert value >= floor, f"{key} = {value} below the {floor}x floor"

    # The batched legs really went through the ring, and the session
    # cells' slow clients really forced the async drain to park.
    for key, row in rows.items():
        assert (row["ring_enters"] > 0) == bool(row["batched"]), key
        if not key.startswith("sessions_"):
            continue
        assert row["ring_parks"] > 0, key
    assert rows["sessions_consistent_hash"]["session_stats"][
        "migrations"] == 0
    assert rows["sessions_round_robin"]["session_stats"]["migrations"] > 0

    # The chaos cells really failed over (the victim went down, requests
    # moved) and the hung async shard really cancelled parked entries.
    crash = rows["chaos_crash_1of4"]["availability"]
    assert crash["shards_down"] == [2] and crash["failovers"] > 0
    hang = rows["chaos_hang_async"]["availability"]
    assert hang["shards_down"] == [1] and hang["ring_timeouts"] > 0
