#!/usr/bin/env python3
"""Syscall aggregation on the request path: the batched webserver.

The nginx-like server normally makes 5-6 syscalls per request (accept,
open, fstat, read/sendfile, write, close) — under interposition each one
pays the full crossing cost.  With ``batched=True`` the worker instead
writes its per-request file I/O into a submission ring and drains it with
a single ``ring_enter``, so an interposition tool sees ONE crossing per
request while the kernel obs stream still attributes every entry.

Prints requests/sec direct vs batched, bare vs lazypoline, plus the ring
statistics from the observability layer.

Run:  python examples/batched_webserver.py
"""

from repro.obs.tracer import Tracer
from repro.workloads.runner import run_workload

REQUESTS = 150
WARMUP = 15


def measure(tool, batched):
    return run_workload(
        "webserver",
        server="nginx",
        tool=tool,
        requests=REQUESTS,
        warmup=WARMUP,
        file_size=4096,
        batched=batched,
    )


def ring_stats():
    """One traced batched run: crossings vs per-entry visibility."""
    tracer = Tracer(max_events=0)
    run_workload(
        "webserver",
        server="nginx",
        tool="lazypoline",
        batched=True,
        tracer=tracer,
        requests=REQUESTS,
        warmup=WARMUP,
        file_size=4096,
    )
    return tracer.ring_enters, tracer.ring_entries


def main() -> None:
    print(f"{'variant':>10s} {'bare':>14s} {'lazypoline':>14s} {'kept':>7s}")
    ratios = {}
    for batched in (False, True):
        name = "batched" if batched else "direct"
        bare = measure(None, batched)["requests_per_sec"]
        lazy = measure("lazypoline", batched)["requests_per_sec"]
        ratios[name] = lazy / bare
        print(
            f"{name:>10s} {bare / 1000:11.1f}k/s {lazy / 1000:11.1f}k/s"
            f" {100 * lazy / bare:6.1f}%"
        )

    enters, entries = ring_stats()
    print(
        f"\nring stats (lazypoline, batched): {enters} ring_enter crossings"
        f" drained {entries} entries"
        f" ({entries / max(enters, 1):.1f} syscalls per crossing)"
    )
    assert ratios["batched"] >= ratios["direct"], (
        "batching should shrink the interposition penalty"
    )
    print(
        "aggregation amortizes the crossing: the tool intercepts one\n"
        "ring_enter per request instead of every file-I/O syscall."
    )


if __name__ == "__main__":
    main()
