#!/usr/bin/env python3
"""``strace -c`` for the simulated web server.

Attaches the syscall profiler (an ordinary interposition function) to the
nginx-like server via lazypoline and serves a burst of requests — the
resulting kernel-cycle breakdown shows exactly why Fig. 5's interposition
overheads shrink with file size: big files shift time into data-moving
syscalls whose service cost dwarfs the per-interposition constant.

Run:  python examples/profile_server.py
"""

from repro import Machine
from repro.apps.profiler import SyscallProfiler
from repro.interpose import attach
from repro.workloads.webserver import NGINX, ServerWorkload
from repro.workloads.wrk import WrkClient


def profile(file_size: int, requests: int = 100) -> None:
    machine = Machine()
    workload = ServerWorkload(machine, NGINX, file_size=file_size)
    profiler = SyscallProfiler()
    attach(machine, workload.process, "lazypoline", interposer=profiler)
    workload.run_until_listening()
    client = WrkClient(
        machine.kernel, 8080, connections=4, response_size=file_size
    )
    client.start()
    machine.run(
        until=lambda: client.stats.completed >= requests,
        max_instructions=500_000_000,
    )
    client.stop()
    print(f"\n=== nginx serving {file_size // 1024} KiB x {requests} requests ===")
    print(profiler.report.format())


def main() -> None:
    profile(1024)
    profile(262144)
    print(
        "\nnote how read/write/sendfile cycles dominate at 256 KiB: the"
        "\nfixed interposition cost per syscall becomes noise — Fig. 5's"
        "\nconvergence, explained by accounting."
    )


if __name__ == "__main__":
    main()
