#!/usr/bin/env python3
"""Record/replay debugging on top of lazypoline.

Records a program whose behaviour depends on entropy, then replays it: the
replayed run receives the *recorded* entropy (and every other syscall
result) from the log instead of the kernel, reproducing the original
execution exactly — while world-changing syscalls are suppressed.

Run:  python examples/record_replay.py
"""

from repro import Machine
from repro.apps.replay import Recorder, Replayer
from repro.arch import assemble_text
from repro.interpose import attach
from repro.loader import image_from_assembler

PROGRAM = """
_start:
    mov rax, 9              ; mmap(0, 4096, RW, ANON|PRIVATE)
    mov rdi, 0
    mov rsi, 4096
    mov rdx, 3
    mov r10, 0x22
    mov r8, -1
    mov r9, 0
    syscall
    mov r12, rax
    mov rax, 318            ; getrandom(buf, 8, 0)
    mov rdi, r12
    mov rsi, 8
    mov rdx, 0
    syscall
    mov rax, 83             ; mkdir("/coinflip", 0755) — a world effect
    mov rdi, dirname
    mov rsi, 493
    syscall
    mov rax, 231            ; exit_group(entropy & 0x7f)
    mov rdi, [r12]
    and rdi, 0x7f
    syscall
dirname:
    .asciz "/coinflip"
"""


def build():
    asm = assemble_text(PROGRAM, base=0x400000)
    return image_from_assembler("coinflip", asm, entry="_start")


def main() -> None:
    # --- record -----------------------------------------------------------
    machine = Machine()
    process = machine.load(build())
    recorder = Recorder()
    attach(machine, process, "lazypoline", interposer=recorder)
    original_exit = machine.run_process(process)
    print(f"recorded run: exit code {original_exit} "
          f"({len(recorder.recording)} syscalls captured)")
    print(f"  world effect happened: /coinflip exists = "
          f"{machine.fs.exists('/coinflip')}")

    # --- a fresh native run behaves differently (new entropy) -------------
    machine = Machine()
    process = machine.load(build())
    fresh_exit = machine.run_process(process)
    print(f"\nfresh native run: exit code {fresh_exit} "
          f"({'differs' if fresh_exit != original_exit else 'coincides'})")

    # --- replay reproduces the recorded run exactly ------------------------
    machine = Machine()
    process = machine.load(build())
    replayer = Replayer(recorder.recording)
    attach(machine, process, "lazypoline", interposer=replayer)
    replay_exit = machine.run_process(process)
    print(f"\nreplayed run: exit code {replay_exit} "
          f"({replayer.replayed} syscalls served from the log, "
          f"{replayer.executed} executed)")
    print(f"  world effect suppressed: /coinflip exists = "
          f"{machine.fs.exists('/coinflip')}")
    assert replay_exit == original_exit
    assert not machine.fs.exists("/coinflip")
    print("\ndeterministic re-execution from a syscall log — the debugging")
    print("use case that needs every single syscall intercepted.")


if __name__ == "__main__":
    main()
