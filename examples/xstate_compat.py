#!/usr/bin/env python3
"""Should *you* pay for xstate preservation?  (Table III as a user tool.)

The paper ships its Pin tool so lazypoline users can check whether their
workload actually expects SSE/AVX/x87 registers to survive syscalls — and
drop the xsave/xrstor cost if not.  This example runs that analysis on the
modelled coreutils under both libc builds and prints the verdicts with
their root causes.

Run:  python examples/xstate_compat.py
"""

from repro import Machine
from repro.analysis.pin import RegisterPreservationTool
from repro.libc.variants import GLIBC_231_UBUNTU, GLIBC_239_CLEARLINUX
from repro.workloads.coreutils import COREUTIL_NAMES, build_coreutil, setup_fs


def analyze(name: str, variant):
    machine = Machine()
    setup_fs(machine)
    tool = RegisterPreservationTool()
    machine.kernel.cpu.add_hook(tool)
    process = machine.load(build_coreutil(name, variant))
    machine.run(until=lambda: not process.alive, max_instructions=2_000_000)
    return tool


def main() -> None:
    for variant in (GLIBC_231_UBUNTU, GLIBC_239_CLEARLINUX):
        print(f"\n=== {variant.distro} (glibc {variant.glibc_version}, "
              f"{variant.march}) ===")
        affected = 0
        for name in COREUTIL_NAMES:
            tool = analyze(name, variant)
            if tool.expects_xstate_preservation():
                affected += 1
                causes = sorted(
                    {f"{f.register} across {f.syscall}" for f in tool.xstate_findings}
                )
                print(f"  {name:6s} NEEDS xstate: {'; '.join(causes)}")
            else:
                print(f"  {name:6s} safe with GPR-only preservation")
        print(f"  -> {affected}/{len(COREUTIL_NAMES)} affected")
    print(
        "\nverdict: on Ubuntu 20.04 40% of these programs would be corrupted"
        "\nby a GPR-only interposer; on Clear Linux, all of them.  Configure"
        "\nLazypolineConfig(preserve_xstate=...) accordingly."
    )


if __name__ == "__main__":
    main()
