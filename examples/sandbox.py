#!/usr/bin/env python3
"""A filesystem sandbox built on lazypoline — and why exhaustiveness matters.

The sandbox policy denies ``unlink`` and any ``open`` for writing outside
``/tmp``.  A well-behaved program works normally; a malicious program that
JIT-generates a fresh syscall instruction to evade static rewriters is
still caught by lazypoline (its SUD slow path sees *every* syscall), while
the same policy enforced with pure zpoline is silently bypassed — the
security scenario of §VI.

Run:  python examples/sandbox.py
"""

from repro import Machine
from repro.arch import Assembler
from repro.interpose import attach
from repro.interpose.api import SyscallContext
from repro.kernel import errno
from repro.kernel.fs import O_CREAT, O_WRONLY
from repro.kernel.syscalls.table import NR
from repro.loader import image_from_assembler

SECRET = "/etc/passwd"


class FsSandbox:
    """Deny writes outside /tmp and all unlinks."""

    def __init__(self):
        self.blocked: list[str] = []

    def __call__(self, ctx: SyscallContext):
        if ctx.name in ("open", "openat"):
            path_arg = ctx.args[1] if ctx.name == "openat" else ctx.args[0]
            flags = ctx.args[2] if ctx.name == "openat" else ctx.args[1]
            path = ctx.read_cstr(path_arg).decode(errors="replace")
            if flags & (O_WRONLY | O_CREAT) and not path.startswith("/tmp"):
                self.blocked.append(f"{ctx.name}({path!r})")
                return -errno.EACCES
        if ctx.name == "unlink":
            path = ctx.read_cstr(ctx.args[0]).decode(errors="replace")
            self.blocked.append(f"unlink({path!r})")
            return -errno.EPERM
        return ctx.do_syscall()


def build_well_behaved():
    a = Assembler(base=0x400000)
    a.label("_start")
    # open("/tmp/out", O_CREAT|O_WRONLY) and write into it: allowed
    a.mov_imm("rdi", "tmp_path")
    a.mov_imm("rsi", O_CREAT | O_WRONLY)
    a.mov_imm("rdx", 0o644)
    a.mov_imm("rax", NR["open"])
    a.syscall()
    a.mov("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rsi", "data")
    a.mov_imm("rdx", 5)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    a.label("tmp_path")
    a.db(b"/tmp/out\x00")
    a.label("data")
    a.db(b"safe\n")
    return image_from_assembler("good", a, entry="_start")


def build_jit_escape():
    """Tries to unlink the secret through a JIT-emitted syscall insn."""
    a = Assembler(base=0x400000)
    a.label("_start")
    # mmap an RWX page
    a.mov_imm("rdi", 0)
    a.mov_imm("rsi", 4096)
    a.mov_imm("rdx", 7)
    a.mov_imm("r10", 0x22)
    a.mov_imm("r8", (1 << 64) - 1)
    a.mov_imm("r9", 0)
    a.mov_imm("rax", NR["mmap"])
    a.syscall()
    a.mov("r12", "rax")
    # emit: syscall; ret   (the attacker sets registers before calling)
    a.mov_imm("rcx", int.from_bytes(b"\x0f\x05\xc3" + b"\x90" * 5, "little"))
    a.store("r12", 0, "rcx")
    # rax = unlink, rdi = secret path, call the fresh gadget
    a.mov_imm("rdi", "secret")
    a.mov_imm("rax", NR["unlink"])
    a.call_reg("r12")
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    a.label("secret")
    a.db(SECRET.encode() + b"\x00")
    return image_from_assembler("evil", a, entry="_start")


def run(image, tool_name):
    machine = Machine()
    machine.fs.create(SECRET, b"root:x:0:0\n")
    machine.fs.makedirs("/tmp")
    sandbox = FsSandbox()
    process = machine.load(image)
    attach(machine, process, tool_name, interposer=sandbox)
    machine.run_process(process)
    return machine, sandbox


def main() -> None:
    machine, sandbox = run(build_well_behaved(), "lazypoline")
    print("well-behaved program under lazypoline:")
    print(f"  /tmp/out written: {machine.fs.lookup('/tmp/out').data!r}")
    print(f"  policy hits: {sandbox.blocked or 'none'}")

    machine, sandbox = run(build_jit_escape(), "lazypoline")
    survived = machine.fs.exists(SECRET)
    print("\nJIT-escape attempt under lazypoline:")
    print(f"  secret file survived: {survived}")
    print(f"  blocked: {sandbox.blocked}")
    assert survived, "lazypoline must catch the JIT-ed unlink"

    machine, sandbox = run(build_jit_escape(), "zpoline")
    survived = machine.fs.exists(SECRET)
    print("\nJIT-escape attempt under pure zpoline (static rewriting):")
    print(f"  secret file survived: {survived}")
    print(f"  blocked: {sandbox.blocked or 'nothing — the escape worked'}")
    assert not survived, "static rewriting is bypassable by construction"

    print("\nexhaustiveness is a security property: only the hybrid design")
    print("enforces the policy against code generated after install.")


if __name__ == "__main__":
    main()
