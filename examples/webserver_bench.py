#!/usr/bin/env python3
"""A miniature Fig. 5: web-server throughput under interposition.

Runs the nginx-like server at two file sizes under every mechanism the
paper plots and prints the retention table.  (The full sweep lives in
``benchmarks/test_fig5_webservers.py``.)

Run:  python examples/webserver_bench.py
"""

from repro import Machine
from repro.bench.runner import install_mechanism
from repro.workloads.webserver import NGINX, ServerWorkload

MECHANISMS = ("baseline", "zpoline", "lazypoline_noxstate", "lazypoline", "sud")


def measure(mechanism: str, size: int) -> float:
    machine = Machine()
    workload = ServerWorkload(machine, NGINX, file_size=size)
    install_mechanism(mechanism, machine, workload.process)
    return workload.benchmark(requests=150, warmup=15)


def main() -> None:
    print(f"{'size':>7s} " + " ".join(f"{m:>20s}" for m in MECHANISMS))
    for size in (1024, 65536):
        rates = {m: measure(m, size) for m in MECHANISMS}
        base = rates["baseline"]
        cells = [f"{base / 1000:14.1f}k req/s"]
        for mechanism in MECHANISMS[1:]:
            cells.append(f"{100 * rates[mechanism] / base:19.1f}%")
        print(f"{size // 1024:>6d}K " + " ".join(cells))
    print(
        "\nexpected shape (paper Fig. 5): zpoline ~ lazypoline >> SUD at 1K;"
        "\ndifferences shrink as the file grows and syscall intensity drops."
    )


if __name__ == "__main__":
    main()
