#!/usr/bin/env python3
"""An strace-like tool over any interposition mechanism.

Runs one of the modelled coreutils under a chosen mechanism (attached
through ``repro.interpose.attach``) and prints a decoded syscall trace —
string arguments are dereferenced live via the observability layer's
formatting helpers, return values are errno-decoded.  A machine-wide
tracer rides along and prints the slow-path/rewrite summary for the
rewriting mechanisms.  Compare mechanisms (and their cycle cost!) from
the command line.

Run:  python examples/strace.py [mechanism] [coreutil]
e.g.: python examples/strace.py lazypoline ls
      python examples/strace.py ptrace cp
"""

import sys

from repro import Machine
from repro.interpose import attach
from repro.interpose.api import SyscallContext
from repro.obs import Tracer, path_ratio
from repro.obs.format import format_ret, render_live_args


def make_tracer(lines: list[str]):
    def tracer(ctx: SyscallContext):
        rendered = render_live_args(ctx)
        ret = ctx.do_syscall()
        lines.append(f"{ctx.name}({rendered}) = {format_ret(ret)}")
        return ret

    return tracer


def main() -> None:
    from repro.workloads.coreutils import COREUTIL_NAMES, build_coreutil, setup_fs

    mechanism = sys.argv[1] if len(sys.argv) > 1 else "lazypoline"
    util = sys.argv[2] if len(sys.argv) > 2 else "ls"
    if util not in COREUTIL_NAMES:
        raise SystemExit(f"unknown coreutil {util!r}; pick from {COREUTIL_NAMES}")

    machine = Machine(tracer=Tracer())
    setup_fs(machine)
    process = machine.load(build_coreutil(util))
    lines: list[str] = []
    attach(machine, process, mechanism, interposer=make_tracer(lines))
    code = machine.run_process(process)

    print(f"$ strace -m {mechanism} {util}")
    print("\n".join(lines))
    print(f"+++ exited with {code} +++")
    print(f"[{machine.clock:.0f} simulated cycles, "
          f"{machine.seconds * 1e6:.1f} us at 2.1 GHz]")
    slow, fast, fraction = path_ratio(machine.tracer)
    if slow or fast:
        print(f"[{slow} slow-path traps, {fast} fast-path entries "
              f"({fraction:.1%} slow)]")


if __name__ == "__main__":
    main()
