#!/usr/bin/env python3
"""An strace-like tool over any interposition mechanism.

Runs one of the modelled coreutils under a chosen mechanism and prints a
decoded syscall trace — string arguments are dereferenced, return values
are errno-decoded.  Compare mechanisms (and their cycle cost!) from the
command line.

Run:  python examples/strace.py [mechanism] [coreutil]
e.g.: python examples/strace.py lazypoline ls
      python examples/strace.py ptrace cp
"""

import sys

from repro import Machine
from repro.bench.runner import install_mechanism
from repro.interpose.api import SyscallContext
from repro.kernel.errno import errno_name, is_error
from repro.workloads.coreutils import COREUTIL_NAMES, build_coreutil, setup_fs

#: Which argument positions hold user-space path strings.
PATH_ARGS = {
    "open": (0,), "stat": (0,), "access": (0,), "unlink": (0,),
    "mkdir": (0,), "rmdir": (0,), "chmod": (0,), "chdir": (0,),
    "rename": (0, 1), "execve": (0,), "openat": (1,),
}


def make_tracer(lines: list[str]):
    def tracer(ctx: SyscallContext):
        rendered = []
        for i, arg in enumerate(ctx.args[:4]):
            if i in PATH_ARGS.get(ctx.name, ()):
                try:
                    rendered.append(repr(ctx.read_cstr(arg).decode()))
                except Exception:
                    rendered.append(f"{arg:#x}")
            else:
                rendered.append(f"{arg:#x}")
        ret = ctx.do_syscall()
        if isinstance(ret, int) and is_error(ret):
            shown = f"-1 {errno_name(-ret)}"
        else:
            shown = str(ret)
        lines.append(f"{ctx.name}({', '.join(rendered)}) = {shown}")
        return ret

    return tracer


def main() -> None:
    mechanism = sys.argv[1] if len(sys.argv) > 1 else "lazypoline"
    util = sys.argv[2] if len(sys.argv) > 2 else "ls"
    if util not in COREUTIL_NAMES:
        raise SystemExit(f"unknown coreutil {util!r}; pick from {COREUTIL_NAMES}")

    machine = Machine()
    setup_fs(machine)
    process = machine.load(build_coreutil(util))
    lines: list[str] = []
    install_mechanism(mechanism, machine, process, make_tracer(lines))
    code = machine.run_process(process)

    print(f"$ strace -m {mechanism} {util}")
    print("\n".join(lines))
    print(f"+++ exited with {code} +++")
    print(f"[{machine.clock:.0f} simulated cycles, "
          f"{machine.seconds * 1e6:.1f} us at 2.1 GHz]")


if __name__ == "__main__":
    main()
