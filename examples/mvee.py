#!/usr/bin/env python3
"""An N-variant execution monitor in ~40 lines of user code.

The paper's introduction motivates syscall interposition with systems that
"improve program reliability and security" by running multiple program
variants in lockstep and cross-checking their syscall streams (refs
[4-13]).  ``repro.apps.mvee`` is exactly that, built on lazypoline's
exhaustive interception and the ``ctx.defer`` barrier primitive.

Run:  python examples/mvee.py
"""

from repro import Machine
from repro.apps.mvee import MveeMonitor
from repro.arch import assemble_text
from repro.loader import image_from_assembler


def deterministic_program():
    asm = assemble_text(
        """
        _start:
            mov rax, 39          ; getpid
            syscall
            mov rax, 1           ; write(1, msg, 9)
            mov rdi, 1
            mov rsi, msg
            mov rdx, 9
            syscall
            mov rax, 231         ; exit_group(0)
            mov rdi, 0
            syscall
        msg:
            .ascii "replica!\\n"
        """,
        base=0x400000,
    )
    return image_from_assembler("clean", asm, entry="_start")


def compromised_program():
    """Models an exploited replica: control flow depends on entropy, the
    classic signature address-space diversification turns into divergence."""
    asm = assemble_text(
        """
        _start:
            mov rax, 9           ; mmap scratch
            mov rdi, 0
            mov rsi, 4096
            mov rdx, 3
            mov r10, 0x22
            mov r8, -1
            mov r9, 0
            syscall
            mov r12, rax
            mov rax, 318         ; getrandom(buf, 8, 0)
            mov rdi, r12
            mov rsi, 8
            mov rdx, 0
            syscall
            mov rcx, [r12]
            and rcx, 1
            cmp rcx, 0
            jz even
            mov rax, 39          ; odd: getpid
            syscall
            jmp done
        even:
            mov rax, 186         ; even: gettid
            syscall
        done:
            mov rax, 231
            mov rdi, 0
            syscall
        """,
        base=0x400000,
    )
    return image_from_assembler("shady", asm, entry="_start")


def main() -> None:
    machine = Machine()
    report = MveeMonitor(machine, deterministic_program(), variants=3).run()
    print(f"clean program, 3 variants: compared {report.syscalls_compared} "
          f"syscalls, diverged={report.diverged}")
    assert not report.diverged

    machine = Machine()
    monitor = MveeMonitor(machine, compromised_program(), variants=2)
    report = monitor.run()
    print(f"\nentropy-dependent program, 2 variants: diverged={report.diverged}")
    print(f"  {report.divergence}")
    print(f"  replicas terminated: "
          f"{[not p.alive for p in monitor.processes]}")
    assert report.diverged

    print("\nthe monitor needed two properties only lazypoline provides at")
    print("once: exhaustive interception (a missed syscall desyncs the")
    print("lockstep) and low overhead (every replica pays it on every call).")


if __name__ == "__main__":
    main()
