#!/usr/bin/env python3
"""The paper's §V-A experiment: who sees a JIT-generated syscall?

A tcc-style workload compiles ``mov eax, __NR_getpid; syscall; ret`` into a
fresh RWX page at run time and calls it.  The same tracing interposition
function runs under SUD, zpoline, and lazypoline; only the static rewriter
misses the JIT-ed getpid.

Run:  python examples/jit_exhaustiveness.py
"""

from repro import Machine
from repro.bench.runner import install_mechanism
from repro.interpose.api import TraceInterposer
from repro.workloads import tcc


def trace_under(mechanism: str) -> list[str]:
    machine = Machine()
    tcc.setup_fs(machine)
    process = machine.load(tcc.build_tcc_image())
    tracer = TraceInterposer()
    install_mechanism(mechanism, machine, process, tracer)
    machine.run_process(process)
    assert process.stdout == b"ok\n", "the JIT workload itself must succeed"
    return tracer.names


def main() -> None:
    traces = {m: trace_under(m) for m in ("sud", "zpoline", "lazypoline")}
    for mechanism, names in traces.items():
        marker = "ALL SYSCALLS" if "getpid" in names else "MISSED getpid"
        print(f"{mechanism:11s} [{marker}]: {' '.join(names)}")

    assert traces["lazypoline"] == traces["sud"], "must match SUD exactly"
    assert "getpid" not in traces["zpoline"], "static rewriting must miss it"
    print("\nlazypoline traces exactly what SUD traces — exhaustiveness")
    print("with rewriting-level efficiency, the paper's core claim.")


if __name__ == "__main__":
    main()
