#!/usr/bin/env python3
"""§VI in action: protecting lazypoline's selector byte with MPK.

The paper notes that efficient user-space interposers offer no protection
against an application that attacks the interposer itself — for lazypoline
the crown jewel is the SUD selector byte: write ALLOW to it and every
subsequent syscall sails past interposition.

This example runs that exact attack twice: against stock lazypoline (it
works) and against lazypoline with ``protect_gs_with_pkey=True``, where the
%gs region sits behind a write-disabled memory protection key and the
malicious store faults.  It also prints what the isolation costs.

Run:  python examples/secure_interposition.py
"""

from repro import Machine
from repro.arch import Assembler
from repro.interpose import attach
from repro.interpose.api import TraceInterposer
from repro.interpose.lazypoline import LazypolineConfig, gsrel
from repro.kernel.signals import SIGSEGV
from repro.kernel.sud import SELECTOR_ALLOW
from repro.kernel.syscalls.table import NR
from repro.loader import image_from_assembler
from repro.workloads.microbench import measure_cycles_per_syscall


def build_attacker():
    a = Assembler(base=0x400000)
    a.label("_start")
    # a couple of innocent syscalls first
    a.mov_imm("rax", NR["getpid"])
    a.syscall()
    # the attack: find the selector through %gs and flip it to ALLOW
    a.rdgsbase("rbx")
    a.mov_imm("rcx", SELECTOR_ALLOW)
    a.store8("rbx", gsrel.GS_SELECTOR, "rcx")
    # from here on, syscalls would be invisible to the interposer
    a.mov_imm("rax", NR["mkdir"])
    a.mov_imm("rdi", "path")
    a.mov_imm("rsi", 0o700)
    a.syscall()
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    a.label("path")
    a.db(b"/smuggled\x00")
    return image_from_assembler("attacker", a, entry="_start")


def attempt(protected: bool):
    machine = Machine()
    process = machine.load(build_attacker())
    tracer = TraceInterposer()
    config = LazypolineConfig(protect_gs_with_pkey=protected)
    attach(machine, process, "lazypoline", interposer=tracer, config=config)
    machine.run(until=lambda: not process.alive)
    return machine, process, tracer


def main() -> None:
    machine, process, tracer = attempt(protected=False)
    print("stock lazypoline:")
    print(f"  traced: {tracer.names}")
    print(f"  /smuggled created behind the interposer's back: "
          f"{machine.fs.exists('/smuggled')}")
    assert machine.fs.exists("/smuggled")
    assert "mkdir" not in tracer.names

    machine, process, tracer = attempt(protected=True)
    print("\nlazypoline + protect_gs_with_pkey:")
    print(f"  traced: {tracer.names}")
    print(f"  attacker terminated by: "
          f"{'SIGSEGV' if process.term_signal == SIGSEGV else process.term_signal}")
    print(f"  /smuggled exists: {machine.fs.exists('/smuggled')}")
    assert process.term_signal == SIGSEGV
    assert not machine.fs.exists("/smuggled")

    base = measure_cycles_per_syscall("baseline", iterations=200)
    stock = measure_cycles_per_syscall("lazypoline", iterations=200)
    secured = measure_cycles_per_syscall("lazypoline_pkey", iterations=200)
    print("\nwhat the isolation costs (microbenchmark, syscall #500):")
    print(f"  lazypoline        {stock / base:.2f}x")
    print(f"  + pkey isolation  {secured / base:.2f}x "
          f"({secured - stock:+.0f} cycles/syscall)")
    print("\nthe §VI thesis holds: exhaustive+efficient interposition can")
    print("protect its own state with commodity in-process isolation.")


if __name__ == "__main__":
    main()
