#!/usr/bin/env python3
"""Quickstart: interpose every syscall of a guest program with lazypoline.

Builds a small guest program, installs lazypoline with a tracing
interposer, runs it, and shows what was intercepted — including how many
invocation sites took the slow path (SIGSYS + rewrite) exactly once before
going fast.

Run:  python examples/quickstart.py
"""

from repro import Machine
from repro.arch import Assembler
from repro.interpose import attach
from repro.interpose.api import SyscallContext
from repro.kernel.syscalls.table import NR
from repro.loader import image_from_assembler


def build_guest():
    """A guest that writes a message three times and exits."""
    a = Assembler(base=0x400000)
    a.label("_start")
    a.mov_imm("rbx", 3)
    a.label("loop")
    a.mov_imm("rax", NR["write"])
    a.mov_imm("rdi", 1)
    a.mov_imm("rsi", "msg")
    a.mov_imm("rdx", 7)
    a.syscall()
    a.dec("rbx")
    a.jnz("loop")
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    a.label("msg")
    a.db(b"hello!\n")
    return image_from_assembler("quickstart", a, entry="_start")


def main() -> None:
    machine = Machine()
    process = machine.load(build_guest())

    log = []

    def my_interposer(ctx: SyscallContext):
        """Paper-style interposition function: print, execute, return."""
        args = ", ".join(f"{a:#x}" for a in ctx.args[:3])
        ret = ctx.do_syscall()
        log.append(f"  {ctx.name}({args}) = {ret}")
        return ret

    tool = attach(machine, process, "lazypoline", interposer=my_interposer)
    exit_code = machine.run_process(process)

    print("intercepted syscalls:")
    print("\n".join(log))
    print(f"\nguest stdout: {process.stdout!r}")
    print(f"guest exit code: {exit_code}")
    print(
        f"\nlazypoline: {tool.slowpath_hits} slow-path traps, "
        f"{len(tool.rewritten)} sites rewritten, "
        f"{tool.fastpath_hits} interpositions total"
    )
    print(f"simulated time: {machine.seconds * 1e6:.2f} us "
          f"({machine.clock:.0f} cycles)")
    assert process.stdout == b"hello!\n" * 3


if __name__ == "__main__":
    main()
