"""Record/replay of syscall behaviour."""

from __future__ import annotations

import pytest

from repro.apps.replay import Recorder, ReplayDivergence, Replayer
from repro.interpose.lazypoline import Lazypoline
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR

from tests.conftest import asm, emit_exit, emit_syscall, finish


def _random_to_stdout_image():
    """Reads entropy and prints it: nondeterministic across runs."""
    a = asm()
    a.label("_start")
    emit_syscall(a, "mmap", 0, 4096, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov("rdi", "r12")
    a.mov_imm("rsi", 8)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["getrandom"])
    a.syscall()
    a.mov_imm("rdi", 1)
    a.mov("rsi", "r12")
    a.mov_imm("rdx", 8)
    a.mov_imm("rax", NR["write"])
    a.syscall()
    emit_exit(a, 0)
    return finish(a, name="rngout")


def _record(image):
    machine = Machine()
    proc = machine.load(image)
    recorder = Recorder()
    Lazypoline._install(machine, proc, recorder)
    machine.run_process(proc)
    return recorder.recording, proc.stdout


def _replay(image, recording):
    machine = Machine()
    proc = machine.load(image)
    replayer = Replayer(recording)
    Lazypoline._install(machine, proc, replayer)
    machine.run_process(proc)
    return replayer, proc.stdout


def test_replay_reproduces_nondeterministic_input():
    image = _random_to_stdout_image()
    recording, original = _record(image)
    # fresh runs produce different entropy...
    _recording2, second = _record(image)
    assert original != second  # the entropy stream moved on

    # ...but replay injects the *recorded* entropy into the program
    machine = Machine()
    proc = machine.load(image)
    replayer = Replayer(recording)
    Lazypoline._install(machine, proc, replayer)
    machine.run_process(proc)
    buf = proc.task.regs.read_name("r12")
    assert proc.task.mem.read(buf, 8, check=None) == original
    # world effects (the write to stdout) are suppressed during replay
    assert proc.stdout == b""
    assert replayer.replayed > 0


def test_replay_does_not_touch_the_world():
    """A recorded mkdir is served from the log, not re-executed."""
    a = asm()
    a.label("_start")
    emit_syscall(a, "mkdir", "p", 0o755)
    emit_exit(a, 0)
    a.label("p")
    a.db(b"/made\x00")
    image = finish(a)
    recording, _ = _record(image)
    machine = Machine()
    proc = machine.load(image)
    Lazypoline._install(machine, proc, Replayer(recording))
    machine.run_process(proc)
    assert not machine.fs.exists("/made")  # replay skipped the real mkdir


def test_replay_detects_divergent_program():
    image = _random_to_stdout_image()
    recording, _ = _record(image)
    # replay a DIFFERENT program against that recording
    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    emit_exit(a, 0)
    other = finish(a, name="other")
    machine = Machine()
    proc = machine.load(other)
    Lazypoline._install(machine, proc, Replayer(recording))
    with pytest.raises(ReplayDivergence):
        machine.run_process(proc)


def test_replay_exhausted_recording():
    a = asm()
    a.label("_start")
    emit_syscall(a, "getpid")
    emit_syscall(a, "getpid")
    emit_exit(a, 0)
    long_image = finish(a, name="long")

    b = asm()
    b.label("_start")
    emit_syscall(b, "getpid")
    emit_exit(b, 0)
    short_image = finish(b, name="short")

    recording, _ = _record(short_image)
    machine = Machine()
    proc = machine.load(long_image)
    Lazypoline._install(machine, proc, Replayer(recording))
    with pytest.raises(ReplayDivergence):
        machine.run_process(proc)


def test_recording_contents():
    image = _random_to_stdout_image()
    recording, _ = _record(image)
    names = [c.name for c in recording.calls]
    assert names == ["mmap", "getrandom", "write", "exit_group"]
    getrandom = recording.calls[1]
    assert getrandom.out_data is not None and len(getrandom.out_data) == 8
