"""Assembler/decoder round-trip tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.arch.decode import decode_one
from repro.arch.encode import Assembler
from repro.arch.isa import (
    CALL_RAX_BYTES,
    MAX_INSN_LEN,
    Mnemonic,
    SYSCALL_BYTES,
)
from repro.errors import AssemblerError


def roundtrip(build, mnemonic, operands):
    a = Assembler()
    build(a)
    code = a.assemble()
    insn = decode_one(code)
    assert insn.mnemonic is mnemonic
    assert insn.operands == operands
    assert insn.length == len(code)
    return insn


def test_syscall_is_two_bytes_0f05():
    a = Assembler()
    a.syscall()
    assert a.assemble() == SYSCALL_BYTES


def test_sysenter_is_two_bytes_0f34():
    a = Assembler()
    a.sysenter()
    assert a.assemble() == bytes((0x0F, 0x34))


def test_call_rax_is_two_bytes_ffd0():
    a = Assembler()
    a.call_reg("rax")
    assert a.assemble() == CALL_RAX_BYTES


def test_syscall_and_call_rax_same_length():
    """The load-bearing property: in-place replaceability."""
    assert len(SYSCALL_BYTES) == len(CALL_RAX_BYTES) == 2


def test_nop_is_90():
    a = Assembler()
    a.nop()
    assert a.assemble() == b"\x90"


def test_rel32_jump_is_five_bytes():
    a = Assembler()
    a.label("target")
    a.jmp("target")
    code = a.assemble()
    assert len(code) == 5
    insn = decode_one(code)
    assert insn.mnemonic is Mnemonic.JMP_REL
    assert insn.operands == (-5,)


@pytest.mark.parametrize("reg,expected_len", [("rax", 1), ("rdi", 1), ("r8", 2), ("r15", 2)])
def test_push_pop_lengths(reg, expected_len):
    a = Assembler()
    a.push(reg)
    assert len(a.assemble()) == expected_len
    b = Assembler()
    b.pop(reg)
    assert len(b.assemble()) == expected_len


@pytest.mark.parametrize("reg", ["rax", "rbx", "r9", "r15"])
def test_push_pop_roundtrip(reg):
    from repro.arch.registers import GPR_INDEX

    a = Assembler()
    a.push(reg)
    insn = decode_one(a.assemble())
    assert insn.mnemonic is Mnemonic.PUSH
    assert insn.operands == (GPR_INDEX[reg],)


@given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=2**64 - 1))
def test_mov_imm_roundtrip(reg, value):
    a = Assembler()
    a.mov_imm(reg, value)
    insn = decode_one(a.assemble())
    assert insn.mnemonic is Mnemonic.MOV_IMM64
    assert insn.operands == (reg, value)


@given(st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15))
def test_reg_reg_alu_roundtrip(dst, src):
    for method, mnemonic in [
        ("mov", Mnemonic.MOV),
        ("add", Mnemonic.ADD),
        ("sub", Mnemonic.SUB),
        ("cmp", Mnemonic.CMP),
        ("xor", Mnemonic.XOR),
        ("imul", Mnemonic.IMUL),
    ]:
        a = Assembler()
        getattr(a, method)(dst, src)
        insn = decode_one(a.assemble())
        assert insn.mnemonic is mnemonic
        assert insn.operands == (dst, src)


@given(
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
)
def test_load_store_roundtrip(reg, base, disp):
    a = Assembler()
    a.load(reg, base, disp)
    insn = decode_one(a.assemble())
    assert insn.mnemonic is Mnemonic.LOAD
    assert insn.operands == (reg, base, disp)

    b = Assembler()
    b.store(base, disp, reg)
    insn = decode_one(b.assemble())
    assert insn.mnemonic is Mnemonic.STORE
    assert insn.operands == (base, disp, reg)


@given(st.integers(min_value=0, max_value=15), st.integers(min_value=-(2**31), max_value=2**31 - 1))
def test_imm_alu_roundtrip(reg, imm):
    a = Assembler()
    a.addi(reg, imm)
    insn = decode_one(a.assemble())
    assert insn.mnemonic is Mnemonic.ADDI
    assert insn.operands == (reg, imm)


def test_label_forward_and_backward():
    a = Assembler(base=0x1000)
    a.label("start")
    a.jmp("end")  # forward
    a.label("mid")
    a.jmp("start")  # backward
    a.label("end")
    a.ret()
    code = a.assemble()
    first = decode_one(code, 0, 0x1000)
    assert first.operands[0] == 5  # skips the second jump (5 bytes)
    second = decode_one(code, 5, 0x1005)
    assert 0x1005 + second.length + second.operands[0] == 0x1000


def test_mov_imm_label_uses_imm64_form():
    a = Assembler(base=0x2000)
    a.mov_imm("rax", "data")
    a.label("data")
    code = a.assemble()
    insn = decode_one(code)
    assert insn.length == 10
    assert insn.operands == (0, 0x2000 + 10)


def test_dq_label():
    a = Assembler(base=0x3000)
    a.label("table")
    a.dq("table")
    a.dq(0x1122334455667788)
    code = a.assemble()
    assert code[:8] == (0x3000).to_bytes(8, "little")
    assert code[8:] == bytes.fromhex("8877665544332211")


def test_duplicate_label_rejected():
    a = Assembler()
    a.label("x")
    with pytest.raises(AssemblerError):
        a.label("x")


def test_undefined_label_rejected():
    a = Assembler()
    a.jmp("nowhere")
    with pytest.raises(AssemblerError):
        a.assemble()


def test_unknown_register_rejected():
    a = Assembler()
    with pytest.raises(AssemblerError):
        a.mov_imm("eax", 1)  # 32-bit names are not a thing here


def test_gs_instructions_roundtrip():
    a = Assembler()
    a.gsstore8(0, "r11")
    a.gsload("r11", 24)
    a.gsjmp(16)
    a.gscopy8(0, 8)
    code = a.assemble()
    insn = decode_one(code)
    assert insn.mnemonic is Mnemonic.GSSTORE8
    assert insn.operands == (0, 11)
    off = insn.length
    insn = decode_one(code, off)
    assert insn.mnemonic is Mnemonic.GSLOAD
    assert insn.operands == (11, 24)
    off += insn.length
    insn = decode_one(code, off)
    assert insn.mnemonic is Mnemonic.GSJMP
    assert insn.operands == (16,)
    off += insn.length
    insn = decode_one(code, off)
    assert insn.mnemonic is Mnemonic.GSCOPY8
    assert insn.operands == (0, 8)


def test_hcall_roundtrip():
    a = Assembler()
    a.hcall(0x1234)
    insn = decode_one(a.assemble())
    assert insn.mnemonic is Mnemonic.HCALL
    assert insn.operands == (0x1234,)


@given(st.binary(min_size=0, max_size=MAX_INSN_LEN))
def test_decoder_never_crashes_on_garbage(blob):
    """Decoding arbitrary bytes either yields an instruction or a clean
    InvalidOpcode — never an unhandled exception."""
    from repro.errors import InvalidOpcode

    try:
        insn = decode_one(blob)
        assert 1 <= insn.length <= MAX_INSN_LEN
    except InvalidOpcode:
        pass


def test_every_assembled_instruction_decodes():
    """Exercise one instance of (nearly) every assembler method."""
    a = Assembler(base=0x5000)
    a.label("_start")
    a.nop(); a.ret(); a.hlt(); a.int3(); a.syscall(); a.sysenter(); a.ud2()
    a.push("rbx"); a.pop("rbx"); a.push("r12"); a.pop("r12")
    a.call_reg("rax"); a.jmp_reg("rdx"); a.call_reg("r10"); a.jmp_reg("r11")
    a.call("_start"); a.jmp("_start")
    a.jz("_start"); a.jnz("_start"); a.jl("_start"); a.jg("_start")
    a.jge("_start"); a.jle("_start")
    a.jmp_short(-2)
    a.mov_imm("rax", 5); a.mov_imm("r9", 2**40)
    a.mov("rax", "rbx"); a.add("rax", "rbx"); a.sub("rax", "rbx")
    a.cmp("rax", "rbx"); a.and_("rax", "rbx"); a.or_("rax", "rbx")
    a.xor("rax", "rbx"); a.imul("rax", "rbx"); a.shl("rax", 3); a.shr("rax", 3)
    a.addi("rax", -1); a.subi("rax", 1); a.cmpi("rax", 0)
    a.andi("rax", 0xFF); a.ori("rax", 1); a.xori("rax", 1)
    a.inc("rcx"); a.dec("rcx"); a.lea("rax", "rsp", 8)
    a.load("rax", "rsp", 0); a.store("rsp", 0, "rax")
    a.load8("rax", "rsp", 0); a.store8("rsp", 0, "rax")
    a.movq_xg("xmm0", "rax"); a.movq_gx("rax", "xmm0")
    a.movups_load("xmm1", "rsp", 0); a.movups_store("rsp", 0, "xmm1")
    a.movaps("xmm2", "xmm1"); a.punpcklqdq("xmm0", "xmm1")
    a.xorps("xmm3", "xmm3"); a.vaddpd("xmm4", "xmm5")
    a.fld1(); a.faddp(); a.fld_mem("rsp", 0); a.fstp_mem("rsp", 0)
    a.xsave("rsp", 0); a.xrstor("rsp", 0)
    a.rdgsbase("rax"); a.wrgsbase("rax")
    a.gsload("rax", 0); a.gsstore(0, "rax")
    a.gsload8("rax", 0); a.gsstore8(0, "rax")
    a.gsjmp(16); a.gscopy8(0, 8)
    a.hcall(7)
    code = a.assemble()

    off = 0
    count = 0
    while off < len(code):
        insn = decode_one(code, off, 0x5000 + off)
        off += insn.length
        count += 1
    assert off == len(code)
    assert count >= 60
