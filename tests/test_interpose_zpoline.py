"""zpoline: trampoline mechanics, rewriting, and its designed-in failures."""

from __future__ import annotations

from repro.arch.isa import CALL_RAX_BYTES
from repro.interpose.api import DenyListInterposer, TraceInterposer
from repro.interpose.zpoline import SLED_SIZE, Zpoline, build_trampoline_code
from repro.kernel import errno
from repro.kernel.syscalls.table import NR
from repro.workloads import tcc

from tests.conftest import asm, emit_exit, emit_syscall, finish, hello_image


def test_trampoline_layout():
    code, entry = build_trampoline_code(hcall_id=0)
    assert entry == SLED_SIZE
    assert code[:SLED_SIZE] == b"\x90" * SLED_SIZE
    assert len(code) < 4096


def test_sites_rewritten_to_call_rax(machine):
    proc = machine.load(hello_image())
    tool = Zpoline._install(machine, proc, TraceInterposer())
    assert tool.rewritten_sites
    for site in tool.rewritten_sites:
        assert proc.task.mem.read(site, 2, check=None) == CALL_RAX_BYTES


def test_text_stays_nonwritable_after_rewrite(machine):
    from repro.mem.pages import Perm

    proc = machine.load(hello_image())
    image_base = 0x40_0000
    before = proc.task.mem.perm_at(image_base)
    Zpoline._install(machine, proc, TraceInterposer())
    assert proc.task.mem.perm_at(image_base) == before == Perm.RX


def test_interposition_and_correct_results(machine):
    tr = TraceInterposer()
    proc = machine.load(hello_image(b"zp!\n", exit_code=9))
    Zpoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 9
    assert proc.stdout == b"zp!\n"
    assert tr.names == ["write", "exit_group"]


def test_deny_interposer_blocks_syscall(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "mkdir", "p", 0o755)
    a.mov_imm("rbx", 0)
    a.sub("rbx", "rax")
    a.mov("rdi", "rbx")
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    a.label("p")
    a.db(b"/blocked\x00")
    proc = machine.load(finish(a))
    deny = DenyListInterposer({NR["mkdir"]: errno.EACCES})
    Zpoline._install(machine, proc, deny)
    code = machine.run_process(proc)
    assert code == errno.EACCES
    assert not machine.fs.exists("/blocked")
    assert deny.blocked[0][0] == "mkdir"


def test_argument_rewriting(machine):
    """An interposer can redirect a write from stdout to stderr."""

    def redirect(ctx):
        if ctx.name == "write" and ctx.args[0] == 1:
            return ctx.do_syscall(args=(2,) + ctx.args[1:])
        return ctx.do_syscall()

    proc = machine.load(hello_image(b"moved\n"))
    Zpoline._install(machine, proc, redirect)
    machine.run_process(proc)
    assert proc.stdout == b""
    assert proc.stderr == b"moved\n"


def test_misses_jit_generated_syscall(machine):
    """The §V-A exhaustiveness failure: zpoline cannot see JIT-ed code."""
    tcc.setup_fs(machine)
    proc = machine.load(tcc.build_tcc_image())
    tr = TraceInterposer()
    Zpoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    assert proc.stdout == b"ok\n"  # program ran fine...
    assert "getpid" not in tr.names  # ...but the JIT-ed getpid went unseen


def test_rewrite_now_catches_new_code(machine):
    """Re-scanning after the fact (what zpoline cannot do online)."""
    tcc.setup_fs(machine)
    proc = machine.load(tcc.build_tcc_image())
    tool = Zpoline._install(machine, proc, TraceInterposer())
    before = len(tool.rewritten_sites)
    # run to completion: JIT page now exists
    machine.run_process(proc)
    new = tool.rewrite_now()
    assert len(tool.rewritten_sites) == before + len(new)


def test_bytescan_mode_corrupts_immediates(machine):
    """bytescan rewrites a 0F 05 inside a mov imm64, destroying the
    constant — the misidentification hazard of §II-B."""
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 0x1122_050F_3344_5566)  # LE bytes contain 0F 05
    a.mov_imm("rax", NR["exit_group"])
    a.mov_imm("rdi", 0)
    a.syscall()
    proc = machine.load(finish(a))
    tool = Zpoline._install(machine, proc, TraceInterposer(), mode="bytescan")
    # The scanner found (at least) the false positive and the real site.
    assert len(tool.rewritten_sites) >= 2
    blob = proc.task.mem.read(0x40_0000, 32, check=None)
    # the constant in the mov imm64 has been corrupted
    assert (0x1122_050F_3344_5566).to_bytes(8, "little") not in blob


def test_sweep_mode_does_not_touch_immediates(machine):
    a = asm()
    a.label("_start")
    a.mov_imm("rbx", 0x1122_050F_3344_5566)
    emit_exit(a, 4)
    proc = machine.load(finish(a))
    Zpoline._install(machine, proc, TraceInterposer(), mode="sweep")
    code = machine.run_process(proc)
    assert code == 4
    assert proc.task.regs.read_name("rbx") == 0x1122_050F_3344_5566


def test_sigreturn_through_zpoline(machine):
    """Signal handlers keep working when the restorer's syscall has been
    rewritten to call rax."""
    from repro.kernel.signals import SIGUSR1

    a = asm()
    a.label("_start")
    a.mov_imm("rdi", SIGUSR1)
    a.mov_imm("rsi", "act")
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 8)
    a.mov_imm("rax", NR["rt_sigaction"])
    a.syscall()
    emit_syscall(a, "getpid")
    a.mov("rdi", "rax")
    a.mov_imm("rsi", SIGUSR1)
    a.mov_imm("rax", NR["kill"])
    a.syscall()
    emit_syscall(a, "write", 1, "m", 2)
    emit_exit(a, 0)
    a.label("handler")
    a.ret()
    a.align(8, fill=0)
    a.label("act")
    a.dq("handler")
    a.dq(0)
    a.dq(0)
    a.dq(0)
    a.label("m")
    a.db(b"M\n")
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    Zpoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    assert proc.stdout == b"M\n"
    assert "rt_sigreturn" in tr.names


def test_fork_child_inherits_rewrites(machine):
    a = asm()
    a.label("_start")
    emit_syscall(a, "fork")
    a.cmpi("rax", 0)
    a.jz("child")
    a.mov_imm("rdi", (1 << 64) - 1)
    a.mov_imm("rsi", 0)
    a.mov_imm("rdx", 0)
    a.mov_imm("rax", NR["wait4"])
    a.syscall()
    emit_exit(a, 0)
    a.label("child")
    emit_syscall(a, "getpid")
    emit_exit(a, 3)
    proc = machine.load(finish(a))
    tr = TraceInterposer()
    Zpoline._install(machine, proc, tr)
    code = machine.run_process(proc)
    assert code == 0
    # The child's getpid went through the (inherited) trampoline.
    assert "getpid" in tr.names
