"""Shared test fixtures and guest-program builders."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.arch.encode import Assembler
from repro.kernel.machine import Machine
from repro.kernel.syscalls.table import NR
from repro.loader.image import image_from_assembler
from repro.mem import layout


def pytest_addoption(parser):
    parser.addoption(
        "--fault-seeds",
        type=int,
        default=32,
        help="seed sweep breadth for @pytest.mark.faults tests (default 32: "
             "the smoke tier, which already covers every instruction "
             "boundary of the lazypoline windows; raise for deeper fuzzing)",
    )


@pytest.fixture(scope="session")
def fault_seed_count(request) -> int:
    return request.config.getoption("--fault-seeds")


@pytest.fixture(scope="session")
def fault_seed_corpus() -> dict:
    """Recorded regression seeds (tests/data/fault_seeds.json).

    Every seed in this file once exposed a bug or pins a boundary worth
    keeping hot; the corpus-replay test runs them before the sweeps do.
    """
    path = Path(__file__).parent / "data" / "fault_seeds.json"
    return json.loads(path.read_text())


@pytest.fixture
def machine() -> Machine:
    return Machine()


def asm(base: int = layout.CODE_BASE) -> Assembler:
    return Assembler(base=base)


def emit_syscall(a: Assembler, name: str, *args: int | str) -> None:
    """Emit a syscall with up to six arguments (ints or label names)."""
    regs = ("rdi", "rsi", "rdx", "r10", "r8", "r9")
    for reg, value in zip(regs, args):
        a.mov_imm(reg, value)
    a.mov_imm("rax", NR[name])
    a.syscall()


def emit_exit(a: Assembler, code: int = 0) -> None:
    emit_syscall(a, "exit_group", code)


def finish(a: Assembler, name: str = "prog", entry: str = "_start"):
    return image_from_assembler(name, a, entry=entry)


def run_program(machine: Machine, image, argv=(), max_instructions=5_000_000):
    process = machine.load(image, argv)
    code = machine.run_process(process, max_instructions=max_instructions)
    return process, code


def hello_image(text: bytes = b"hello\n", exit_code: int = 0):
    a = asm()
    a.label("_start")
    emit_syscall(a, "write", 1, "msg", len(text))
    emit_exit(a, exit_code)
    a.label("msg")
    a.db(text)
    return finish(a, "hello")
