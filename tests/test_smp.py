"""Multi-core (SMP) simulation: determinism, coherence, and scheduling.

The machine's SMP mode must be *guest-invisible* (same observable results
as one core, enforced by the differential oracle), *deterministic* (same
``smp_seed`` → bit-identical runs), and *physically coherent*: per-core
translation caches are shot down when a lazypoline rewrite invalidates a
page another core has cached, and the rewrite spinlock of §IV-A(b) really
contends when two cores trap on the same unrewritten site.
"""

from __future__ import annotations

import pytest

from repro.arch.encode import Assembler
from repro.faults.corpus import CORPUS
from repro.faults.oracle import differences, run_guest
from repro.interpose import attach
from repro.kernel.machine import Machine
from repro.kernel.scheduler import SchedulePolicy
from repro.kernel.syscalls.proc import CLONE_VM, THREAD_FLAGS
from repro.kernel.syscalls.table import NR
from repro.loader.image import image_from_assembler
from repro.mem import layout
from repro.obs.export import export_jsonl
from repro.obs.tracer import Tracer


def _all_dead(machine):
    return lambda: not any(t.alive for t in machine.kernel.tasks.values())


def _run_to_completion(machine, max_instructions=3_000_000):
    machine.run(until=_all_dead(machine), max_instructions=max_instructions)


def _looper(name: str, iters: int):
    """``iters`` rounds of getpid, then exit_group(0)."""
    a = Assembler(base=layout.CODE_BASE)
    a.label("_start")
    a.mov_imm("rbx", iters)
    a.label("loop")
    a.mov_imm("rax", NR["getpid"])
    a.syscall()
    a.dec("rbx")
    a.cmpi("rbx", 0)
    a.jnz("loop")
    a.mov_imm("rdi", 0)
    a.mov_imm("rax", NR["exit_group"])
    a.syscall()
    return image_from_assembler(name, a, entry="_start")


# --------------------------------------------------------------- constructor
def test_machine_core_arguments():
    m = Machine(cores=4, smp_seed=3)
    assert m.n_cores == 4
    assert [c.id for c in m.cores] == [0, 1, 2, 3]
    assert m.scheduler.smp
    with pytest.raises(ValueError):
        Machine(cores=0)


# ------------------------------------------------------- 1-core clock identity
def test_single_core_machine_is_the_legacy_machine():
    """``cores=1`` must be cycle-for-cycle the pre-SMP machine.

    The SMP scheduler only engages for ``cores > 1``; a 1-core machine
    takes the legacy scheduling path, so clocks, instruction counts and
    observable results are identical no matter what ``smp_seed`` says.
    """
    results = []
    for smp_seed in (0, 99):
        machine = Machine(cores=1, smp_seed=smp_seed)
        assert not machine.scheduler.smp
        process = machine.load(CORPUS["syscall_loop"].build())
        _run_to_completion(machine)
        results.append(
            (
                process.exit_code,
                process.stdout,
                machine.kernel.clock,
                machine.scheduler.total_instructions,
            )
        )
        # the SMP clock view degenerates to the kernel clock on one core
        assert machine.clock == machine.kernel.clock

    baseline = Machine()  # no SMP arguments at all
    process = baseline.load(CORPUS["syscall_loop"].build())
    _run_to_completion(baseline)
    results.append(
        (
            process.exit_code,
            process.stdout,
            baseline.kernel.clock,
            baseline.scheduler.total_instructions,
        )
    )
    assert results[0] == results[1] == results[2]


# -------------------------------------------------------------- determinism
def test_smp_runs_are_deterministic():
    """Same (cores, smp_seed) → bit-identical clock and trace digests."""

    def one(smp_seed):
        report = run_guest(
            CORPUS["clone_shared"].build, "lazypoline", cores=4,
            smp_seed=smp_seed,
        )
        return report.digest()

    assert one(5) == one(5)
    # a different interleaving seed must still be guest-invisible
    base = run_guest(CORPUS["clone_shared"].build, "lazypoline", cores=4,
                     smp_seed=5)
    other = run_guest(CORPUS["clone_shared"].build, "lazypoline", cores=4,
                      smp_seed=6)
    assert not differences(base, other)


def test_smp_results_match_single_core():
    """cores=2 and cores=4 runs are observably identical to cores=1."""
    for name in ("syscall_loop", "fork_wait", "clone_shared"):
        prog = CORPUS[name]
        base = run_guest(prog.build, "lazypoline", setup=prog.setup)
        for cores in (2, 4):
            smp = run_guest(prog.build, "lazypoline", setup=prog.setup,
                            cores=cores)
            assert not differences(base, smp), (name, cores)


# ------------------------------------------------- placement, stealing, clock
def test_task_placement_and_idle_steal():
    """New tasks home on the least-loaded core; idle cores steal work."""
    machine = Machine(cores=2)
    long_a = machine.load(_looper("long_a", 300))
    short = machine.load(_looper("short", 4))
    long_b = machine.load(_looper("long_b", 300))
    # least-loaded homing: core0, core1, then core0 again (tie → lowest id)
    assert [[t.tid for t in c.runqueue] for c in machine.cores] == [
        [long_a.task.tid, long_b.task.tid],
        [short.task.tid],
    ]
    _run_to_completion(machine, max_instructions=10_000_000)
    assert [p.exit_code for p in (long_a, short, long_b)] == [0, 0, 0]
    # once `short` exits, core1 is idle while core0 still has two runnable
    # tasks: it must steal exactly one of them and finish it locally
    assert machine.cores[1].steals == 1
    stolen = [
        t for t in machine.kernel.tasks.values()
        if t.tid != short.task.tid and t.core_id == 1
    ]
    assert len(stolen) == 1


def test_frontier_is_max_core_clock():
    machine = Machine(cores=2)
    machine.load(_looper("a", 50))
    machine.load(_looper("b", 200))
    _run_to_completion(machine, max_instructions=10_000_000)
    assert machine.clock == max(c.clock for c in machine.cores)
    stats = machine.core_stats()
    assert all(0.0 <= row["utilization"] <= 1.0 for row in stats)


# ------------------------------------------------------ cross-core coherence
def test_cross_core_rewrite_shootdown():
    """A lazypoline rewrite on one core invalidates the page in the other
    core's decoded-instruction cache (the shootdown IPI of the tentpole)."""
    machine = Machine(cores=2)
    process = machine.load(CORPUS["clone_shared"].build())
    attach(machine, process, tool="lazypoline")
    _run_to_completion(machine)
    assert process.exit_code == 7
    assert machine.scheduler.shootdowns >= 1
    assert (
        sum(c.shootdowns for c in machine.cores)
        == machine.scheduler.shootdowns
    )


def test_no_shootdowns_between_separate_address_spaces():
    """Forked processes have private page copies: a rewrite in one must
    never shoot down another's cached translations."""
    machine = Machine(cores=2)
    process = machine.load(CORPUS["fork_wait"].build())
    attach(machine, process, tool="lazypoline")
    _run_to_completion(machine)
    assert process.exit_code == 21
    assert machine.scheduler.shootdowns == 0


# --------------------------------------------------- contended rewrite lock
def _contend_image():
    """Two CLONE_VM threads racing through one shared getpid site."""
    a = Assembler(base=layout.CODE_BASE)

    def syscall(name, *args):
        regs = ("rdi", "rsi", "rdx", "r10", "r8", "r9")
        for reg, value in zip(regs, args):
            a.mov_imm(reg, value)
        a.mov_imm("rax", NR[name])
        a.syscall()

    a.label("_start")
    syscall("mmap", 0, 8192, 3, 0x22, (1 << 64) - 1, 0)
    a.mov("r12", "rax")
    a.mov_imm("rdi", THREAD_FLAGS | CLONE_VM)
    a.lea("rsi", "r12", 8192)
    a.mov_imm("rdx", 0)
    a.mov_imm("r10", 0)
    a.mov_imm("r8", 0)
    a.mov_imm("rax", NR["clone"])
    a.syscall()
    # both threads fall through to the shared site
    a.mov_imm("rax", NR["getpid"])
    a.label("site")
    a.syscall()
    syscall("gettid")
    a.mov("rbx", "rax")
    syscall("getpid")
    a.cmp("rbx", "rax")
    a.jnz("child")
    a.label("spin")  # main thread: join on the worker's flag
    a.load("rcx", "r12", 0)
    a.cmpi("rcx", 1)
    a.jnz("spin")
    syscall("exit_group", 0)
    a.label("child")
    a.mov_imm("rcx", 1)
    a.store("r12", 0, "rcx")
    a.label("park")
    a.jmp("park")
    return image_from_assembler("contend", a, entry="_start")


class _PreemptAtHandler(SchedulePolicy):
    """Preempt any task the moment it reaches ``addr``.

    Parking both threads at the SIGSYS handler entry lets both trap on the
    same unrewritten site before either handler runs — which is exactly
    the window where the rewrite spinlock contends on real hardware.
    """

    def __init__(self):
        self.addr = None

    def on_boundary(self, kernel, task):
        return self.addr is not None and task.regs.rip == self.addr


def test_contended_rewrite_lock_two_cores():
    policy = _PreemptAtHandler()
    tracer = Tracer()
    machine = Machine(cores=2, policy=policy, tracer=tracer)
    process = machine.load(_contend_image())
    tool = attach(machine, process, tool="lazypoline")
    policy.addr = tool.blobs.sigsys_handler
    _run_to_completion(machine)

    assert process.exit_code == 0
    assert not any(t.alive for t in machine.kernel.tasks.values())
    # the loser's core-local clock fell inside the winner's hold window at
    # least once: it spun (bounded retries) and paid for it in cycles
    assert tool.lock_contentions >= 1
    assert tool.lock_spin_cycles > 0
    # exactly one rewrite per site ever happens — the loser finds the site
    # already rewritten, returns, and retries through the patched fast path
    rewrite_events = [e for e in tracer.events if e.kind == "rewrite"]
    sites = [e.data["site"] for e in rewrite_events]
    assert len(sites) == len(set(sites))
    assert tool.slowpath_hits > len(tool.rewritten)  # losers re-trapped


def test_uncontended_lock_on_one_core():
    """On a single core the window never overlaps: zero contentions."""
    machine = Machine(cores=1)
    process = machine.load(_contend_image())
    tool = attach(machine, process, tool="lazypoline")
    _run_to_completion(machine)
    assert process.exit_code == 0
    assert tool.lock_contentions == 0
    assert tool.lock_spin_cycles == 0


# ------------------------------------------------------------- observability
def test_events_carry_core_ids():
    tracer = Tracer()
    machine = Machine(cores=2, tracer=tracer)
    machine.load(_looper("a", 40))
    machine.load(_looper("b", 40))
    _run_to_completion(machine, max_instructions=10_000_000)
    cores_seen = {e.core for e in tracer.events}
    assert cores_seen == {0, 1}
    assert sum(tracer.core_counts.values()) >= len(tracer.events)
    util = tracer.core_utilization()
    assert set(util) == {0, 1}
    assert '"core":' in export_jsonl(tracer)


# ------------------------------------------------------------------- scaling
@pytest.mark.smp
def test_webserver_scales_across_cores():
    """Acceptance: guest-MIPS at cores=4 ≥ 2x the 1-core figure."""
    from repro.workloads.webserver import NGINX, run_scaled

    one = run_scaled(NGINX, cores=1, requests=120, warmup=12)
    four = run_scaled(NGINX, cores=4, requests=120, warmup=12)
    assert four["guest_mips"] >= 2.0 * one["guest_mips"]
    assert four["requests_per_sec"] >= 2.0 * one["requests_per_sec"]
    # the prefork workers really ran on all four cores
    assert all(u > 0.5 for u in four["utilization"])


# ------------------------------------------------ superblock tier under SMP
def test_cross_core_rewrite_shoots_down_superblocks():
    """A lazypoline rewrite issued on one core must drop not just the
    remote core's decoded-instruction entries but every tier-2 superblock
    it has compiled over the patched page."""
    machine = Machine(cores=2)
    process = machine.load(CORPUS["clone_shared"].build())
    attach(machine, process, tool="lazypoline")
    _run_to_completion(machine)
    assert process.exit_code == 7
    stats = machine.superblock_stats()
    assert stats["compiled"] >= 1
    assert stats["block_shootdowns"] >= 1
    assert sum(c.block_shootdowns for c in machine.cores) == stats[
        "block_shootdowns"
    ]
    # shot-down blocks are also counted as invalidations
    assert stats["invalidated"] >= stats["block_shootdowns"]


@pytest.mark.parametrize("cores", [1, 2])
def test_tiering_cycle_identity_under_smp(cores):
    """Tiering on vs off is invisible cycle-for-cycle on SMP machines too:
    the shootdown IPI charge is keyed to stale *insn-cache* entries only,
    so block drops ride along for free."""
    reports = {
        sb: run_guest(
            CORPUS["clone_shared"].build,
            "lazypoline",
            cores=cores,
            machine_opts={"superblocks": sb},
        )
        for sb in (False, True)
    }
    diffs = differences(reports[False], reports[True], compare_cycles=True)
    assert not diffs, diffs
    assert reports[True].exit == 7
